"""Tests for multiple images per record — the paper's future-work
extension ("We leave support for ... multiple images per example to
future work", Section 3.2)."""

import numpy as np
import pytest

from repro.cnn import build_model
from repro.core.config import VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import EAGER, LAZY, STAGED
from repro.data.synthetic import generate_dataset
from repro.dataflow.context import local_context
from repro.tensor.tensorlist import TensorList


@pytest.fixture(scope="module")
def multi_dataset():
    return generate_dataset(
        "multi", num_records=24, num_structured_features=16,
        images_per_record=3, seed=5,
    )


@pytest.fixture(scope="module")
def single_dataset():
    return generate_dataset(
        "single", num_records=24, num_structured_features=16,
        images_per_record=1, seed=5,
    )


def _executor(dataset, layers=("fc7", "fc8")):
    model = build_model("alexnet", profile="mini")
    config = VistaConfig(
        cpu=2, num_partitions=4, mem_storage_bytes=0, mem_user_bytes=0,
        mem_dl_bytes=0, join="shuffle", persistence="deserialized",
    )
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2)
    return FeatureTransferExecutor(
        ctx, model, dataset, list(layers), config,
        downstream_fn=lambda f, l: {"matrix": f.copy()},
    )


def test_generator_produces_tensorlists(multi_dataset):
    image = multi_dataset.image_rows[0]["image"]
    assert isinstance(image, TensorList)
    assert len(image) == 3


def test_single_image_stays_plain_tensor(single_dataset):
    image = single_dataset.image_rows[0]["image"]
    assert isinstance(image, np.ndarray)


def test_staged_runs_with_multiple_images(multi_dataset):
    result = _executor(multi_dataset).run(STAGED)
    # pooled features concatenate across the 3 images: 16 struct +
    # 3 x 32 (mini fc7 width)
    assert result.layer_results["fc7"].feature_dim == 16 + 3 * 32


def test_lazy_matches_staged_with_multiple_images(multi_dataset):
    staged = _executor(multi_dataset).run(STAGED)
    lazy = _executor(multi_dataset).run(LAZY)
    for layer in ("fc7", "fc8"):
        np.testing.assert_allclose(
            staged.layer_results[layer].downstream["matrix"],
            lazy.layer_results[layer].downstream["matrix"],
            rtol=1e-4, atol=1e-5,
        )


def test_per_image_features_match_independent_inference(multi_dataset):
    from repro.features.pooling import pool_feature_tensor

    model = build_model("alexnet", profile="mini")
    result = _executor(multi_dataset).run(STAGED)
    matrix = result.layer_results["fc8"].downstream["matrix"]
    row0 = multi_dataset.image_rows[0]
    expected = np.concatenate(
        [multi_dataset.structured_rows[0]["features"]] + [
            pool_feature_tensor(model.forward(img, upto="fc8"))
            for img in row0["image"]
        ]
    )
    np.testing.assert_allclose(matrix[0], expected, rtol=1e-3, atol=1e-4)


def test_eager_rejects_multiple_images_clearly(multi_dataset):
    with pytest.raises(NotImplementedError):
        _executor(multi_dataset).run(EAGER)


def test_eager_still_fine_with_single_image(single_dataset):
    result = _executor(single_dataset).run(EAGER)
    assert set(result.layer_results) == {"fc7", "fc8"}
