"""Unit tests for the downstream ML models."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    accuracy_score,
)


def _separable(n=200, d=5, seed=0, noise=0.3):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    features = rng.normal(0, 1, size=(n, d))
    features[:, 0] += 2.0 * (2 * labels - 1)
    features[:, 1] += noise * rng.normal(size=n)
    return features, labels


class TestLogisticRegression:
    def test_learns_separable_data(self):
        features, labels = _separable()
        model = LogisticRegression(iterations=50).fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.9

    def test_paper_configuration_ten_iterations(self):
        features, labels = _separable()
        model = LogisticRegression().fit(features, labels)
        assert model.iterations == 10
        assert accuracy_score(labels, model.predict(features)) > 0.8

    def test_l1_part_induces_sparsity(self):
        features, labels = _separable(d=40)
        dense = LogisticRegression(
            reg_param=0.0, iterations=50
        ).fit(features, labels)
        sparse = LogisticRegression(
            reg_param=0.5, elastic_net_param=1.0, iterations=50
        ).fit(features, labels)
        assert (np.abs(sparse.weights) < 1e-9).sum() \
            > (np.abs(dense.weights) < 1e-9).sum()

    def test_predict_proba_in_unit_interval(self):
        features, labels = _separable()
        model = LogisticRegression().fit(features, labels)
        probs = model.predict_proba(features)
        assert probs.min() >= 0.0 and probs.max() <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((2, 2)))

    def test_deterministic(self):
        features, labels = _separable()
        w1 = LogisticRegression().fit(features, labels).weights
        w2 = LogisticRegression().fit(features, labels).weights
        np.testing.assert_array_equal(w1, w2)

    def test_extreme_margins_do_not_overflow(self):
        features = np.array([[1000.0], [-1000.0]])
        labels = np.array([1, 0])
        model = LogisticRegression(iterations=5).fit(features, labels)
        probs = model.predict_proba(features)
        assert np.isfinite(probs).all()


class TestDecisionTree:
    def test_learns_separable_data(self):
        features, labels = _separable()
        model = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.9

    def test_learns_axis_aligned_xor_with_depth(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(-1, 1, size=(300, 2))
        labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int)
        model = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.9

    def test_depth_limits_respected(self):
        features, labels = _separable()
        stump = DecisionTreeClassifier(max_depth=0).fit(features, labels)
        assert stump._root.is_leaf

    def test_pure_node_stops_splitting(self):
        features = np.ones((20, 2))
        labels = np.ones(20, dtype=int)
        model = DecisionTreeClassifier().fit(features, labels)
        assert model._root.is_leaf
        assert model.predict(features[:2]).tolist() == [1, 1]

    def test_max_features_subsampling_runs(self):
        features, labels = _separable(d=30)
        model = DecisionTreeClassifier(max_features=5).fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.5

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(np.zeros((2, 2)))


class TestMLP:
    def test_learns_separable_data(self):
        features, labels = _separable()
        model = MLPClassifier(
            hidden_units=(16, 16), iterations=300, learning_rate=0.5
        ).fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.9

    def test_three_layer_architecture(self):
        features, labels = _separable(n=50)
        model = MLPClassifier(hidden_units=(8, 8)).fit(features, labels)
        assert len(model._weights) == 3

    def test_deterministic_given_seed(self):
        features, labels = _separable(n=50)
        p1 = MLPClassifier(random_state=3).fit(
            features, labels
        ).predict_proba(features)
        p2 = MLPClassifier(random_state=3).fit(
            features, labels
        ).predict_proba(features)
        np.testing.assert_array_equal(p1, p2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros((2, 2)))
