"""Durable checkpoint/resume: atomic write protocol, SHA-256
integrity verification, torn-manifest quarantine, resume-first
recovery in the supervisor, and the hostile-store fault classes.

The overarching contract under test: corrupt checkpoint state is
*never silently ingested* — every invalid entry is detected, counted,
logged, and recovered by lineage recompute, and a resumed run's
features are bit-identical to an uninterrupted run's.
"""

import json
import os

import numpy as np
import pytest

from repro.core.api import Vista, default_resources
from repro.data import foods_dataset
from repro.dataflow.columnar import ColumnarBlock
from repro.dataflow.partition import Partition
from repro.exceptions import (
    CheckpointIntegrityError,
    ClusterExhausted,
    WorkloadCrash,
)
from repro.faults import FaultInjector, FaultPlan
from repro.faults.retry import RecoveryLog
from repro.recovery import (
    CheckpointStore,
    atomic_write_bytes,
    decode_partition,
    encode_partition,
    reclaim_tmp_files,
    run_fingerprint,
)


def _array_partition(index, n=6, seed=0):
    rng = np.random.default_rng(seed + index)
    return Partition.from_block(index, ColumnarBlock(
        {
            "id": np.arange(n, dtype=np.int64),
            "x": rng.standard_normal((n, 4)).astype(np.float32),
        },
        n,
    ))


def _rows_partition(index):
    # Mixed-schema rows cannot pack into one columnar block, so this
    # partition exercises the pickle payload kind.
    return Partition(index, rows=[{"id": 0, "a": 1}, {"id": 1, "b": 2}])


def _bound_store(tmp_path, fingerprint="run-a"):
    return CheckpointStore(str(tmp_path)).bind_run(fingerprint)


# ---------------------------------------------------------------------
# atomic write + tmp reclamation
# ---------------------------------------------------------------------
def test_atomic_write_leaves_no_tmp(tmp_path):
    path = str(tmp_path / "blob.bin")
    atomic_write_bytes(path, b"payload")
    assert open(path, "rb").read() == b"payload"
    assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))


def test_atomic_write_failure_cleans_tmp(tmp_path, monkeypatch):
    path = str(tmp_path / "blob.bin")
    monkeypatch.setattr(os, "replace", _raise_oserror)
    with pytest.raises(OSError):
        atomic_write_bytes(path, b"payload")
    assert os.listdir(tmp_path) == []


def _raise_oserror(*args, **kwargs):
    raise OSError("injected rename failure")


def test_reclaim_tmp_files(tmp_path):
    (tmp_path / "a.ckpt.tmp").write_bytes(b"torn")
    (tmp_path / "b.ckpt").write_bytes(b"fine")
    reclaimed = reclaim_tmp_files(str(tmp_path))
    assert len(reclaimed) == 1 and reclaimed[0].endswith("a.ckpt.tmp")
    assert sorted(os.listdir(tmp_path)) == ["b.ckpt"]


def test_bind_run_reclaims_stray_tmp(tmp_path):
    run_dir = tmp_path / "run-a"
    run_dir.mkdir()
    (run_dir / "stage__p0.ckpt.tmp").write_bytes(b"torn")
    store = _bound_store(tmp_path)
    assert store.reclaimed_tmp_total == 1
    assert not any(
        n.endswith(".tmp") for n in os.listdir(run_dir)
    )


# ---------------------------------------------------------------------
# payload encode/decode round trip
# ---------------------------------------------------------------------
def test_encode_decode_columnar_round_trip():
    part = _array_partition(3)
    kind, payload = encode_partition(part)
    assert kind == "vcb1"
    restored = decode_partition(3, kind, payload)
    assert np.array_equal(restored.block().column("x"),
                          part.block().column("x"))


def test_encode_decode_rows_round_trip():
    part = _rows_partition(1)
    kind, payload = encode_partition(part)
    assert kind == "rows"
    restored = decode_partition(1, kind, payload)
    assert restored.rows() == part.rows()


# ---------------------------------------------------------------------
# store: put / commit / restore
# ---------------------------------------------------------------------
def test_put_restore_round_trip(tmp_path):
    store = _bound_store(tmp_path)
    parts = [_array_partition(i) for i in range(3)]
    for part in parts:
        store.put_partition("infer:image->conv5", part)
    store.commit_stage("infer:image->conv5", lineage=("map", "t_img"))
    assert store.stage_complete("infer:image->conv5")
    assert store.valid_partition_count() == 3
    assert store.checkpoint_bytes > 0

    reopened = _bound_store(tmp_path)
    restored = reopened.restore_stage("infer:image->conv5")
    assert sorted(restored) == [0, 1, 2]
    assert reopened.restore_total == 3
    for index, part in enumerate(parts):
        assert np.array_equal(restored[index].block().column("x"),
                              part.block().column("x"))


def test_unbound_store_refuses_stage_api(tmp_path):
    store = CheckpointStore(str(tmp_path))
    with pytest.raises(RuntimeError, match="bind_run"):
        store.put_partition("s", _array_partition(0))


def test_different_fingerprints_are_isolated(tmp_path):
    store = _bound_store(tmp_path, "run-a")
    store.put_partition("stage", _array_partition(0))
    other = CheckpointStore(str(tmp_path)).bind_run("run-b")
    assert other.valid_partition_count() == 0
    assert other.restore_stage("stage") == {}


def test_run_fingerprint_covers_plan_and_config():
    from repro.core.config import VistaConfig

    config = VistaConfig(
        cpu=2, num_partitions=4, mem_storage_bytes=1, mem_user_bytes=1,
        mem_dl_bytes=1, join="shuffle", persistence="deserialized",
    )
    base = run_fingerprint("alexnet", 0, ["fc6"], "48-abc", "staged/aj",
                           config)
    assert base == run_fingerprint("alexnet", 0, ["fc6"], "48-abc",
                                   "staged/aj", config)
    assert base != run_fingerprint("alexnet", 0, ["fc6"], "48-abc",
                                   "lazy/aj", config)
    from dataclasses import replace
    assert base != run_fingerprint(
        "alexnet", 0, ["fc6"], "48-abc", "staged/aj",
        replace(config, num_partitions=8),
    )


# ---------------------------------------------------------------------
# integrity: corruption, missing files, torn manifests
# ---------------------------------------------------------------------
def _corrupt_file(path, offset=20):
    with open(path, "rb+") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ 0xFF]))


def test_corrupt_payload_is_detected_and_dropped(tmp_path):
    store = _bound_store(tmp_path)
    for i in range(3):
        store.put_partition("stage", _array_partition(i))
    run_dir = tmp_path / "run-a"
    victim = next(
        n for n in sorted(os.listdir(run_dir)) if n.endswith("__p1.ckpt")
    )
    _corrupt_file(str(run_dir / victim))

    reopened = _bound_store(tmp_path)
    log = RecoveryLog()
    restored = reopened.restore_stage("stage", recovery_log=log)
    assert sorted(restored) == [0, 2]
    assert reopened.corrupt_total == 1
    events = log.of("checkpoint_invalid")
    assert len(events) == 1
    assert events[0]["partition"] == 1 and events[0]["kind"] == "corrupt"
    # The bad entry is dropped from the manifest: the caller recomputes
    # it, and a later restore does not see it again.
    assert reopened.valid_partition_count() == 2
    assert not reopened.stage_complete("stage")


def test_missing_payload_detected_with_cause_chain(tmp_path):
    store = _bound_store(tmp_path)
    store.put_partition("stage", _array_partition(0))
    run_dir = tmp_path / "run-a"
    victim = next(
        n for n in os.listdir(run_dir) if n.endswith("__p0.ckpt")
    )
    os.remove(run_dir / victim)

    reopened = _bound_store(tmp_path)
    with pytest.raises(CheckpointIntegrityError) as excinfo:
        reopened._verify_and_load(
            "stage", 0, reopened.stage_entries("stage")["0"]
        )
    # raise ... from cause: the original FileNotFoundError traceback
    # survives on __cause__ (the traceback-chaining satellite).
    assert isinstance(excinfo.value.__cause__, FileNotFoundError)
    log = RecoveryLog()
    restored = reopened.restore_stage("stage", recovery_log=log)
    assert restored == {}
    assert reopened.missing_total == 1
    assert log.of("checkpoint_invalid")[0]["kind"] == "missing"
    assert log.of("checkpoint_invalid")[0]["cause"] == "FileNotFoundError"


def test_truncated_payload_is_torn_write(tmp_path):
    store = _bound_store(tmp_path)
    store.put_partition("stage", _array_partition(0))
    run_dir = tmp_path / "run-a"
    victim = next(
        n for n in os.listdir(run_dir) if n.endswith("__p0.ckpt")
    )
    size = os.path.getsize(run_dir / victim)
    with open(run_dir / victim, "rb+") as handle:
        handle.truncate(size // 2)
    reopened = _bound_store(tmp_path)
    assert reopened.restore_stage("stage") == {}
    assert reopened.corrupt_total == 1


def test_torn_manifest_quarantines_run(tmp_path):
    store = _bound_store(tmp_path)
    store.put_partition("stage", _array_partition(0))
    manifest = tmp_path / "run-a" / "manifest.json"
    size = os.path.getsize(manifest)
    with open(manifest, "rb+") as handle:
        handle.truncate(size // 2)

    reopened = _bound_store(tmp_path)
    assert reopened.torn_manifest_total == 1
    # Nothing in the namespace is trusted after a torn manifest:
    # recovery falls back to full recompute.
    assert reopened.valid_partition_count() == 0
    assert reopened.restore_stage("stage") == {}
    assert os.listdir(tmp_path / "run-a") == []


def test_wrong_fingerprint_manifest_is_structural_tear(tmp_path):
    run_dir = tmp_path / "run-a"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text(json.dumps(
        {"schema": "ckpt/v1", "fingerprint": "other", "stages": {}}
    ))
    store = _bound_store(tmp_path)
    assert store.torn_manifest_total == 1


# ---------------------------------------------------------------------
# injected checkpoint faults (hostile store)
# ---------------------------------------------------------------------
def test_injected_corruption_fault_detected_on_restore(tmp_path):
    plan = FaultPlan().checkpoint_corrupt(stage="stage", partition=0)
    injector = FaultInjector(plan, seed=3, recovery_log=RecoveryLog())
    store = CheckpointStore(str(tmp_path), fault_injector=injector)
    store.bind_run("run-a")
    store.put_partition("stage", _array_partition(0))
    store.put_partition("stage", _array_partition(1))
    assert injector.injected["checkpoint-corrupt"] == 1
    assert injector.recovery_log.of("checkpoint_fault")

    reopened = _bound_store(tmp_path)
    restored = reopened.restore_stage("stage")
    assert sorted(restored) == [1]
    assert reopened.corrupt_total == 1


def test_injected_missing_fault(tmp_path):
    plan = FaultPlan().checkpoint_missing(stage="stage", partition=1)
    injector = FaultInjector(plan, seed=3)
    store = CheckpointStore(str(tmp_path), fault_injector=injector)
    store.bind_run("run-a")
    for i in range(2):
        store.put_partition("stage", _array_partition(i))
    reopened = _bound_store(tmp_path)
    restored = reopened.restore_stage("stage")
    assert sorted(restored) == [0]
    assert reopened.missing_total == 1


def test_injected_torn_manifest_fault(tmp_path):
    plan = FaultPlan().checkpoint_torn()
    injector = FaultInjector(plan, seed=3)
    store = CheckpointStore(str(tmp_path), fault_injector=injector)
    store.bind_run("run-a")
    store.put_partition("stage", _array_partition(0))
    reopened = _bound_store(tmp_path)
    assert reopened.torn_manifest_total == 1
    assert reopened.valid_partition_count() == 0


# ---------------------------------------------------------------------
# end-to-end: checkpointed runs, crash + resume, bit identity
# ---------------------------------------------------------------------
def _make_vista():
    return Vista(
        model_name="alexnet", num_layers=2,
        dataset=foods_dataset(num_records=48),
        resources=default_resources(num_nodes=2),
        downstream_fn=lambda features, labels: {"matrix": features.copy()},
    )


@pytest.fixture(scope="module")
def baseline():
    return _make_vista().run()


def _matrices(result):
    return {
        layer: lr.downstream["matrix"]
        for layer, lr in result.layer_results.items()
    }


def _assert_bit_identical(result, baseline):
    expected = _matrices(baseline)
    actual = _matrices(result)
    assert sorted(actual) == sorted(expected)
    for layer, matrix in expected.items():
        assert np.array_equal(actual[layer], matrix), (
            f"features diverged on {layer}"
        )


def test_checkpointed_run_then_full_restore(tmp_path, baseline):
    store = CheckpointStore(str(tmp_path))
    first = _make_vista().run(checkpoint_store=store)
    _assert_bit_identical(first, baseline)
    assert store.recompute_total > 0 and store.restore_total == 0
    assert first.metrics["checkpoint_bytes"] == store.checkpoint_bytes
    assert first.metrics["recomputation_saved_ratio"] == 0.0

    second_store = CheckpointStore(str(tmp_path))
    second = _make_vista().run(checkpoint_store=second_store)
    _assert_bit_identical(second, baseline)
    assert second_store.restore_total > 0
    assert second_store.recompute_total == 0
    assert second.metrics["recomputation_saved_ratio"] == 1.0


def test_worker_loss_mid_wave_resumes_from_checkpoints(tmp_path, baseline):
    """The acceptance scenario: a run killed mid-wave by injected
    WorkerLost (both workers die -> ClusterExhausted) resumes from the
    checkpoint store on the same plan, restores only checksum-valid
    partitions, recomputes the rest, and yields bit-identical
    features."""
    fault_plan = (
        FaultPlan()
        .worker_loss(worker=None, wave=5)
        .worker_loss(worker=None, wave=6)
    )
    store = CheckpointStore(str(tmp_path))
    vista = _make_vista()
    # Without a checkpoint store the same fault sequence is fatal:
    # ClusterExhausted is non-retryable for the degradation ladder.
    with pytest.raises(ClusterExhausted):
        _make_vista().run_resilient(fault_plan=(
            FaultPlan()
            .worker_loss(worker=None, wave=5)
            .worker_loss(worker=None, wave=6)
        ), seed=7)

    result = vista.run_resilient(
        fault_plan=fault_plan, seed=7, checkpoint_store=store,
    )
    _assert_bit_identical(result, baseline)
    resumes = [
        e for e in result.metrics["recovery_log"] if e["event"] == "resume"
    ]
    assert resumes, "the supervisor must choose resume over degrade"
    assert resumes[0]["restorable_partitions"] > 0
    assert store.restore_total > 0, "resume must restore checkpoints"
    assert store.recompute_total > 0, "lost partitions must be recomputed"
    assert result.metrics["restore_total"] == store.restore_total
    assert 0.0 < result.metrics["recomputation_saved_ratio"] < 1.0
    # Resume keeps the original plan: no degradation happened.
    assert result.metrics["recovered_plan"] == "staged/aj"
    assert not [
        e for e in result.metrics["recovery_log"] if e["event"] == "degrade"
    ]


def test_corrupted_checkpoint_recovered_by_recompute(tmp_path, baseline):
    """Injected checkpoint corruption: detected via SHA-256 mismatch on
    resume, recovered by recomputing the damaged partition — never
    silently ingested."""
    fault_plan = (
        FaultPlan()
        .checkpoint_corrupt(partition=0)
        .worker_loss(worker=None, wave=5)
        .worker_loss(worker=None, wave=6)
    )
    store = CheckpointStore(str(tmp_path))
    result = _make_vista().run_resilient(
        fault_plan=fault_plan, seed=7, checkpoint_store=store,
    )
    _assert_bit_identical(result, baseline)
    assert store.corrupt_total >= 1
    assert result.metrics["checkpoint_corrupt_total"] >= 1
    invalid = [
        e for e in result.metrics["recovery_log"]
        if e["event"] == "checkpoint_invalid"
    ]
    assert invalid and invalid[0]["kind"] == "corrupt"
    assert store.restore_total > 0


def test_resume_stalls_fall_back_to_degradation_ladder(tmp_path):
    """_should_resume: progress-gated. No store -> never; a bound
    store resumes only while the valid-partition count grows."""
    from repro.core.resilient import ResilientRunner

    runner = ResilientRunner(_make_vista())
    assert runner._should_resume() is False

    store = CheckpointStore(str(tmp_path)).bind_run("run-a")
    runner = ResilientRunner(_make_vista(), checkpoint_store=store)
    assert runner._should_resume() is False  # empty store: no progress
    store.put_partition("stage", _array_partition(0))
    assert runner._should_resume() is True   # grew: resume
    assert runner._should_resume() is False  # stalled: degrade
    store.put_partition("stage", _array_partition(1))
    assert runner._should_resume() is True   # grew again: resume again
