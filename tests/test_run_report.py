"""Run reports: waterlines, Section 4.1 crash attribution, and the
regression-gate compare — including the CLI exit codes CI relies on."""

import json

import pytest

from repro.cnn import build_model
from repro.core.config import VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import ALL_PLANS, EAGER, STAGED
from repro.data import foods_dataset
from repro.dataflow.context import ClusterContext
from repro.exceptions import (
    DLExecutionMemoryExceeded,
    DriverMemoryExceeded,
    ExecutionMemoryExceeded,
    StorageMemoryExceeded,
    UserMemoryExceeded,
    WorkloadCrash,
)
from repro.memory.model import GB, MemoryBudget
from repro.metrics import MetricsRegistry, find_series, series_peak
from repro.report import (
    attribute_crash,
    compare,
    has_regression,
    render_compare,
    render_crash_report,
    render_report,
    render_waterline,
    render_waterlines,
)


def _budget(user=1 * GB, core=1 * GB, storage=1 * GB, dl=1 * GB,
            driver=1 * GB, elastic=True):
    return MemoryBudget(
        system_bytes=32 * GB, os_reserved_bytes=0, user_bytes=user,
        core_bytes=core, storage_bytes=storage, dl_bytes=dl,
        driver_bytes=driver, storage_elastic=elastic,
    )


def _executor(budget, metrics, cpu=4, num_partitions=8, join="shuffle",
              num_records=24, model_mem_bytes=None):
    ctx = ClusterContext(budget, num_nodes=2, cores_per_node=4, cpu=cpu)
    model = build_model("alexnet", profile="mini")
    config = VistaConfig(
        cpu=cpu, num_partitions=num_partitions, mem_storage_bytes=0,
        mem_user_bytes=0, mem_dl_bytes=0, join=join,
        persistence="deserialized",
    )
    return FeatureTransferExecutor(
        ctx, model, foods_dataset(num_records=num_records),
        ["fc7", "fc8"], config, model_mem_bytes=model_mem_bytes,
        downstream_fn=lambda f, l: {}, metrics=metrics,
    )


def _crash_and_attribute(budget, exception, plan=STAGED, **kwargs):
    """Run a doomed workload with metrics on, return the attribution."""
    registry = MetricsRegistry()
    executor = _executor(budget, registry, **kwargs)
    with pytest.raises(exception):
        executor.run(plan)
    attribution = attribute_crash(registry)
    assert attribution is not None
    assert attribution["exception"] == exception.__name__
    return attribution, registry


# ----------------------------------------------------------------------
# crash attribution, one test per Section 4.1 scenario
# ----------------------------------------------------------------------
def test_attributes_scenario_1_dl_blowup():
    attribution, _ = _crash_and_attribute(
        _budget(dl=1000), DLExecutionMemoryExceeded,
        cpu=4, model_mem_bytes=500,
    )
    assert attribution["scenario"].startswith("(1)")
    assert attribution["region"] == "dl"
    assert attribution["peak_occupancy_bytes"] > attribution["budget_bytes"]


def test_attributes_scenario_2_user_memory():
    attribution, _ = _crash_and_attribute(
        _budget(user=10_000), UserMemoryExceeded, cpu=4,
    )
    assert attribution["scenario"].startswith("(2)")
    assert attribution["region"] == "user"
    assert attribution["peak_occupancy_bytes"] > attribution["budget_bytes"]


def test_attributes_scenario_3_core_memory():
    attribution, _ = _crash_and_attribute(
        _budget(core=5_000), ExecutionMemoryExceeded,
        cpu=1, num_partitions=1, num_records=48,
    )
    assert attribution["scenario"].startswith("(3)")
    assert attribution["region"] == "core"
    assert attribution["peak_occupancy_bytes"] > attribution["budget_bytes"]


def test_attributes_scenario_4_driver_collect():
    attribution, _ = _crash_and_attribute(
        _budget(driver=10_000), DriverMemoryExceeded, cpu=2,
    )
    assert attribution["scenario"].startswith("(4)")
    assert attribution["region"] == "driver"
    assert attribution["worker"] == "driver"
    assert attribution["peak_occupancy_bytes"] > attribution["budget_bytes"]


def test_attributes_ignite_style_storage_overflow():
    attribution, registry = _crash_and_attribute(
        _budget(storage=10_000, elastic=False), StorageMemoryExceeded,
        plan=EAGER, cpu=2, num_records=48,
    )
    assert "Storage" in attribution["scenario"]
    assert attribution["region"] == "storage"
    report = render_crash_report(registry)
    assert "StorageMemoryExceeded" in report


def test_crash_report_names_scenario_and_occupancy():
    _, registry = _crash_and_attribute(
        _budget(user=10_000), UserMemoryExceeded, cpu=4,
    )
    report = render_crash_report(registry)
    assert "(2) insufficient User Memory" in report
    assert "OVER budget" in report
    assert "mem_used_bytes" in report  # the offending waterline renders


def test_clean_run_attributes_nothing():
    registry = MetricsRegistry()
    _executor(_budget(), registry, cpu=2).run(STAGED)
    assert attribute_crash(registry) is None
    assert render_crash_report(registry) == "no crashes recorded"


# ----------------------------------------------------------------------
# waterline rendering
# ----------------------------------------------------------------------
def test_render_waterline_draws_budget_and_predicted():
    registry = MetricsRegistry()
    gauge = registry.gauge("mem_used_bytes", worker="w0", region="user")
    for value in (100, 400, 900, 300):
        gauge.set(value)
    chart = render_waterline(
        gauge.to_dict(), capacity=1200, predicted=950, ticks=4,
        width=20, height=6,
    )
    assert "#" in chart
    assert "<= budget/crash" in chart
    assert "<- predicted" in chart
    assert "peak=900B" in chart


def test_render_waterlines_skips_flat_series():
    registry = MetricsRegistry()
    registry.gauge("mem_used_bytes", worker="w0", region="user").set(0)
    assert render_waterlines(registry) == "(all occupancy series flat at zero)"


def test_render_report_end_to_end():
    registry = MetricsRegistry()
    _executor(_budget(), registry, cpu=2).run(STAGED)
    report = render_report(registry, width=40)
    # no optimizer ran here, so no predicted-vs-observed section; the
    # CLI test covers that path via ``repro run --metrics``
    assert "counters:" in report
    assert "tasks_total" in report
    assert "mem_used_bytes" in report
    assert "no crashes recorded" in report


# ----------------------------------------------------------------------
# acceptance: observed peaks respect Algorithm 1 budgets on success
# ----------------------------------------------------------------------
@pytest.mark.parametrize("plan_name", sorted(ALL_PLANS))
def test_observed_peaks_within_budget_across_plans(plan_name):
    """On every successful plan of the six-plan matrix, the observed
    STORAGE/USER/DL occupancy peaks stay within their Algorithm 1
    budgets — the waterlines never cross the crash line."""
    registry = MetricsRegistry()
    executor = _executor(_budget(), registry, cpu=2, num_records=24)
    try:
        result = executor.run(ALL_PLANS[plan_name])
    except WorkloadCrash:
        pytest.skip(f"{plan_name} does not fit the mini budget")
    for region in ("user", "dl"):
        budget = result.metrics["region_budget_bytes"][region]
        for series in find_series(registry, "mem_used_bytes",
                                  region=region):
            assert (series_peak(series) or 0) <= budget, (
                f"{plan_name}: {region} peak over budget"
            )
    storage_budget = result.metrics["region_budget_bytes"]["storage"]
    for series in find_series(registry, "storage_cached_bytes"):
        assert (series_peak(series) or 0) <= storage_budget


# ----------------------------------------------------------------------
# regression gates
# ----------------------------------------------------------------------
def _envelope(scale=1.0):
    registry = MetricsRegistry()
    registry.counter("tasks_total", worker="w0").inc(int(100 * scale))
    registry.counter("storage_spill_bytes_total", worker="w0").inc(
        int(1000 * scale)
    )
    return {
        "schema": "trace/v2",
        "bench": "run",
        "params": {"records": 48},
        "results": {
            "wall_seconds": 2.0 * scale,
            "speedup": 4.0 / scale,
            "storage_peak_bytes": 5000,  # capacity-ish but lower-is-better
        },
        "trace": None,
        "metrics": registry.export(),
    }


def test_compare_identical_has_no_regressions():
    rows = compare(_envelope(), _envelope(), gate=1.15)
    assert rows and not has_regression(rows)


def test_compare_flags_synthetic_slowdown():
    rows = compare(_envelope(), _envelope(scale=2.0), gate=1.15)
    assert has_regression(rows)
    regressed = {row["key"] for row in rows if row["regression"]}
    assert "results.wall_seconds" in regressed
    assert "results.speedup" in regressed  # halved, higher-is-better
    assert any(key.startswith("tasks_total{") for key in regressed)
    text = render_compare(rows, gate=1.15)
    assert "REGRESSION" in text


def test_compare_ignores_capacity_fields():
    old, new = _envelope(), _envelope()
    old["results"]["storage_capacity_bytes"] = 100
    new["results"]["storage_capacity_bytes"] = 100_000
    rows = compare(old, new, gate=1.15)
    assert not has_regression(rows)


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
def test_cli_report_requires_an_input(capsys):
    from repro.cli import main

    assert main(["report"]) == 2


def test_cli_compare_exit_codes(tmp_path, capsys):
    from repro.cli import main

    old = tmp_path / "old.json"
    same = tmp_path / "same.json"
    slow = tmp_path / "slow.json"
    old.write_text(json.dumps(_envelope(), default=str))
    same.write_text(json.dumps(_envelope(), default=str))
    slow.write_text(json.dumps(_envelope(scale=2.0), default=str))
    assert main(["report", "--compare", str(old), str(same)]) == 0
    assert main(["report", "--compare", str(old), str(slow)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out


def test_cli_run_writes_v2_envelope_and_report_renders_it(
    tmp_path, capsys
):
    from repro.cli import main

    export = tmp_path / "run.json"
    assert main([
        "run", "--model", "alexnet", "--layers", "2", "--records", "16",
        "--nodes", "2", "--metrics", "--metrics-json", str(export),
    ]) == 0
    envelope = json.loads(export.read_text())
    assert envelope["schema"] == "trace/v2"
    assert envelope["metrics"]["series"]
    capsys.readouterr()
    assert main(["report", "--metrics-json", str(export)]) == 0
    out = capsys.readouterr().out
    assert "predicted vs observed peak" in out
    # a run compared against itself passes any gate
    assert main([
        "report", "--compare", str(export), str(export),
    ]) == 0
