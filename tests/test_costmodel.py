"""Unit tests for the calibrated cost model: crash prediction and
runtime shapes matching the paper's narrative."""

import math

import pytest

from repro.cnn import get_model_stats
from repro.core.optimizer import optimize
from repro.core.plans import EAGER, LAZY, LAZY_REORDERED, STAGED
from repro.costmodel import (
    CRASH_DL,
    CRASH_DL_GPU,
    CRASH_STORAGE,
    CRASH_USER,
    cloudlab_cluster,
    detect_crash,
    estimate_premat_runtime,
    estimate_runtime,
    gpu_workstation,
    ignite_default_setup,
    per_layer_breakdown,
    spark_default_setup,
    vista_setup,
)
from repro.costmodel import params
from repro.costmodel.crashes import manual_setup


def _layers(model):
    stats = get_model_stats(model)
    counts = {"alexnet": 4, "vgg16": 3, "resnet50": 5}
    return stats, stats.top_feature_layers(counts[model])


CLUSTER = cloudlab_cluster()


class TestCrashPrediction:
    def test_vgg_lazy_5_and_7_crash_on_spark(self, foods_stats,
                                             amazon_stats):
        stats, layers = _layers("vgg16")
        for ds in (foods_stats, amazon_stats):
            for cpu in (5, 7):
                setup = spark_default_setup(cpu, ds.num_records)
                assert detect_crash(
                    setup, stats, layers, ds, LAZY.materialization, CLUSTER
                ) == CRASH_DL

    def test_vgg_lazy_1_completes(self, foods_stats):
        stats, layers = _layers("vgg16")
        setup = spark_default_setup(1, foods_stats.num_records)
        assert detect_crash(
            setup, stats, layers, foods_stats, LAZY.materialization, CLUSTER
        ) is None

    def test_alexnet_and_resnet_lazy_complete_on_spark(self, foods_stats,
                                                       amazon_stats):
        """Spark crashes only VGG16 (Section 5.1)."""
        for model in ("alexnet", "resnet50"):
            stats, layers = _layers(model)
            for ds in (foods_stats, amazon_stats):
                for cpu in (1, 5, 7):
                    setup = spark_default_setup(cpu, ds.num_records)
                    assert detect_crash(
                        setup, stats, layers, ds, LAZY.materialization,
                        CLUSTER,
                    ) is None, (model, cpu)

    def test_ignite_lazy_7_crashes_all_models_on_amazon(self,
                                                        amazon_stats):
        for model in ("alexnet", "vgg16", "resnet50"):
            stats, layers = _layers(model)
            crash = detect_crash(
                ignite_default_setup(7), stats, layers, amazon_stats,
                LAZY.materialization, CLUSTER,
            )
            assert crash is not None, model

    def test_ignite_lazy_7_resnet_crashes_on_foods(self, foods_stats):
        stats, layers = _layers("resnet50")
        assert detect_crash(
            ignite_default_setup(7), stats, layers, foods_stats,
            LAZY.materialization, CLUSTER,
        ) == CRASH_USER

    def test_ignite_lazy_7_alexnet_completes_on_foods(self, foods_stats):
        stats, layers = _layers("alexnet")
        assert detect_crash(
            ignite_default_setup(7), stats, layers, foods_stats,
            LAZY.materialization, CLUSTER,
        ) is None

    def test_eager_crashes_ignite_amazon_resnet(self, amazon_stats):
        stats, layers = _layers("resnet50")
        setup = manual_setup(stats, layers, amazon_stats, 5,
                             backend="ignite")
        assert detect_crash(
            setup, stats, layers, amazon_stats, EAGER.materialization,
            CLUSTER,
        ) == CRASH_STORAGE

    def test_eager_completes_ignite_amazon_alexnet(self, amazon_stats):
        stats, layers = _layers("alexnet")
        setup = manual_setup(stats, layers, amazon_stats, 5,
                             backend="ignite")
        assert detect_crash(
            setup, stats, layers, amazon_stats, EAGER.materialization,
            CLUSTER,
        ) is None

    @pytest.mark.parametrize("model", ["alexnet", "vgg16", "resnet50"])
    @pytest.mark.parametrize("backend", ["spark", "ignite"])
    def test_vista_never_crashes(self, model, backend, paper_resources,
                                 foods_stats, amazon_stats):
        """The headline reliability claim, on every Figure 6 cell."""
        stats, layers = _layers(model)
        for ds in (foods_stats, amazon_stats):
            config = optimize(stats, layers, ds, paper_resources)
            setup = vista_setup(config, backend=backend)
            assert detect_crash(
                setup, stats, layers, ds, STAGED.materialization, CLUSTER
            ) is None, (model, backend, ds.num_records)

    def test_gpu_vgg_crashes_at_5_threads(self, foods_stats):
        stats, layers = _layers("vgg16")
        setup = spark_default_setup(5, foods_stats.num_records)
        assert detect_crash(
            setup, stats, layers, foods_stats, LAZY.materialization,
            gpu_workstation(), use_gpu=True,
        ) == CRASH_DL_GPU

    def test_gpu_resnet_survives_7_threads(self, foods_stats):
        stats, layers = _layers("resnet50")
        setup = spark_default_setup(7, foods_stats.num_records)
        assert detect_crash(
            setup, stats, layers, foods_stats, LAZY.materialization,
            gpu_workstation(), use_gpu=True,
        ) is None


class TestRuntimeShapes:
    def _vista(self, model, ds, paper_resources, backend="spark"):
        stats, layers = _layers(model)
        config = optimize(stats, layers, ds, paper_resources)
        return estimate_runtime(
            stats, layers, ds, STAGED, vista_setup(config, backend=backend),
            CLUSTER,
        )

    def test_vista_beats_lazy1_by_paper_range(self, paper_resources,
                                              foods_stats, amazon_stats):
        """'Vista ... reduces runtimes by 58% to 92% compared to
        baselines' — check the reduction vs Lazy-1 lands in a sane
        band (we allow 50-95%)."""
        for model in ("alexnet", "vgg16", "resnet50"):
            stats, layers = _layers(model)
            for ds in (foods_stats, amazon_stats):
                lazy1 = estimate_runtime(
                    stats, layers, ds, LAZY,
                    spark_default_setup(1, ds.num_records), CLUSTER,
                )
                vista = self._vista(model, ds, paper_resources)
                reduction = 1 - vista.seconds / lazy1.seconds
                assert 0.5 < reduction < 0.95, (model, reduction)

    def test_eager_spills_hurt_on_amazon_resnet(self, paper_resources,
                                                amazon_stats):
        """Figure 6: 'Eager incurs significant overheads due to costly
        disk spills' on Spark/Amazon/ResNet50."""
        stats, layers = _layers("resnet50")
        setup = manual_setup(stats, layers, amazon_stats, 5)
        eager = estimate_runtime(
            stats, layers, amazon_stats, EAGER, setup, CLUSTER
        )
        vista = self._vista("resnet50", amazon_stats, paper_resources)
        assert eager.spilled_bytes > 0
        assert eager.seconds > 1.5 * vista.seconds

    def test_eager_comparable_when_data_fits(self, paper_resources,
                                             foods_stats):
        """'When Eager does not crash and the intermediate data fits in
        memory, its efficiency is comparable to Vista.'"""
        stats, layers = _layers("alexnet")
        setup = manual_setup(stats, layers, foods_stats, 5)
        eager = estimate_runtime(
            stats, layers, foods_stats, EAGER, setup, CLUSTER
        )
        vista = self._vista("alexnet", foods_stats, paper_resources)
        assert eager.seconds < 1.3 * vista.seconds

    def test_lazy_reordered_join_cost_lower_at_scale(self, amazon_stats):
        """Pulling the join below inference shrinks shuffle volume when
        features outweigh images (Section 4.2.1)."""
        stats, layers = _layers("resnet50")
        setup = spark_default_setup(5, amazon_stats.num_records)
        bj = estimate_runtime(
            stats, layers, amazon_stats, LAZY, setup, CLUSTER
        )
        aj = estimate_runtime(
            stats, layers, amazon_stats, LAZY_REORDERED, setup, CLUSTER
        )
        assert aj.breakdown["join"] < bj.breakdown["join"]

    def test_premat_helps_alexnet_but_not_resnet_base5(self, foods_stats):
        """Appendix B: pre-materializing helps when the base layer is
        cheap to store; ResNet's 5th-from-top layer is ~11.5 GB and may
        not pay off."""
        stats, layers = _layers("alexnet")
        setup = manual_setup(stats, layers, foods_stats, 5)
        pre, main = estimate_premat_runtime(
            stats, layers, foods_stats, LAZY, setup, CLUSTER
        )
        plain = estimate_runtime(
            stats, layers, foods_stats, LAZY, setup, CLUSTER
        )
        assert main.seconds < plain.seconds

    def test_table3_resnet_anchor(self, foods_stats):
        """Calibration anchor: ResNet50/Foods layer-5 inference + first
        LR iteration ~19 min on one node at cpu=4 (Table 3)."""
        stats, layers = _layers("resnet50")
        setup = manual_setup(stats, layers, foods_stats, 4)
        rows, read = per_layer_breakdown(
            stats, layers, foods_stats, setup, cloudlab_cluster(1)
        )
        minutes = rows["conv4_6"] / 60
        assert 13 < minutes < 25

    def test_read_time_sublinear_in_nodes(self, foods_stats):
        """Table 3: image reads speed up sub-linearly (small files)."""
        stats, layers = _layers("alexnet")
        setup = manual_setup(stats, layers, foods_stats, 4)
        t1 = estimate_runtime(
            stats, layers, foods_stats, STAGED, setup, cloudlab_cluster(1)
        ).breakdown["read"]
        t8 = estimate_runtime(
            stats, layers, foods_stats, STAGED, setup, cloudlab_cluster(8)
        ).breakdown["read"]
        assert 3 < t1 / t8 < 8  # sub-linear: less than 8x on 8 nodes

    def test_gpu_faster_than_cpu(self, foods_stats):
        stats, layers = _layers("resnet50")
        setup = manual_setup(stats, layers, foods_stats, 5)
        cpu_run = estimate_runtime(
            stats, layers, foods_stats, STAGED, setup, CLUSTER
        )
        gpu_run = estimate_runtime(
            stats, layers, foods_stats, STAGED, setup, gpu_workstation(),
            use_gpu=True,
        )
        assert gpu_run.breakdown["inference"] < cpu_run.breakdown["inference"]

    def test_crashed_report_has_infinite_seconds(self, foods_stats):
        stats, layers = _layers("vgg16")
        report = estimate_runtime(
            stats, layers, foods_stats, LAZY,
            spark_default_setup(7, foods_stats.num_records), CLUSTER,
        )
        assert report.crashed
        assert math.isinf(report.seconds)
        assert report.cell() == "X"

    def test_cpu_speedup_plateaus(self):
        """Figure 12(C): speedup vs cpu flattens around 4 cores."""
        s4 = params.cpu_speedup(4)
        s8 = params.cpu_speedup(8)
        assert s4 > 2.0
        assert s8 / s4 < 1.35

    def test_large_np_overhead_penalty(self, foods_stats):
        """Figure 11(B): np > 2000 triggers status-compression
        overhead."""
        stats, layers = _layers("alexnet")
        small = manual_setup(stats, layers, foods_stats, 4).with_(
            num_partitions=1000
        )
        large = small.with_(num_partitions=4000)
        t_small = estimate_runtime(
            stats, layers, foods_stats, STAGED, small, CLUSTER
        )
        t_large = estimate_runtime(
            stats, layers, foods_stats, STAGED, large, CLUSTER
        )
        assert t_large.breakdown["overhead"] > 4 * t_small.breakdown["overhead"]
