"""Columnar partition layout: round-trip properties, wire format,
exact sizing, and the ragged/TensorList batching path.

Covers the zero-copy contract of ``repro.dataflow.columnar``:
``column()`` returns stored buffers, row views alias them, and the
single-buffer wire format reconstructs bit-identical values for every
supported dtype — including object columns (ragged images, strings,
TensorLists) and empty partitions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.columnar import (
    MAGIC,
    ColumnarBlock,
    NotColumnar,
    columnar_enabled,
    is_columnar_buffer,
    pack_column,
    row_layout,
)
from repro.dataflow.partition import DESERIALIZED, SERIALIZED, Partition
from repro.tensor.tensorlist import TensorList


def _assert_rows_equal(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert set(got) == set(want)
        for name, value in want.items():
            if isinstance(value, TensorList):
                assert isinstance(got[name], TensorList)
                assert len(got[name]) == len(value)
                for a, b in zip(got[name], value):
                    np.testing.assert_array_equal(a, b)
            elif isinstance(value, np.ndarray):
                np.testing.assert_array_equal(got[name], value)
                assert got[name].dtype == value.dtype
            else:
                assert got[name] == value


# ----------------------------------------------------------------------
# round-trip properties over all supported dtypes
# ----------------------------------------------------------------------
_dtype_strategy = st.sampled_from(
    [np.float32, np.float64, np.int32, np.int64, np.uint8]
)


@st.composite
def _uniform_rows(draw):
    """Uniform-schema rows with a scalar int, a float, a bool, a
    string, and one tensor column of a drawn dtype/shape."""
    n = draw(st.integers(min_value=0, max_value=6))
    dtype = draw(_dtype_strategy)
    shape = draw(
        st.sampled_from([(3,), (2, 2), (4, 4, 3), (1,)])
    )
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    rows = []
    for i in range(n):
        tensor = (rng.normal(size=shape) * 10).astype(dtype)
        rows.append({
            "id": i,
            "score": float(i) / 2.0,
            "flag": bool(i % 2),
            "tag": f"tag-{i}",
            "x": tensor,
        })
    return rows


@settings(max_examples=40, deadline=None)
@given(rows=_uniform_rows())
def test_columnar_row_roundtrip_property(rows):
    block = ColumnarBlock.from_rows(rows)
    assert block.num_rows == len(rows)
    _assert_rows_equal(block.to_rows(), rows)
    # wire round-trip preserves values and dtypes bit-exactly
    restored = ColumnarBlock.from_buffer(block.to_buffer())
    _assert_rows_equal(restored.to_rows(), rows)


@settings(max_examples=25, deadline=None)
@given(rows=_uniform_rows(), seed=st.integers(0, 2**16))
def test_take_concat_roundtrip_property(rows, seed):
    block = ColumnarBlock.from_rows(rows)
    if block.num_rows == 0:
        assert ColumnarBlock.concat([block]).num_rows == 0
        return
    rng = np.random.default_rng(seed)
    indices = rng.permutation(block.num_rows)
    shuffled = block.take(indices)
    _assert_rows_equal(
        shuffled.to_rows(), [rows[i] for i in indices]
    )
    halves = [
        block.take(np.arange(0, block.num_rows, 2)),
        block.take(np.arange(1, block.num_rows, 2)),
    ]
    merged = ColumnarBlock.concat(halves)
    expected = [rows[i] for i in range(0, len(rows), 2)]
    expected += [rows[i] for i in range(1, len(rows), 2)]
    _assert_rows_equal(merged.to_rows(), expected)


def test_empty_partition_roundtrip():
    part = Partition.from_rows(0, [])
    assert len(part) == 0
    blob = part.serialized_blob()
    restored = Partition(0, blob=blob)
    assert len(restored) == 0
    assert restored.rows() == []


def test_ragged_images_stay_object_column_and_roundtrip():
    rng = np.random.default_rng(0)
    rows = [
        {"id": i,
         "image": rng.normal(size=(4 + i, 4, 3)).astype(np.float32)}
        for i in range(4)
    ]
    block = ColumnarBlock.from_rows(rows)
    assert not block.is_array("image")
    assert block.is_array("id")
    _assert_rows_equal(block.to_rows(), rows)
    restored = ColumnarBlock.from_buffer(block.to_buffer())
    _assert_rows_equal(restored.to_rows(), rows)


def test_tensorlist_column_roundtrips_through_partition():
    members = [np.ones((2, 2), dtype=np.float32),
               np.zeros((3,), dtype=np.float32)]
    rows = [{"id": i, "tensors": TensorList(list(members))}
            for i in range(3)]
    part = Partition.from_rows(0, rows)
    assert part.is_columnar
    restored = Partition(0, blob=part.serialized_blob())
    _assert_rows_equal(restored.rows(), rows)


def test_mixed_schema_rows_fall_back_to_legacy_layout():
    rows = [{"id": 0, "a": 1}, {"id": 1, "b": 2}]
    with pytest.raises(NotColumnar):
        ColumnarBlock.from_rows(rows)
    part = Partition.from_rows(0, rows)
    assert not part.is_columnar
    assert part.rows() == rows
    restored = Partition(0, blob=part.serialized_blob())
    assert restored.rows() == rows


# ----------------------------------------------------------------------
# zero-copy contract
# ----------------------------------------------------------------------
def test_column_and_row_views_alias_stored_buffers():
    rows = [
        {"id": i, "x": np.full((2, 2), float(i), dtype=np.float32)}
        for i in range(4)
    ]
    block = ColumnarBlock.from_rows(rows)
    column = block.column("x")
    assert block.column("x") is column  # the stored array itself
    views = block.to_rows()
    for i, row in enumerate(views):
        assert row["x"].base is column  # row views alias the buffer
        np.testing.assert_array_equal(row["x"], rows[i]["x"])


def test_from_buffer_arrays_are_zero_copy_views():
    rows = [{"id": i, "x": np.arange(6, dtype=np.float32)}
            for i in range(3)]
    data = ColumnarBlock.from_rows(rows).to_buffer()
    restored = ColumnarBlock.from_buffer(data)
    column = restored.column("x")
    assert column.base is not None  # frombuffer view, not a copy
    assert not column.flags.writeable  # read-only per the contract


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
def test_wire_format_layout_and_magic():
    rows = [{"id": i, "x": np.arange(4, dtype=np.float32)}
            for i in range(2)]
    data = ColumnarBlock.from_rows(rows).to_buffer()
    assert data[:4] == MAGIC
    assert is_columnar_buffer(data)
    header_len = int.from_bytes(data[4:8], "little")
    import json
    header = json.loads(data[8:8 + header_len])
    assert header["n"] == 2
    body_len = sum(col["len"] for col in header["cols"])
    assert len(data) == 8 + header_len + body_len


def test_wire_format_is_deterministic_for_array_blocks():
    def encode():
        rows = [{"id": i, "x": np.arange(8, dtype=np.float32) + i}
                for i in range(4)]
        return ColumnarBlock.from_rows(rows).to_buffer()

    assert encode() == encode()


def test_single_buffer_encode_smaller_than_n_pickles():
    import pickle

    rng = np.random.default_rng(1)
    rows = [
        {"id": i, "x": rng.normal(size=50).astype(np.float32)}
        for i in range(64)
    ]
    single = len(ColumnarBlock.from_rows(rows).to_buffer())
    n_pickles = sum(
        len(pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL))
        for row in rows
    )
    assert single < n_pickles


# ----------------------------------------------------------------------
# sizing + layout flag
# ----------------------------------------------------------------------
def test_nbytes_is_exact_buffer_sum():
    rows = [
        {"id": i, "x": np.zeros((3, 3), dtype=np.float64)}
        for i in range(5)
    ]
    block = ColumnarBlock.from_rows(rows)
    assert block.nbytes == 5 * 8 + 5 * 9 * 8


def test_serialized_vs_deserialized_partition_sizes():
    rng = np.random.default_rng(2)
    rows = [
        {"id": i, "x": rng.normal(size=200).astype(np.float32)}
        for i in range(32)
    ]
    part = Partition.from_rows(0, rows)
    assert part.memory_bytes(SERIALIZED) < part.memory_bytes(DESERIALIZED)


def test_row_layout_context_manager_restores_flag():
    assert columnar_enabled()
    with row_layout():
        assert not columnar_enabled()
        part = Partition.from_rows(0, [{"id": 1}])
        assert not part.is_columnar
    assert columnar_enabled()


def test_pack_column_classification():
    assert isinstance(pack_column([1, 2, 3]), np.ndarray)
    assert pack_column([1, 2, 3]).dtype == np.int64
    assert isinstance(pack_column(["a", "b"]), list)
    stacked = pack_column([np.zeros((2,), dtype=np.float32)] * 3)
    assert isinstance(stacked, np.ndarray) and stacked.shape == (3, 2)
    ragged = pack_column([np.zeros((2,)), np.zeros((3,))])
    assert isinstance(ragged, list)


# ----------------------------------------------------------------------
# ragged batching + fallback metric
# ----------------------------------------------------------------------
def _ragged_executor(dataset, metrics=None, num_partitions=2):
    from repro.cnn import build_model
    from repro.core.config import VistaConfig
    from repro.core.executor import FeatureTransferExecutor
    from repro.dataflow.context import local_context

    model = build_model("alexnet", profile="mini")
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2)
    return FeatureTransferExecutor(
        ctx, model, dataset, ["fc7"], VistaConfig(
            cpu=2, num_partitions=num_partitions,
            mem_storage_bytes=10**9, mem_user_bytes=10**9,
            mem_dl_bytes=10**9, join="shuffle",
            persistence="deserialized",
        ),
        downstream_fn=lambda f, l: {}, metrics=metrics,
    )


def test_tensorlist_dataset_batches_without_fallbacks():
    """TensorList members all share the image shape, so every member
    joins one shape group and the fallback counter stays at zero."""
    from repro.core.plans import LAZY
    from repro.data.synthetic import generate_dataset
    from repro.metrics import MetricsRegistry

    dataset = generate_dataset(
        "ragged", num_records=12, num_structured_features=16,
        images_per_record=2, seed=9,
    )
    registry = MetricsRegistry()
    result = _ragged_executor(dataset, metrics=registry).run(LAZY)
    assert result.metrics["batched_fallback_total"] == 0
    counters = registry.instruments("batched_fallback_total")
    assert sum(c.total for c in counters) == 0


def test_singleton_shape_group_counts_as_fallback():
    """A shape with nothing to batch against runs per-tensor and is
    counted in ``batched_fallback_total``."""
    from repro.data import foods_dataset

    executor = _ragged_executor(foods_dataset(num_records=4))
    model = executor.cnn
    rng = np.random.default_rng(3)
    shape = model.input_shape
    lone = rng.normal(size=shape).astype(np.float32)
    outputs = executor._infer_ragged([lone], None, "fc7")
    assert executor._batched_fallbacks == 1
    np.testing.assert_array_equal(
        outputs[0], model.partial_forward(lone, 0, "fc7")
    )


def test_infer_ragged_matches_per_tensor_path():
    """Shape-grouped batched inference is bit-identical to running
    each tensor through the per-tensor kernel, TensorLists included."""
    from repro.data import foods_dataset

    executor = _ragged_executor(foods_dataset(num_records=4))
    model = executor.cnn
    rng = np.random.default_rng(3)
    shape = model.input_shape
    values = [rng.normal(size=shape).astype(np.float32) for _ in range(5)]
    values.append(TensorList([values[0].copy(), values[1].copy()]))
    outputs = executor._infer_ragged(values, None, "fc7")
    for value, out in zip(values[:5], outputs[:5]):
        np.testing.assert_array_equal(
            out, model.partial_forward(value, 0, "fc7")
        )
    assert isinstance(outputs[5], TensorList)
    np.testing.assert_array_equal(outputs[5][0], outputs[0])
    np.testing.assert_array_equal(outputs[5][1], outputs[1])
