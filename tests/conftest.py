"""Shared fixtures: mini models, small datasets, and local contexts."""

import numpy as np
import pytest

from repro.cnn import build_model, get_model_stats
from repro.core.config import DatasetStats, Resources
from repro.data import amazon_dataset, foods_dataset
from repro.dataflow.context import local_context
from repro.memory.model import GB


@pytest.fixture(scope="session")
def alexnet_mini():
    return build_model("alexnet", profile="mini")


@pytest.fixture(scope="session")
def vgg16_mini():
    return build_model("vgg16", profile="mini")


@pytest.fixture(scope="session")
def resnet50_mini():
    return build_model("resnet50", profile="mini")


@pytest.fixture(scope="session", params=["alexnet", "vgg16", "resnet50"])
def any_mini_model(request):
    return build_model(request.param, profile="mini")


@pytest.fixture(scope="session")
def small_foods():
    return foods_dataset(num_records=60)


@pytest.fixture(scope="session")
def small_amazon():
    return amazon_dataset(num_records=60)


@pytest.fixture
def ctx():
    return local_context(num_nodes=2, cores_per_node=4)


@pytest.fixture(scope="session")
def paper_resources():
    """The paper's CloudLab worker spec."""
    return Resources(
        num_nodes=8, system_memory_bytes=32 * GB, cores_per_node=8
    )


@pytest.fixture(scope="session")
def foods_stats():
    return DatasetStats(
        num_records=20_000, num_structured_features=130,
        avg_image_bytes=14 * 1024,
    )


@pytest.fixture(scope="session")
def amazon_stats():
    return DatasetStats(
        num_records=200_000, num_structured_features=200,
        avg_image_bytes=15 * 1024,
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)


def random_image(shape=(32, 32, 3), seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)
