"""Property-based cross-plan equivalence (Section 5.2).

The paper's core correctness claim is that all logical plans are
*semantically interchangeable*: "All approaches ... yield identical
downstream models." This suite hammers that invariant over a matrix of
randomized-but-seeded mini workloads — model, layer count, dataset
size/seed, partition count, cpu, join operator, and persistence format
are all drawn from a per-seed ``random.Random`` — and asserts that
every logical plan produces

- **bit-identical** per-layer feature matrices (``np.array_equal``,
  not allclose: partitioning and staging change batch composition but
  every kernel is per-record deterministic, so there is no legitimate
  source of drift), and
- identical downstream training accuracy (the deterministic logistic
  regression sees identical inputs, so F1 must match exactly).

The seed list is fixed so CI runs an exact, reproducible matrix; add
seeds to widen coverage.
"""

import os
import random

import numpy as np
import pytest

from repro.cnn import build_model
from repro.core.config import VistaConfig
from repro.core.executor import FeatureTransferExecutor, default_downstream
from repro.core.plans import ALL_PLANS
from repro.data import foods_dataset
from repro.dataflow.context import local_context

#: Fixed seed matrix (>= 20 configs, per the tier-2 CI contract).
SEEDS = list(range(24))

# CI shards the matrix with PLAN_EQUIV_SHARD="<shard>/<of>" (e.g.
# "1/3" keeps seeds where seed % 3 == 1) so a failing seed names its
# shard; unset runs everything.
_SHARD = os.environ.get("PLAN_EQUIV_SHARD")
if _SHARD:
    _shard, _of = (int(part) for part in _SHARD.split("/"))
    SEEDS = [seed for seed in SEEDS if seed % _of == _shard]

#: Mini-profile zoo subset; vgg16 mini is covered by the integration
#: suite and adds the most runtime, so the property matrix rotates
#: between the cheapest and the deepest-structured model.
MODELS = ["alexnet", "resnet50"]

_MODEL_CACHE = {}


def _model(name):
    if name not in _MODEL_CACHE:
        _MODEL_CACHE[name] = build_model(name, profile="mini")
    return _MODEL_CACHE[name]


def workload_from_seed(seed):
    """Draw one mini workload configuration from a seeded RNG."""
    rng = random.Random(seed)
    model_name = rng.choice(MODELS)
    model = _model(model_name)
    num_layers = rng.choice([1, 2, 3])
    layers = model.feature_layers[-num_layers:]
    dataset = foods_dataset(
        num_records=rng.choice([10, 14, 18, 22]),
        seed=rng.randrange(1000),
    )
    config = VistaConfig(
        cpu=rng.choice([1, 2, 3]),
        num_partitions=rng.choice([2, 3, 4, 8]),
        mem_storage_bytes=10**9,
        mem_user_bytes=10**9,
        mem_dl_bytes=10**9,
        join=rng.choice(["shuffle", "broadcast"]),
        persistence=rng.choice(["deserialized", "serialized"]),
    )
    return model_name, model, layers, dataset, config


def _downstream(features, labels):
    outcome = default_downstream(features, labels)
    return {
        "matrix": features.copy(),
        "f1_train": outcome["f1_train"],
    }


def _run_plan(model, dataset, layers, config, plan, downstream_fn=None,
              checkpoint_store=None, exec_backend=None):
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=config.cpu,
                        exec_backend=exec_backend)
    executor = FeatureTransferExecutor(
        ctx, model, dataset, list(layers), config,
        downstream_fn=downstream_fn or _downstream,
        checkpoint_store=checkpoint_store,
    )
    try:
        return executor.run(plan)
    finally:
        ctx.exec_backend.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_all_plans_equivalent(seed):
    model_name, model, layers, dataset, config = workload_from_seed(seed)
    reference = _run_plan(model, dataset, layers, config,
                          ALL_PLANS["staged"])
    for name, plan in ALL_PLANS.items():
        if name == "staged":
            continue
        result = _run_plan(model, dataset, layers, config, plan)
        assert sorted(result.layer_results) == sorted(
            reference.layer_results
        ), f"seed {seed} ({model_name}): {name} trained different layers"
        for layer in reference.layer_results:
            ref = reference.layer_results[layer].downstream
            got = result.layer_results[layer].downstream
            assert np.array_equal(got["matrix"], ref["matrix"]), (
                f"seed {seed} ({model_name}, {config.join}/"
                f"{config.persistence}, np={config.num_partitions}): "
                f"plan {name} diverged bitwise on layer {layer}; "
                f"max abs diff "
                f"{np.max(np.abs(got['matrix'] - ref['matrix']))}"
            )
            assert got["f1_train"] == ref["f1_train"], (
                f"seed {seed}: plan {name} downstream accuracy diverged "
                f"on {layer}: {got['f1_train']} != {ref['f1_train']}"
            )


def _serialized_bytes_per_row(matrix):
    """The VCB1 wire cost of the feature matrix, per row — the same
    deterministic gauge ``bench_dataflow.py`` gates exactly; if the
    backends ever disagreed on feature bytes, dtype, or layout, this
    diverges even where values compare equal."""
    from repro.dataflow.columnar import ColumnarBlock

    block = ColumnarBlock.from_rows(
        [{"features": row} for row in matrix]
    )
    return len(block.to_buffer()) / block.num_rows


@pytest.mark.parametrize("seed", SEEDS)
def test_backends_bit_identical(seed):
    """Tentpole invariant: the process backend is purely a *physical*
    change. For every seeded workload, every logical plan's feature
    matrices, downstream F1, and serialized bytes per row are
    byte-identical between the in-process serial engine and the
    forked-OS-process backend (results shipped through shared
    memory)."""
    model_name, model, layers, dataset, config = workload_from_seed(seed)
    for name, plan in ALL_PLANS.items():
        serial = _run_plan(model, dataset, layers, config, plan,
                           exec_backend="serial")
        process = _run_plan(model, dataset, layers, config, plan,
                            exec_backend="process")
        assert sorted(process.layer_results) == sorted(
            serial.layer_results
        ), f"seed {seed} ({model_name}): {name} trained different layers"
        for layer in serial.layer_results:
            ref = serial.layer_results[layer].downstream
            got = process.layer_results[layer].downstream
            assert np.array_equal(got["matrix"], ref["matrix"]), (
                f"seed {seed} ({model_name}, {config.join}/"
                f"{config.persistence}, np={config.num_partitions}, "
                f"cpu={config.cpu}): plan {name} diverged bitwise "
                f"between backends on layer {layer}"
            )
            assert got["matrix"].dtype == ref["matrix"].dtype
            assert got["f1_train"] == ref["f1_train"], (
                f"seed {seed}: plan {name} downstream accuracy diverged "
                f"between backends on {layer}"
            )
            assert (
                _serialized_bytes_per_row(got["matrix"])
                == _serialized_bytes_per_row(ref["matrix"])
            ), (
                f"seed {seed}: plan {name} wire-format bytes per row "
                f"diverged between backends on {layer}"
            )


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_columnar_layout_is_bit_identical_to_row_layout(seed):
    """The columnar partition layout is purely a physical change: every
    logical plan's feature matrices are bit-identical to the same plan
    run on the legacy row-list layout."""
    from repro.dataflow.columnar import columnar_enabled, row_layout

    assert columnar_enabled()
    _, model, layers, dataset, config = workload_from_seed(seed)
    for name, plan in ALL_PLANS.items():
        columnar = _run_plan(model, dataset, layers, config, plan)
        with row_layout():
            legacy = _run_plan(model, dataset, layers, config, plan)
        for layer in columnar.layer_results:
            assert np.array_equal(
                columnar.layer_results[layer].downstream["matrix"],
                legacy.layer_results[layer].downstream["matrix"],
            ), (
                f"seed {seed}: plan {name} diverged between columnar "
                f"and row layouts on layer {layer}"
            )


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_plans_equivalent_under_tracing(seed):
    """Tracing must be purely observational: a traced run's features
    are bit-identical to the untraced run's."""
    from repro.trace import Tracer

    _, model, layers, dataset, config = workload_from_seed(seed)
    plain = _run_plan(model, dataset, layers, config, ALL_PLANS["staged"])

    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=config.cpu)
    executor = FeatureTransferExecutor(
        ctx, model, dataset, list(layers), config,
        downstream_fn=_downstream, tracer=Tracer(),
    )
    traced = executor.run(ALL_PLANS["staged"])
    assert traced.trace is not None
    for layer in plain.layer_results:
        assert np.array_equal(
            traced.layer_results[layer].downstream["matrix"],
            plain.layer_results[layer].downstream["matrix"],
        ), f"seed {seed}: tracing perturbed features on {layer}"


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_resume_from_checkpoints_is_bit_identical(seed, tmp_path):
    """Satellite: the cross-plan invariant extends to recovery — for
    every logical plan, a run that crashes after its materialization
    stages and is resumed from the checkpoint store produces feature
    matrices bit-identical to an uninterrupted run."""
    from repro.exceptions import WorkloadCrash
    from repro.recovery import CheckpointStore

    _, model, layers, dataset, config = workload_from_seed(seed)
    for name, plan in ALL_PLANS.items():
        plain = _run_plan(model, dataset, layers, config, plan)

        calls = {"n": 0}

        def crashing_downstream(features, labels):
            # The crash lands after the checkpointed materialization
            # stages committed, which is the deterministic analogue of
            # losing the cluster at the last wave.
            if calls["n"] == 0:
                calls["n"] += 1
                raise WorkloadCrash("injected crash before downstream")
            return _downstream(features, labels)

        root = str(tmp_path / f"ckpt-{name.replace('/', '-')}")
        store = CheckpointStore(root)
        with pytest.raises(WorkloadCrash):
            _run_plan(model, dataset, layers, config, plan,
                      downstream_fn=crashing_downstream,
                      checkpoint_store=store)
        assert store.checkpoint_partitions_total > 0, (
            f"seed {seed}: plan {name} checkpointed nothing before the "
            "crash"
        )

        resumed_store = CheckpointStore(root)
        resumed = _run_plan(model, dataset, layers, config, plan,
                            checkpoint_store=resumed_store)
        assert resumed_store.restore_total > 0, (
            f"seed {seed}: plan {name} resumed without restoring any "
            "checkpoint"
        )
        for layer in plain.layer_results:
            ref = plain.layer_results[layer].downstream
            got = resumed.layer_results[layer].downstream
            assert np.array_equal(got["matrix"], ref["matrix"]), (
                f"seed {seed}: plan {name} resume diverged bitwise on "
                f"layer {layer}"
            )
            assert got["f1_train"] == ref["f1_train"]
