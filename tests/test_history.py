"""The run-history warehouse: runsum/v1 summarization, the
content-addressed :class:`HistoryStore`, span-aligned profile diffs,
and robust-z drift timelines.

The contract under test is the CI ``history`` job's: any obs/v1 ledger
or trace/v2 envelope — including a torn one a SIGKILLed driver left
behind — summarizes into one ``runsum/v1`` record and joins the
timeline; ingest is idempotent by construction (run ids are content
hashes); twin runs diff with zero regressions while an injected
straggler is flagged both by the span-aligned diff (deterministic
sim-second growth) and by the ``trend --gate`` change-point detector.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.faults.clock import SimulatedClock
from repro.metrics import MetricsRegistry
from repro.observe import (
    HistoryRule,
    HistoryStore,
    RUNSUM_SCHEMA,
    RunLedger,
    diff_runs,
    environment_meta,
    evaluate_trend,
    has_regressions,
    load_history_rules,
    load_rules,
    load_ruleset,
    read_ledger,
    run_fingerprint,
    spans_from_events,
    spans_from_trace,
    summarize_envelope,
    summarize_ledger,
    summarize_path,
    trend_has_breach,
)
from repro.observe.history import (
    resolve_trend_metric,
    robust_scale,
    trend_series,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_RULES = os.path.join(REPO_ROOT, "slo", "default.yaml")


# ---------------------------------------------------------------------
# synthetic ledgers with controlled wall/sim offsets
# ---------------------------------------------------------------------
def _event(kind, seq, wall_s, sim_s=0.0, **fields):
    return {"schema": "obs/v1", "seq": seq, "wall_s": wall_s,
            "sim_time_s": sim_s, "kind": kind, **fields}


def _write_ledger(path, straggle_s=0.0, extra=(), run_end="ok",
                  meta=None):
    """One deterministic synthetic run: workload with two stage
    children, explicit wall/sim offsets (``emit`` honors field
    overrides), optional straggler sim seconds on the join stage."""
    clock = SimulatedClock()
    ledger = RunLedger(path, clock=clock, fsync_barriers=False)
    ledger.emit("run_meta", fingerprint="feedfacefeedface",
                **(meta or {"model": "alexnet", "records": 48}))
    ledger.emit("optimizer_decision", plan="staged/aj", cpu=7,
                join="broadcast")
    ledger.emit("span_start", name="workload", attrs={}, wall_s=0.0)
    ledger.emit("span_start", name="read", attrs={}, wall_s=0.0)
    ledger.emit("span_end", name="read", status="ok", span_s=0.010,
                wall_s=0.010)
    ledger.emit("span_start", name="join", attrs={}, wall_s=0.010)
    if straggle_s:
        clock.advance(straggle_s)
        ledger.emit("recovery", event="straggler", partition=1,
                    delay_s=straggle_s)
    ledger.emit("span_end", name="join", status="ok", span_s=0.020,
                wall_s=0.030)
    for emit_args in extra:
        ledger.emit(*emit_args[:1], **emit_args[1])
    ledger.emit("span_end", name="workload", status="ok", span_s=0.040,
                wall_s=0.040)
    if run_end:
        ledger.emit("run_end", status=run_end, wall_s=0.041)
    ledger.close()
    return path


def _summarize_file(path, slo_rules=None):
    events, problems = read_ledger(path)
    return summarize_ledger(events, problems, source=path,
                            slo_rules=slo_rules)


# ---------------------------------------------------------------------
# span reconstruction from the flat event stream
# ---------------------------------------------------------------------
def test_spans_from_events_nesting_paths_and_self_time():
    events = [
        _event("span_start", 1, 0.0, name="a"),
        _event("span_start", 2, 1.0, name="b"),
        _event("span_end", 3, 3.0, name="b", status="ok", span_s=2.0),
        _event("span_start", 4, 3.0, name="b"),
        _event("span_end", 5, 4.0, name="b", status="ok", span_s=1.0),
        _event("span_end", 6, 5.0, name="a", status="ok", span_s=5.0),
    ]
    spans = spans_from_events(events)
    assert [s["path"] for s in spans] == ["a", "a/b", "a/b@2"]
    assert [s["depth"] for s in spans] == [0, 1, 1]
    by_path = {s["path"]: s for s in spans}
    assert by_path["a"]["wall_s"] == pytest.approx(5.0)
    # self time = own wall minus direct children (2.0 + 1.0).
    assert by_path["a"]["self_s"] == pytest.approx(2.0)
    assert by_path["a/b@2"]["wall_s"] == pytest.approx(1.0)
    assert all(s["status"] == "ok" for s in spans)


def test_spans_from_events_unclosed_span_closes_torn():
    events = [
        _event("span_start", 1, 0.0, name="workload"),
        _event("span_start", 2, 1.0, name="join"),
        _event("trace_point", 3, 4.0, label="last sign of life"),
    ]
    spans = spans_from_events(events)
    by_path = {s["path"]: s for s in spans}
    assert by_path["workload/join"]["status"] == "torn"
    assert by_path["workload/join"]["wall_s"] == pytest.approx(3.0)
    assert by_path["workload"]["status"] == "torn"
    assert by_path["workload"]["wall_s"] == pytest.approx(4.0)


def test_spans_from_events_mismatched_end_pops_inner_as_torn():
    events = [
        _event("span_start", 1, 0.0, name="a"),
        _event("span_start", 2, 1.0, name="b"),
        _event("span_end", 3, 2.0, name="a", status="ok", span_s=2.0),
    ]
    spans = spans_from_events(events)
    by_path = {s["path"]: s for s in spans}
    assert by_path["a/b"]["status"] == "torn"
    assert by_path["a"]["status"] == "ok"
    # An end with no matching open frame is ignored, not crashed on.
    assert spans_from_events(
        [_event("span_end", 1, 1.0, name="ghost", status="ok")]
    ) == []


def test_spans_from_trace_matches_ledger_paths(tmp_path):
    tree = {
        "name": "bench", "wall_s": 5.0, "status": "ok",
        "children": [
            {"name": "workload", "wall_s": 4.0, "status": "ok",
             "children": [
                 {"name": "read", "wall_s": 1.0, "status": "ok"},
                 {"name": "read", "wall_s": 0.5, "status": "ok"},
             ]},
        ],
    }
    spans = spans_from_trace(tree)
    # Root skipped, repeated siblings disambiguated — same path grammar
    # as the ledger reconstruction, so diff alignment works cross-kind.
    assert [s["path"] for s in spans] == [
        "workload", "workload/read", "workload/read@2",
    ]
    assert spans[0]["self_s"] == pytest.approx(2.5)


# ---------------------------------------------------------------------
# summarization: ledgers, torn ledgers, envelopes
# ---------------------------------------------------------------------
def test_summarize_ledger_full_record(tmp_path):
    path = _write_ledger(
        os.path.join(str(tmp_path), "a.jsonl"),
        extra=[
            ("metric", {"metric": "mem_used_bytes",
                        "labels": {"worker": "w0", "region": "cache"},
                        "value": 100.0}),
            ("metric", {"metric": "mem_used_bytes",
                        "labels": {"worker": "w0", "region": "cache"},
                        "value": 900.0}),
            ("metric", {"metric": "mem_capacity_bytes",
                        "labels": {"worker": "w0", "region": "cache"},
                        "value": 500.0}),
        ],
    )
    record = _summarize_file(path)
    assert record["schema"] == RUNSUM_SCHEMA
    assert record["kind"] == "ledger"
    assert record["status"] == "ok"
    assert record["fingerprint"] == "feedfacefeedface"
    assert record["meta"]["model"] == "alexnet"
    assert record["knobs"]["join"] == "broadcast"
    # Stage keys: depth-0 spans plus workload children, prefix-stripped.
    assert set(record["stages"]) == {"workload", "read", "join"}
    assert record["stages"]["join"]["wall_s"] == pytest.approx(0.020)
    # Memory block: peak vs budget, over-budget flagged.
    region = record["memory"]["w0/cache"]
    assert region["peak_bytes"] == pytest.approx(900.0)
    assert region["budget_bytes"] == pytest.approx(500.0)
    assert region["over_budget"] is True
    peaks = record["metrics"]
    assert peaks["mem_used_bytes{region=cache,worker=w0}"] == 900.0
    assert record["recovery"] == {"total": 0}
    assert record["parse_problems"] == []


def test_summarize_ledger_without_run_end_is_torn_not_rejected(tmp_path):
    path = _write_ledger(os.path.join(str(tmp_path), "t.jsonl"),
                         run_end=None)
    record = _summarize_file(path)
    assert record["status"] == "torn"
    assert record["stages"]  # the spans to the tear still summarize


def test_summarize_ledger_counts_recovery_events(tmp_path):
    path = _write_ledger(os.path.join(str(tmp_path), "s.jsonl"),
                         straggle_s=12.5)
    record = _summarize_file(path)
    assert record["recovery"] == {"straggler": 1, "total": 1}
    assert record["sim_s"] == pytest.approx(12.5)
    assert record["stages"]["join"]["sim_s"] == pytest.approx(12.5)


def test_summarize_ledger_evaluates_slo_rules(tmp_path):
    path = _write_ledger(os.path.join(str(tmp_path), "a.jsonl"))
    record = _summarize_file(path, slo_rules=load_rules(DEFAULT_RULES))
    slo = record["slo"]
    # Ledger-scoped rules evaluate against the event stream; kernel/
    # bench rules skip (no results block). Nothing breaches.
    assert slo["breach"] == 0 and slo["pass"] >= 3
    assert slo["failing"] == []
    assert _summarize_file(path)["slo"] is None


def test_summarize_envelope(tmp_path):
    payload = {
        "schema": "trace/v2",
        "bench": "mini",
        "params": {"model": "alexnet", "records": 48},
        "results": {"speedup": 2.0},
        "trace": {
            "name": "root", "wall_s": 5.0, "status": "ok",
            "children": [{
                "name": "workload", "wall_s": 4.0, "status": "ok",
                "attrs": {"plan": "staged/aj", "cpu": 7,
                          "join": "broadcast", "color": "ignored"},
                "children": [
                    {"name": "read", "wall_s": 1.0, "status": "ok"},
                ],
            }],
        },
        "metrics": {
            "schema": "metrics/v1",
            "series": [
                {"name": "mem_used_bytes",
                 "labels": {"worker": "w0", "region": "cache"},
                 "kind": "gauge", "peak": 700.0,
                 "samples": [[1, 0.0, 700.0]]},
            ],
        },
    }
    path = os.path.join(str(tmp_path), "env.json")
    with open(path, "w") as handle:
        json.dump(payload, handle)
    record, raw = summarize_path(path)
    assert record["kind"] == "envelope"
    assert record["knobs"] == {"plan": "staged/aj", "cpu": 7,
                               "join": "broadcast"}
    assert set(record["stages"]) == {"workload", "read"}
    assert record["memory"]["w0/cache"]["peak_bytes"] == 700.0
    assert record["results"] == {"speedup": 2.0}
    assert raw  # bytes come back for content addressing


def test_sigkilled_driver_ledger_summarizes_as_torn(tmp_path):
    """The satellite edge case end to end: SIGKILL a real driver
    mid-run and the torn ledger it leaves still ingests into the
    warehouse with status ``"torn"`` — never rejected."""
    path = os.path.join(str(tmp_path), "killed.ledger.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run", "--records", "96",
         "--nodes", "2", "--model", "alexnet", "--layers", "4",
         "--backend", "process", "--ledger", path],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            try:
                with open(path, "rb") as fh:
                    if b'"kind":"wave_start"' in fh.read():
                        break
            except FileNotFoundError:
                pass
            assert proc.poll() is None, "run finished before the kill"
            time.sleep(0.01)
        else:
            pytest.fail("never saw a wave_start event")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait()
    store = HistoryStore(os.path.join(str(tmp_path), "store"))
    record, created = store.ingest(path)
    assert created
    assert record["status"] == "torn"
    assert record["events"] > 0
    # The enriched run_meta made it in before the kill (barrier fsync).
    assert record["meta"]["env"]["python"]
    assert record["fingerprint"]
    # And the torn run joins list/diff/trend like any other.
    assert store.run_ids() == [record["run_id"]]


# ---------------------------------------------------------------------
# the store: idempotent ingest, torn tails, self-healing index
# ---------------------------------------------------------------------
def test_ingest_is_idempotent_by_content(tmp_path):
    path = _write_ledger(os.path.join(str(tmp_path), "a.jsonl"))
    store = HistoryStore(os.path.join(str(tmp_path), "store"))
    record, created = store.ingest(path)
    again, created_again = store.ingest(path)
    assert created and not created_again
    assert again["run_id"] == record["run_id"]
    assert len(store) == 1
    # One index line, not two.
    with open(store.index_path) as handle:
        assert len(handle.read().strip().splitlines()) == 1


def test_ingest_torn_tail_ledger_file(tmp_path):
    path = _write_ledger(os.path.join(str(tmp_path), "a.jsonl"))
    with open(path, "ab") as handle:
        handle.write(b'{"schema":"obs/v1","seq":99,"wal')  # torn write
    store = HistoryStore(os.path.join(str(tmp_path), "store"))
    record, created = store.ingest(path)
    assert created
    assert record["status"] == "ok"  # run_end landed before the tear
    assert len(record["parse_problems"]) == 1
    assert "torn tail" in record["parse_problems"][0]


def test_index_self_heals_orphan_records(tmp_path):
    a = _write_ledger(os.path.join(str(tmp_path), "a.jsonl"))
    b = _write_ledger(os.path.join(str(tmp_path), "b.jsonl"),
                      straggle_s=1.0)
    store = HistoryStore(os.path.join(str(tmp_path), "store"))
    id_a = store.ingest(a)[0]["run_id"]
    id_b = store.ingest(b)[0]["run_id"]
    # A crash between record write and index append leaves an orphan:
    # simulate the worst case by deleting the whole index.
    os.remove(store.index_path)
    assert store.run_ids() == [id_a, id_b]  # ingested_seq order
    # A torn index tail (partial last line, no newline) is tolerated.
    store.ingest(a)  # rewrite the index
    with open(store.index_path, "ab") as handle:
        handle.write(b'{"run_id":"deadbeef')
    assert id_a in store.run_ids() and id_b in store.run_ids()


def test_resolve_run_references(tmp_path):
    a = _write_ledger(os.path.join(str(tmp_path), "a.jsonl"))
    b = _write_ledger(os.path.join(str(tmp_path), "b.jsonl"),
                      straggle_s=1.0)
    store = HistoryStore(os.path.join(str(tmp_path), "store"))
    id_a = store.ingest(a)[0]["run_id"]
    id_b = store.ingest(b)[0]["run_id"]
    assert store.resolve("@0") == id_a
    assert store.resolve("@-1") == id_b
    assert store.resolve(id_a[:8]) == id_a
    with pytest.raises(KeyError):
        store.resolve("zzzzzzzz")
    with pytest.raises(KeyError):
        store.resolve("@7")
    shared = os.path.commonprefix([id_a, id_b])
    if shared:
        with pytest.raises(ValueError):
            store.resolve(shared)
    empty = HistoryStore(os.path.join(str(tmp_path), "empty"))
    with pytest.raises(KeyError):
        empty.resolve("@0")


# ---------------------------------------------------------------------
# environment fingerprint
# ---------------------------------------------------------------------
def test_environment_meta_shape():
    env = environment_meta()
    assert env["python"] and env["machine"]
    assert env["cpu_count"] >= 1
    assert env["repo_dirty"] in (True, False, None)
    assert env["schemas"]["ledger"] == "obs/v1"
    assert env["schemas"]["summary"] == RUNSUM_SCHEMA


def test_run_fingerprint_is_order_insensitive():
    meta = {"model": "alexnet", "records": 48,
            "env": {"python": "3.11.7", "cpu_count": 8}}
    flipped = {"env": {"cpu_count": 8, "python": "3.11.7"},
               "records": 48, "model": "alexnet"}
    assert run_fingerprint(meta) == run_fingerprint(flipped)
    assert len(run_fingerprint(meta)) == 16
    assert run_fingerprint(meta) != run_fingerprint(
        {**meta, "records": 96}
    )


def test_cli_run_emits_enriched_run_meta(tmp_path, capsys):
    path = os.path.join(str(tmp_path), "run.jsonl")
    assert main(["run", "--model", "alexnet", "--records", "24",
                 "--nodes", "2", "--ledger", path]) == 0
    capsys.readouterr()
    events, _ = read_ledger(path)
    meta = next(e for e in events if e["kind"] == "run_meta")
    assert meta["fingerprint"]
    assert meta["resumed"] is False
    assert meta["env"]["python"] == environment_meta()["python"]
    assert meta["env"]["schemas"]["summary"] == RUNSUM_SCHEMA
    assert meta["exec_backend"] == "serial"


# ---------------------------------------------------------------------
# span-aligned diffs
# ---------------------------------------------------------------------
def test_twin_runs_diff_with_zero_regressions(tmp_path):
    a = _write_ledger(os.path.join(str(tmp_path), "a.jsonl"))
    b = _write_ledger(os.path.join(str(tmp_path), "b.jsonl"))
    diff = diff_runs(_summarize_file(a), _summarize_file(b))
    assert diff["matched"] == 3
    assert diff["new"] == diff["vanished"] == 0
    assert diff["regressions"] == []
    assert not has_regressions(diff)
    assert diff["fingerprint_match"] is True
    assert diff["knob_changes"] == {}


def test_straggler_diff_flags_sim_and_recovery_regressions(tmp_path):
    a = _write_ledger(os.path.join(str(tmp_path), "a.jsonl"))
    b = _write_ledger(os.path.join(str(tmp_path), "b.jsonl"),
                      straggle_s=12.5)
    diff = diff_runs(_summarize_file(a), _summarize_file(b))
    assert has_regressions(diff)
    kinds = {(r["kind"], r["path"]) for r in diff["regressions"]}
    # Deterministic tier: any sim growth regresses, at any magnitude —
    # the straggler's 12.5 sim seconds land on join and its ancestors.
    assert ("span", "workload/join") in kinds
    assert ("span", "workload") in kinds
    assert ("recovery", "straggler") in kinds
    assert diff["recovery_deltas"]["straggler"] == {"base": 0,
                                                    "target": 1}
    # The reverse direction (straggler -> clean) is an improvement.
    reverse = diff_runs(_summarize_file(b), _summarize_file(a))
    assert not any(r["kind"] == "span" for r in reverse["regressions"])


def test_diff_reports_new_vanished_spans_and_knob_changes():
    base = {
        "run_id": "aaa", "fingerprint": "f1", "status": "ok",
        "knobs": {"join": "broadcast"},
        "spans": [{"path": "workload", "name": "workload", "depth": 0,
                   "start_seq": 1, "wall_s": 1.0, "self_s": 1.0,
                   "sim_s": 0.0, "status": "ok"},
                  {"path": "workload/old", "name": "old", "depth": 1,
                   "start_seq": 2, "wall_s": 0.5, "self_s": 0.5,
                   "sim_s": 0.0, "status": "ok"}],
    }
    target = {
        "run_id": "bbb", "fingerprint": "f2", "status": "ok",
        "knobs": {"join": "shuffle"},
        "meta": {"records": 96},
        "spans": [{"path": "workload", "name": "workload", "depth": 0,
                   "start_seq": 1, "wall_s": 1.0, "self_s": 1.0,
                   "sim_s": 0.0, "status": "ok"},
                  {"path": "workload/new", "name": "new", "depth": 1,
                   "start_seq": 2, "wall_s": 0.5, "self_s": 0.5,
                   "sim_s": 0.0, "status": "ok"}],
    }
    diff = diff_runs(base, target)
    assert diff["matched"] == 1 and diff["new"] == 1
    assert diff["vanished"] == 1
    assert diff["fingerprint_match"] is False
    assert diff["knob_changes"]["join"] == {"base": "broadcast",
                                            "target": "shuffle"}
    # Structural changes inform but do not regress by themselves.
    assert diff["regressions"] == []


def test_diff_wall_gate_needs_ratio_and_absolute_floor():
    def record(wall):
        return {"spans": [{"path": "w", "name": "w", "depth": 0,
                           "start_seq": 1, "wall_s": wall,
                           "self_s": wall, "sim_s": 0.0,
                           "status": "ok"}]}

    # 3x growth but only +0.2s: under the floor, twin-CI safe.
    assert not has_regressions(diff_runs(record(0.1), record(0.3)))
    # +2s but only 1.4x: under the ratio.
    assert not has_regressions(diff_runs(record(5.0), record(7.0)))
    # Both gates tripped: regression.
    blown = diff_runs(record(1.0), record(3.1))
    assert has_regressions(blown)
    assert "wall" in blown["regressions"][0]["reasons"][0]


def test_diff_flags_status_downgrade_and_new_over_budget():
    base = {"spans": [{"path": "w", "name": "w", "depth": 0,
                       "start_seq": 1, "wall_s": 1.0, "self_s": 1.0,
                       "sim_s": 0.0, "status": "ok"}],
            "memory": {"w0/cache": {"peak_bytes": 100.0,
                                    "budget_bytes": 500.0,
                                    "over_budget": False}}}
    target = {"spans": [{"path": "w", "name": "w", "depth": 0,
                         "start_seq": 1, "wall_s": 1.0, "self_s": 1.0,
                         "sim_s": 0.0, "status": "error:boom"}],
              "memory": {"w0/cache": {"peak_bytes": 600.0,
                                      "budget_bytes": 500.0,
                                      "over_budget": True}}}
    diff = diff_runs(base, target)
    kinds = {r["kind"] for r in diff["regressions"]}
    assert kinds == {"span", "memory"}


# ---------------------------------------------------------------------
# trend rules and change-point detection
# ---------------------------------------------------------------------
def test_resolve_trend_metric_scalar_glob_and_absent(tmp_path):
    path = _write_ledger(os.path.join(str(tmp_path), "a.jsonl"),
                         straggle_s=2.0)
    record = _summarize_file(path)
    assert resolve_trend_metric(record, "wall_s") == record["wall_s"]
    # Mid-path glob fans out to one element per matched stage.
    sims = resolve_trend_metric(record, "stages.*.sim_s")
    assert set(sims) == {"workload", "read", "join"}
    assert sims["join"] == pytest.approx(2.0)
    assert resolve_trend_metric(record, "no.such.path") is None
    assert resolve_trend_metric(record, "recovery.total") == 1


def test_robust_scale_floors():
    # Constant series: MAD is zero, the 5%-of-median floor holds.
    assert robust_scale([10.0, 10.0, 10.0]) == pytest.approx(0.5)
    # All-zero series: the epsilon keeps z finite.
    assert robust_scale([0.0, 0.0, 0.0]) == pytest.approx(1e-9)
    # Genuine spread: the MAD term dominates.
    assert robust_scale([1.0, 2.0, 3.0, 4.0, 100.0]) == pytest.approx(
        1.4826
    )


def test_trend_flags_straggler_and_passes_twins(tmp_path):
    paths = [
        _write_ledger(os.path.join(str(tmp_path), f"r{i}.jsonl"),
                      straggle_s=0.0)
        for i in range(3)
    ]
    paths.append(_write_ledger(os.path.join(str(tmp_path), "s.jsonl"),
                               straggle_s=12.5))
    records = [_summarize_file(p) for p in paths]
    rules = [HistoryRule(name="stage-sim-drift",
                         metric="stages.*.sim_s"),
             HistoryRule(name="recovery-burst",
                         metric="recovery.total")]
    clean = evaluate_trend(records[:3], rules)
    assert clean["flags"] == []
    assert not trend_has_breach(clean)
    report = evaluate_trend(records, rules)
    assert trend_has_breach(report)
    flagged = {(f["rule"], f["element"]) for f in report["flags"]}
    assert ("stage-sim-drift", "join") in flagged
    assert ("recovery-burst", "") in flagged
    # Every flag points at the straggler run, never the twins.
    straggler_id = records[-1].get("run_id", "?")
    assert all(f["run_id"] == straggler_id for f in report["flags"])


def test_trend_min_runs_skips_short_series(tmp_path):
    paths = [_write_ledger(os.path.join(str(tmp_path), f"r{i}.jsonl"))
             for i in range(2)]
    records = [_summarize_file(p) for p in paths]
    report = evaluate_trend(
        records, [HistoryRule(name="w", metric="wall_s", min_runs=3)]
    )
    assert report["flags"] == []
    assert report["rules"][0]["skipped"].startswith("2 run(s)")


def test_trend_last_window_and_absent_metrics(tmp_path):
    straggler = _write_ledger(os.path.join(str(tmp_path), "s.jsonl"),
                              straggle_s=9.0)
    twins = [_write_ledger(os.path.join(str(tmp_path), f"r{i}.jsonl"))
             for i in range(3)]
    records = [_summarize_file(p) for p in [straggler] + twins]
    rule = HistoryRule(name="rec", metric="recovery.total")
    # Windowed to the last 3 runs, the old straggler ages out.
    assert evaluate_trend(records, [rule], last=3)["flags"] == []
    # A record without the metric is skipped, not treated as zero.
    series = trend_series(
        records + [{"run_id": "x"}], "recovery.total"
    )
    assert len(series[""]) == 4


def test_history_rule_validation():
    with pytest.raises(ValueError):
        HistoryRule(name="r", metric="wall_s", direction="sideways")
    with pytest.raises(ValueError):
        HistoryRule(name="r", metric="wall_s", severity="meh")
    with pytest.raises(ValueError):
        HistoryRule(name="r", metric="wall_s", threshold=0.0)


# ---------------------------------------------------------------------
# the scoped ruleset file
# ---------------------------------------------------------------------
def test_default_ruleset_history_scope_loads():
    rules = load_history_rules(DEFAULT_RULES)
    names = {rule.name for rule in rules}
    assert {"stage-sim-drift", "recovery-burst", "memory-peak-drift",
            "calibration-drift", "wall-drift"} <= names
    by_name = {rule.name: rule for rule in rules}
    assert by_name["wall-drift"].severity == "warn"
    assert by_name["calibration-drift"].direction == "both"


def test_history_scope_is_invisible_to_slo_loader():
    """Backward compatibility: the new ``history:`` scope must not
    leak into the SLO rule list the gates run on."""
    slo_rules = load_rules(DEFAULT_RULES)
    assert slo_rules  # the existing gates still load
    slo_names = {rule.name for rule in slo_rules}
    assert "stage-sim-drift" not in slo_names
    scopes = load_ruleset(DEFAULT_RULES)
    assert set(scopes) == {"rules", "history"}


def test_scoped_yaml_parser_headerless_entries_default_to_rules(
    tmp_path,
):
    path = os.path.join(str(tmp_path), "rules.yaml")
    with open(path, "w") as handle:
        handle.write(
            "# comment\n"
            "- name: top-level\n"
            "  metric: results.x\n"
            "  max: 1\n"
            "history:\n"
            "- name: drift\n"
            "  metric: wall_s\n"
            "  threshold: 4.0\n"
        )
    scopes = load_ruleset(path)
    assert [e["name"] for e in scopes["rules"]] == ["top-level"]
    assert scopes["history"][0]["threshold"] == 4.0
    assert load_history_rules(path)[0].threshold == 4.0


# ---------------------------------------------------------------------
# crest-preserving metric sink (the 1-in-64 throttle fix)
# ---------------------------------------------------------------------
def test_gauge_crest_survives_sink_throttle(tmp_path):
    """A one-sample memory spike between throttle points must reach
    the ledger: watermark-setting samples bypass the 1-in-64 gate."""
    path = os.path.join(str(tmp_path), "m.jsonl")
    ledger = RunLedger(path, fsync_barriers=False)
    registry = MetricsRegistry()
    registry.sink = ledger
    gauge = registry.gauge("mem_used_bytes", worker="w0",
                           region="cache")
    gauge.set(100.0)
    for _ in range(30):
        gauge.set(100.0)  # throttled: steady state
    gauge.set(9999.0)     # the mid-run spike, sample #32 of 64
    for _ in range(30):
        gauge.set(100.0)
    ledger.emit("run_end", status="ok")
    ledger.close()
    events, _ = read_ledger(path)
    values = [e["value"] for e in events if e.get("kind") == "metric"]
    assert 9999.0 in values
    # Crests stream, steady-state samples stay throttled.
    assert len(values) < 10
    # And the spike survives all the way into the history summary.
    record = summarize_ledger(events, source=path)
    assert record["memory"]["w0/cache"]["peak_bytes"] == 9999.0
    assert record["metrics"][
        "mem_used_bytes{region=cache,worker=w0}"
    ] == 9999.0


def test_gauge_low_watermark_also_streams(tmp_path):
    path = os.path.join(str(tmp_path), "m.jsonl")
    ledger = RunLedger(path, fsync_barriers=False)
    registry = MetricsRegistry()
    registry.sink = ledger
    gauge = registry.gauge("queue_depth")
    gauge.set(50.0)
    for _ in range(20):
        gauge.set(50.0)
    gauge.set(1.0)  # new low watermark mid-window
    ledger.close()
    events, _ = read_ledger(path)
    values = [e["value"] for e in events if e.get("kind") == "metric"]
    assert 1.0 in values


# ---------------------------------------------------------------------
# the CLI surface and its exit codes
# ---------------------------------------------------------------------
def _store_with_three_runs(tmp_path):
    store_dir = os.path.join(str(tmp_path), "store")
    paths = [
        _write_ledger(os.path.join(str(tmp_path), "a.jsonl")),
        _write_ledger(os.path.join(str(tmp_path), "b.jsonl")),
        _write_ledger(os.path.join(str(tmp_path), "c.jsonl"),
                      straggle_s=12.5),
    ]
    assert main(["history", "--store", store_dir, "ingest"] + paths) == 0
    return store_dir


def test_cli_history_ingest_list_show(tmp_path, capsys):
    store_dir = _store_with_three_runs(tmp_path)
    out = capsys.readouterr().out
    assert out.count("ingested ") == 3
    assert main(["history", "--store", store_dir, "list"]) == 0
    out = capsys.readouterr().out
    assert "3 run(s)" in out
    assert "12.500" in out  # the straggler's sim seconds
    assert main(["history", "--store", store_dir, "show", "@-1"]) == 0
    out = capsys.readouterr().out
    assert "straggler=1" in out
    assert "join" in out
    # Re-ingest is idempotent and says so.
    assert main(["history", "--store", store_dir, "ingest",
                 os.path.join(str(tmp_path), "a.jsonl")]) == 0
    assert "already ingested" in capsys.readouterr().out


def test_cli_history_diff_exit_codes(tmp_path, capsys):
    store_dir = _store_with_three_runs(tmp_path)
    capsys.readouterr()
    # Twins: exit 0, zero regressions.
    assert main(["history", "--store", store_dir, "diff",
                 "@0", "@1"]) == 0
    assert "zero regressions" in capsys.readouterr().out
    # Twin vs straggler: exit 1, the regression named.
    assert main(["history", "--store", store_dir, "diff",
                 "@1", "@2"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "sim +12.500s" in out
    # Unknown run: exit 2.
    assert main(["history", "--store", store_dir, "diff",
                 "@0", "zzzz"]) == 2


def test_cli_history_trend_gate(tmp_path, capsys):
    store_dir = _store_with_three_runs(tmp_path)
    capsys.readouterr()
    base = ["history", "--store", store_dir, "trend",
            "--metric", "stages.*.sim_s", "--min-runs", "3"]
    assert main(base) == 0  # report only: flags shown, exit 0
    out = capsys.readouterr().out
    assert "flag(s)" in out
    # --gate turns breach flags into a nonzero exit.
    assert main(base + ["--gate"]) == 1
    out = capsys.readouterr().out
    assert "breach" in out
    # Windowing past the straggler gates clean... the straggler is
    # last, so shrink the window to the two twins + min-runs guard.
    assert main(["history", "--store", store_dir, "trend",
                 "--metric", "wall_s", "--min-runs", "3",
                 "--last", "2", "--gate"]) == 0


def test_cli_history_empty_store_exit_codes(tmp_path, capsys):
    store_dir = os.path.join(str(tmp_path), "void")
    assert main(["history", "--store", store_dir, "list"]) == 2
    assert main(["history", "--store", store_dir, "diff",
                 "@0", "@1"]) == 2
    assert main(["history", "--store", store_dir, "trend",
                 "--gate"]) == 2
    assert main(["history", "--store", store_dir, "show", "@0"]) == 2
    err = capsys.readouterr().err
    assert "empty" in err
    # Ingesting a missing file: exit 2, not a traceback.
    assert main(["history", "--store", store_dir, "ingest",
                 os.path.join(str(tmp_path), "nope.jsonl")]) == 2


def test_cli_inject_straggler_end_to_end(tmp_path, capsys):
    """The controlled drift source: a real run with an injected
    straggler leaves deterministic sim seconds and a recovery event
    in its ledger — exactly what diff and trend key on."""
    path = os.path.join(str(tmp_path), "s.jsonl")
    assert main(["run", "--model", "alexnet", "--records", "24",
                 "--nodes", "2", "--ledger", path,
                 "--inject-straggler", "1:7.5"]) == 0
    capsys.readouterr()
    events, _ = read_ledger(path)
    recoveries = [e for e in events if e["kind"] == "recovery"]
    assert any(e.get("event") == "straggler" for e in recoveries)
    assert max(e["sim_time_s"] for e in events) >= 7.5
    record = summarize_ledger(events, source=path)
    assert record["recovery"].get("straggler", 0) >= 1
    assert record["sim_s"] >= 7.5
    with pytest.raises(SystemExit):
        main(["run", "--model", "alexnet", "--records", "24",
              "--inject-straggler", "not-a-spec"])
