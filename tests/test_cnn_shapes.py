"""Unit tests for static shape/FLOP inference against the real
published architecture numbers."""

import pytest

from repro.cnn.shapes import (
    LayerSpec,
    conv_output_hw,
    profile_network,
    total_flops,
    total_params,
)
from repro.cnn.zoo import alexnet, resnet50, vgg16
from repro.exceptions import ShapeError


def test_conv_output_hw_basic():
    assert conv_output_hw(227, 227, 11, 4, 0) == (55, 55)
    assert conv_output_hw(224, 224, 7, 2, 3) == (112, 112)


def test_conv_output_hw_rejects_collapse():
    with pytest.raises(ShapeError):
        conv_output_hw(2, 2, 5, 1, 0)


def test_alexnet_layer_shapes():
    profiles = profile_network(alexnet.full_specs(), alexnet.FULL_INPUT_SHAPE)
    by_name = {p.name: p for p in profiles}
    assert by_name["conv1"].output_shape == (55, 55, 96)
    assert by_name["pool1"].output_shape == (27, 27, 96)
    assert by_name["conv5"].output_shape == (13, 13, 256)
    assert by_name["fc6"].output_shape == (4096,)
    assert by_name["fc8"].output_shape == (1000,)


def test_alexnet_param_count_matches_publication():
    profiles = profile_network(alexnet.full_specs(), alexnet.FULL_INPUT_SHAPE)
    # ~62M parameters (Krizhevsky et al. report 60M excluding biases).
    assert 58e6 < total_params(profiles) < 65e6


def test_vgg16_param_count_matches_publication():
    profiles = profile_network(vgg16.full_specs(), vgg16.FULL_INPUT_SHAPE)
    assert 135e6 < total_params(profiles) < 140e6  # canonical ~138M


def test_vgg16_flops_match_publication():
    profiles = profile_network(vgg16.full_specs(), vgg16.FULL_INPUT_SHAPE)
    # ~15.5 GMACs = ~31 GFLOPs at 2 FLOPs per multiply-add.
    assert 29e9 < total_flops(profiles) < 33e9


def test_resnet50_param_count_matches_publication():
    profiles = profile_network(
        resnet50.full_specs(), resnet50.FULL_INPUT_SHAPE
    )
    assert 23e6 < total_params(profiles) < 27e6  # canonical ~25.6M


def test_resnet50_stage_shapes():
    profiles = profile_network(
        resnet50.full_specs(), resnet50.FULL_INPUT_SHAPE
    )
    by_name = {p.name: p for p in profiles}
    assert by_name["conv2_3"].output_shape == (56, 56, 256)
    assert by_name["conv3_4"].output_shape == (28, 28, 512)
    assert by_name["conv4_6"].output_shape == (14, 14, 1024)
    assert by_name["conv5_3"].output_shape == (7, 7, 2048)
    assert by_name["fc6"].output_shape == (2048,)


def test_pool_layers_have_no_params():
    profiles = profile_network(alexnet.full_specs(), alexnet.FULL_INPUT_SHAPE)
    for profile in profiles:
        if profile.kind in ("maxpool", "lrn", "flatten"):
            assert profile.param_count == 0


def test_flops_monotone_along_chain():
    profiles = profile_network(
        resnet50.full_specs(), resnet50.FULL_INPUT_SHAPE
    )
    assert all(p.flops >= 0 for p in profiles)


def test_dense_requires_flat_input():
    with pytest.raises(ShapeError):
        profile_network(
            [LayerSpec("fc", "dense", {"units": 10})], (4, 4, 2)
        )


def test_unknown_kind_rejected():
    with pytest.raises(ShapeError):
        profile_network([LayerSpec("x", "warp")], (4, 4, 2))


def test_output_size_property():
    profiles = profile_network(alexnet.full_specs(), alexnet.FULL_INPUT_SHAPE)
    conv5 = next(p for p in profiles if p.name == "conv5")
    assert conv5.output_size == 13 * 13 * 256
