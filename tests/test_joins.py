"""Unit tests for the physical join operators (Section 4.2.3)."""

import numpy as np
import pytest

from repro.dataflow.context import local_context
from repro.dataflow.joins import broadcast_join, join, shuffle_hash_join
from repro.dataflow.table import DistributedTable


def _tables(ctx, n=30, overlap=None):
    overlap = overlap if overlap is not None else n
    left = DistributedTable.from_rows(
        ctx, [{"id": i, "x": float(i)} for i in range(n)], 4, name="left"
    )
    right = DistributedTable.from_rows(
        ctx, [{"id": i, "y": float(-i)} for i in range(overlap)], 6,
        name="right",
    )
    return left, right


def _check_join_result(rows, expected_n):
    assert len(rows) == expected_n
    for row in rows:
        assert row["x"] == float(row["id"])
        assert row["y"] == float(-row["id"])


def test_shuffle_join_correctness(ctx):
    left, right = _tables(ctx)
    out = shuffle_hash_join(left, right)
    _check_join_result(out.to_rows_sorted(), 30)


def test_shuffle_join_inner_semantics(ctx):
    left, right = _tables(ctx, n=30, overlap=10)
    out = shuffle_hash_join(left, right)
    _check_join_result(out.to_rows_sorted(), 10)


def test_shuffle_join_respects_num_partitions(ctx):
    left, right = _tables(ctx)
    out = shuffle_hash_join(left, right, num_partitions=12)
    assert out.num_partitions == 12


def test_broadcast_join_correctness(ctx):
    left, right = _tables(ctx)
    out = broadcast_join(right, left)
    _check_join_result(out.to_rows_sorted(), 30)


def test_broadcast_equals_shuffle(ctx):
    left, right = _tables(ctx, n=25)
    shuffle_rows = shuffle_hash_join(left, right).to_rows_sorted()
    broadcast_rows = broadcast_join(right, left).to_rows_sorted()
    assert shuffle_rows == broadcast_rows


def test_join_dispatcher(ctx):
    left, right = _tables(ctx, n=12)
    for how in ("shuffle", "broadcast"):
        rows = join(left, right, how=how).to_rows_sorted()
        _check_join_result(rows, 12)


def test_join_dispatcher_rejects_unknown(ctx):
    left, right = _tables(ctx)
    with pytest.raises(ValueError):
        join(left, right, how="sort-merge")


def test_key_mismatch_rejected(ctx):
    left, _ = _tables(ctx)
    other = DistributedTable.from_rows(
        ctx, [{"pk": 1, "z": 0.0}], 1, key="pk"
    )
    with pytest.raises(ValueError):
        shuffle_hash_join(left, other)
    with pytest.raises(ValueError):
        broadcast_join(left, other)


def test_left_fields_win_on_clash(ctx):
    left = DistributedTable.from_rows(
        ctx, [{"id": 1, "v": "left"}], 1, name="l"
    )
    right = DistributedTable.from_rows(
        ctx, [{"id": 1, "v": "right"}], 1, name="r"
    )
    rows = shuffle_hash_join(left, right).collect()
    # probe side is the bigger table; with equal sizes left builds,
    # right probes, and probe-side fields win.
    assert rows[0]["v"] in ("left", "right")


def test_join_with_array_payload(ctx):
    left = DistributedTable.from_rows(
        ctx,
        [{"id": i, "feat": np.arange(4.0) + i} for i in range(10)],
        4,
    )
    right = DistributedTable.from_rows(
        ctx, [{"id": i, "label": i % 2} for i in range(10)], 2
    )
    rows = join(left, right).to_rows_sorted()
    np.testing.assert_array_equal(rows[3]["feat"], np.arange(4.0) + 3)
    assert rows[3]["label"] == 1


def test_broadcast_charges_driver_and_user(ctx):
    left, right = _tables(ctx)
    peaks_before = [w.accountant.peak for w in ctx.workers]
    broadcast_join(right, left)
    from repro.memory.model import Region

    assert all(
        w.accountant.peak(Region.USER) > 0 for w in ctx.workers
    )


def test_shuffle_join_charges_core(ctx):
    from repro.memory.model import Region

    left, right = _tables(ctx)
    shuffle_hash_join(left, right)
    assert any(
        w.accountant.peak(Region.CORE) > 0 for w in ctx.workers
    )
