"""Monotonicity and golden tests for the cost-model terms the
calibration pipeline prices: runtime estimates must move the right way
as the workload grows, and Eq. 16 must produce the exact bytes the
tracer's sizing comparison assumes."""

import pytest

from repro.cnn import build_model, get_model_stats
from repro.core.config import DatasetStats
from repro.core.plans import LAZY, STAGED
from repro.core.sizing import estimate_sizes, estimate_sizes_from_cnn
from repro.costmodel import estimate_runtime
from repro.costmodel.crashes import manual_setup
from repro.costmodel.io_cost import (
    image_read_seconds,
    task_overhead_seconds,
    training_seconds,
)
from repro.costmodel.params import cloudlab_cluster

CLUSTER = cloudlab_cluster()
STATS = get_model_stats("alexnet")
LAYERS = STATS.top_feature_layers(4)


def _stats(num_records=20_000, num_structured_features=130):
    return DatasetStats(
        num_records=num_records,
        num_structured_features=num_structured_features,
        avg_image_bytes=14 * 1024,
    )


def _runtime(dataset_stats, layers=LAYERS, plan=STAGED, cpu=4):
    setup = manual_setup(STATS, layers, dataset_stats, cpu)
    return estimate_runtime(
        STATS, layers, dataset_stats, plan, setup, CLUSTER
    )


class TestRuntimeMonotonicity:
    def test_grows_with_record_count(self):
        seconds = [
            _runtime(_stats(num_records=n)).seconds
            for n in (5_000, 20_000, 80_000)
        ]
        assert seconds == sorted(seconds)
        assert seconds[0] < seconds[-1]

    def test_grows_with_layer_depth(self):
        ds = _stats()
        seconds = [
            _runtime(ds, layers=LAYERS[:k]).seconds
            for k in range(1, len(LAYERS) + 1)
        ]
        assert seconds == sorted(seconds)

    def test_lazy_inference_dominates_staged(self):
        """Lazy re-runs every prefix, so its inference term can never
        be cheaper than Staged's single deepest pass."""
        ds = _stats()
        lazy = _runtime(ds, plan=LAZY).breakdown["inference"]
        staged = _runtime(ds, plan=STAGED).breakdown["inference"]
        assert lazy >= staged

    def test_overhead_grows_with_partition_count(self):
        ds = _stats()
        small = manual_setup(STATS, LAYERS, ds, 4)
        large = small.with_(num_partitions=small.num_partitions * 8)
        overhead_small = estimate_runtime(
            STATS, LAYERS, ds, STAGED, small, CLUSTER
        ).breakdown["overhead"]
        overhead_large = estimate_runtime(
            STATS, LAYERS, ds, STAGED, large, CLUSTER
        ).breakdown["overhead"]
        assert overhead_large > overhead_small


class TestIOCostMonotonicity:
    def test_image_read_grows_with_image_count(self):
        counts = (1_000, 20_000, 200_000)
        seconds = [image_read_seconds(n, CLUSTER) for n in counts]
        assert seconds == sorted(seconds)
        # per-file latency dominated: linear in the file count
        assert seconds[2] == pytest.approx(10 * seconds[1])

    def test_task_overhead_grows_with_task_count(self):
        seconds = [
            task_overhead_seconds(n, 160, CLUSTER, 4)
            for n in (160, 1_600, 16_000)
        ]
        assert seconds == sorted(seconds)
        assert seconds[0] < seconds[-1]

    def test_training_grows_with_records_and_width(self):
        base = training_seconds(20_000, 4_000, 160, CLUSTER, 4)
        assert training_seconds(80_000, 4_000, 160, CLUSTER, 4) > base
        assert training_seconds(20_000, 16_000, 160, CLUSTER, 4) > base


class TestEq16Golden:
    """Eq. 16 on the executable mini AlexNet, against hand-computed
    bytes: |T_i| = alpha * n * (8 + 8 + 4*flat_dim) + |Tstr| with
    alpha=2, n=24, |Tstr| = 24 * (8+8+8+4*10+8) = 1728, and flat dims
    conv5=128, fc6=fc7=32, fc8=10."""

    GOLDEN = {"conv5": 27072, "fc6": 8640, "fc7": 8640, "fc8": 4416}

    def test_mini_alexnet_estimates(self):
        cnn = build_model("alexnet", profile="mini")
        ds = _stats(num_records=24, num_structured_features=10)
        estimates = estimate_sizes_from_cnn(
            cnn, ["conv5", "fc6", "fc7", "fc8"], ds
        )
        assert estimates == self.GOLDEN

    def test_matches_roster_formula_shape(self):
        """The executable-CNN path and the roster-stats path price the
        same record layout: a roster layer with the same flat dim as
        the mini CNN's must produce identical bytes."""
        cnn = build_model("alexnet", profile="mini")
        ds = _stats(num_records=24, num_structured_features=10)
        report = estimate_sizes(STATS, ["fc8"], ds)
        # roster fc8 flat dim is 1000 (ImageNet logits) vs mini's 10:
        # the difference must be exactly alpha * n * 4 * (1000 - 10)
        mini = estimate_sizes_from_cnn(cnn, ["fc8"], ds)["fc8"]
        roster = report.intermediate_table_bytes["fc8"]
        assert roster - mini == 2 * 24 * 4 * (1000 - 10)

    def test_s_double_drops_one_tstr(self):
        ds = _stats(num_records=24, num_structured_features=10)
        report = estimate_sizes(STATS, ["fc7", "fc8"], ds)
        sizes = report.intermediate_table_bytes
        assert report.s_single == max(sizes.values())
        assert report.s_double == (
            sizes["fc7"] + sizes["fc8"] - ds.structured_table_bytes()
        )
