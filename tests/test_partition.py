"""Unit tests for Partition serialization formats (Section 4.2.3)."""

import numpy as np
import pytest

from repro.dataflow.partition import DESERIALIZED, SERIALIZED, Partition


def _rows(n=10):
    return [
        {"id": i, "x": np.full(50, float(i), dtype=np.float32)}
        for i in range(n)
    ]


def test_requires_rows_or_blob():
    with pytest.raises(ValueError):
        Partition(0)


def test_roundtrip_through_serialized_form():
    part = Partition.from_rows(0, _rows())
    blob = part.serialized_blob()
    restored = Partition(0, blob=blob)
    assert len(restored) == 10
    np.testing.assert_array_equal(restored.rows()[3]["x"], part.rows()[3]["x"])


def test_serialized_smaller_than_deserialized_for_redundant_data():
    part = Partition.from_rows(0, _rows(50))
    assert part.memory_bytes(SERIALIZED) < part.memory_bytes(DESERIALIZED)


def test_drop_rows_keeps_data_recoverable():
    part = Partition.from_rows(0, _rows())
    part.drop_rows()
    assert part.rows()[0]["id"] == 0
    assert part.deserialize_count == 1


def test_serialize_count_tracks_conversions():
    part = Partition.from_rows(0, _rows())
    part.serialized_blob()
    part.serialized_blob()  # cached, no second conversion
    assert part.serialize_count == 1


def test_drop_blob():
    part = Partition.from_rows(0, _rows())
    part.serialized_blob()
    part.drop_blob()
    assert part.memory_bytes(DESERIALIZED) > 0


def test_memory_bytes_deserialized_exact_for_columnar():
    rows = _rows(4)
    part = Partition.from_rows(0, rows)
    assert part.is_columnar
    # Exact buffer bytes: 4 int64 ids + 4 x (50,) float32 vectors.
    assert part.memory_bytes(DESERIALIZED) == 4 * 8 + 4 * 50 * 4


def test_memory_bytes_deserialized_heuristic_for_legacy_rows():
    from repro.dataflow.columnar import row_layout
    from repro.dataflow.record import estimate_rows_bytes

    rows = _rows(4)
    with row_layout():
        part = Partition.from_rows(0, rows)
    assert not part.is_columnar
    assert part.memory_bytes(DESERIALIZED) == estimate_rows_bytes(rows)


def test_exact_vs_heuristic_agreement_band():
    """The Appendix A per-record heuristic should stay within a small
    constant-per-row envelope of the exact columnar bytes: it adds an
    8-byte fixed slot per scalar field and an 8-byte variable-length
    header per tensor field that the columnar layout does not pay, so
    the heuristic over-reports by 16 bytes/row on an (id, tensor) row
    and never under-reports."""
    from repro.dataflow.columnar import row_layout
    from repro.dataflow.record import estimate_rows_bytes

    for n in (1, 4, 64):
        rows = _rows(n)
        exact = Partition.from_rows(0, rows).memory_bytes(DESERIALIZED)
        heuristic = estimate_rows_bytes(rows)
        assert exact <= heuristic <= exact + 24 * n


def test_len(ctx=None):
    assert len(Partition.from_rows(0, _rows(7))) == 7
