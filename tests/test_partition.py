"""Unit tests for Partition serialization formats (Section 4.2.3)."""

import numpy as np
import pytest

from repro.dataflow.partition import DESERIALIZED, SERIALIZED, Partition


def _rows(n=10):
    return [
        {"id": i, "x": np.full(50, float(i), dtype=np.float32)}
        for i in range(n)
    ]


def test_requires_rows_or_blob():
    with pytest.raises(ValueError):
        Partition(0)


def test_roundtrip_through_serialized_form():
    part = Partition.from_rows(0, _rows())
    blob = part.serialized_blob()
    restored = Partition(0, blob=blob)
    assert len(restored) == 10
    np.testing.assert_array_equal(restored.rows()[3]["x"], part.rows()[3]["x"])


def test_serialized_smaller_than_deserialized_for_redundant_data():
    part = Partition.from_rows(0, _rows(50))
    assert part.memory_bytes(SERIALIZED) < part.memory_bytes(DESERIALIZED)


def test_drop_rows_keeps_data_recoverable():
    part = Partition.from_rows(0, _rows())
    part.drop_rows()
    assert part.rows()[0]["id"] == 0
    assert part.deserialize_count == 1


def test_serialize_count_tracks_conversions():
    part = Partition.from_rows(0, _rows())
    part.serialized_blob()
    part.serialized_blob()  # cached, no second conversion
    assert part.serialize_count == 1


def test_drop_blob():
    part = Partition.from_rows(0, _rows())
    part.serialized_blob()
    part.drop_blob()
    assert part.memory_bytes(DESERIALIZED) > 0


def test_memory_bytes_deserialized_uses_record_estimates():
    from repro.dataflow.record import estimate_rows_bytes

    rows = _rows(4)
    part = Partition.from_rows(0, rows)
    assert part.memory_bytes(DESERIALIZED) == estimate_rows_bytes(rows)


def test_len(ctx=None):
    assert len(Partition.from_rows(0, _rows(7))) == 7
