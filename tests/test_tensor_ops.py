"""Unit tests for TensorOp, FlattenOp, and grid max pooling
(Definitions 3.3 and 3.5)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor.ops import FlattenOp, IdentityOp, TensorOp, grid_max_pool


class _Doubler(TensorOp):
    def __init__(self, shape):
        super().__init__(shape, shape, name="doubler")

    def apply(self, tensor):
        return tensor * 2


class _WrongShape(TensorOp):
    def __init__(self):
        super().__init__((2, 2), (3, 3), name="liar")

    def apply(self, tensor):
        return tensor  # declares (3, 3) but returns (2, 2)


def test_tensorop_applies_function():
    op = _Doubler((2, 3))
    out = op(np.ones((2, 3)))
    assert np.array_equal(out, 2 * np.ones((2, 3)))


def test_tensorop_rejects_incompatible_shape():
    op = _Doubler((2, 3))
    with pytest.raises(ShapeError):
        op(np.ones((3, 2)))


def test_tensorop_shape_compatibility_predicate():
    op = _Doubler((4,))
    assert op.is_shape_compatible(np.zeros(4))
    assert not op.is_shape_compatible(np.zeros(5))


def test_tensorop_validates_declared_output_shape():
    with pytest.raises(ShapeError):
        _WrongShape()(np.ones((2, 2)))


def test_tensorop_output_size():
    assert _Doubler((3, 4)).output_size == 12


def test_identity_op_passthrough():
    op = IdentityOp((5,))
    data = np.arange(5.0)
    assert np.array_equal(op(data), data)


def test_flatten_op_produces_vector():
    op = FlattenOp((2, 3, 4))
    out = op(np.arange(24.0).reshape(2, 3, 4))
    assert out.shape == (24,)
    assert np.array_equal(out, np.arange(24.0))


def test_flatten_op_preserves_row_major_order():
    tensor = np.array([[1.0, 2.0], [3.0, 4.0]])
    assert np.array_equal(FlattenOp((2, 2))(tensor), [1.0, 2.0, 3.0, 4.0])


def test_grid_max_pool_reduces_to_grid():
    tensor = np.arange(64.0).reshape(4, 4, 4)
    pooled = grid_max_pool(tensor, grid=2)
    assert pooled.shape == (2, 2, 4)


def test_grid_max_pool_takes_blockwise_max():
    tensor = np.zeros((4, 4, 1))
    tensor[0, 0, 0] = 7.0   # top-left block
    tensor[3, 3, 0] = 9.0   # bottom-right block
    pooled = grid_max_pool(tensor, grid=2)
    assert pooled[0, 0, 0] == 7.0
    assert pooled[1, 1, 0] == 9.0


def test_grid_max_pool_passes_small_tensors_through():
    tensor = np.ones((1, 1, 8))
    assert grid_max_pool(tensor, grid=2) is tensor


def test_grid_max_pool_rejects_non_3d():
    with pytest.raises(ShapeError):
        grid_max_pool(np.ones((4, 4)))


def test_grid_max_pool_uneven_dims():
    tensor = np.random.default_rng(0).normal(size=(5, 7, 2))
    pooled = grid_max_pool(tensor, grid=2)
    assert pooled.shape == (2, 2, 2)
    assert pooled.max() == pytest.approx(tensor.max())
