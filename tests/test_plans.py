"""Unit tests for the logical plan space (Section 4.2.1, Figure 5)."""

import pytest

from repro.cnn import get_model_stats
from repro.core.plans import (
    ALL_PLANS,
    EAGER,
    EAGER_REORDERED,
    LAZY,
    LAZY_REORDERED,
    STAGED,
    STAGED_BJ,
    JoinPlacement,
    Materialization,
    plan_by_name,
    redundant_flops,
)


def test_the_five_paper_plans_exist():
    assert LAZY.materialization is Materialization.LAZY
    assert LAZY.join_placement is JoinPlacement.BEFORE_JOIN
    assert LAZY_REORDERED.join_placement is JoinPlacement.AFTER_JOIN
    assert EAGER.materialization is Materialization.EAGER
    assert EAGER_REORDERED.join_placement is JoinPlacement.AFTER_JOIN
    assert STAGED.materialization is Materialization.STAGED
    assert STAGED.join_placement is JoinPlacement.AFTER_JOIN


def test_plan_labels():
    assert STAGED.label == "staged/aj"
    assert LAZY.label == "lazy/bj"
    assert str(STAGED_BJ) == "staged/bj"


def test_plan_by_name_roundtrip():
    for name, plan in ALL_PLANS.items():
        assert plan_by_name(name) is plan


def test_plan_by_name_rejects_unknown():
    with pytest.raises(ValueError):
        plan_by_name("speculative")


def test_redundancy_grows_with_layer_count():
    stats = get_model_stats("resnet50")
    layers = stats.feature_layers
    redundancies = [
        redundant_flops(stats, layers[-k:]) for k in range(1, len(layers) + 1)
    ]
    assert redundancies[0] == 0  # one layer: nothing to re-run
    assert all(b >= a for a, b in zip(redundancies, redundancies[1:]))


def test_alexnet_fc7_fc8_redundancy_example():
    """Section 4.2.1's example: with L = {fc7, fc8}, Lazy redoes ~99%
    of fc8's computation for fc7."""
    stats = get_model_stats("alexnet")
    redundancy = redundant_flops(stats, ["fc7", "fc8"])
    fc8_path = stats.layer_stats("fc8").flops_from_input
    assert redundancy / fc8_path > 0.99
