"""Unit tests for wave-based task execution and DL replica charges."""

import pytest

from repro.dataflow.context import ClusterContext, local_context
from repro.dataflow.executor import (
    charge_model_replicas,
    group_by_worker,
    run_partition_tasks,
)
from repro.dataflow.partition import Partition
from repro.exceptions import (
    DLExecutionMemoryExceeded,
    TaskFailure,
    UserMemoryExceeded,
)
from repro.memory.model import GB, MemoryBudget, Region


def _parts(n):
    return [Partition.from_rows(i, [{"id": i}]) for i in range(n)]


def test_group_by_worker_round_robin(ctx):
    grouped = group_by_worker(ctx, _parts(6))
    assert len(grouped) == 2
    for worker, items in grouped.items():
        assert all(p.index % 2 == worker.node_id for _, p in items)


def test_results_in_partition_order(ctx):
    parts = _parts(7)
    results = run_partition_tasks(ctx, parts, lambda p: p.index * 10)
    assert results == [i * 10 for i in range(7)]


def test_wave_accounting_scales_with_cpu():
    budget = MemoryBudget(
        system_bytes=8 * GB, os_reserved_bytes=0, user_bytes=250,
        core_bytes=1 * GB, storage_bytes=1 * GB, dl_bytes=1 * GB,
    )
    # cpu=1: one 100-byte charge at a time -> fits in 250.
    ctx1 = ClusterContext(budget, num_nodes=1, cores_per_node=4, cpu=1)
    run_partition_tasks(
        ctx1, _parts(4), lambda p: None, charge_fn=lambda p, r: 100
    )
    # cpu=4: four concurrent 100-byte charges -> 400 > 250: crash.
    ctx4 = ClusterContext(budget, num_nodes=1, cores_per_node=4, cpu=4)
    with pytest.raises(UserMemoryExceeded):
        run_partition_tasks(
            ctx4, _parts(4), lambda p: None, charge_fn=lambda p, r: 100
        )


def test_charges_released_after_waves(ctx):
    run_partition_tasks(
        ctx, _parts(8), lambda p: None, charge_fn=lambda p, r: 1000
    )
    assert all(w.accountant.used(Region.USER) == 0 for w in ctx.workers)


def test_charges_released_on_task_failure(ctx):
    def boom(partition):
        if partition.index == 3:
            raise RuntimeError("task failed")
        return None

    with pytest.raises(TaskFailure) as excinfo:
        run_partition_tasks(ctx, _parts(6), boom, charge_fn=lambda p, r: 10)
    assert all(w.accountant.used(Region.USER) == 0 for w in ctx.workers)
    # the failure carries structured scheduling context
    failure = excinfo.value
    assert failure.partition_index == 3
    assert failure.worker_id == ctx.worker_for(3).node_id
    assert failure.attempt == 1
    assert isinstance(failure.cause, RuntimeError)
    assert isinstance(failure.__cause__, RuntimeError)
    # a plain bug is neither transient nor recoverable by re-planning
    assert failure.transient is False
    assert failure.retryable is False


def test_tasks_run_counter(ctx):
    run_partition_tasks(ctx, _parts(10), lambda p: None)
    assert sum(w.tasks_run for w in ctx.workers) == 10


def test_model_replica_charge_per_worker_scales_with_cpu():
    budget = MemoryBudget(
        system_bytes=8 * GB, os_reserved_bytes=0, user_bytes=GB,
        core_bytes=GB, storage_bytes=GB, dl_bytes=1000,
    )
    ctx = ClusterContext(budget, num_nodes=2, cores_per_node=4, cpu=4)
    with pytest.raises(DLExecutionMemoryExceeded):
        charge_model_replicas(ctx, 300)  # 4 x 300 > 1000
    # nothing left charged after the failed attempt
    assert all(w.accountant.used(Region.DL) == 0 for w in ctx.workers)


def test_model_replica_release():
    ctx = local_context()
    release = charge_model_replicas(ctx, 1000)
    assert all(w.accountant.used(Region.DL) > 0 for w in ctx.workers)
    release()
    assert all(w.accountant.used(Region.DL) == 0 for w in ctx.workers)
