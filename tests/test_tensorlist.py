"""Unit tests for TensorList (Definition 3.2)."""

import numpy as np
import pytest

from repro.tensor.tensorlist import TensorList


@pytest.fixture
def tlist():
    return TensorList([np.zeros((2, 3)), np.ones(4, dtype=np.float32)])


def test_len_and_indexing(tlist):
    assert len(tlist) == 2
    assert tlist[0].shape == (2, 3)
    assert tlist[1].shape == (4,)


def test_shapes(tlist):
    assert tlist.shapes() == [(2, 3), (4,)]


def test_nbytes_sums_members(tlist):
    assert tlist.nbytes() == np.zeros((2, 3)).nbytes + 16


def test_num_elements(tlist):
    assert tlist.num_elements() == 10


def test_append_is_persistent(tlist):
    longer = tlist.append(np.zeros(2))
    assert len(tlist) == 2
    assert len(longer) == 3


def test_flatten_concat_order():
    tlist = TensorList([np.array([[1.0, 2.0]]), np.array([3.0])])
    assert np.array_equal(tlist.flatten_concat(), [1.0, 2.0, 3.0])


def test_flatten_concat_empty():
    assert TensorList([]).flatten_concat().shape == (0,)


def test_equality_by_content():
    a = TensorList([np.arange(3.0)])
    b = TensorList([np.arange(3.0)])
    c = TensorList([np.arange(4.0)])
    assert a == b
    assert a != c
    assert a != TensorList([np.arange(3.0), np.arange(3.0)])


def test_hash_consistent_with_equality():
    a = TensorList([np.arange(3.0)])
    b = TensorList([np.arange(3.0)])
    assert hash(a) == hash(b)


def test_iteration(tlist):
    shapes = [t.shape for t in tlist]
    assert shapes == [(2, 3), (4,)]
