"""Eq. 16 size estimates validated against traced actual bytes.

The paper's Figure 15 validates Eq. 16 against actual intermediate
table sizes: estimates are deliberately *safe upper bounds*. At mini
scale the roster's 227x227 statistics are meaningless, so the executor
records estimates recomputed from the executable CNN's real layer
shapes (:func:`repro.core.sizing.estimate_sizes_from_cnn`) next to the
measured bytes of each joined per-layer train table in the trace's
``sizing`` attribute.

Documented tolerance: ``1.0 <= estimated / measured <= alpha`` with
``alpha = 2.0`` (the JVM-blowup fudge factor). The measured side is
the *exact* columnar buffer bytes (no per-record slot overhead at
all), so the estimate must bound the measurement from above without
exceeding the full alpha blowup. Observed ratios across the roster
sit in [1.15, 1.69].
"""

import pytest

from repro.cnn import build_model
from repro.core.config import DatasetStats, VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import STAGED
from repro.core.sizing import estimate_sizes_from_cnn
from repro.data import foods_dataset
from repro.dataflow.context import local_context
from repro.trace import Tracer

#: The documented tolerance band for estimate / measured.
RATIO_LOWER = 1.0
RATIO_UPPER = 2.0  # alpha


def _traced_sizing(model_name, num_layers, records):
    model = build_model(model_name, profile="mini")
    layers = model.feature_layers[-num_layers:]
    dataset = foods_dataset(num_records=records)
    config = VistaConfig(
        cpu=2, num_partitions=4, mem_storage_bytes=10**9,
        mem_user_bytes=10**9, mem_dl_bytes=10**9, join="shuffle",
        persistence="deserialized",
    )
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2)
    executor = FeatureTransferExecutor(
        ctx, model, dataset, list(layers), config,
        downstream_fn=lambda f, l: {"ok": True}, tracer=Tracer(),
    )
    result = executor.run(STAGED)
    return result.trace.find("workload").attrs["sizing"], result


def _sizing_table(sizing):
    """Readable estimate-vs-actual table for assertion messages."""
    lines = [
        f"{'layer':12s} {'estimated':>12s} {'measured':>12s} {'ratio':>7s}"
    ]
    for layer, entry in sizing.items():
        est = entry["estimated_bytes"]
        meas = entry["measured_bytes"]
        ratio = est / meas if meas else float("inf")
        lines.append(f"{layer:12s} {est:>12d} {meas:>12d} {ratio:>7.3f}")
    return "\n".join(lines)


@pytest.mark.parametrize("model_name,num_layers,records", [
    ("alexnet", 2, 24),
    ("alexnet", 3, 48),
    ("vgg16", 2, 24),
    ("resnet50", 3, 24),
])
def test_estimates_within_documented_tolerance(model_name, num_layers,
                                               records):
    sizing, _ = _traced_sizing(model_name, num_layers, records)
    assert sizing, "trace recorded no sizing comparison"
    table = _sizing_table(sizing)
    for layer, entry in sizing.items():
        est = entry["estimated_bytes"]
        meas = entry["measured_bytes"]
        assert meas and meas > 0, (
            f"no measured bytes for {layer}\n{table}"
        )
        ratio = est / meas
        assert RATIO_LOWER <= ratio <= RATIO_UPPER, (
            f"Eq. 16 estimate for {model_name}/{layer} outside the "
            f"documented [{RATIO_LOWER}, {RATIO_UPPER}] band "
            f"(ratio {ratio:.3f}):\n{table}"
        )


def test_measured_bytes_match_traced_train_counters():
    """The sizing table's measured side is exactly what the train
    spans saw flow in — the comparison is trace-derived, not a
    parallel bookkeeping path."""
    sizing, result = _traced_sizing("alexnet", 2, 24)
    for layer, entry in sizing.items():
        span = result.trace.find(f"train:{layer}")
        assert span is not None
        assert span.counters["bytes_in"] == entry["measured_bytes"]


def test_measured_bytes_are_exact_columnar_sizes():
    """Columnar partitions make the measured side deterministic: the
    traced train-table bytes equal the closed-form columnar size
    n x (16 + 4 x (n_str + |flat|)) bit-exactly."""
    from repro.core.sizing import columnar_intermediate_bytes
    from repro.data import foods_dataset

    records = 24
    model = build_model("alexnet", profile="mini")
    dataset = foods_dataset(num_records=records)
    stats = DatasetStats(
        num_records=records,
        num_structured_features=dataset.num_structured_features,
        avg_image_bytes=int(dataset.image_rows[0]["image"].nbytes),
    )
    sizing, _ = _traced_sizing("alexnet", 2, records)
    for layer, entry in sizing.items():
        assert entry["measured_bytes"] == columnar_intermediate_bytes(
            model, layer, stats
        )


def test_estimate_formula_matches_eq16():
    """estimate_sizes_from_cnn is Eq. 16 verbatim over the executable
    CNN's shapes: alpha * n * (8 + 8 + 4*|flat|) + |Tstr|."""
    model = build_model("alexnet", profile="mini")
    stats = DatasetStats(
        num_records=100, num_structured_features=130,
        avg_image_bytes=32 * 32 * 3 * 4,
    )
    estimates = estimate_sizes_from_cnn(
        model, ["fc7", "fc8"], stats, alpha=2.0
    )
    for layer in ("fc7", "fc8"):
        flat = 1
        for dim in model.output_shape_of(layer):
            flat *= dim
        expected = int(
            2.0 * 100 * (8 + 8 + 4 * flat) + stats.structured_table_bytes()
        )
        assert estimates[layer] == expected


def test_estimates_scale_linearly_with_records():
    small, _ = _traced_sizing("alexnet", 2, 20)
    large, _ = _traced_sizing("alexnet", 2, 60)
    for layer in small:
        est_s = small[layer]["estimated_bytes"]
        est_l = large[layer]["estimated_bytes"]
        meas_s = small[layer]["measured_bytes"]
        meas_l = large[layer]["measured_bytes"]
        assert est_l == pytest.approx(3 * est_s, rel=0.01)
        assert meas_l == pytest.approx(3 * meas_s, rel=0.05)
