"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_models_command(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for model in ("alexnet", "vgg16", "resnet50"):
        assert model in out


def test_plan_command(capsys):
    assert main(["plan", "--model", "alexnet", "--dataset", "foods"]) == 0
    out = capsys.readouterr().out
    assert "cpu=7" in out
    assert "s_single" in out


def test_plan_infeasible_exits_nonzero(capsys):
    code = main(["plan", "--model", "vgg16", "--memory-gb", "6"])
    assert code == 1
    assert "NO FEASIBLE PLAN" in capsys.readouterr().out


def test_estimate_vista(capsys):
    assert main([
        "estimate", "--model", "resnet50", "--dataset", "amazon",
        "--approach", "vista",
    ]) == 0
    out = capsys.readouterr().out
    assert "vista:" in out
    assert "inference" in out


def test_estimate_crash_exits_nonzero(capsys):
    code = main([
        "estimate", "--model", "vgg16", "--approach", "lazy-5",
    ])
    assert code == 1
    assert "CRASH" in capsys.readouterr().out


def test_estimate_eager_ignite(capsys):
    assert main([
        "estimate", "--model", "alexnet", "--approach", "eager",
        "--backend", "ignite",
    ]) == 0


def test_run_command(capsys):
    assert main([
        "run", "--model", "alexnet", "--records", "24", "--nodes", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "fc7" in out and "fc8" in out
    assert "train F1" in out


def test_run_command_with_trace(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    assert main([
        "run", "--model", "alexnet", "--records", "24", "--nodes", "2",
        "--trace", "--trace-json", str(trace_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "### trace:" in out
    assert "workload" in out
    assert "inference:fc7" in out
    assert "per-operator CNN time:" in out
    assert "~ sizing fc7" in out

    import json

    exported = json.loads(trace_path.read_text())
    names = []

    def walk(node):
        names.append(node["name"])
        for child in node["children"]:
            walk(child)

    walk(exported)
    for expected in ("optimize", "read", "workload", "inference:fc7",
                     "train:fc8"):
        assert any(n == expected or n.startswith(expected)
                   for n in names), f"span {expected} missing from JSON"


def test_parser_rejects_unknown_model():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["plan", "--model", "inception"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_layers_flag(capsys):
    assert main([
        "plan", "--model", "resnet50", "--layers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "x 2 layers" in out
