"""Tests for the disk-backed feature store (Appendix B workflow)."""

import numpy as np
import pytest

from repro.cnn import build_model
from repro.core.config import VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import STAGED
from repro.data import foods_dataset, replicate_dataset
from repro.dataflow.context import local_context
from repro.features.store import FeatureStore, dataset_fingerprint


@pytest.fixture
def store(tmp_path):
    return FeatureStore(tmp_path / "features")


def _rows(n=10, dim=8):
    return [
        {"id": i, "tensor": np.full(dim, float(i), dtype=np.float32)}
        for i in range(n)
    ]


class TestFingerprint:
    def test_deterministic(self):
        ds = foods_dataset(num_records=20)
        assert dataset_fingerprint(ds) == dataset_fingerprint(ds)

    def test_differs_across_datasets(self):
        a = foods_dataset(num_records=20)
        b = foods_dataset(num_records=21)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_sensitive_to_image_content(self):
        a = foods_dataset(num_records=20, seed=7)
        b = foods_dataset(num_records=20, seed=8)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_replication_changes_fingerprint(self):
        a = foods_dataset(num_records=10)
        assert dataset_fingerprint(a) != dataset_fingerprint(
            replicate_dataset(a, 2)
        )


class TestStore:
    def test_put_get_roundtrip(self, store):
        rows = _rows()
        store.put("alexnet", "conv5", "fp1", rows)
        back = store.get("alexnet", "conv5", "fp1")
        assert len(back) == 10
        np.testing.assert_array_equal(back[3]["tensor"], rows[3]["tensor"])

    def test_miss_returns_none_and_counts(self, store):
        assert store.get("alexnet", "conv5", "nope") is None
        assert store.misses == 1
        assert store.hits == 0

    def test_hit_counting(self, store):
        store.put("alexnet", "conv5", "fp1", _rows())
        store.get("alexnet", "conv5", "fp1")
        assert store.hits == 1

    def test_contains(self, store):
        assert not store.contains("m", "l", "f")
        store.put("m", "l", "f", _rows())
        assert store.contains("m", "l", "f")

    def test_metadata(self, store):
        store.put("resnet50", "conv4_6", "fpX", _rows(5))
        meta = store.metadata("resnet50", "conv4_6", "fpX")
        assert meta["num_rows"] == 5
        assert meta["model"] == "resnet50"
        assert meta["stored_bytes"] > 0

    def test_entries_listing(self, store):
        store.put("a", "l1", "f", _rows())
        store.put("b", "l2", "f", _rows())
        assert len(store.entries()) == 2

    def test_evict(self, store):
        store.put("a", "l1", "f", _rows())
        store.evict("a", "l1", "f")
        assert not store.contains("a", "l1", "f")
        assert store.metadata("a", "l1", "f") is None

    def test_total_bytes(self, store):
        assert store.total_bytes() == 0
        store.put("a", "l1", "f", _rows(50, dim=100))
        assert store.total_bytes() > 0

    def test_keys_isolated(self, store):
        store.put("alexnet", "conv5", "fp1", _rows(3))
        assert store.get("alexnet", "fc6", "fp1") is None
        assert store.get("vgg16", "conv5", "fp1") is None
        assert store.get("alexnet", "conv5", "fp2") is None


class TestExecutorIntegration:
    def _executor(self, dataset, store):
        model = build_model("alexnet", profile="mini")
        config = VistaConfig(
            cpu=2, num_partitions=4, mem_storage_bytes=0,
            mem_user_bytes=0, mem_dl_bytes=0, join="shuffle",
            persistence="deserialized",
        )
        ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2)
        return FeatureTransferExecutor(
            ctx, model, dataset, ["fc7", "fc8"], config,
            downstream_fn=lambda f, l: {"matrix": f.copy()},
            feature_store=store,
        )

    def test_first_run_populates_store(self, store):
        dataset = foods_dataset(num_records=16)
        result = self._executor(dataset, store).run(
            STAGED, premat_layer="fc7"
        )
        assert result.metrics["premat_store_hit"] is False
        fingerprint = dataset_fingerprint(dataset)
        assert store.contains("alexnet", "fc7", fingerprint)

    def test_second_run_reuses_store_and_skips_inference(self, store):
        dataset = foods_dataset(num_records=16)
        first = self._executor(dataset, store).run(
            STAGED, premat_layer="fc7"
        )
        second = self._executor(dataset, store).run(
            STAGED, premat_layer="fc7"
        )
        assert second.metrics["premat_store_hit"] is True
        assert second.metrics["premat_flops"] == 0
        # identical downstream features either way
        for layer in ("fc7", "fc8"):
            np.testing.assert_allclose(
                second.layer_results[layer].downstream["matrix"],
                first.layer_results[layer].downstream["matrix"],
                rtol=1e-5,
            )

    def test_changed_dataset_misses_store(self, store):
        self._executor(foods_dataset(num_records=16), store).run(
            STAGED, premat_layer="fc7"
        )
        other = self._executor(
            foods_dataset(num_records=16, seed=99), store
        ).run(STAGED, premat_layer="fc7")
        assert other.metrics["premat_store_hit"] is False
