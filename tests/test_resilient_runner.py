"""The degrade-and-retry supervisor: features recovered from any
seeded fault sequence must be bit-identical to a fault-free run, the
degradation ladder must follow the paper's order, and every recovery
action must land in ``metrics["recovery_log"]``."""

import numpy as np
import pytest

from repro.core.api import Vista, default_resources
from repro.core.config import VistaConfig
from repro.core.plans import EAGER, LAZY, Materialization
from repro.core.resilient import ResilientRunner, degrade_once
from repro.data import foods_dataset
from repro.exceptions import ClusterExhausted, NoFeasiblePlan
from repro.faults import FaultPlan


def _make_vista():
    return Vista(
        model_name="alexnet", num_layers=2,
        dataset=foods_dataset(num_records=48),
        resources=default_resources(num_nodes=2),
        downstream_fn=lambda features, labels: {"matrix": features.copy()},
    )


@pytest.fixture(scope="module")
def baseline():
    return _make_vista().run()


def _matrices(result):
    return {
        layer: lr.downstream["matrix"]
        for layer, lr in result.layer_results.items()
    }


def _assert_bit_identical(result, baseline):
    expected = _matrices(baseline)
    actual = _matrices(result)
    assert sorted(actual) == sorted(expected)
    for layer, matrix in expected.items():
        assert np.array_equal(actual[layer], matrix), (
            f"features diverged on {layer}"
        )


# ---------------------------------------------------------------------
# fault-free behaviour
# ---------------------------------------------------------------------
def test_fault_free_run_is_transparent(baseline):
    result = _make_vista().run_resilient()
    _assert_bit_identical(result, baseline)
    assert result.metrics["recovery_log"] == []
    assert result.metrics["recovery_attempts"] == 1
    assert result.metrics["recovered_plan"] == "staged/aj"


# ---------------------------------------------------------------------
# bit-identical features under every injected fault class
# ---------------------------------------------------------------------
FAULT_PLANS = {
    "task-crash": lambda: FaultPlan().task_crash(
        partition=1, attempt=1, times=3
    ),
    "task-oom": lambda: FaultPlan().task_oom(
        partition=0, attempt=1, times=2
    ),
    "worker-loss": lambda: FaultPlan().worker_loss(worker=1),
    "straggler": lambda: FaultPlan().straggler(partition=2, delay_s=30.0),
    "combined": lambda: (
        FaultPlan()
        .task_crash(partition=1, attempt=1, times=3)
        .task_oom(partition=0, attempt=1, times=2)
        .worker_loss(worker=1)
        .straggler(partition=2, delay_s=30.0)
    ),
}


@pytest.mark.parametrize("fault_class", sorted(FAULT_PLANS))
def test_bit_identical_features_under_fault(fault_class, baseline):
    plan = FAULT_PLANS[fault_class]()
    result = _make_vista().run_resilient(fault_plan=plan, seed=7)
    _assert_bit_identical(result, baseline)
    assert result.metrics["faults_injected"]
    assert result.metrics["recovery_log"], (
        "injected faults must leave a recovery trace"
    )


def test_worker_loss_recovery_details(baseline):
    result = _make_vista().run_resilient(
        fault_plan=FaultPlan().worker_loss(worker=1), seed=0
    )
    _assert_bit_identical(result, baseline)
    events = result.metrics["recovery_log"]
    kinds = [e["event"] for e in events]
    assert "worker_lost" in kinds and "blacklist" in kinds
    blacklist = next(e for e in events if e["event"] == "blacklist")
    assert blacklist["worker"] == 1
    # the whole workload completed on the surviving worker, without
    # needing a degradation step
    assert result.metrics["recovery_attempts"] == 1
    assert "degrade" not in kinds


def test_same_seed_same_recovery_log(baseline):
    def go():
        plan = (
            FaultPlan()
            .task_crash(probability=0.5, attempt=None, times=3)
            .worker_loss(worker=1)
        )
        return _make_vista().run_resilient(fault_plan=plan, seed=13)

    first, second = go(), go()
    _assert_bit_identical(first, baseline)
    _assert_bit_identical(second, baseline)
    assert first.metrics["recovery_log"] == second.metrics["recovery_log"]
    assert first.metrics["sim_time_s"] == second.metrics["sim_time_s"]


# ---------------------------------------------------------------------
# the degradation ladder
# ---------------------------------------------------------------------
def test_supervisor_degrades_and_recovers(baseline):
    # partition 0's task fails its entire retry budget on workload
    # attempt 1, escalating to the supervisor; the rule is then spent,
    # so the degraded attempt 2 succeeds.
    plan = FaultPlan().task_oom(partition=0, attempt=None, times=4)
    result = _make_vista().run_resilient(fault_plan=plan, seed=0)
    _assert_bit_identical(result, baseline)
    assert result.metrics["recovery_attempts"] == 2
    degrades = [
        e for e in result.metrics["recovery_log"] if e["event"] == "degrade"
    ]
    assert len(degrades) == 1
    assert degrades[0]["step"] == "join:broadcast->shuffle"
    assert degrades[0]["crash"] == "TransientTaskOOM"
    assert degrades[0]["join"] == "shuffle"
    # the task retries that preceded the escalation are in the log too
    retries = [
        e for e in result.metrics["recovery_log"]
        if e["event"] == "task_retry"
    ]
    assert len(retries) == 3


def test_degradation_ladder_order():
    config = VistaConfig(
        cpu=3, num_partitions=6, mem_storage_bytes=1, mem_user_bytes=1,
        mem_dl_bytes=1, join="broadcast", persistence="deserialized",
    )

    def fake_optimizer(cpu):
        # a fresh optimizer pick resets join/persistence upward; the
        # ladder must re-degrade them before touching cpu again
        return VistaConfig(
            cpu=cpu - 1, num_partitions=6, mem_storage_bytes=1,
            mem_user_bytes=1, mem_dl_bytes=1, join="shuffle",
            persistence="serialized",
        )

    plan = EAGER
    steps = []
    for _ in range(6):
        config, plan, step = degrade_once(config, plan, fake_optimizer)
        steps.append(step)
    assert steps == [
        "join:broadcast->shuffle",
        "persistence:deserialized->serialized",
        "materialization:eager->staged",
        "materialization:staged->lazy",
        "cpu:3->2",
        "cpu:2->1",
    ]
    assert plan.materialization is Materialization.LAZY
    with pytest.raises(NoFeasiblePlan):
        degrade_once(config, plan, fake_optimizer)


def test_cpu_rung_reinvokes_the_optimizer():
    vista = _make_vista()
    config = vista.optimize()
    runner = ResilientRunner(vista)
    lowered = runner._optimize_below(config.cpu)
    assert lowered.cpu < config.cpu
    # Algorithm 1 re-derived np for the lower parallelism
    assert lowered.num_partitions == lowered.cpu * 2


def test_ladder_exhaustion_raises_no_feasible_plan():
    # an unkillable transient OOM on partition 0 crashes every workload
    # attempt, walking the entire ladder down to cpu=1
    plan = FaultPlan().task_oom(partition=0, attempt=None, times=None)
    vista = _make_vista()
    with pytest.raises(NoFeasiblePlan):
        vista.run_resilient(fault_plan=plan, seed=0, max_attempts=64)


def test_non_retryable_crash_is_reraised():
    plan = FaultPlan().worker_loss(worker=0).worker_loss(worker=1)
    vista = _make_vista()
    runner = ResilientRunner(vista, fault_plan=plan, seed=0)
    with pytest.raises(ClusterExhausted):
        runner.run()
    # losing the whole cluster is not a planning problem: no ladder steps
    assert runner.recovery_log.count("degrade") == 0
    assert runner.recovery_log.count("blacklist") == 2


def test_lazy_plan_recovers_too(baseline):
    plan = FaultPlan().task_crash(partition=3, attempt=1, times=2)
    result = _make_vista().run_resilient(plan=LAZY, fault_plan=plan, seed=0)
    _assert_bit_identical(result, baseline)
    assert result.metrics["recovery_log"]


# ---------------------------------------------------------------------
# the recovery log
# ---------------------------------------------------------------------
def test_recovery_log_structure(baseline):
    plan = (
        FaultPlan()
        .task_crash(partition=1, attempt=1, times=2)
        .worker_loss(worker=1)
        .straggler(partition=2, delay_s=5.0)
    )
    result = _make_vista().run_resilient(fault_plan=plan, seed=3)
    _assert_bit_identical(result, baseline)
    events = result.metrics["recovery_log"]
    assert events
    for event in events:
        assert isinstance(event, dict)
        assert "event" in event and "sim_time_s" in event
    for retry in (e for e in events if e["event"] == "task_retry"):
        for key in ("table", "partition", "worker", "attempt", "fault",
                    "backoff_s"):
            assert key in retry
    stamps = [e["sim_time_s"] for e in events]
    assert stamps == sorted(stamps), "simulated time must be monotone"
    assert result.metrics["sim_time_s"] >= stamps[-1]
