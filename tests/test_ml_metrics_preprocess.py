"""Unit tests for metrics and preprocessing."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score, f1_score
from repro.ml.preprocess import standardize, train_test_split


class TestF1:
    def test_perfect_prediction(self):
        assert f1_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_all_wrong(self):
        assert f1_score([1, 1, 0], [0, 0, 1]) == 0.0

    def test_known_value(self):
        # tp=1, fp=1, fn=1 -> F1 = 2/(2+1+1) = 0.5
        assert f1_score([1, 1, 0], [1, 0, 1]) == 0.5

    def test_undefined_returns_zero(self):
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            f1_score([1, 0], [1])


class TestAccuracy:
    def test_basic(self):
        assert accuracy_score([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75

    def test_empty(self):
        assert accuracy_score([], []) == 0.0


class TestStandardize:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = standardize(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_is_safe(self):
        data = np.ones((10, 2))
        scaled = standardize(data)
        assert np.isfinite(scaled).all()

    def test_test_set_uses_train_statistics(self):
        train = np.array([[0.0], [2.0]])
        test = np.array([[1.0]])
        train_s, test_s = standardize(train, test)
        assert test_s[0, 0] == pytest.approx(0.0)


class TestTrainTestSplit:
    def test_split_sizes(self):
        features = np.arange(100).reshape(100, 1)
        labels = np.arange(100) % 2
        xtr, xte, ytr, yte = train_test_split(features, labels, 0.2)
        assert len(xtr) == 80 and len(xte) == 20
        assert len(ytr) == 80 and len(yte) == 20

    def test_partition_is_disjoint_and_complete(self):
        features = np.arange(50).reshape(50, 1)
        labels = np.zeros(50)
        xtr, xte, _, _ = train_test_split(features, labels)
        together = sorted(np.concatenate([xtr, xte]).ravel().tolist())
        assert together == list(range(50))

    def test_deterministic_given_seed(self):
        features = np.arange(30).reshape(30, 1)
        labels = np.zeros(30)
        a = train_test_split(features, labels, seed=7)
        b = train_test_split(features, labels, seed=7)
        np.testing.assert_array_equal(a[0], b[0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros(4))
