"""Unit tests for Eq. 16 size estimation and the s_single/s_double
peaks (Eqs. 5-6), including the Figure 15 upper-bound property."""

import pytest

from repro.cnn import get_model_stats
from repro.core.config import DatasetStats
from repro.core.sizing import (
    eager_table_bytes,
    estimate_sizes,
    intermediate_table_bytes,
)


def test_eq16_arithmetic():
    stats = get_model_stats("alexnet")
    ds = DatasetStats(1000, 10, 14336)
    size = intermediate_table_bytes(stats, "fc6", ds, alpha=2.0)
    expected = 2.0 * 1000 * (8 + 8 + 4 * 4096) + ds.structured_table_bytes()
    assert size == int(expected)


def test_sizes_use_unpooled_dims():
    stats = get_model_stats("resnet50")
    ds = DatasetStats(1000, 10, 14336)
    conv = intermediate_table_bytes(stats, "conv4_6", ds)
    # 14x14x1024 floats, not the 2x2-pooled transfer dim
    assert conv > 2.0 * 1000 * 4 * 14 * 14 * 1024


def test_s_single_is_max_layer(foods_stats):
    stats = get_model_stats("resnet50")
    report = estimate_sizes(stats, stats.feature_layers, foods_stats)
    assert report.s_single == max(report.intermediate_table_bytes.values())
    assert report.s_single == report.intermediate_table_bytes["conv4_6"]


def test_s_double_consecutive_pairs(foods_stats):
    stats = get_model_stats("resnet50")
    layers = stats.feature_layers
    report = estimate_sizes(stats, layers, foods_stats)
    sizes = [report.intermediate_table_bytes[layer] for layer in layers]
    expected = max(
        sizes[i] + sizes[i + 1] for i in range(len(sizes) - 1)
    ) - foods_stats.structured_table_bytes()
    assert report.s_double == expected


def test_single_layer_s_double_equals_s_single(foods_stats):
    stats = get_model_stats("alexnet")
    report = estimate_sizes(stats, ["fc8"], foods_stats)
    assert report.s_double == report.s_single


def test_empty_layer_set_rejected(foods_stats):
    with pytest.raises(ValueError):
        estimate_sizes(get_model_stats("alexnet"), [], foods_stats)


def test_eager_table_larger_than_any_single_layer(foods_stats):
    stats = get_model_stats("resnet50")
    layers = stats.feature_layers
    eager = eager_table_bytes(stats, layers, foods_stats)
    report = estimate_sizes(stats, layers, foods_stats)
    assert eager > report.s_single


def test_intro_blowup_example():
    """Intro: ~14 KB images blow up to ~784 KB feature layers — our
    ResNet50 conv4_6 record carries ~802 KB of features."""
    stats = get_model_stats("resnet50")
    assert stats.materialized_bytes("conv4_6") == pytest.approx(
        784 * 1024, rel=0.05
    )


def test_estimates_are_upper_bounds_on_actual_tables(small_foods):
    """Figure 15: Eq. 16 estimates bound the actual deserialized
    in-memory table sizes, measured on the real dataflow engine."""
    import numpy as np

    from repro.cnn import build_model
    from repro.dataflow.context import local_context
    from repro.dataflow.record import estimate_rows_bytes

    model = build_model("alexnet", profile="mini")
    mini_stats_rows = []
    for srow, irow in zip(
        small_foods.structured_rows[:20], small_foods.image_rows[:20]
    ):
        tensor = model.forward(irow["image"], upto="fc6")
        mini_stats_rows.append(
            {"id": srow["id"], "features": srow["features"],
             "label": srow["label"], "tensor": tensor}
        )
    actual = estimate_rows_bytes(mini_stats_rows)

    # Build a roster-like estimate at mini dims via the same formula.
    ds = DatasetStats(20, 130, 32 * 32 * 3 * 4)
    per_record = 8 + 8 + 4 * 32  # mini fc6 has 32 units
    estimate = 2.0 * 20 * per_record + ds.structured_table_bytes()
    assert estimate >= actual * 0.5  # same order, alpha-inflated
