"""Unit tests for DistributedTable operators."""

import numpy as np
import pytest

from repro.dataflow.context import local_context
from repro.dataflow.partition import SERIALIZED
from repro.dataflow.table import DistributedTable


def _table(ctx, n=40, np_=8, name="t"):
    rows = [
        {"id": i, "x": np.full(8, float(i), dtype=np.float32), "label": i % 2}
        for i in range(n)
    ]
    return DistributedTable.from_rows(ctx, rows, np_, name=name)


def test_from_rows_distributes_evenly(ctx):
    table = _table(ctx, 40, 8)
    assert table.num_partitions == 8
    assert table.num_rows() == 40
    sizes = [len(p) for p in table.partitions]
    assert max(sizes) - min(sizes) <= 1


def test_from_rows_clamps_partitions_to_rows(ctx):
    table = _table(ctx, 3, 100)
    assert table.num_partitions == 3


def test_map_rows_transforms_each_record(ctx):
    table = _table(ctx)
    doubled = table.map_rows(lambda r: {"id": r["id"], "x2": r["x"] * 2})
    row = doubled.to_rows_sorted()[5]
    np.testing.assert_array_equal(row["x2"], np.full(8, 10.0))


def test_map_partitions_can_filter(ctx):
    table = _table(ctx)
    evens = table.map_partitions(
        lambda rows: [r for r in rows if r["id"] % 2 == 0]
    )
    assert evens.num_rows() == 20


def test_filter_rows(ctx):
    table = _table(ctx)
    assert table.filter_rows(lambda r: r["id"] < 10).num_rows() == 10


def test_project_keeps_key(ctx):
    table = _table(ctx)
    slim = table.project(["label"])
    row = slim.to_rows_sorted()[0]
    assert set(row) == {"id", "label"}


def test_repartition_by_key_preserves_rows(ctx):
    table = _table(ctx, 40, 4)
    shuffled = table.repartition_by_key(16)
    assert shuffled.num_partitions == 16
    assert sorted(r["id"] for r in shuffled.collect()) == list(range(40))


def test_repartition_coalesces_same_keys(ctx):
    rows = [{"id": i % 4, "v": i} for i in range(16)]
    table = DistributedTable.from_rows(ctx, rows, 8)
    shuffled = table.repartition_by_key(4)
    for partition in shuffled.partitions:
        keys = {r["id"] for r in partition.rows()}
        for key in keys:
            # every row of a key landed in exactly one partition
            total = sum(
                1 for p in shuffled.partitions for r in p.rows()
                if r["id"] == key
            )
            assert total == 4


def test_repartition_meters_shuffle_bytes(ctx):
    table = _table(ctx)
    before = getattr(ctx, "shuffle_bytes_total", 0)
    table.repartition_by_key(4)
    assert ctx.shuffle_bytes_total > before


def test_cache_places_partitions_on_workers(ctx):
    table = _table(ctx)
    table.cache()
    used = sum(w.storage.used_bytes for w in ctx.workers)
    assert used == table.memory_bytes()


def test_cache_serialized_compresses(ctx):
    table = _table(ctx, 100, 4)
    deser_bytes = table.memory_bytes()
    table.cache(SERIALIZED)
    used = sum(w.storage.used_bytes for w in ctx.workers)
    assert used < deser_bytes


def test_unpersist(ctx):
    table = _table(ctx)
    table.cache().unpersist()
    assert all(w.storage.used_bytes == 0 for w in ctx.workers)


def test_collect_returns_all_rows(ctx):
    table = _table(ctx)
    assert len(table.collect()) == 40


def test_collect_charges_driver(ctx):
    from repro.exceptions import DriverMemoryExceeded
    from repro.memory.model import MemoryBudget

    tiny = MemoryBudget(
        system_bytes=10**6, os_reserved_bytes=0, user_bytes=10**6,
        core_bytes=10**6, storage_bytes=10**6, dl_bytes=10**6,
        driver_bytes=100,
    )
    from repro.dataflow.context import ClusterContext

    ctx2 = ClusterContext(tiny, num_nodes=1, cores_per_node=1)
    table = _table(ctx2)
    with pytest.raises(DriverMemoryExceeded):
        table.collect()


def test_max_partition_bytes(ctx):
    table = _table(ctx)
    assert table.max_partition_bytes() >= table.memory_bytes() // 8
