"""Batched-vs-per-image equivalence: ``forward_batch`` must reproduce
stacked per-image ``forward`` (allclose at float32) for every zoo
model, including partial inference ``f̂_{i→j}`` slices, batch size 1,
and the ragged final partition the executor's partition-level batching
produces."""

import numpy as np
import pytest

from repro.cnn import build_model
from repro.core.config import VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import STAGED
from repro.data import foods_dataset
from repro.dataflow.context import local_context
from repro.features.pooling import pool_feature_tensor, pool_feature_tensor_batch
from repro.tensor.ops import TensorOp, grid_max_pool, grid_max_pool_batch


def _batch(model, size, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(size,) + model.input_shape).astype(np.float32)


@pytest.mark.parametrize("batch_size", [1, 5])
def test_forward_batch_matches_stacked_forward(any_mini_model, batch_size):
    model = any_mini_model
    batch = _batch(model, batch_size)
    batched = model.forward_batch(batch)
    stacked = np.stack([model.forward(image) for image in batch])
    np.testing.assert_allclose(batched, stacked, rtol=1e-4, atol=1e-5)


def test_forward_batch_upto_feature_layers(any_mini_model):
    model = any_mini_model
    batch = _batch(model, 3)
    for layer in model.feature_layers:
        batched = model.forward_batch(batch, upto=layer)
        stacked = np.stack(
            [model.forward(image, upto=layer) for image in batch]
        )
        np.testing.assert_allclose(batched, stacked, rtol=1e-4, atol=1e-5)


def test_partial_forward_batch_slices(any_mini_model):
    """f̂_{i→j} between consecutive feature layers, batched, must match
    the per-image partial path."""
    model = any_mini_model
    batch = _batch(model, 4)
    previous = None
    current = batch
    for layer in model.feature_layers:
        batched = model.partial_forward_batch(current, previous or 0, layer)
        stacked = np.stack([
            model.partial_forward(member, previous or 0, layer)
            for member in current
        ])
        np.testing.assert_allclose(batched, stacked, rtol=1e-4, atol=1e-5)
        current = batched
        previous = layer


def test_apply_batch_default_is_loop_fallback():
    """Ops without a vectorized kernel still batch via the loop
    default."""

    class Doubler(TensorOp):
        def apply(self, tensor):
            return tensor * 2.0

    op = Doubler((3, 3, 2), (3, 3, 2))
    batch = np.arange(36, dtype=np.float32).reshape(2, 3, 3, 2)
    out = op.call_batch(batch)
    np.testing.assert_array_equal(out, batch * 2.0)


def test_grid_max_pool_batch_matches_per_image():
    rng = np.random.default_rng(3)
    batch = rng.normal(size=(7, 6, 5, 4)).astype(np.float32)
    batched = grid_max_pool_batch(batch)
    stacked = np.stack([grid_max_pool(t) for t in batch])
    np.testing.assert_array_equal(batched, stacked)


def test_pool_feature_tensor_batch_matches_per_image():
    rng = np.random.default_rng(4)
    conv = rng.normal(size=(5, 6, 6, 3)).astype(np.float32)
    flat = rng.normal(size=(5, 12)).astype(np.float32)
    for batch in (conv, flat):
        batched = pool_feature_tensor_batch(batch)
        stacked = np.stack([pool_feature_tensor(t) for t in batch])
        np.testing.assert_array_equal(batched, stacked)


def test_ragged_final_partition_matches_direct_inference():
    """A workload whose row count doesn't divide the partition count
    exercises ragged batches; features must equal direct per-image
    inference."""
    dataset = foods_dataset(num_records=13)
    model = build_model("alexnet", profile="mini")
    config = VistaConfig(
        cpu=2, num_partitions=5, mem_storage_bytes=10**9,
        mem_user_bytes=10**9, mem_dl_bytes=10**9, join="shuffle",
        persistence="deserialized",
    )
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2)
    executor = FeatureTransferExecutor(
        ctx, model, dataset, ["fc7"], config,
        downstream_fn=lambda f, l: {"matrix": f.copy()},
    )
    matrix = executor.run(STAGED).layer_results["fc7"].downstream["matrix"]
    structured = sorted(dataset.structured_rows, key=lambda r: r["id"])
    images = {row["id"]: row["image"] for row in dataset.image_rows}
    expected = np.stack([
        np.concatenate([
            np.asarray(row["features"], dtype=np.float32),
            pool_feature_tensor(model.forward(images[row["id"]], upto="fc7")),
        ])
        for row in structured
    ])
    np.testing.assert_allclose(matrix, expected, rtol=1e-4, atol=1e-5)
