"""Integration tests: every logical plan executed end-to-end on the
real dataflow + CNN engines must deliver identical downstream results
(Section 5.2: 'All approaches ... yield identical downstream models'),
with the FLOP relationships of Section 4.2.1.
"""

import numpy as np
import pytest

from repro.cnn import build_model
from repro.core.config import VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import ALL_PLANS, EAGER, LAZY, STAGED
from repro.data import foods_dataset
from repro.dataflow.context import local_context


@pytest.fixture(scope="module")
def setup():
    dataset = foods_dataset(num_records=48)
    model = build_model("alexnet", profile="mini")
    config = VistaConfig(
        cpu=2, num_partitions=8, mem_storage_bytes=10**9,
        mem_user_bytes=10**9, mem_dl_bytes=10**9, join="shuffle",
        persistence="deserialized",
    )
    return dataset, model, config


def _run(setup, plan, layers=("fc7", "fc8"), downstream=None, **kwargs):
    dataset, model, config = setup
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=config.cpu)
    downstream = downstream or (
        lambda features, labels: {"matrix": features.copy()}
    )
    executor = FeatureTransferExecutor(
        ctx, model, dataset, list(layers), config, downstream_fn=downstream
    )
    return executor.run(plan, **kwargs)


def test_all_plans_identical_feature_matrices(setup):
    results = {
        name: _run(setup, plan) for name, plan in ALL_PLANS.items()
    }
    reference = results["staged"]
    for name, result in results.items():
        assert sorted(result.layer_results) == sorted(
            reference.layer_results
        )
        for layer in reference.layer_results:
            np.testing.assert_allclose(
                result.layer_results[layer].downstream["matrix"],
                reference.layer_results[layer].downstream["matrix"],
                rtol=1e-4, atol=1e-5,
                err_msg=f"{name} diverged on {layer}",
            )


def test_lazy_has_redundant_flops(setup):
    lazy = _run(setup, LAZY)
    staged = _run(setup, STAGED)
    eager = _run(setup, EAGER)
    assert lazy.metrics["inference_flops"] > staged.metrics["inference_flops"]
    assert eager.metrics["inference_flops"] == staged.metrics["inference_flops"]


def test_staged_flops_equal_deepest_path(setup):
    dataset, model, _ = setup
    staged = _run(setup, STAGED)
    expected = model.flops_between(0, "fc8") * len(dataset)
    assert staged.metrics["inference_flops"] == expected


def test_lazy_flops_equal_sum_of_paths(setup):
    dataset, model, _ = setup
    lazy = _run(setup, LAZY)
    expected = (
        model.flops_between(0, "fc7") + model.flops_between(0, "fc8")
    ) * len(dataset)
    assert lazy.metrics["inference_flops"] == expected


def test_default_downstream_trains_logistic_regression(setup):
    dataset, model, config = setup
    executor = FeatureTransferExecutor(
        local_context(num_nodes=2, cores_per_node=4, cpu=2), model, dataset,
        ["fc7", "fc8"], config,
    )
    result = executor.run(STAGED)
    for layer_result in result.layer_results.values():
        assert 0.0 <= layer_result.downstream["f1_train"] <= 1.0
        assert layer_result.downstream["model"].weights is not None


def test_feature_dims_are_struct_plus_pooled(setup):
    dataset, model, _ = setup
    result = _run(setup, STAGED, layers=("conv5", "fc8"))
    conv5_dim = result.layer_results["conv5"].feature_dim
    # 130 structured + pooled conv5 (2x2x8 = 32 in the mini profile)
    assert conv5_dim == 130 + 2 * 2 * 8
    assert result.layer_results["fc8"].feature_dim == 130 + 10


def test_premat_shifts_flops(setup):
    dataset, model, _ = setup
    plain = _run(setup, LAZY)
    premat = _run(setup, LAZY, premat_layer="fc7")
    assert premat.metrics["premat_flops"] > 0
    assert premat.metrics["inference_flops"] \
        < plain.metrics["inference_flops"]
    total_premat = (
        premat.metrics["premat_flops"] + premat.metrics["inference_flops"]
    )
    assert total_premat < plain.metrics["inference_flops"]


def test_premat_produces_identical_features(setup):
    plain = _run(setup, STAGED)
    premat = _run(setup, STAGED, premat_layer="fc7")
    for layer in plain.layer_results:
        np.testing.assert_allclose(
            premat.layer_results[layer].downstream["matrix"],
            plain.layer_results[layer].downstream["matrix"],
            rtol=1e-4, atol=1e-5,
        )


def test_broadcast_join_config(setup):
    dataset, model, config = setup
    from dataclasses import replace

    result_b = _run(
        (dataset, model, replace(config, join="broadcast")), STAGED
    )
    result_s = _run(setup, STAGED)
    for layer in result_s.layer_results:
        np.testing.assert_allclose(
            result_b.layer_results[layer].downstream["matrix"],
            result_s.layer_results[layer].downstream["matrix"],
            rtol=1e-5,
        )


def test_serialized_persistence_identical_results(setup):
    dataset, model, config = setup
    from dataclasses import replace

    result = _run(
        (dataset, model, replace(config, persistence="serialized")), STAGED
    )
    reference = _run(setup, STAGED)
    for layer in reference.layer_results:
        np.testing.assert_allclose(
            result.layer_results[layer].downstream["matrix"],
            reference.layer_results[layer].downstream["matrix"],
            rtol=1e-5,
        )


def test_metrics_populated(setup):
    result = _run(setup, STAGED)
    for key in ("inference_flops", "shuffle_bytes", "tasks_run",
                "storage_peak_bytes"):
        assert key in result.metrics
    assert result.metrics["tasks_run"] > 0


def test_eager_sniff_skips_empty_first_partition(setup):
    """The Eager TensorList rejection must look at the first *non-empty*
    partition — an empty partition 0 used to slip multi-image tables
    past the guard."""
    from repro.dataflow.partition import Partition
    from repro.dataflow.table import DistributedTable
    from repro.tensor.tensorlist import TensorList

    dataset, model, config = setup
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=config.cpu)
    executor = FeatureTransferExecutor(
        ctx, model, dataset, ["fc7"], config,
        downstream_fn=lambda f, l: {"matrix": f.copy()},
    )
    tl_rows = [
        {"id": row["id"], "image": TensorList([row["image"]])}
        for row in dataset.image_rows
    ]
    executor.timg = DistributedTable(
        ctx, [Partition.from_rows(0, []), Partition.from_rows(1, tl_rows)],
        name="t_img",
    )
    with pytest.raises(NotImplementedError):
        executor.run(EAGER)


def test_eager_sniff_tolerates_all_empty_table(setup):
    """A table with no rows anywhere must not trip the sniff itself
    (the run fails later, at training, for want of data)."""
    from repro.dataflow.partition import Partition
    from repro.dataflow.table import DistributedTable

    dataset, model, config = setup
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=config.cpu)
    executor = FeatureTransferExecutor(
        ctx, model, dataset, ["fc7"], config,
        downstream_fn=lambda f, l: {"matrix": f.copy()},
    )
    executor.timg = DistributedTable(
        ctx, [Partition.from_rows(0, []), Partition.from_rows(1, [])],
        name="t_img",
    )
    with pytest.raises(ValueError):
        executor.run(EAGER)


def test_resnet_staged_chain(small_foods):
    """Staged inference across ResNet's five feature layers, block to
    block, must match direct inference."""
    model = build_model("resnet50", profile="mini")
    config = VistaConfig(
        cpu=2, num_partitions=4, mem_storage_bytes=10**9,
        mem_user_bytes=10**9, mem_dl_bytes=10**9, join="shuffle",
        persistence="deserialized",
    )
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2)
    dataset = foods_dataset(num_records=12)
    executor = FeatureTransferExecutor(
        ctx, model, dataset, model.feature_layers, config,
        downstream_fn=lambda f, l: {"matrix": f.copy()},
    )
    result = executor.run(STAGED)
    # independently verify one record's conv5_3 features
    image = dataset.image_rows[0]["image"]
    direct = model.forward(image, upto="conv5_3")
    from repro.features.pooling import pool_feature_tensor

    expected = np.concatenate([
        dataset.structured_rows[0]["features"],
        pool_feature_tensor(direct),
    ])
    matrix = result.layer_results["conv5_3"].downstream["matrix"]
    np.testing.assert_allclose(matrix[0], expected, rtol=1e-3, atol=1e-4)
