"""Unit tests for the time-series metrics registry."""

from repro.faults.clock import SimulatedClock
from repro.metrics import (
    METRICS_SCHEMA,
    NULL_METRICS,
    MetricsRegistry,
    find_series,
    merge_exports,
    series_peak,
)


def test_counter_exports_cumulative_series():
    registry = MetricsRegistry()
    counter = registry.counter("tasks_total", worker="w0")
    counter.inc()
    counter.inc(4)
    exported = counter.to_dict()
    assert exported["type"] == "counter"
    assert exported["total"] == 5
    assert [sample[2] for sample in exported["samples"]] == [1, 5]


def test_counter_identity_by_name_and_labels():
    registry = MetricsRegistry()
    assert registry.counter("a", worker="w0") is registry.counter(
        "a", worker="w0"
    )
    assert registry.counter("a", worker="w0") is not registry.counter(
        "a", worker="w1"
    )


def test_gauge_tracks_exact_watermarks():
    registry = MetricsRegistry()
    gauge = registry.gauge("mem_used_bytes", region="user")
    gauge.set(10)
    gauge.set(70)
    gauge.set(30)
    gauge.add(-30)
    exported = gauge.to_dict()
    assert exported["peak"] == 70
    assert exported["low"] == 0
    assert exported["last"] == 0


def test_gauge_compaction_preserves_crests():
    """Overflowing max_samples halves resolution but the waterline's
    peak sample must survive pairwise compaction."""
    registry = MetricsRegistry(max_samples=8)
    gauge = registry.gauge("mem_used_bytes", region="user")
    for value in (1, 2, 3, 999, 4, 5, 6, 7, 8):  # 9th sample compacts
        gauge.set(value)
    assert len(gauge.samples) <= 8
    assert max(sample[2] for sample in gauge.samples) == 999
    assert gauge.peak == 999
    # the just-appended sample (the odd tail) survives compaction
    assert gauge.samples[-1][2] == 8


def test_histogram_buckets_and_summary():
    registry = MetricsRegistry()
    histogram = registry.histogram("join_build_bytes", buckets=(10, 100))
    for value in (5, 50, 500):
        histogram.observe(value)
    exported = histogram.to_dict()
    assert exported["count"] == 3
    assert exported["sum"] == 555
    assert exported["min"] == 5 and exported["max"] == 500
    assert exported["buckets"] == [[10, 1], [100, 1], ["inf", 1]]


def test_ticks_order_samples_across_instruments():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.gauge("b").set(1)
    registry.counter("a").inc()
    ticks_a = [s[1] for s in registry.counter("a").samples]
    ticks_b = [s[1] for s in registry.gauge("b").samples]
    assert ticks_a == [1, 3] and ticks_b == [2]
    assert registry.export()["ticks"] == 3


def test_simulated_clock_stamps_samples():
    clock = SimulatedClock()
    registry = MetricsRegistry(clock=clock)
    gauge = registry.gauge("mem_used_bytes")
    gauge.set(1)
    clock.advance(2.5)
    gauge.set(2)
    assert [sample[0] for sample in gauge.samples] == [0.0, 2.5]


def test_base_labels_merge_into_every_instrument():
    registry = MetricsRegistry(base_labels={"scenario": "oom"})
    registry.counter("tasks_total", worker="w0").inc()
    (series,) = find_series(registry, "tasks_total")
    assert series["labels"] == {"scenario": "oom", "worker": "w0"}


def test_export_and_find_series_shapes():
    registry = MetricsRegistry()
    registry.counter("tasks_total", worker="w0").inc()
    registry.counter("tasks_total", worker="w1").inc(2)
    exported = registry.export()
    assert exported["schema"] == METRICS_SCHEMA
    assert len(find_series(exported, "tasks_total")) == 2
    (w1,) = find_series(exported, "tasks_total", worker="w1")
    assert w1["total"] == 2
    # a trace/v2 envelope wrapping the block resolves the same way
    envelope = {"schema": "trace/v2", "metrics": exported}
    assert len(find_series(envelope, "tasks_total")) == 2
    assert find_series(exported, "absent") == []


def test_series_peak_fallback_order():
    assert series_peak({"peak": 7, "total": 99}) == 7
    assert series_peak({"total": 99}) == 99
    assert series_peak({"max": 3}) == 3
    assert series_peak({"samples": [[0, 1, 4], [0, 2, 9]]}) == 9
    assert series_peak({"samples": []}) is None
    assert series_peak(None) is None


def test_merge_exports_concatenates_tagged_blocks():
    first = MetricsRegistry(base_labels={"scenario": "a"})
    second = MetricsRegistry(base_labels={"scenario": "b"})
    first.counter("tasks_total").inc()
    second.counter("tasks_total").inc(2)
    merged = merge_exports(first.export(), second.export(), None)
    assert len(merged["series"]) == 2
    (b_side,) = find_series(merged, "tasks_total", scenario="b")
    assert b_side["total"] == 2


def test_null_metrics_is_inert():
    assert NULL_METRICS.enabled is False
    instrument = NULL_METRICS.counter("anything", worker="w0")
    assert instrument is NULL_METRICS.gauge("other")
    instrument.inc()
    instrument.set(5)
    instrument.observe(1.0)
    instrument.add(3)
    assert NULL_METRICS.export() is None
    assert NULL_METRICS.instruments() == []
