"""Tests for DAG networks and staged materialization over DAGs — the
paper's Section 5.4 extension."""

import numpy as np
import pytest

from repro.cnn.dag import (
    DagCNN,
    DagNode,
    build_demo_dag,
    run_staged,
    staged_schedule,
)
from repro.exceptions import InvalidLayerError, ShapeError


@pytest.fixture(scope="module")
def dag():
    return build_demo_dag()


@pytest.fixture(scope="module")
def image():
    return np.random.default_rng(0).normal(size=(16, 16, 3)).astype(
        np.float32
    )


class _CountingOp:
    """Records how many times it runs — for no-redundancy assertions."""

    def __init__(self, name, fn=None):
        self.name = name
        self.calls = 0
        self.flops = 1
        self._fn = fn or (lambda t: t + 1.0)

    def __call__(self, tensor):
        self.calls += 1
        return self._fn(tensor)


def _counting_diamond():
    """a -> (b, c) -> d(add), with b and d as feature nodes."""
    ops = {name: _CountingOp(name) for name in "abcd"}
    dag = DagCNN("diamond", [
        DagNode("a", ops["a"]),
        DagNode("b", ops["b"], inputs=("a",), feature_node=True),
        DagNode("c", ops["c"], inputs=("a",)),
        DagNode("d", ops["d"], inputs=("b", "c"), merge="add",
                feature_node=True),
    ])
    return dag, ops


def test_construction_validates_topological_order():
    with pytest.raises(InvalidLayerError):
        DagCNN("bad", [
            DagNode("b", _CountingOp("b"), inputs=("a",)),
            DagNode("a", _CountingOp("a")),
        ])


def test_duplicate_node_rejected():
    with pytest.raises(InvalidLayerError):
        DagCNN("dup", [
            DagNode("a", _CountingOp("a")),
            DagNode("a", _CountingOp("a")),
        ])


def test_unknown_target_rejected(dag, image):
    with pytest.raises(InvalidLayerError):
        dag.forward(image, targets=["nonexistent"])


def test_ancestors():
    dag, _ = _counting_diamond()
    assert dag.ancestors(["d"]) == {"a", "b", "c"}
    assert dag.ancestors(["b"]) == {"a"}
    assert dag.ancestors(["a"]) == set()


def test_required_subgraph_stops_at_cut():
    dag, _ = _counting_diamond()
    assert dag.required_subgraph(["d"]) == ["a", "b", "c", "d"]
    assert dag.required_subgraph(["d"], materialized={"b", "c"}) == ["d"]
    # b materialized but c not: a must still run (c needs it)
    assert dag.required_subgraph(["d"], materialized={"b"}) \
        == ["a", "c", "d"]


def test_forward_computes_feature_nodes(dag, image):
    out = dag.forward(image)
    assert set(out) == {"residual", "fuse", "head"}
    assert out["residual"].shape == (16, 16, 8)
    assert out["fuse"].shape == (16, 16, 8)
    assert out["head"].shape == (4,)


def test_forward_with_materialized_cut_matches_direct(dag, image):
    direct = dag.forward(image, targets=["head"])
    partial = dag.forward(image, targets=["fuse"])
    resumed = dag.forward(
        image, targets=["head"], materialized={"fuse": partial["fuse"]}
    )
    np.testing.assert_allclose(
        resumed["head"], direct["head"], rtol=1e-5
    )


def test_add_merge_shape_mismatch_rejected():
    ops = {name: _CountingOp(name) for name in "ab"}

    def reshape(tensor):
        return tensor.reshape(-1)

    dag = DagCNN("bad-add", [
        DagNode("a", ops["a"]),
        DagNode("b", _CountingOp("b", reshape), inputs=("a",)),
        DagNode("c", _CountingOp("c"), inputs=("a", "b"), merge="add"),
    ])
    with pytest.raises(ShapeError):
        dag.forward(np.zeros((2, 2)), targets=["c"])


def test_concat_merge_channels(dag, image):
    """fuse concatenates stem + both branches: 24 input channels."""
    out = dag.forward(image, targets=["fuse"])
    assert out["fuse"].shape == (16, 16, 8)


def test_staged_schedule_covers_each_node_once():
    dag, ops = _counting_diamond()
    steps = staged_schedule(dag, ["b", "d"])
    computed = [n for step in steps for n in step.compute]
    assert sorted(computed) == ["a", "b", "c", "d"]
    assert len(computed) == len(set(computed))  # no operator twice


def test_staged_schedule_keeps_live_cut_only():
    dag, _ = _counting_diamond()
    steps = staged_schedule(dag, ["b", "d"])
    # after step 1 (target b), d still needs b and c's ancestors
    assert "b" in steps[0].keep
    # after the final step nothing is kept
    assert steps[-1].keep == ()


def test_run_staged_no_redundant_execution():
    dag, ops = _counting_diamond()
    image = np.zeros((2, 2), dtype=np.float32)
    results, _ = run_staged(dag, image, ["b", "d"])
    assert all(op.calls == 1 for op in ops.values()), {
        name: op.calls for name, op in ops.items()
    }
    assert set(results) == {"b", "d"}


def test_run_staged_matches_direct_forward(dag, image):
    staged, _ = run_staged(dag, image, ["residual", "fuse", "head"])
    direct = dag.forward(image, targets=["residual", "fuse", "head"])
    for name in direct:
        np.testing.assert_allclose(
            staged[name], direct[name], rtol=1e-5, atol=1e-6
        )


def test_lazy_on_dag_runs_shared_prefix_repeatedly():
    """The redundancy claim generalizes to DAGs: independent target
    evaluation re-runs shared ancestors; staged does not."""
    dag, ops = _counting_diamond()
    image = np.zeros((2, 2), dtype=np.float32)
    # lazy: each target from scratch
    dag.forward(image, targets=["b"])
    dag.forward(image, targets=["d"])
    lazy_calls = {name: op.calls for name, op in ops.items()}
    assert lazy_calls["a"] == 2  # shared prefix ran twice
    for op in ops.values():
        op.calls = 0
    run_staged(dag, image, ["b", "d"])
    assert all(op.calls == 1 for op in ops.values())


def test_schedule_flops_accounting():
    dag, _ = _counting_diamond()
    steps = staged_schedule(dag, ["b", "d"])
    total = sum(dag.flops_of(step.compute) for step in steps)
    assert total == 4  # each counting op contributes 1


def test_demo_dag_feature_nodes(dag):
    assert dag.feature_nodes == ["residual", "fuse", "head"]


def test_unknown_staged_target_rejected(dag):
    with pytest.raises(InvalidLayerError):
        staged_schedule(dag, ["ghost"])
