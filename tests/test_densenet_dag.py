"""Tests for the DenseNet-mini DAG model and the minimal-live-cut
property of the generalized staged schedule."""

import numpy as np
import pytest

from repro.cnn.dag import run_staged, staged_schedule
from repro.cnn.zoo.densenet import GROWTH_RATE, build_densenet_mini


@pytest.fixture(scope="module")
def densenet():
    return build_densenet_mini()


@pytest.fixture(scope="module")
def image():
    return np.random.default_rng(1).normal(size=(16, 16, 3)).astype(
        np.float32
    )


def test_feature_nodes(densenet):
    assert densenet.feature_nodes == ["block1_out", "block2_out", "head"]


def test_dense_block_concat_widths(densenet):
    """block1's transition consumes stem + 3 grown layers:
    8 + 3 x growth channels."""
    transition = densenet.nodes["block1_out"]
    assert len(transition.inputs) == 4
    assert transition.merge == "concat"
    assert transition.op.input_shape[2] == 8 + 3 * GROWTH_RATE


def test_forward_shapes(densenet, image):
    out = densenet.forward(image)
    assert out["block1_out"].shape == (16, 16, 10)
    assert out["block2_out"].shape[0:2] == (8, 8)
    assert out["head"].shape == (8,)


def test_staged_matches_direct(densenet, image):
    staged, _ = run_staged(densenet, image, densenet.feature_nodes)
    direct = densenet.forward(image)
    for name in direct:
        np.testing.assert_allclose(
            staged[name], direct[name], rtol=1e-4, atol=1e-5
        )


def test_schedule_runs_each_op_once(densenet):
    steps = staged_schedule(densenet, densenet.feature_nodes)
    computed = [n for step in steps for n in step.compute]
    assert len(computed) == len(set(computed)) == len(densenet.nodes)


def test_live_cut_is_minimal(densenet):
    """After materializing a block output, everything upstream is
    covered: the cut is exactly that one node."""
    steps = staged_schedule(densenet, densenet.feature_nodes)
    assert steps[0].keep == ("block1_out",)
    assert steps[1].keep == ("block2_out",)
    assert steps[2].keep == ()


def test_peak_held_far_below_node_count(densenet, image):
    _, peak = run_staged(densenet, image, densenet.feature_nodes)
    assert peak <= 3 < len(densenet.nodes)


def test_deterministic_build(image):
    a = build_densenet_mini()
    b = build_densenet_mini()
    np.testing.assert_array_equal(
        a.forward(image)["head"], b.forward(image)["head"]
    )


def test_partial_from_block1(densenet, image):
    """Resuming from a materialized block1_out matches full inference —
    partial DAG inference as a cross-session premat base."""
    block1 = densenet.forward(image, targets=["block1_out"])
    resumed = densenet.forward(
        image, targets=["head"],
        materialized={"block1_out": block1["block1_out"]},
    )
    direct = densenet.forward(image, targets=["head"])
    np.testing.assert_allclose(
        resumed["head"], direct["head"], rtol=1e-4, atol=1e-5
    )
