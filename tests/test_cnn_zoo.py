"""Unit tests for the model zoo and roster statistics."""

import numpy as np
import pytest

from repro.cnn import MODEL_ROSTER, build_model, get_model_stats
from repro.cnn.zoo.roster import GB
from repro.exceptions import InvalidLayerError


def test_roster_has_the_three_paper_models():
    assert set(MODEL_ROSTER) == {"alexnet", "vgg16", "resnet50"}


def test_unknown_model_rejected():
    with pytest.raises(InvalidLayerError):
        get_model_stats("inception")
    with pytest.raises(InvalidLayerError):
        build_model("inception")


def test_invalid_profile_rejected():
    with pytest.raises(ValueError):
        build_model("alexnet", profile="huge")


@pytest.mark.parametrize("name,expected", [
    ("alexnet", ["conv5", "fc6", "fc7", "fc8"]),
    ("vgg16", ["fc6", "fc7", "fc8"]),
    ("resnet50", ["conv4_6", "conv5_1", "conv5_2", "conv5_3", "fc6"]),
])
def test_paper_feature_layer_sets(name, expected):
    assert get_model_stats(name).feature_layers == expected


def test_mini_and_full_share_layer_names():
    for name in MODEL_ROSTER:
        mini = build_model(name, profile="mini")
        stats = get_model_stats(name)
        assert mini.feature_layers == stats.feature_layers


def test_serialized_size_is_param_bytes():
    stats = get_model_stats("vgg16")
    assert stats.serialized_bytes == 4 * stats.total_params


def test_runtime_footprint_exceeds_serialized():
    """The paper: serialized formats underestimate in-memory size."""
    for name in MODEL_ROSTER:
        stats = get_model_stats(name)
        assert stats.runtime_mem_bytes > stats.serialized_bytes


def test_vgg_has_largest_runtime_footprint():
    mems = {n: get_model_stats(n).runtime_mem_bytes for n in MODEL_ROSTER}
    assert max(mems, key=mems.get) == "vgg16"


def test_gpu_footprints_fit_titan_x_at_low_parallelism():
    for name in MODEL_ROSTER:
        assert get_model_stats(name).gpu_mem_bytes < 12 * GB


def test_flops_between_consecutive_layers_positive():
    stats = get_model_stats("resnet50")
    layers = stats.feature_layers
    for lower, upper in zip(layers, layers[1:]):
        assert stats.flops_between(lower, upper) >= 0


def test_flops_between_rejects_reversed():
    stats = get_model_stats("alexnet")
    with pytest.raises(InvalidLayerError):
        stats.flops_between("fc8", "conv5")


def test_transfer_dim_pools_conv_layers():
    stats = get_model_stats("alexnet")
    conv5 = stats.layer_stats("conv5")
    assert conv5.output_shape == (13, 13, 256)
    assert conv5.transfer_dim == 2 * 2 * 256  # pooled to a 2x2 grid
    fc6 = stats.layer_stats("fc6")
    assert fc6.transfer_dim == 4096  # flat layers pass through


def test_materialized_bytes_unpooled():
    stats = get_model_stats("resnet50")
    assert stats.materialized_bytes("conv4_6") == 4 * 14 * 14 * 1024


def test_lazy_redundancy_example_from_paper():
    """Section 4.2.1: extracting fc7 independently of fc8 incurs ~99%
    redundant computation, because fc8's path is a superset."""
    stats = get_model_stats("alexnet")
    fc7 = stats.layer_stats("fc7").flops_from_input
    fc8 = stats.layer_stats("fc8").flops_from_input
    assert fc7 / fc8 > 0.99


def test_mini_models_execute_and_are_small():
    for name in MODEL_ROSTER:
        model = build_model(name, profile="mini")
        image = np.zeros(model.input_shape, dtype=np.float32)
        out = model.forward(image)
        assert out.ndim == 1


def test_profiles_attached_to_built_models():
    model = build_model("resnet50", profile="mini")
    assert len(model.profiles) == model.num_layers
