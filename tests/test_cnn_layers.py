"""Unit tests for the executable CNN layer TensorOps, checked against
naive reference implementations."""

import numpy as np
import pytest

from repro.cnn import layers as L


def naive_conv(tensor, weights, bias, stride, padding):
    k = weights.shape[0]
    padded = np.pad(
        tensor, ((padding, padding), (padding, padding), (0, 0))
    )
    h = (padded.shape[0] - k) // stride + 1
    w = (padded.shape[1] - k) // stride + 1
    cout = weights.shape[3]
    out = np.zeros((h, w, cout), dtype=np.float32)
    for i in range(h):
        for j in range(w):
            patch = padded[i * stride:i * stride + k, j * stride:j * stride + k]
            for c in range(cout):
                out[i, j, c] = (patch * weights[..., c]).sum() + bias[c]
    return out


@pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (1, 1)])
def test_conv2d_matches_naive(stride, padding):
    rng = np.random.default_rng(0)
    tensor = rng.normal(size=(6, 6, 3)).astype(np.float32)
    weights = rng.normal(size=(3, 3, 3, 4)).astype(np.float32)
    bias = rng.normal(size=4).astype(np.float32)
    conv = L.Conv2D((6, 6, 3), 4, 3, stride=stride, padding=padding,
                    weights=weights, bias=bias)
    expected = naive_conv(tensor, weights, bias, stride, padding)
    np.testing.assert_allclose(conv(tensor), expected, rtol=1e-4, atol=1e-5)


def test_conv2d_output_shape():
    conv = L.Conv2D((8, 8, 3), 16, 3, stride=2, padding=1)
    assert conv.output_shape == (4, 4, 16)


def test_maxpool_matches_manual():
    tensor = np.arange(16.0, dtype=np.float32).reshape(4, 4, 1)
    pool = L.MaxPool2D((4, 4, 1), 2)
    out = pool(tensor)
    assert out.shape == (2, 2, 1)
    assert out[0, 0, 0] == 5.0
    assert out[1, 1, 0] == 15.0


def test_maxpool_with_stride():
    tensor = np.arange(25.0, dtype=np.float32).reshape(5, 5, 1)
    pool = L.MaxPool2D((5, 5, 1), 3, stride=2)
    out = pool(tensor)
    assert out.shape == (2, 2, 1)
    assert out[0, 0, 0] == 12.0


def test_maxpool_pads_with_neg_inf():
    """Regression: zero padding must never beat negative activations
    (the docstring always promised -inf pads)."""
    tensor = np.full((2, 2, 1), -3.0, dtype=np.float32)
    pool = L.MaxPool2D((2, 2, 1), 2, stride=2, padding=1)
    out = pool(tensor)
    assert out.shape == (2, 2, 1)
    np.testing.assert_array_equal(out, np.full((2, 2, 1), -3.0))
    batched = pool.apply_batch(tensor[None, ...])
    np.testing.assert_array_equal(batched[0], out)


def test_avgpool_values():
    tensor = np.arange(16.0, dtype=np.float32).reshape(4, 4, 1)
    out = L.AvgPool2D((4, 4, 1), 2)(tensor)
    assert out[0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)


def test_global_avgpool():
    tensor = np.ones((3, 3, 5), dtype=np.float32) * 2.0
    out = L.GlobalAvgPool((3, 3, 5))(tensor)
    assert out.shape == (1, 1, 5)
    np.testing.assert_allclose(out.ravel(), 2.0)


def test_relu_clamps_negatives():
    tensor = np.array([[-1.0, 2.0]], dtype=np.float32)
    out = L.ReLU((1, 2))(tensor)
    assert np.array_equal(out, [[0.0, 2.0]])


def test_lrn_preserves_shape_and_reduces_magnitude():
    rng = np.random.default_rng(0)
    tensor = rng.normal(size=(4, 4, 8)).astype(np.float32) * 10
    out = L.LocalResponseNorm((4, 4, 8))(tensor)
    assert out.shape == tensor.shape
    assert np.abs(out).max() <= np.abs(tensor).max()
    assert np.sign(out[0, 0, 0]) == np.sign(tensor[0, 0, 0])


def test_flatten_layer():
    out = L.Flatten((2, 2, 2))(np.arange(8.0, dtype=np.float32).reshape(2, 2, 2))
    assert np.array_equal(out, np.arange(8.0))


def test_dense_with_and_without_relu():
    weights = np.array([[1.0], [-1.0]], dtype=np.float32)
    dense_relu = L.Dense(2, 1, weights=weights, relu=True)
    dense_lin = L.Dense(2, 1, weights=weights, relu=False)
    x = np.array([0.0, 2.0], dtype=np.float32)
    assert dense_relu(x)[0] == 0.0
    assert dense_lin(x)[0] == -2.0


def test_dense_bias():
    dense = L.Dense(2, 2, weights=np.zeros((2, 2), dtype=np.float32),
                    bias=np.array([1.0, -5.0], dtype=np.float32), relu=False)
    out = dense(np.zeros(2, dtype=np.float32))
    assert np.array_equal(out, [1.0, -5.0])


def test_bottleneck_identity_shortcut_shape():
    rng = np.random.default_rng(1)
    block = L.BottleneckBlock((8, 8, 16), 4, stride=1, rng=rng)
    out = block(rng.normal(size=(8, 8, 16)).astype(np.float32))
    assert out.shape == (8, 8, 16)
    assert block.shortcut is None


def test_bottleneck_projection_shortcut():
    rng = np.random.default_rng(1)
    block = L.BottleneckBlock((8, 8, 8), 4, stride=2, rng=rng)
    out = block(rng.normal(size=(8, 8, 8)).astype(np.float32))
    assert out.shape == (4, 4, 16)
    assert block.shortcut is not None


def test_bottleneck_output_nonnegative():
    rng = np.random.default_rng(2)
    block = L.BottleneckBlock((4, 4, 8), 2, rng=rng)
    out = block(rng.normal(size=(4, 4, 8)).astype(np.float32))
    assert (out >= 0).all()


def test_bottleneck_param_count_matches_profile():
    from repro.cnn.shapes import LayerSpec, profile_network

    rng = np.random.default_rng(0)
    block = L.BottleneckBlock((8, 8, 8), 4, stride=2, rng=rng)
    profile = profile_network(
        [LayerSpec("b", "bottleneck", {"filters": 4, "stride": 2})],
        (8, 8, 8),
    )[0]
    assert block.param_count() == profile.param_count
