"""Plan EXPLAIN, what-if analysis, and cost-model calibration.

Covers the acceptance contract end to end: the candidate ledger lists
every Algorithm 1 candidate with its Eq. 9-15 terms and rejection
reasons; the winner is the configuration ``Vista.run`` actually
executes; a what-if pinned to the optimizer's choice predicts
per-region peaks inside the documented band of the observed waterlines
for all six plans; and the calibration report's ratios gate cleanly
against themselves."""

import json

import pytest

from repro.cli import main as cli_main
from repro.cnn import build_model, get_model_stats
from repro.core.api import Vista, default_resources
from repro.core.config import DatasetStats, VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import ALL_PLANS
from repro.costmodel.params import PEAK_PREDICTION_BAND
from repro.data import foods_dataset
from repro.dataflow.context import ClusterContext
from repro.explain import (
    calibrate,
    drift_violations,
    explain,
    peak_ratios,
    predict_workload_peaks,
    what_if,
)
from repro.explain.whatif import (
    VERDICT_FEASIBLE,
    VERDICT_OVERCOMMITTED,
    VERDICT_USER_UNDER_REQUIREMENT,
)
from repro.memory.model import GB, MemoryBudget
from repro.metrics import MetricsRegistry, find_series, series_last
from repro.report import compare, has_regression, render_explain

FOODS = DatasetStats(20_000, 130, 14 * 1024)
AMAZON = DatasetStats(200_000, 200, 15 * 1024)


def _paper_workload(model="alexnet", num_layers=4):
    stats = get_model_stats(model)
    return stats, stats.top_feature_layers(num_layers)


def _explain(model="alexnet", num_layers=4, dataset=FOODS,
             resources=None, **kwargs):
    stats, layers = _paper_workload(model, num_layers)
    return explain(
        stats, layers, dataset, resources or default_resources(), **kwargs
    )


# ----------------------------------------------------------------------
# the candidate ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_covers_full_algorithm1_search_range(self):
        result = _explain()
        # linear search descends from min(cores_per_node, cpu_max) - 1
        assert [c.cpu for c in result.candidates] == [7, 6, 5, 4, 3, 2, 1]

    def test_every_candidate_carries_memory_terms(self):
        result = _explain()
        for c in result.candidates:
            regions = c.region_bytes()
            assert set(regions) >= {"user", "core", "dl", "storage"}
            assert c.mem_worker_bytes > 0
            assert c.num_partitions > 0

    def test_rejections_are_structured(self):
        # VGG16 on 8 GB workers: upper cpu candidates cannot fit
        result = _explain(
            "vgg16", 3,
            resources=default_resources(system_gb=8),
        )
        for c in result.rejected():
            assert c.rejection["code"]
            assert c.rejection["detail"]
            assert not c.feasible

    def test_winner_matches_vista_run_config(self):
        """The ledger's CHOSEN row is the configuration ``run``
        executes — cross-checked against the plan_choice gauges the
        run's own optimizer invocation records."""
        vista = Vista(
            model_name="alexnet", num_layers=2,
            dataset=foods_dataset(num_records=24),
            resources=default_resources(num_nodes=2),
            downstream_fn=lambda f, l: {},
        )
        registry = MetricsRegistry()
        vista.run(metrics=registry)
        chosen = vista.explain().chosen
        config = vista._config
        assert (chosen.cpu, chosen.num_partitions) == (
            config.cpu, config.num_partitions
        )
        assert (chosen.join, chosen.persistence) == (
            config.join, config.persistence
        )
        export = registry.export()
        (cpu_series,) = find_series(export, "plan_choice", knob="cpu")
        assert series_last(cpu_series) == chosen.cpu
        (np_series,) = find_series(
            export, "plan_choice", knob="num_partitions"
        )
        assert series_last(np_series) == chosen.num_partitions

    def test_infeasible_workload_has_no_winner(self):
        result = _explain(
            "vgg16", 3, dataset=AMAZON,
            resources=default_resources(system_gb=6),
        )
        assert not result.feasible
        assert result.chosen is None
        assert all(c.rejection for c in result.candidates)
        assert "NO FEASIBLE PLAN" in render_explain(result)

    def test_render_lists_every_candidate(self):
        result = _explain()
        text = render_explain(result)
        for c in result.candidates:
            assert f"\n{c.cpu}  " in "\n" + text or f"cpu={c.cpu}" in text
        assert "CHOSEN" in text
        assert "s_single" in text

    def test_envelope_is_trace_v2(self):
        envelope = _explain().to_envelope(params={"dataset": "foods"})
        assert envelope["schema"] == "trace/v2"
        assert envelope["bench"] == "explain"
        assert envelope["params"]["dataset"] == "foods"
        chosen = envelope["results"]["chosen"]
        assert chosen["feasible"] and chosen["chosen"]
        # round-trips through JSON
        assert json.loads(json.dumps(envelope, default=str))


# ----------------------------------------------------------------------
# what-if
# ----------------------------------------------------------------------
class TestWhatIf:
    def _what_if(self, pins, model="alexnet", num_layers=4, dataset=FOODS,
                 resources=None):
        stats, layers = _paper_workload(model, num_layers)
        return what_if(
            stats, layers, dataset, resources or default_resources(), pins
        )

    def test_pinning_the_optimizer_choice_is_feasible(self):
        result = _explain()
        chosen = result.chosen
        report = self._what_if({
            "cpu": chosen.cpu,
            "join": chosen.join,
            "persistence": chosen.persistence,
        })
        assert report.feasible
        assert report.verdict == VERDICT_FEASIBLE
        assert report.config.cpu == chosen.cpu
        assert report.runtime.seconds > 0
        assert set(report.predicted_peak_bytes) == {
            "user", "core", "dl", "storage", "driver"
        }

    def test_unknown_pin_rejected(self):
        with pytest.raises(ValueError, match="unknown what-if pin"):
            self._what_if({"cpus": 4})

    def test_user_fraction_under_requirement(self):
        report = self._what_if({"user_fraction": 0.001})
        assert not report.feasible
        assert report.verdict == VERDICT_USER_UNDER_REQUIREMENT

    def test_fractions_overcommitted(self):
        report = self._what_if(
            {"user_fraction": 0.8, "storage_fraction": 0.8}
        )
        assert not report.feasible
        assert report.verdict == VERDICT_OVERCOMMITTED

    def test_pinned_plan_prices_that_plan(self):
        lazy = self._what_if({"plan": "lazy"})
        staged = self._what_if({"plan": "staged"})
        assert lazy.plan == "lazy/bj"
        assert staged.plan == "staged/aj"
        # Lazy re-runs every prefix: never cheaper on inference
        assert lazy.runtime.breakdown["inference"] >= \
            staged.runtime.breakdown["inference"]

    def test_explain_attaches_what_if(self):
        result = _explain(what_if_pins={"cpu": 4})
        assert result.what_if is not None
        assert result.what_if.pins == {"cpu": 4}
        assert "what-if:" in render_explain(result)


# ----------------------------------------------------------------------
# mini-scale peak prediction and calibration
# ----------------------------------------------------------------------
def _mini_workload(records=24):
    cnn = build_model("alexnet", profile="mini")
    dataset = foods_dataset(num_records=records)
    config = VistaConfig(
        cpu=2, num_partitions=8, mem_storage_bytes=0, mem_user_bytes=0,
        mem_dl_bytes=0, join="shuffle", persistence="deserialized",
    )
    budget = MemoryBudget(
        system_bytes=32 * GB, os_reserved_bytes=0, user_bytes=1 * GB,
        core_bytes=1 * GB, storage_bytes=1 * GB, dl_bytes=1 * GB,
        driver_bytes=1 * GB, storage_elastic=True,
    )
    return cnn, dataset, config, budget


class TestPeakPrediction:
    @pytest.mark.parametrize("plan_name", sorted(ALL_PLANS))
    def test_predicted_peaks_within_band(self, plan_name):
        """Engine-exact peak prediction: for every plan the predicted
        per-region peak sits inside PEAK_PREDICTION_BAND of the
        observed waterline peak."""
        cnn, dataset, config, budget = _mini_workload()
        registry = MetricsRegistry()
        context = ClusterContext(
            budget, num_nodes=2, cores_per_node=4, cpu=config.cpu
        )
        executor = FeatureTransferExecutor(
            context, cnn, dataset, ["fc7", "fc8"], config,
            downstream_fn=lambda f, l: {}, metrics=registry,
        )
        result = executor.run(ALL_PLANS[plan_name])
        predicted = predict_workload_peaks(
            cnn, dataset, ["fc7", "fc8"], config, ALL_PLANS[plan_name], 2
        )
        ratios = peak_ratios(
            predicted, result.metrics["region_peak_bytes"]
        )
        low, high = PEAK_PREDICTION_BAND
        checked = 0
        for region, ratio in ratios.items():
            if ratio is None:
                continue
            assert low <= ratio <= high, (plan_name, region, ratio)
            checked += 1
        assert checked >= 3, f"{plan_name}: too few regions observed"


class TestCalibration:
    def test_report_gates_cleanly_against_itself(self):
        cnn, dataset, config, budget = _mini_workload()
        report = calibrate(cnn, dataset, ["fc7", "fc8"], config, budget)
        assert len(report.rows) == len(ALL_PLANS)
        assert not any(row.crashed for row in report.rows)
        assert report.in_band() == {}
        for row in report.rows:
            assert row.memory_ratios
            assert row.runtime_ratios
            assert row.op_seconds, f"{row.plan}: no op_seconds totals"
        results = report.results()
        assert results["plans_run"] == len(ALL_PLANS)
        assert results["plans_crashed"] == 0
        assert drift_violations(results, results) == {}

    def test_drift_violations_flag_large_moves(self):
        old = {"memory_ratio_capacity:staged:user": 1.0,
               "runtime_ratio_capacity:staged:train": 100.0}
        drifted = {"memory_ratio_capacity:staged:user": 1.5,
                   "runtime_ratio_capacity:staged:train": 150.0}
        violations = drift_violations(old, drifted)
        assert "memory_ratio_capacity:staged:user" in violations
        # runtime moved only 1.5x: inside the loose runtime gate
        assert "runtime_ratio_capacity:staged:train" not in violations

    def test_op_seconds_histogram_recorded(self):
        cnn, dataset, config, budget = _mini_workload()
        registry = MetricsRegistry()
        context = ClusterContext(
            budget, num_nodes=2, cores_per_node=4, cpu=config.cpu
        )
        FeatureTransferExecutor(
            context, cnn, dataset, ["fc7", "fc8"], config,
            downstream_fn=lambda f, l: {}, metrics=registry,
        ).run(ALL_PLANS["staged"])
        export = registry.export()
        ops = [
            series for series in export["series"]
            if series["name"] == "op_seconds"
        ]
        assert ops, "no op_seconds histograms recorded"
        for series in ops:
            assert series["labels"]["op_type"]
            assert series["count"] > 0
            assert series["sum"] >= 0


class TestPlanChoiceGate:
    def _optimize_export(self, model):
        stats, layers = _paper_workload(
            model, {"alexnet": 4, "vgg16": 3}[model]
        )
        registry = MetricsRegistry()
        from repro.core.optimizer import optimize

        optimize(stats, layers, FOODS, default_resources(),
                 metrics=registry)
        return registry.export()

    def test_identical_choices_do_not_gate(self):
        export = self._optimize_export("alexnet")
        rows = compare(export, export)
        choice_rows = [r for r in rows if "plan_choice" in r["key"]]
        assert choice_rows
        assert not has_regression(choice_rows)

    def test_flipped_choice_is_a_regression(self):
        rows = compare(
            self._optimize_export("alexnet"),
            self._optimize_export("vgg16"),
        )
        flipped = [
            r for r in rows if "plan_choice" in r["key"] and r["regression"]
        ]
        assert flipped, "plan-choice flip not flagged"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_explain_feasible_exits_zero(self, capsys):
        assert cli_main(["explain", "--model", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "candidate ledger" in out
        assert "CHOSEN" in out
        assert "worker memory split" in out

    def test_explain_infeasible_exits_nonzero(self, capsys):
        code = cli_main([
            "explain", "--model", "vgg16", "--dataset", "amazon",
            "--memory-gb", "6",
        ])
        assert code == 1
        assert "NO FEASIBLE PLAN" in capsys.readouterr().out

    def test_explain_with_pins(self, capsys):
        assert cli_main([
            "explain", "--model", "resnet50", "--pin-cpu", "4",
            "--pin-plan", "staged", "--pin-join", "shuffle",
        ]) == 0
        out = capsys.readouterr().out
        assert "what-if:" in out
        assert "cpu=4" in out
        assert "predicted runtime" in out

    def test_explain_json_envelope(self, capsys, tmp_path):
        path = tmp_path / "explain.json"
        assert cli_main([
            "explain", "--model", "alexnet", "--json", str(path),
        ]) == 0
        envelope = json.loads(path.read_text())
        assert envelope["schema"] == "trace/v2"
        assert envelope["bench"] == "explain"
        assert envelope["results"]["chosen"]["cpu"] == \
            envelope["results"]["candidates"][0]["cpu"]
