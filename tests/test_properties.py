"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn import build_model
from repro.dataflow.context import local_context
from repro.dataflow.joins import broadcast_join, shuffle_hash_join
from repro.dataflow.partition import Partition
from repro.dataflow.record import estimate_record_bytes
from repro.dataflow.storage import StorageManager
from repro.dataflow.table import DistributedTable
from repro.ml.metrics import f1_score
from repro.tensor.ops import grid_max_pool
from repro.tensor.tensorlist import TensorList

_MODELS = {
    name: build_model(name, profile="mini")
    for name in ("alexnet", "resnet50")
}


@st.composite
def _image_and_model(draw):
    name = draw(st.sampled_from(sorted(_MODELS)))
    model = _MODELS[name]
    seed = draw(st.integers(0, 2**16))
    image = np.random.default_rng(seed).normal(
        size=model.input_shape
    ).astype(np.float32)
    return model, image


@given(_image_and_model())
@settings(max_examples=15, deadline=None)
def test_partial_inference_composition(model_image):
    """f̂_{i→j} ∘ f̂_{1→i} == f̂_{1→j} for every consecutive feature
    layer pair — the identity underlying Staged execution."""
    model, image = model_image
    previous_name = None
    previous_out = None
    for layer in model.feature_layers:
        if previous_name is None:
            out = model.forward(image, upto=layer)
        else:
            out = model.partial_forward(previous_out, previous_name, layer)
        direct = model.forward(image, upto=layer)
        np.testing.assert_allclose(out, direct, rtol=1e-3, atol=1e-4)
        previous_name, previous_out = layer, out


@given(
    st.lists(st.integers(0, 200), min_size=1, max_size=60, unique=True),
    st.lists(st.integers(0, 200), min_size=1, max_size=60, unique=True),
    st.integers(1, 12),
)
@settings(max_examples=25, deadline=None)
def test_joins_match_set_intersection(left_keys, right_keys, np_):
    """Both physical joins must equal key-set intersection semantics,
    for any partitioning."""
    ctx = local_context()
    left = DistributedTable.from_rows(
        ctx, [{"id": k, "x": k} for k in left_keys], np_
    )
    right = DistributedTable.from_rows(
        ctx, [{"id": k, "y": -k} for k in right_keys], np_
    )
    expected = sorted(set(left_keys) & set(right_keys))
    shuffled = sorted(
        r["id"] for r in shuffle_hash_join(left, right).collect()
    )
    broadcast = sorted(
        r["id"] for r in broadcast_join(left, right).collect()
    )
    assert shuffled == expected
    assert broadcast == expected


@given(st.integers(1, 40), st.integers(2, 64))
@settings(max_examples=25, deadline=None)
def test_record_estimate_upper_bounds_payload(n_fields, dim):
    """The Tungsten-style estimate is always >= the raw payload bytes
    (Figure 15's safety-margin property)."""
    row = {"id": 0}
    for i in range(n_fields):
        row[f"f{i}"] = np.zeros(dim, dtype=np.float32)
    payload = sum(
        v.nbytes for v in row.values() if isinstance(v, np.ndarray)
    )
    assert estimate_record_bytes(row) >= payload


@given(st.lists(st.integers(100, 2000), min_size=1, max_size=20),
       st.integers(500, 5000))
@settings(max_examples=25, deadline=None)
def test_storage_conservation(sizes, capacity):
    """Cached + spilled always accounts for every admitted byte, and
    cached bytes never exceed capacity."""
    storage = StorageManager(capacity)
    total = 0
    for index, size in enumerate(sizes):
        rows = [{"id": index, "x": np.zeros(size // 4, dtype=np.float32)}]
        part = Partition.from_rows(index, rows)
        nbytes = part.memory_bytes()
        storage.cache(f"p{index}", part)
        total += nbytes
    # A single oversized partition may exceed capacity (it has nothing
    # left to evict); otherwise the region respects its budget.
    assert storage.used_bytes <= capacity \
        or len(storage.cached_keys()) == 1
    assert storage.used_bytes + storage.spilled_bytes_total >= min(
        total, storage.used_bytes
    )
    assert storage.used_bytes >= 0


@given(st.lists(st.integers(0, 1), min_size=1, max_size=50),
       st.lists(st.integers(0, 1), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_f1_bounded(a, b):
    n = min(len(a), len(b))
    score = f1_score(a[:n], b[:n])
    assert 0.0 <= score <= 1.0


@given(st.integers(2, 10), st.integers(2, 10), st.integers(1, 8),
       st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_grid_pool_bounds(h, w, c, seed):
    """Pooled values are maxima: bounded by the tensor's max, and at
    least the tensor's min."""
    tensor = np.random.default_rng(seed).normal(size=(h, w, c))
    pooled = grid_max_pool(tensor, grid=2)
    assert pooled.max() == tensor.max()
    assert pooled.min() >= tensor.min()


@given(st.lists(st.integers(1, 16), min_size=0, max_size=5),
       st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_tensorlist_flatten_concat_length(dims, seed):
    rng = np.random.default_rng(seed)
    tensors = [rng.normal(size=d) for d in dims]
    tlist = TensorList(tensors)
    assert tlist.flatten_concat().shape == (sum(dims),)
    assert tlist.num_elements() == sum(dims)


@given(st.integers(1, 64), st.integers(1, 16))
@settings(max_examples=20, deadline=None)
def test_partition_roundtrip(n_rows, dim):
    rows = [
        {"id": i, "x": np.full(dim, float(i), dtype=np.float32)}
        for i in range(n_rows)
    ]
    part = Partition.from_rows(0, rows)
    blob = part.serialized_blob()
    restored = Partition(0, blob=blob)
    assert len(restored) == n_rows
    for original, back in zip(rows, restored.rows()):
        assert original["id"] == back["id"]
        np.testing.assert_array_equal(original["x"], back["x"])


@given(st.integers(1, 7), st.integers(1, 16), st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_optimizer_np_constraints_hold(cpu, nodes, s_single_hundreds_mb):
    """Eq. 13-14: NumPartitions output is always a positive multiple of
    total cores with partitions under p_max."""
    from repro.core.optimizer import num_partitions_for
    from repro.memory.model import MB

    s_single = s_single_hundreds_mb * 100 * MB
    np_ = num_partitions_for(s_single, cpu, nodes, 100 * MB)
    assert np_ % (cpu * nodes) == 0
    assert s_single / np_ <= 100 * MB


@given(
    st.sampled_from(["alexnet", "vgg16", "resnet50"]),
    st.integers(1, 3),
    st.integers(16, 64),     # node memory GB
    st.integers(2, 16),      # nodes
    st.integers(1_000, 500_000),
    st.integers(10, 1000),
)
@settings(max_examples=40, deadline=None)
def test_optimizer_output_always_satisfies_constraints(
    model, num_layers, mem_gb, nodes, records, features
):
    """For any workload/cluster the optimizer either raises
    NoFeasiblePlan or returns a config satisfying every constraint —
    and the cost model's crash check (same arithmetic) agrees."""
    from repro.cnn import get_model_stats
    from repro.core.config import DatasetStats, Resources, SystemDefaults
    from repro.core.optimizer import optimize
    from repro.core.plans import STAGED
    from repro.costmodel import detect_crash, vista_setup
    from repro.costmodel.params import ClusterSpec
    from repro.exceptions import NoFeasiblePlan
    from repro.memory.model import GB

    stats = get_model_stats(model)
    layers = stats.top_feature_layers(
        min(num_layers, len(stats.feature_layers))
    )
    ds = DatasetStats(records, features, 14 * 1024)
    resources = Resources(nodes, mem_gb * GB, 8)
    defaults = SystemDefaults()
    cluster = ClusterSpec(
        num_nodes=nodes, cores_per_node=8,
        system_memory_bytes=mem_gb * GB,
    )
    for backend in ("spark", "ignite"):
        try:
            config = optimize(
                stats, layers, ds, resources, defaults=defaults,
                backend=backend,
            )
        except NoFeasiblePlan:
            continue
        # Eq. 9
        assert 1 <= config.cpu <= 7
        # Eq. 12
        total = (
            defaults.os_reserved_bytes + config.mem_dl_bytes
            + config.mem_user_bytes + defaults.core_memory_bytes
            + config.mem_storage_bytes
        )
        assert total <= resources.system_memory_bytes
        # Eq. 13
        assert config.num_partitions % (config.cpu * nodes) == 0
        # the shared crash model never flags Vista's own configuration
        crash = detect_crash(
            vista_setup(config, backend=backend), stats, layers, ds,
            STAGED.materialization, cluster,
        )
        assert crash is None, (backend, crash)
