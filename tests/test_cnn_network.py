"""Unit tests for the CNN chain and partial inference (Defs. 3.4-3.7)."""

import numpy as np
import pytest

from repro.exceptions import InvalidLayerError
from tests.conftest import random_image


def test_layer_indexing(alexnet_mini):
    assert alexnet_mini.layer_index("conv1") == 1
    assert alexnet_mini.layer_name(1) == "conv1"
    last = alexnet_mini.num_layers
    assert alexnet_mini.layer_name(last) == "fc8"


def test_unknown_layer_rejected(alexnet_mini):
    with pytest.raises(InvalidLayerError):
        alexnet_mini.layer_index("conv99")


def test_out_of_range_index_rejected(alexnet_mini):
    with pytest.raises(InvalidLayerError):
        alexnet_mini.layer_name(0)
    with pytest.raises(InvalidLayerError):
        alexnet_mini.layer_name(99)


def test_forward_full_output_shape(any_mini_model):
    image = random_image(any_mini_model.input_shape)
    out = any_mini_model.forward(image)
    assert out.shape == any_mini_model.output_shape


def test_forward_upto_matches_layer_shape(any_mini_model):
    image = random_image(any_mini_model.input_shape)
    for layer in any_mini_model.feature_layers:
        out = any_mini_model.forward(image, upto=layer)
        assert out.shape == any_mini_model.output_shape_of(layer)


def test_partial_inference_composes(any_mini_model):
    """f̂_{i→j}(f̂_{1→i}(t)) == f̂_{1→j}(t) — the identity Staged
    execution relies on."""
    model = any_mini_model
    image = random_image(model.input_shape, seed=3)
    lower, upper = model.feature_layers[0], model.feature_layers[-1]
    via_lower = model.partial_forward(
        model.forward(image, upto=lower), lower, upper
    )
    direct = model.forward(image, upto=upper)
    np.testing.assert_allclose(via_lower, direct, rtol=1e-4, atol=1e-5)


def test_partial_inference_every_consecutive_pair(resnet50_mini):
    model = resnet50_mini
    image = random_image(model.input_shape, seed=5)
    current = None
    previous = None
    for layer in model.feature_layers:
        if previous is None:
            current = model.forward(image, upto=layer)
        else:
            current = model.partial_forward(current, previous, layer)
        expected = model.forward(image, upto=layer)
        np.testing.assert_allclose(current, expected, rtol=1e-3, atol=1e-4)
        previous = layer


def test_partial_inference_rejects_reversed_range(alexnet_mini):
    image = random_image(alexnet_mini.input_shape)
    fc7 = alexnet_mini.forward(image, upto="fc7")
    with pytest.raises(InvalidLayerError):
        alexnet_mini.partial_forward(fc7, "fc7", "conv5")


def test_partial_from_zero_is_full_path(alexnet_mini):
    image = random_image(alexnet_mini.input_shape)
    np.testing.assert_allclose(
        alexnet_mini.partial_forward(image, 0, "fc8"),
        alexnet_mini.forward(image, upto="fc8"),
        rtol=1e-5,
    )


def test_top_feature_layers_order(resnet50_mini):
    top2 = resnet50_mini.top_feature_layers(2)
    assert top2 == ["conv5_3", "fc6"]
    with pytest.raises(InvalidLayerError):
        resnet50_mini.top_feature_layers(99)
    with pytest.raises(InvalidLayerError):
        resnet50_mini.top_feature_layers(0)


def test_flops_between_uses_profiles(alexnet_mini):
    total = alexnet_mini.flops_between(0, "fc8")
    partial = alexnet_mini.flops_between("conv5", "fc8")
    to_conv5 = alexnet_mini.flops_between(0, "conv5")
    assert total == partial + to_conv5
    assert partial > 0


def test_cnn_is_itself_a_tensorop(alexnet_mini):
    image = random_image(alexnet_mini.input_shape)
    np.testing.assert_allclose(
        alexnet_mini(image), alexnet_mini.forward(image), rtol=1e-6
    )


def test_determinism_same_seed():
    from repro.cnn import build_model

    a = build_model("alexnet", profile="mini", seed=0)
    b = build_model("alexnet", profile="mini", seed=0)
    image = random_image(a.input_shape, seed=1)
    np.testing.assert_array_equal(a.forward(image), b.forward(image))


def test_different_seed_changes_weights():
    from repro.cnn import build_model

    a = build_model("alexnet", profile="mini", seed=0)
    b = build_model("alexnet", profile="mini", seed=1)
    image = random_image(a.input_shape, seed=1)
    assert not np.array_equal(a.forward(image), b.forward(image))
