"""Unit tests for HOG features and feature-layer pooling."""

import numpy as np
import pytest

from repro.features.hog import hog_features
from repro.features.pooling import pool_feature_tensor


class TestHOG:
    def test_descriptor_shape_32px(self):
        image = np.random.default_rng(0).normal(size=(32, 32, 3))
        desc = hog_features(image, cell_size=8, bins=9, block_size=2)
        # 4x4 cells -> 3x3 blocks of 2x2x9 = 36 each
        assert desc.shape == (9 * 36 // 4 * 4,) or desc.shape == (324,)

    def test_blocks_are_l2_normalized(self):
        image = np.random.default_rng(1).normal(size=(32, 32, 3)) * 100
        desc = hog_features(image)
        blocks = desc.reshape(-1, 36)
        norms = np.linalg.norm(blocks, axis=1)
        assert (norms <= 1.0 + 1e-5).all()

    def test_orientation_sensitivity(self):
        """Vertical vs horizontal stripes must produce different
        descriptors — HOG's entire point."""
        ys, xs = np.mgrid[0:32, 0:32]
        vertical = np.sin(xs / 2.0)
        horizontal = np.sin(ys / 2.0)
        dv = hog_features(vertical)
        dh = hog_features(horizontal)
        assert np.linalg.norm(dv - dh) > 0.1

    def test_brightness_invariance_of_flat_image(self):
        flat = np.full((32, 32), 7.0)
        desc = hog_features(flat)
        assert np.isfinite(desc).all()

    def test_grayscale_and_rgb_inputs(self):
        rng = np.random.default_rng(2)
        gray = rng.normal(size=(32, 32))
        rgb = np.stack([gray, gray, gray], axis=-1)
        np.testing.assert_allclose(
            hog_features(gray), hog_features(rgb), atol=1e-5
        )

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            hog_features(np.zeros((4, 4)), cell_size=8)

    def test_bad_ndim_rejected(self):
        with pytest.raises(ValueError):
            hog_features(np.zeros((2, 2, 2, 2)))


class TestPooling:
    def test_conv_tensor_pooled_to_grid(self):
        tensor = np.random.default_rng(0).normal(size=(13, 13, 8))
        pooled = pool_feature_tensor(tensor, grid=2)
        assert pooled.shape == (2 * 2 * 8,)

    def test_flat_vector_passes_through(self):
        vector = np.arange(16.0)
        np.testing.assert_array_equal(pool_feature_tensor(vector), vector)

    def test_pooling_takes_max(self):
        tensor = np.zeros((4, 4, 1))
        tensor[0, 0, 0] = 42.0
        assert pool_feature_tensor(tensor).max() == 42.0

    def test_matches_roster_transfer_dim(self):
        from repro.cnn import get_model_stats

        stats = get_model_stats("alexnet")
        conv5_shape = stats.layer_stats("conv5").output_shape
        pooled = pool_feature_tensor(np.zeros(conv5_shape))
        assert pooled.shape == (stats.layer_stats("conv5").transfer_dim,)
