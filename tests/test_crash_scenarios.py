"""Integration tests: each Section 4.1 crash scenario reproduced on
the real engines by shrinking the corresponding memory region."""

import pytest

from repro.cnn import build_model
from repro.core.config import VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import EAGER, STAGED
from repro.data import foods_dataset
from repro.dataflow.context import ClusterContext
from repro.exceptions import (
    DLExecutionMemoryExceeded,
    DriverMemoryExceeded,
    StorageMemoryExceeded,
    UserMemoryExceeded,
)
from repro.memory.model import GB, MemoryBudget


def _budget(user=1 * GB, core=1 * GB, storage=1 * GB, dl=1 * GB,
            driver=1 * GB, elastic=True):
    return MemoryBudget(
        system_bytes=32 * GB, os_reserved_bytes=0, user_bytes=user,
        core_bytes=core, storage_bytes=storage, dl_bytes=dl,
        driver_bytes=driver, storage_elastic=elastic,
    )


def _executor(budget, cpu=4, num_partitions=8, join="shuffle",
              persistence="deserialized", num_records=24,
              model_mem_bytes=None):
    ctx = ClusterContext(budget, num_nodes=2, cores_per_node=4, cpu=cpu)
    model = build_model("alexnet", profile="mini")
    config = VistaConfig(
        cpu=cpu, num_partitions=num_partitions, mem_storage_bytes=0,
        mem_user_bytes=0, mem_dl_bytes=0, join=join,
        persistence=persistence,
    )
    return FeatureTransferExecutor(
        ctx, model, foods_dataset(num_records=num_records),
        ["fc7", "fc8"], config, model_mem_bytes=model_mem_bytes,
        downstream_fn=lambda f, l: {},
    )


def test_scenario_1_dl_execution_memory_blowup():
    """cpu model replicas exceed DL Execution Memory -> OS kill."""
    executor = _executor(_budget(dl=1000), cpu=4, model_mem_bytes=500)
    with pytest.raises(DLExecutionMemoryExceeded):
        executor.run(STAGED)


def test_scenario_1_fits_at_lower_parallelism():
    """The same model footprint passes once cpu is reduced — the
    tradeoff the optimizer navigates."""
    executor = _executor(_budget(dl=1000), cpu=1, model_mem_bytes=500)
    executor.run(STAGED)  # no crash


def test_scenario_2_insufficient_user_memory():
    """Feature TensorLists of concurrent UDF threads overflow User
    Memory."""
    executor = _executor(_budget(user=10_000), cpu=4)
    with pytest.raises(UserMemoryExceeded):
        executor.run(STAGED)


def test_scenario_2_passes_with_enough_user_memory():
    executor = _executor(_budget(user=1 * GB), cpu=4)
    executor.run(STAGED)


def test_scenario_3_oversized_partitions_exhaust_core_memory():
    """Too few partitions make the join build state exceed Core
    Memory (Figure 11(B)'s low-np crashes)."""
    from repro.exceptions import ExecutionMemoryExceeded

    executor = _executor(
        _budget(core=5_000), cpu=1, num_partitions=1, num_records=48
    )
    with pytest.raises(ExecutionMemoryExceeded):
        executor.run(STAGED)


def test_scenario_4_driver_crash_on_collect():
    """Collecting training vectors at an undersized driver crashes."""
    executor = _executor(_budget(driver=10_000), cpu=2)
    with pytest.raises(DriverMemoryExceeded):
        executor.run(STAGED)


def test_ignite_style_storage_crash_for_eager():
    """Memory-only storage cannot hold Eager's all-layers table
    (Figure 6: Eager on Ignite/Amazon/ResNet50)."""
    executor = _executor(
        _budget(storage=10_000, elastic=False), cpu=2, num_records=48
    )
    with pytest.raises(StorageMemoryExceeded):
        executor.run(EAGER)


def test_spark_style_storage_spills_instead_of_crashing():
    """The same pressure on an elastic (spilling) backend completes,
    paying spill I/O instead (the efficiency-reliability tradeoff)."""
    executor = _executor(
        _budget(storage=10_000, elastic=True), cpu=2, num_records=48
    )
    result = executor.run(EAGER)
    assert result.metrics["spilled_bytes"] > 0


def test_staged_survives_where_eager_storage_crashes():
    """Staged's lower footprint fits the same memory-only storage that
    kills Eager — the headline reliability claim.

    At paper scale the CNN features dwarf the structured vector; to
    recreate that regime at mini scale we shrink the structured vector
    so the materialized tensors dominate the staged tables, then run
    all four AlexNet feature layers (Eager holds all four at once,
    Staged at most two consecutive ones).
    """
    from repro.data import widen_structured_features
    from repro.dataflow.context import ClusterContext

    def build(budget):
        ctx = ClusterContext(budget, num_nodes=2, cores_per_node=4, cpu=2)
        model = build_model("alexnet", profile="mini")
        dataset = widen_structured_features(
            foods_dataset(num_records=48), 4
        )
        config = VistaConfig(
            cpu=2, num_partitions=8, mem_storage_bytes=0,
            mem_user_bytes=0, mem_dl_bytes=0, join="shuffle",
            persistence="deserialized",
        )
        return FeatureTransferExecutor(
            ctx, model, dataset, model.feature_layers, config,
            downstream_fn=lambda f, l: {},
        )

    # Measure both footprints with ample storage first.
    staged_peak = build(_budget()).run(STAGED).metrics["storage_peak_bytes"]
    eager_peak = build(_budget()).run(EAGER).metrics["storage_peak_bytes"]
    assert staged_peak < eager_peak

    budget = _budget(
        storage=(staged_peak + eager_peak) // 2, elastic=False
    )
    with pytest.raises(StorageMemoryExceeded):
        build(budget).run(EAGER)
    build(budget).run(STAGED)  # completes
