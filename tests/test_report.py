"""Tests for the ASCII chart renderer."""

import math

from repro.report import bar_chart, line_chart


class TestBarChart:
    def test_contains_labels_and_values(self):
        chart = bar_chart("t", [("alexnet", 2.5), ("vgg16", 7.5)])
        assert "alexnet" in chart
        assert "7.5" in chart

    def test_bars_proportional(self):
        chart = bar_chart("t", [("a", 1.0), ("b", 4.0)], width=40)
        lines = chart.splitlines()
        bar_a = lines[1].count("#")
        bar_b = lines[2].count("#")
        assert bar_b == 4 * bar_a

    def test_crash_cells_marked(self):
        chart = bar_chart("t", [("ok", 2.0), ("boom", math.inf)])
        assert "X (crash)" in chart

    def test_none_marks_crash_too(self):
        assert "X (crash)" in bar_chart("t", [("a", None)])

    def test_all_crashed(self):
        chart = bar_chart("t", [("a", None), ("b", math.inf)])
        assert chart.count("X (crash)") == 2

    def test_unit_suffix(self):
        assert "3.0min" in bar_chart("t", [("a", 3.0)], unit="min")


class TestLineChart:
    def test_renders_axes_and_legend(self):
        chart = line_chart(
            "speedup", {"vgg16": [1, 2, 4, 7], "alexnet": [1, 1.5, 2, 3]},
            xs=[1, 2, 4, 8],
        )
        assert "speedup" in chart
        assert "vgg16" in chart and "alexnet" in chart
        assert "7.0" in chart and "1.0" in chart

    def test_markers_differ_per_series(self):
        chart = line_chart(
            "t", {"a": [1, 2], "b": [2, 1]}, xs=[0, 1]
        )
        assert "*" in chart and "+" in chart

    def test_handles_crash_points(self):
        chart = line_chart(
            "t", {"a": [1.0, math.inf, 3.0]}, xs=[1, 2, 3]
        )
        assert "3.0" in chart  # inf excluded from scaling

    def test_empty_series(self):
        assert "(no data)" in line_chart("t", {"a": [math.inf]}, xs=[1])

    def test_constant_series_does_not_divide_by_zero(self):
        chart = line_chart("t", {"a": [2.0, 2.0]}, xs=[0, 1])
        assert "2.0" in chart
