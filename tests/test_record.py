"""Unit tests for Tungsten-style record size estimation (Appendix A)."""

import numpy as np
import pytest

from repro.dataflow.record import (
    estimate_record_bytes,
    estimate_rows_bytes,
    estimate_value_bytes,
)
from repro.tensor.tensorlist import TensorList


def test_fixed_fields_are_one_slot():
    # bitmap (8) + 2 fields x 8 bytes
    assert estimate_record_bytes({"id": 1, "y": 2.0}) == 24


def test_array_field_header_plus_payload():
    row = {"id": 1, "x": np.zeros(10, dtype=np.float32)}
    # bitmap + id slot + x slot(header) + 40B payload
    assert estimate_record_bytes(row) == 8 + 8 + 8 + 40


def test_paper_example_layout():
    """Figure 14's example: PK + structured features + image features."""
    row = {
        "pk": 1234,
        "structured": np.zeros(3, dtype=np.float32),
        "image_features": np.zeros(3, dtype=np.float32),
    }
    assert estimate_record_bytes(row) == 8 + 8 + (8 + 12) + (8 + 12)


def test_tensorlist_field():
    tlist = TensorList([np.zeros((2, 2), dtype=np.float32), np.zeros(4)])
    nbytes = estimate_value_bytes(tlist)
    assert nbytes == 16 + 32 + 2 * 8  # payloads + per-tensor headers


def test_bytes_and_str_fields():
    assert estimate_value_bytes(b"abcd") == 4
    assert estimate_value_bytes("héllo") == len("héllo".encode("utf-8"))


def test_none_and_scalars_are_fixed():
    assert estimate_value_bytes(None) == 0
    assert estimate_value_bytes(3) == 0
    assert estimate_value_bytes(2.5) == 0
    assert estimate_value_bytes(np.float32(1.0)) == 0


def test_nested_list_field():
    assert estimate_value_bytes([1, 2, 3]) == 3 * 8


def test_unsupported_type_rejected():
    with pytest.raises(TypeError):
        estimate_value_bytes(object())


def test_rows_bytes_sums():
    rows = [{"id": i} for i in range(5)]
    assert estimate_rows_bytes(rows) == 5 * 16


def test_estimate_is_upper_bound_for_float32_payload():
    """The estimator must be a safe upper bound on raw payload bytes
    (Figure 15's 'safe margin' property)."""
    features = np.random.default_rng(0).normal(size=100).astype(np.float32)
    row = {"id": 1, "features": features}
    assert estimate_record_bytes(row) >= features.nbytes
