"""Unit tests for the abstract memory model and its Spark/Ignite
mappings (Section 4.1, Figure 4)."""

import pytest

from repro.exceptions import (
    DLExecutionMemoryExceeded,
    DriverMemoryExceeded,
    ExecutionMemoryExceeded,
    UserMemoryExceeded,
)
from repro.memory.ignite import ignite_memory_budget
from repro.memory.model import GB, MemoryAccountant, MemoryBudget, Region
from repro.memory.spark import spark_budget_from_regions, spark_memory_budget


def _budget(**overrides):
    defaults = dict(
        system_bytes=32 * GB, os_reserved_bytes=3 * GB, user_bytes=2 * GB,
        core_bytes=2 * GB, storage_bytes=10 * GB, dl_bytes=14 * GB,
        driver_bytes=4 * GB,
    )
    defaults.update(overrides)
    return MemoryBudget(**defaults)


def test_budget_validate_accepts_fitting_regions():
    assert _budget().validate()


def test_budget_validate_rejects_overcommit():
    assert not _budget(dl_bytes=20 * GB).validate()


def test_workload_bytes():
    assert _budget().workload_bytes() == 14 * GB


@pytest.mark.parametrize("region,exc", [
    (Region.USER, UserMemoryExceeded),
    (Region.CORE, ExecutionMemoryExceeded),
    (Region.DL, DLExecutionMemoryExceeded),
    (Region.DRIVER, DriverMemoryExceeded),
])
def test_region_overflow_raises_matching_crash(region, exc):
    acc = MemoryAccountant(_budget())
    with pytest.raises(exc):
        acc.charge(region, 40 * GB)


def test_storage_overflow_does_not_raise():
    """Storage overflow is the storage manager's call (spill vs crash),
    not an immediate exception."""
    acc = MemoryAccountant(_budget())
    acc.charge(Region.STORAGE, 40 * GB)  # no exception
    assert acc.used(Region.STORAGE) == 40 * GB


def test_charge_release_cycle():
    acc = MemoryAccountant(_budget())
    acc.charge(Region.USER, 1 * GB)
    acc.release(Region.USER, 1 * GB)
    assert acc.used(Region.USER) == 0
    assert acc.peak(Region.USER) == 1 * GB


def test_release_never_goes_negative():
    acc = MemoryAccountant(_budget())
    acc.release(Region.USER, 5 * GB)
    assert acc.used(Region.USER) == 0


def test_reservation_context_manager():
    acc = MemoryAccountant(_budget())
    with acc.reserve(Region.USER, 1 * GB):
        assert acc.used(Region.USER) == 1 * GB
    assert acc.used(Region.USER) == 0


def test_reservation_releases_on_exception():
    acc = MemoryAccountant(_budget())
    with pytest.raises(RuntimeError):
        with acc.reserve(Region.USER, 1 * GB):
            raise RuntimeError("boom")
    assert acc.used(Region.USER) == 0


def test_available():
    acc = MemoryAccountant(_budget())
    acc.charge(Region.CORE, 1 * GB)
    assert acc.available(Region.CORE) == 1 * GB


def test_spark_default_split():
    budget = spark_memory_budget(32 * GB, 29 * GB)
    # 40% of heap to User; remainder split between Storage and Core.
    assert budget.user_bytes == int(0.4 * 29 * GB)
    assert budget.core_bytes + budget.storage_bytes == 29 * GB - budget.user_bytes
    assert budget.storage_elastic


def test_spark_dl_is_what_heap_leaves():
    budget = spark_memory_budget(32 * GB, 29 * GB, os_reserved_bytes=3 * GB)
    assert budget.dl_bytes == 0  # 29 + 3 == 32: nothing left for TF


def test_spark_explicit_regions():
    budget = spark_budget_from_regions(
        32 * GB, user_bytes=2 * GB, core_bytes=2 * GB, storage_bytes=11 * GB
    )
    assert budget.dl_bytes == 32 * GB - 3 * GB - 15 * GB
    assert budget.validate()


def test_ignite_static_storage():
    budget = ignite_memory_budget(32 * GB, 4 * GB, 25 * GB)
    assert not budget.storage_elastic
    assert budget.storage_bytes == 25 * GB
    assert budget.dl_bytes == 0  # 3 + 4 + 25 == 32


def test_ignite_user_core_split():
    budget = ignite_memory_budget(32 * GB, 4 * GB, 20 * GB)
    assert budget.user_bytes + budget.core_bytes == 4 * GB
