"""Unit tests for the span-based tracer and its ASCII renderer."""

import json

import pytest

from repro.faults.clock import SimulatedClock
from repro.report import render_trace
from repro.trace import NULL_TRACER, NullTracer, Span, Tracer


# ----------------------------------------------------------------------
# span tree construction
# ----------------------------------------------------------------------
def test_span_nesting():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner-1"):
            tracer.add("rows", 10)
        with tracer.span("inner-2", kind="join"):
            tracer.add("rows", 5)
    root = tracer.finish()
    assert [s.name for s in root.walk()] == [
        "trace", "outer", "inner-1", "inner-2",
    ]
    assert outer.children[1].attrs == {"kind": "join"}
    assert root.total("rows") == 15


def test_current_span_tracks_stack():
    tracer = Tracer()
    assert tracer.current is tracer.root
    with tracer.span("a") as a:
        assert tracer.current is a
        with tracer.span("b") as b:
            assert tracer.current is b
        assert tracer.current is a
    assert tracer.current is tracer.root


def test_counters_accumulate_and_attrs_overwrite():
    span = Span("s")
    span.add("bytes", 100)
    span.add("bytes", 50)
    span.set("join", "shuffle")
    span.set("join", "broadcast")
    assert span.counters["bytes"] == 150
    assert span.attrs["join"] == "broadcast"


def test_exception_marks_error_status():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    span = tracer.root.children[0]
    assert span.status == "error:ValueError"
    assert span.wall_s is not None
    assert tracer.current is tracer.root  # stack unwound


def test_find_prefix_match_and_find_all():
    tracer = Tracer()
    with tracer.span("inference:fc7"):
        pass
    with tracer.span("inference:fc8"):
        pass
    root = tracer.finish()
    assert root.find("inference").name == "inference:fc7"
    assert root.find("inference:fc8").name == "inference:fc8"
    assert root.find("nothing") is None
    assert len(root.find_all("inference")) == 2


def test_time_op_accumulates_per_operator():
    tracer = Tracer()
    with tracer.span("inf"):
        for _ in range(3):
            with tracer.time_op("conv1"):
                pass
        with tracer.time_op("fc6"):
            pass
    span = tracer.root.children[0]
    assert span.counters["op_s:conv1"] >= 0.0
    assert set(span.counters) == {"op_s:conv1", "op_s:fc6"}


# ----------------------------------------------------------------------
# simulated clock determinism
# ----------------------------------------------------------------------
def _simulated_trace():
    clock = SimulatedClock()
    tracer = Tracer(clock=clock)
    with tracer.span("stage-1"):
        clock.advance(1.5)
        tracer.event("spill", bytes=100)
    clock.advance(0.5)
    with tracer.span("stage-2"):
        clock.advance(2.0)
    return tracer.export()


def test_sim_timestamps_are_deterministic():
    first, second = _simulated_trace(), _simulated_trace()

    def sim_view(node):
        return {
            "name": node["name"],
            "sim_start_s": node["sim_start_s"],
            "sim_end_s": node["sim_end_s"],
            "events": node["events"],
            "children": [sim_view(c) for c in node["children"]],
        }

    assert sim_view(first) == sim_view(second)
    stage1 = first["children"][0]
    assert stage1["sim_start_s"] == 0.0
    assert stage1["sim_end_s"] == 1.5
    assert stage1["events"][0]["sim_time_s"] == 1.5
    stage2 = first["children"][1]
    assert stage2["sim_start_s"] == 2.0
    assert stage2["sim_end_s"] == 4.0


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def test_export_round_trips_through_json():
    tracer = Tracer()
    with tracer.span("work", plan="staged/aj"):
        tracer.add("rows", 7)
    exported = tracer.export()
    parsed = json.loads(json.dumps(exported))
    assert parsed == exported
    work = parsed["children"][0]
    assert work["attrs"]["plan"] == "staged/aj"
    assert work["counters"]["rows"] == 7
    assert work["wall_offset_s"] >= 0.0
    assert parsed["wall_offset_s"] == 0.0  # root is its own epoch


def test_to_json_handles_non_serializable_attrs():
    span = Span("s")
    span.set("obj", object())
    assert json.loads(span.to_json())  # default=str keeps it exportable


# ----------------------------------------------------------------------
# null tracer
# ----------------------------------------------------------------------
def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    with NULL_TRACER.span("anything", attr=1) as span:
        span.add("rows", 5)
        span.set("k", "v")
        NULL_TRACER.add("rows")
        NULL_TRACER.set("k", "v")
        NULL_TRACER.event("e")
    with NULL_TRACER.time_op("conv1"):
        pass
    assert NULL_TRACER.export() is None
    assert span.counters == {}
    assert span.attrs == {}


def test_null_span_swallows_exceptions_transparently():
    with pytest.raises(RuntimeError):
        with NULL_TRACER.span("x"):
            raise RuntimeError("must propagate")


# ----------------------------------------------------------------------
# renderer
# ----------------------------------------------------------------------
def _sample_trace():
    tracer = Tracer()
    with tracer.span("workload", plan="staged/aj"):
        with tracer.span("read"):
            tracer.add("bytes_images", 2 * 1024 * 1024)
        with tracer.span("inference:fc7"):
            tracer.add("rows", 40)
            with tracer.time_op("conv1"):
                pass
        tracer.set("sizing", {
            "fc7": {"estimated_bytes": 2048, "measured_bytes": 1024},
        })
        tracer.event("degrade", step="join:broadcast->shuffle")
    return tracer


def test_render_trace_from_span_tracer_and_dict():
    tracer = _sample_trace()
    from_tracer = render_trace(tracer)
    from_dict = render_trace(tracer.export())
    assert from_tracer == from_dict
    assert "workload" in from_tracer
    assert "plan=staged/aj" in from_tracer
    assert "2.0MB" in from_tracer                # human bytes
    assert "~ sizing fc7" in from_tracer         # estimate vs measured
    assert "x2.00" in from_tracer                # est/meas ratio
    assert "* degrade" in from_tracer            # events
    assert "per-operator CNN time:" in from_tracer
    assert "conv1" in from_tracer


def test_render_trace_marks_error_spans():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("bad"):
            raise ValueError()
    text = render_trace(tracer)
    assert "!error:ValueError" in text


def test_render_trace_none():
    assert render_trace(None) == "(no trace recorded)"
