"""Tests for smaller public surfaces: the inference helpers, the
exception hierarchy, the zoo builder's validation, local contexts, and
Vista on GPU resources."""

import numpy as np
import pytest

from repro import Vista, default_resources
from repro.cnn import build_model
from repro.cnn.inference import (
    full_inference,
    partial_inference,
    transfer_features,
)
from repro.core.config import Resources
from repro.data import foods_dataset
from repro.dataflow.context import local_context
from repro.exceptions import (
    DLExecutionMemoryExceeded,
    NoFeasiblePlan,
    ShapeError,
    StorageMemoryExceeded,
    UserMemoryExceeded,
    VistaError,
    WorkloadCrash,
)
from repro.memory.model import GB


class TestInferenceHelpers:
    @pytest.fixture(scope="class")
    def model(self):
        return build_model("alexnet", profile="mini")

    @pytest.fixture(scope="class")
    def image(self, model):
        return np.random.default_rng(2).normal(
            size=model.input_shape
        ).astype(np.float32)

    def test_full_inference_matches_forward(self, model, image):
        np.testing.assert_array_equal(
            full_inference(model, image), model.forward(image)
        )

    def test_full_inference_upto(self, model, image):
        np.testing.assert_array_equal(
            full_inference(model, image, upto="fc7"),
            model.forward(image, upto="fc7"),
        )

    def test_partial_inference_none_start(self, model, image):
        np.testing.assert_array_equal(
            partial_inference(model, image, None, "fc7"),
            model.forward(image, upto="fc7"),
        )

    def test_transfer_features_pools_conv(self, model, image):
        conv5 = model.forward(image, upto="conv5")
        features = transfer_features(model, conv5)
        assert features.shape == (2 * 2 * 8,)

    def test_transfer_features_flat_passthrough(self, model, image):
        fc7 = model.forward(image, upto="fc7")
        np.testing.assert_array_equal(
            transfer_features(model, fc7), fc7
        )


class TestExceptionHierarchy:
    def test_crashes_are_vista_errors(self):
        for exc in (DLExecutionMemoryExceeded, UserMemoryExceeded,
                    StorageMemoryExceeded):
            assert issubclass(exc, WorkloadCrash)
            assert issubclass(exc, VistaError)

    def test_no_feasible_plan_is_not_a_crash(self):
        assert issubclass(NoFeasiblePlan, VistaError)
        assert not issubclass(NoFeasiblePlan, WorkloadCrash)

    def test_shape_error_is_vista_error(self):
        assert issubclass(ShapeError, VistaError)


class TestLocalContext:
    def test_spark_default(self):
        ctx = local_context()
        assert ctx.num_nodes == 2
        assert ctx.workers[0].budget.storage_elastic

    def test_ignite_static_storage(self):
        ctx = local_context(backend="ignite", storage_gb=2)
        assert not ctx.workers[0].budget.storage_elastic
        assert ctx.workers[0].budget.storage_bytes == 2 * GB

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            local_context(backend="flink")

    def test_cpu_defaults_to_cores(self):
        ctx = local_context(cores_per_node=6)
        assert ctx.cpu == 6

    def test_worker_assignment_round_robin(self):
        ctx = local_context(num_nodes=3)
        assert ctx.worker_for(0).node_id == 0
        assert ctx.worker_for(4).node_id == 1

    def test_table_name_counter(self):
        ctx = local_context()
        first = ctx.next_table_name()
        second = ctx.next_table_name()
        assert first != second


class TestVistaOnGpuResources:
    def test_gpu_constraint_respected_in_api(self):
        dataset = foods_dataset(num_records=24)
        resources = Resources(
            num_nodes=1, system_memory_bytes=32 * GB, cores_per_node=8,
            gpu_memory_bytes=12 * GB,
        )
        vista = Vista("vgg16", 2, dataset, resources)
        config = vista.optimize()
        from repro.cnn import get_model_stats

        stats = get_model_stats("vgg16")
        assert config.cpu * stats.gpu_mem_bytes < 12 * GB

    def test_infeasible_resources_raise(self):
        dataset = foods_dataset(num_records=24)
        tiny = Resources(
            num_nodes=1, system_memory_bytes=4 * GB, cores_per_node=8
        )
        vista = Vista("vgg16", 2, dataset, tiny)
        with pytest.raises(NoFeasiblePlan):
            vista.optimize()


class TestIgniteBackendOptimizer:
    def test_ignite_backend_may_lower_cpu_for_storage(self):
        """The Ignite static-storage constraint can only make the pick
        more conservative, never less."""
        from repro.cnn import get_model_stats
        from repro.core.config import DatasetStats
        from repro.core.optimizer import optimize

        stats = get_model_stats("resnet50")
        layers = stats.feature_layers
        ds = DatasetStats(200_000, 200, 15 * 1024)
        resources = Resources(8, 32 * GB, 8)
        spark_cfg = optimize(stats, layers, ds, resources, backend="spark")
        ignite_cfg = optimize(stats, layers, ds, resources,
                              backend="ignite")
        assert ignite_cfg.cpu <= spark_cfg.cpu

    def test_ignite_raises_when_data_cannot_fit_memory(self):
        from repro.cnn import get_model_stats
        from repro.core.config import DatasetStats
        from repro.core.optimizer import optimize

        stats = get_model_stats("resnet50")
        huge = DatasetStats(2_000_000, 200, 15 * 1024)
        resources = Resources(2, 32 * GB, 8)
        with pytest.raises(NoFeasiblePlan):
            optimize(stats, stats.feature_layers, huge, resources,
                     backend="ignite")
        # Spark with spills remains feasible for the same workload.
        optimize(stats, stats.feature_layers, huge, resources,
                 backend="spark")


class TestWorkloadResultSurface:
    def test_result_repr_and_layer_repr(self):
        dataset = foods_dataset(num_records=24)
        vista = Vista("alexnet", 1, dataset, default_resources(num_nodes=2))
        result = vista.run()
        assert "fc8" in repr(result)
        assert "fc8" in repr(result.layer_results["fc8"])
        assert result.metrics["plan"] == "staged/aj"
