"""The streaming observability stack: run ledger, Perfetto export,
live progress/ETA, and the declarative SLO gate engine.

The contract under test is the one the CI ``observe`` job exercises
end to end: every observable fact of a run streams into an append-only
``obs/v1`` ledger *as it happens* (so a SIGKILLed driver still leaves
a readable record to the kill point), the ledger replays losslessly
into the live progress monitor and the Chrome trace-event exporter,
and the repo's bespoke gates — speedup floors, overhead budgets,
drift bands, exact-match fields — evaluate as declarative SLO rules
against any envelope or ledger.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.api import Vista, default_resources
from repro.data import foods_dataset
from repro.dataflow.context import local_context
from repro.dataflow.table import DistributedTable
from repro.faults import FaultPlan, FaultInjector, equip_context
from repro.metrics import MetricsRegistry
from repro.observe import (
    LEDGER_SCHEMA,
    NULL_LEDGER,
    ProgressState,
    RunLedger,
    SloRule,
    StagePlan,
    chrome_trace,
    evaluate_slo,
    has_breach,
    load_rules,
    predict_stage_plan,
    read_ledger,
    render_progress,
    render_slo,
    validate_chrome_trace,
    validate_events,
    write_chrome_trace,
)
from repro.observe.ledger import BARRIER_KINDS, EVENT_KINDS, FLUSH_KINDS
from repro.trace import Tracer, span_from_dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_RULES = os.path.join(REPO_ROOT, "slo", "default.yaml")


def _make_vista(records=48, layers=2, backend="serial"):
    return Vista(
        model_name="alexnet",
        num_layers=layers,
        dataset=foods_dataset(num_records=records),
        resources=default_resources(num_nodes=2),
        exec_backend=backend,
    )


def _ledgered_run(tmp_path, backend="serial", records=48, layers=2,
                  name="run"):
    """One full ledgered+traced run; returns (ledger_path, events,
    tracer, vista)."""
    path = os.path.join(str(tmp_path), f"{name}.ledger.jsonl")
    vista = _make_vista(records=records, layers=layers, backend=backend)
    tracer = Tracer(name=name)
    ledger = RunLedger(path)
    vista.run(tracer=tracer, ledger=ledger)
    ledger.emit("run_end", status="ok")
    ledger.close()
    return path, list(ledger.events), tracer, vista


# ---------------------------------------------------------------------
# ledger: append discipline, round trip, torn tails
# ---------------------------------------------------------------------
def test_ledger_round_trip(tmp_path):
    path = os.path.join(str(tmp_path), "l.jsonl")
    ledger = RunLedger(path)
    ledger.emit("run_meta", model="alexnet", records=48)
    ledger.emit("wave_start", worker=0, size=4, what="t")
    ledger.emit("wave_end", worker=0, results=4, what="t", status="ok")
    ledger.emit("run_end", status="ok")
    ledger.close()
    events, problems = read_ledger(path)
    assert problems == []
    assert validate_events(events) == []
    assert [e["kind"] for e in events] == [
        "ledger_open", "run_meta", "wave_start", "wave_end", "run_end",
    ]
    # File and memory views agree event for event.
    assert events == ledger.events
    # Envelope invariants.
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert all(e["schema"] == LEDGER_SCHEMA for e in events)


def test_ledger_unflushed_events_survive_on_barrier(tmp_path):
    """Group commit: non-barrier events buffer, then land in one write
    at the next flush kind — and never out of order."""
    path = os.path.join(str(tmp_path), "l.jsonl")
    ledger = RunLedger(path)  # ledger_open is a barrier: flushed
    ledger.emit("span_start", name="read", attrs={})
    ledger.emit("metric", metric="x", labels={}, value=1.0)
    on_disk, _ = read_ledger(path)
    assert [e["kind"] for e in on_disk] == ["ledger_open"]
    ledger.emit("wave_start", worker=0, size=1, what="t")  # flush kind
    on_disk, _ = read_ledger(path)
    assert [e["kind"] for e in on_disk] == [
        "ledger_open", "span_start", "metric", "wave_start",
    ]
    ledger.close()


def test_ledger_torn_tail_is_tolerated_interior_is_not(tmp_path):
    path = os.path.join(str(tmp_path), "l.jsonl")
    ledger = RunLedger(path)
    ledger.emit("run_end", status="ok")
    ledger.close()
    with open(path, "ab") as fh:  # simulate a kernel-torn final write
        fh.write(b'{"schema": "obs/v1", "seq": 3, "ki')
    events, problems = read_ledger(path)
    assert len(events) == 2
    assert len(problems) == 1 and problems[0].startswith("torn tail")
    assert validate_events(events) == []
    # The same garbage *inside* the file is a real problem.
    with open(path, "ab") as fh:
        fh.write(b"\n")
        fh.write(json.dumps(ledger.events[-1]).encode() + b"\n")
    _, problems = read_ledger(path)
    assert problems and not problems[0].startswith("torn tail")


def test_ledger_fork_guard(tmp_path):
    """A forked child inheriting the ledger must not interleave writes
    with the parent: emit() in the child is a no-op."""
    path = os.path.join(str(tmp_path), "l.jsonl")
    ledger = RunLedger(path)
    pid = os.fork()
    if pid == 0:
        ledger.emit("metric", metric="child", labels={}, value=1.0)
        os._exit(0)
    os.waitpid(pid, 0)
    ledger.emit("run_end", status="ok")
    ledger.close()
    events, problems = read_ledger(path)
    assert problems == []
    assert all(e.get("metric") != "child" for e in events)


def test_validate_events_flags_schema_problems():
    good = RunLedger()  # memory-only
    good.emit("run_end", status="ok")
    assert validate_events(good.events) == []
    bad = [
        {"schema": "obs/v0", "seq": 1, "wall_s": 0.0,
         "sim_time_s": 0.0, "kind": "x"},
        {"schema": LEDGER_SCHEMA, "seq": 1, "wall_s": "soon",
         "sim_time_s": 0.0, "kind": ""},
        {"schema": LEDGER_SCHEMA, "seq": 0, "sim_time_s": 0.0,
         "kind": "y"},
    ]
    problems = validate_events(bad)
    assert any("schema" in p for p in problems)
    assert any("wall_s" in p for p in problems)
    assert any("seq" in p for p in problems)
    assert any("missing" in p for p in problems)
    assert any("kind" in p for p in problems)


def test_null_ledger_is_inert():
    assert not NULL_LEDGER.enabled
    assert NULL_LEDGER.emit("run_end", status="ok") is None
    assert len(NULL_LEDGER) == 0 and NULL_LEDGER.count("run_end") == 0
    NULL_LEDGER.flush()
    NULL_LEDGER.close()


def test_barrier_kinds_are_flush_kinds():
    assert BARRIER_KINDS <= FLUSH_KINDS <= EVENT_KINDS


# ---------------------------------------------------------------------
# instrument sinks: tracer, metrics, recovery log
# ---------------------------------------------------------------------
def test_tracer_sink_streams_span_lifecycle():
    ledger = RunLedger()
    tracer = Tracer()
    tracer.sink = ledger
    with tracer.span("outer"):
        with tracer.span("inner") as sp:
            sp.add("k", 1)
        tracer.event("tick", n=2)
    kinds = [(e["kind"], e.get("name")) for e in ledger.events[1:]]
    assert kinds == [
        ("span_start", "outer"),
        ("span_start", "inner"),
        ("span_end", "inner"),
        ("trace_point", "tick"),
        ("span_end", "outer"),
    ]
    ends = [e for e in ledger.events if e["kind"] == "span_end"]
    assert all(e["status"] == "ok" and e["span_s"] >= 0 for e in ends)


def test_metrics_sink_throttles_samples():
    ledger = RunLedger()
    registry = MetricsRegistry()
    registry.sink = ledger
    counter = registry.counter("ticks", owner="driver")
    for _ in range(130):
        counter.inc()
    sampled = [e for e in ledger.events if e["kind"] == "metric"]
    # First sample always lands; then every sink_every-th (64).
    assert len(sampled) == 3
    assert all(e["metric"] == "ticks" for e in sampled)


def test_tracer_export_json_round_trip_is_lossless():
    """Satellite: Tracer.export() -> JSON -> span_from_dict rebuilds
    the identical span tree."""
    tracer = Tracer(name="rt")
    with tracer.span("read") as sp:
        sp.add("rows", 48)
        with tracer.span("join"):
            tracer.event("tick", n=1)
    with tracer.span("train", layer="fc7"):
        pass
    exported = tracer.export()
    wire = json.loads(json.dumps(exported, sort_keys=True, default=str))
    rebuilt = span_from_dict(wire)
    assert rebuilt.to_dict() == wire
    # Structure survived, not just the dict: children are Spans.
    names = [c.name for c in rebuilt.children]
    assert "read" in names and "train" in names


# ---------------------------------------------------------------------
# end-to-end ledgers from both backends
# ---------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "process"])
def test_run_ledger_end_to_end(tmp_path, backend):
    path, events, tracer, _ = _ledgered_run(tmp_path, backend=backend)
    parsed, problems = read_ledger(path)
    assert problems == []
    assert validate_events(parsed) == []
    assert parsed == json.loads(json.dumps(events, default=str))
    kinds = {e["kind"] for e in parsed}
    assert {"ledger_open", "span_start", "span_end", "stage_tasks",
            "wave_start", "wave_end", "task_commit",
            "run_end"} <= kinds
    if backend == "process":
        assert "task_fork" in kinds and "task_collect" in kinds
        forks = [e for e in parsed if e["kind"] == "task_fork"]
        collects = [e for e in parsed if e["kind"] == "task_collect"]
        assert len(forks) == len(collects)
        assert all(e["pid"] != os.getpid() for e in forks)
    # Wave accounting: starts and ends pair up per worker/stage.
    starts = [e for e in parsed if e["kind"] == "wave_start"]
    ends = [e for e in parsed if e["kind"] == "wave_end"]
    assert len(starts) == len(ends) > 0
    assert all(e["status"] == "ok" for e in ends)
    # Every stage's committed tasks equal its announced partitions.
    commits = [e for e in parsed if e["kind"] == "task_commit"]
    stages = [e for e in parsed if e["kind"] == "stage_tasks"]
    assert sum(e["partitions"] for e in stages) == len(commits)


def test_backends_emit_equivalent_wave_ledgers(tmp_path):
    """One seeded plan, both backends: the stage/commit story in the
    ledger is identical; only the transport events differ."""
    def story(events):
        out = []
        for e in events:
            if e["kind"] == "stage_tasks":
                out.append(("stage", e["what"], e["partitions"]))
            elif e["kind"] == "task_commit":
                out.append(("commit", e["what"], e["partition"]))
        return out

    _, serial_events, _, _ = _ledgered_run(
        tmp_path, backend="serial", name="serial")
    _, process_events, _, _ = _ledgered_run(
        tmp_path, backend="process", name="process")
    assert story(serial_events) == story(process_events)


# ---------------------------------------------------------------------
# Perfetto / Chrome trace-event export
# ---------------------------------------------------------------------
def test_chrome_trace_from_tracer_only():
    tracer = Tracer(name="t")
    with tracer.span("read"):
        with tracer.span("join"):
            pass
    doc = chrome_trace(trace=tracer.export())
    assert validate_chrome_trace(doc) == []
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {"read", "join"} <= {e["name"] for e in slices}


@pytest.mark.parametrize("backend", ["serial", "process"])
def test_chrome_trace_from_run_ledger(tmp_path, backend):
    """Satellite: the Perfetto export of a ProcessPoolBackend run has
    one track per forked child pid, and those tracks match the
    driver's wave ledger exactly."""
    path, events, tracer, _ = _ledgered_run(tmp_path, backend=backend)
    doc = chrome_trace(trace=tracer.export(), ledger_events=events)
    assert validate_chrome_trace(doc) == []
    trace_events = doc["traceEvents"]
    driver_pid = os.getpid()
    pids = {e["pid"] for e in trace_events}
    forks = [e for e in events if e["kind"] == "task_fork"]
    if backend == "process":
        # One Perfetto track (pid) per distinct forked child, each
        # holding exactly the task slices the wave ledger forked on it.
        child_pids = {e["pid"] for e in forks}
        assert child_pids and child_pids <= pids
        for child in child_pids:
            slices = [
                e for e in trace_events
                if e["pid"] == child and e["ph"] == "X"
            ]
            ledger_tasks = sorted(
                f"task p{e['partition']}" for e in forks
                if e["pid"] == child
            )
            assert sorted(e["name"] for e in slices) == ledger_tasks
    else:
        assert not forks and pids == {driver_pid}
    # Wave slices ride the driver's wave-scheduler track.
    wave_slices = [
        e for e in trace_events
        if e["ph"] == "X" and e["name"].startswith("wave w")
    ]
    assert len(wave_slices) == sum(
        1 for e in events if e["kind"] == "wave_start"
    )
    assert all(e["pid"] == driver_pid for e in wave_slices)


def test_chrome_trace_closes_torn_ledger(tmp_path):
    """A killed run's ledger (open spans, unfinished waves and forks)
    still renders: everything open is closed at the last event with
    status 'torn'."""
    ledger = RunLedger()
    ledger.emit("span_start", name="inference:fc7", attrs={})
    ledger.emit("wave_start", worker=0, size=4, what="t_feat")
    ledger.emit("task_fork", pid=4242, partition=3, attempt=1,
                what="t_feat")
    doc = chrome_trace(ledger_events=list(ledger.events))
    assert validate_chrome_trace(doc) == []
    torn = [
        e for e in doc["traceEvents"]
        if e["ph"] == "X" and e.get("args", {}).get("status") == "torn"
    ]
    assert {e["name"] for e in torn} == {
        "inference:fc7", "wave w0", "task p3",
    }


def test_write_chrome_trace_accepts_path_and_ledger(tmp_path):
    path, _, tracer, _ = _ledgered_run(tmp_path, name="w")
    out = os.path.join(str(tmp_path), "trace.json")
    write_chrome_trace(out, trace=tracer.export(), ledger=path)
    doc = json.load(open(out))
    assert validate_chrome_trace(doc) == []
    assert doc["traceEvents"]


# ---------------------------------------------------------------------
# progress monitor and ETA
# ---------------------------------------------------------------------
def _run_with_progress(tmp_path, backend="process", records=96,
                       layers=3):
    vista = _make_vista(records=records, layers=layers, backend=backend)
    tracer = Tracer()
    ledger = RunLedger(
        os.path.join(str(tmp_path), "progress.ledger.jsonl"))
    config = vista.optimize()
    stage_plan = predict_stage_plan(
        vista.model_stats, vista.layers, vista.dataset_stats,
        vista.plan, config, vista.resources, backend=vista.backend,
    )
    ledger.emit("stage_plan", plan=vista.plan.label,
                stages=stage_plan.to_list())
    state = ProgressState(stage_plan)
    ledger.listeners.append(state)
    vista.run(tracer=tracer, ledger=ledger)
    ledger.emit("run_end", status="ok")
    ledger.close()
    return state, list(ledger.events), stage_plan


def test_progress_tracks_stages_to_completion(tmp_path):
    state, events, stage_plan = _run_with_progress(tmp_path)
    assert state.run_ended and state.run_status == "ok"
    assert state.stages_done() == len(stage_plan)
    assert state.fraction() == 1.0
    assert state.eta_s() == 0.0
    # Snapshots were taken at every stage completion, monotonically.
    assert len(state.snapshots) == len(stage_plan)
    fractions = [s[1] for s in state.snapshots]
    assert fractions == sorted(fractions)
    rendered = render_progress(state)
    assert "run ok" in rendered


def test_halfway_eta_within_2x_of_actual(tmp_path):
    """The ISSUE acceptance bound, as a test: at the first snapshot at
    or past 50% predicted progress, ETA is within 2x either way of the
    wall time actually remaining."""
    state, events, _ = _run_with_progress(tmp_path, layers=4)
    end_wall = next(
        e["wall_s"] for e in events if e["kind"] == "run_end")
    snap = next(s for s in state.snapshots if s[1] >= 0.5)
    wall, _, eta, _ = snap
    actual = end_wall - wall
    assert actual > 0
    assert 0.5 <= eta / actual <= 2.0, (
        f"eta {eta:.3f}s vs actual remaining {actual:.3f}s"
    )


def test_progress_replays_from_ledger_file(tmp_path):
    """`repro top` contract: the stage_plan event plus the event
    stream rebuild the exact live state, no tracer or run objects."""
    state, events, _ = _run_with_progress(tmp_path)
    plan_event = next(e for e in events if e["kind"] == "stage_plan")
    replayed = ProgressState(StagePlan.from_list(plan_event["stages"]))
    for event in events:
        replayed.on_event(event)
    assert replayed.stages_done() == state.stages_done()
    assert replayed.fraction() == pytest.approx(state.fraction())
    # Snapshots agree modulo the stage plan's serialized rounding.
    assert len(replayed.snapshots) == len(state.snapshots)
    for live, replay in zip(state.snapshots, replayed.snapshots):
        assert replay[0] == live[0] and replay[3] == live[3]
        assert replay[1] == pytest.approx(live[1], rel=1e-4)
        assert replay[2] == pytest.approx(live[2], rel=1e-4)


def test_stage_plan_round_trip():
    vista = _make_vista()
    config = vista.optimize()
    plan = predict_stage_plan(
        vista.model_stats, vista.layers, vista.dataset_stats,
        vista.plan, config, vista.resources, backend=vista.backend,
    )
    assert len(plan) > 0 and plan.total_predicted_s > 0
    clone = StagePlan.from_list(
        json.loads(json.dumps(plan.to_list())))
    assert clone.to_list() == plan.to_list()


def test_eta_affine_calibration_handles_flat_observed_costs():
    """Mini-scale regression: predictions inside a bucket span orders
    of magnitude while observed cost is flat; the per-bucket affine
    fit must price pending stages near the flat observed cost instead
    of scaling the tiny predictions down to nothing."""
    stages = [
        {"key": "inference:a", "matcher": "inference:a",
         "predicted_s": 1.0},
        {"key": "inference:b", "matcher": "inference:b",
         "predicted_s": 0.04},
        {"key": "inference:c", "matcher": "inference:c",
         "predicted_s": 0.01},
    ]
    state = ProgressState(StagePlan.from_list(stages))
    wall = 0.0
    for name, observed in (("inference:a", 0.05), ("inference:b", 0.05)):
        wall += observed
        state.on_event({"kind": "span_start", "name": name,
                        "wall_s": wall - observed})
        state.on_event({"kind": "span_end", "name": name,
                        "span_s": observed, "wall_s": wall})
    eta = state.eta_s()
    assert 0.025 <= eta <= 0.1, f"eta {eta:.4f}s not near the flat 0.05s"


# ---------------------------------------------------------------------
# worker_kill chaos: the ledger records the loss as it happens
# ---------------------------------------------------------------------
def test_worker_kill_ledger_within_one_wave(tmp_path):
    """Acceptance: a ProcessPoolBackend task killed mid-wave
    (FaultPlan.worker_kill, a real SIGKILL) leaves a ledger whose loss
    events land inside the wave that died — and the whole ledger
    replays through the SLO engine and the Perfetto exporter."""
    path = os.path.join(str(tmp_path), "kill.ledger.jsonl")
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2,
                        exec_backend="process")
    ctx = equip_context(
        ctx,
        injector=FaultInjector(
            FaultPlan().worker_kill(partition=5, phase="start"), seed=0),
    )
    ledger = RunLedger(path)
    ctx.attach_ledger(ledger)
    rows = [
        {"id": i, "x": np.full((4, 4), i, dtype=np.float32)}
        for i in range(24)
    ]
    table = DistributedTable.from_rows(ctx, rows, 8, name="t_in")
    table.map_partitions(
        lambda rs: [{"id": r["id"], "x": r["x"] * 2.0} for r in rs],
        name="t_out",
    )
    ledger.emit("run_end", status="ok")
    ledger.close()

    events, problems = read_ledger(path)
    assert problems == [] and validate_events(events) == []
    kinds = [e["kind"] for e in events]
    # The injected kill is visible three ways, in stream order inside
    # one wave: the fork, the lost collect, the failed wave, then the
    # recovery-log entries the supervisor wrote.
    lost = kinds.index("task_collect")
    collects = [e for e in events if e["kind"] == "task_collect"]
    lost_collects = [
        e for e in collects if e["status"] == "worker-lost"]
    assert len(lost_collects) == 1
    lost_seq = next(
        e["seq"] for e in events
        if e["kind"] == "task_collect" and e["status"] == "worker-lost")
    wave_bounds = [
        e["seq"] for e in events
        if e["kind"] in ("wave_start", "wave_end")]
    # Within one wave: some wave boundary brackets the loss tightly.
    before = max((s for s in wave_bounds if s < lost_seq), default=None)
    after = min((s for s in wave_bounds if s > lost_seq), default=None)
    assert before is not None and after is not None
    failed_wave = next(
        e for e in events
        if e["kind"] == "wave_end" and e["seq"] == after)
    assert failed_wave["status"] == "worker-lost"
    recoveries = [e for e in events if e["kind"] == "recovery"]
    assert {e["event"] for e in recoveries} >= {
        "worker_kill", "worker_lost", "blacklist"}
    # Replayable through the SLO engine...
    verdicts = evaluate_slo(load_rules(DEFAULT_RULES), path)
    assert not has_breach(verdicts)
    # ...and the Perfetto exporter, with the kill's task slice present.
    doc = chrome_trace(ledger_events=events)
    assert validate_chrome_trace(doc) == []
    lost_pid = lost_collects[0]["pid"]
    assert any(e["pid"] == lost_pid for e in doc["traceEvents"])


def test_sigkilled_driver_leaves_readable_ledger(tmp_path):
    """Real driver death: SIGKILL the CLI mid-run and the ledger file
    still parses to the kill point with zero schema problems."""
    path = os.path.join(str(tmp_path), "killed.ledger.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run", "--records", "96",
         "--nodes", "2", "--model", "alexnet", "--layers", "4",
         "--backend", "process", "--ledger", path],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            try:
                with open(path, "rb") as fh:
                    if b'"kind":"wave_start"' in fh.read():
                        break
            except FileNotFoundError:
                pass
            assert proc.poll() is None, "run finished before the kill"
            time.sleep(0.01)
        else:
            pytest.fail("never saw a wave_start event")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait()
    events, problems = read_ledger(path)
    assert [p for p in problems if not p.startswith("torn tail")] == []
    assert validate_events(events) == []
    kinds = [e["kind"] for e in events]
    assert "wave_start" in kinds and "run_end" not in kinds
    # Replayable: the torn run still renders as a Chrome trace and
    # passes the SLO gates (completion is a warn, not a breach).
    assert validate_chrome_trace(chrome_trace(ledger_events=events)) == []
    verdicts = evaluate_slo(load_rules(DEFAULT_RULES), path)
    assert not has_breach(verdicts)
    statuses = {v.rule.name: v.status for v in verdicts}
    assert statuses["ledger-run-completed"] == "warn"


# ---------------------------------------------------------------------
# SLO engine
# ---------------------------------------------------------------------
def test_slo_rule_validation():
    with pytest.raises(ValueError):
        SloRule(name="x", metric="results.a", comparator="~=",
                threshold=1.0)
    with pytest.raises(ValueError):
        SloRule(name="x", metric="results.a", comparator=">=",
                threshold=1.0, severity="fatal")
    with pytest.raises(ValueError):
        SloRule(name="x", metric="results.a", comparator=">=",
                threshold=1.0, against="delta")


def test_slo_evaluation_against_envelope():
    envelope = {
        "schema": "trace/v2",
        "params": {"overhead": {"fraction": 0.01}},
        "results": [{"speedup": 3.2}, {"speedup": 5.1}],
    }
    rules = [
        SloRule(name="floor", metric="results.speedup.max",
                comparator=">=", threshold=3.0),
        SloRule(name="budget", metric="params.overhead.fraction",
                comparator="<=", threshold=0.05),
        SloRule(name="absent", metric="params.nope",
                comparator=">=", threshold=1.0),
        SloRule(name="needed", metric="params.nope",
                comparator=">=", threshold=1.0, required=True),
        SloRule(name="soft", metric="results.speedup.min",
                comparator=">=", threshold=100.0, severity="warn"),
    ]
    verdicts = evaluate_slo(rules, envelope)
    statuses = {v.rule.name: v.status for v in verdicts}
    assert statuses == {
        "floor": "pass", "budget": "pass", "absent": "skip",
        "needed": "breach", "soft": "warn",
    }
    assert has_breach(verdicts)
    rendered = render_slo(verdicts)
    assert "breach" in rendered and "needed" in rendered


def test_slo_baseline_ratio_and_equal():
    baseline = {
        "results": {"runtime_ratio_a": 2.0, "runtime_ratio_b": 4.0},
        "metrics": {"series": [
            {"name": "plan_choice", "labels": {},
             "samples": [[0.0, 0.0, "staged"]]},
        ]},
    }
    drifted = {
        "results": {"runtime_ratio_a": 2.1, "runtime_ratio_b": 400.0},
        "metrics": {"series": [
            {"name": "plan_choice", "labels": {},
             "samples": [[0.0, 0.0, "lazy-aj"]]},
        ]},
    }
    rules = [
        SloRule(name="drift", metric="results.runtime_ratio_*",
                comparator="<=", threshold=25.0,
                against="baseline-ratio"),
        SloRule(name="exact", metric="series:plan_choice.last",
                comparator="<=", threshold=0, against="baseline-equal"),
    ]
    clean = evaluate_slo(rules, baseline, baseline=baseline)
    assert not has_breach(clean)
    dirty = evaluate_slo(rules, drifted, baseline=baseline)
    statuses = {v.rule.name: v.status for v in dirty}
    assert statuses == {"drift": "breach", "exact": "breach"}


def test_default_ruleset_loads_and_self_gates():
    """The committed ruleset parses (flat-YAML, no PyYAML installed)
    and re-expresses the repo's gates: the committed envelopes must
    clear their own rules."""
    rules = load_rules(DEFAULT_RULES)
    names = {r.name for r in rules}
    assert {"kernels-batched-speedup-floor", "ledger-overhead-budget",
            "calibration-memory-drift", "exact-plan-choice",
            "ledger-no-parse-errors"} <= names
    kernels = os.path.join(REPO_ROOT, "BENCH_kernels.json")
    verdicts = evaluate_slo(rules, kernels)
    assert not has_breach(verdicts)
    statuses = {v.rule.name: v.status for v in verdicts}
    assert statuses["kernels-batched-speedup-floor"] == "pass"
    assert statuses["ledger-overhead-budget"] == "pass"
    calibration = os.path.join(REPO_ROOT, "BENCH_calibration.json")
    verdicts = evaluate_slo(rules, calibration, baseline=calibration)
    assert not has_breach(verdicts)
    statuses = {v.rule.name: v.status for v in verdicts}
    assert statuses["calibration-memory-drift"] == "pass"


def test_load_rules_json_and_yaml_agree(tmp_path):
    yaml_rules = load_rules(DEFAULT_RULES)
    as_json = os.path.join(str(tmp_path), "rules.json")
    with open(as_json, "w") as fh:
        json.dump(
            {"rules": [vars(r) for r in yaml_rules]}, fh, default=str)
    assert load_rules(as_json) == yaml_rules


# ---------------------------------------------------------------------
# CLI: run/resume parity, top, report --slo
# ---------------------------------------------------------------------
def _cli(*argv):
    from repro.cli import main
    return main(list(argv))


def test_cli_run_and_resume_share_observability_flags():
    """Satellite: resume registers the identical observability flag
    set as run, via the one shared helper."""
    from repro.cli import build_parser
    parser = build_parser()
    subparsers = next(
        a for a in parser._actions
        if isinstance(a, type(parser._subparsers._group_actions[0])))
    flag_names = {}
    for name in ("run", "resume"):
        sub = subparsers.choices[name]
        flag_names[name] = {
            o for a in sub._actions for o in a.option_strings
            if o in ("--trace", "--trace-json", "--metrics",
                     "--metrics-json", "--progress", "--ledger",
                     "--perfetto")
        }
    assert flag_names["run"] == flag_names["resume"] == {
        "--trace", "--trace-json", "--metrics", "--metrics-json",
        "--progress", "--ledger", "--perfetto",
    }


def test_cli_run_writes_ledger_and_perfetto(tmp_path, capsys):
    ledger = os.path.join(str(tmp_path), "run.ledger.jsonl")
    perfetto = os.path.join(str(tmp_path), "run.perfetto.json")
    rc = _cli("run", "--records", "48", "--nodes", "2", "--model",
              "alexnet", "--layers", "2", "--progress",
              "--ledger", ledger, "--perfetto", perfetto)
    assert rc == 0
    out = capsys.readouterr().out
    assert "progress:" in out
    events, problems = read_ledger(ledger)
    assert problems == [] and validate_events(events) == []
    assert {"run_meta", "stage_plan", "optimizer_decision",
            "run_end"} <= {e["kind"] for e in events}
    doc = json.load(open(perfetto))
    assert validate_chrome_trace(doc) == []


def test_cli_top_renders_and_validates(tmp_path, capsys):
    ledger = os.path.join(str(tmp_path), "run.ledger.jsonl")
    assert _cli("run", "--records", "48", "--nodes", "2", "--model",
                "alexnet", "--layers", "2", "--ledger", ledger) == 0
    capsys.readouterr()
    assert _cli("top", ledger) == 0
    out = capsys.readouterr().out
    assert "run ok" in out
    assert _cli("top", ledger, "--validate") == 0
    # Corrupt an interior line: --validate must now fail.
    lines = open(ledger, "rb").read().split(b"\n")
    lines[1] = b"{not json"
    with open(ledger, "wb") as fh:
        fh.write(b"\n".join(lines))
    capsys.readouterr()
    assert _cli("top", ledger, "--validate") == 1


def test_cli_report_slo_exit_codes(tmp_path, capsys):
    ledger = os.path.join(str(tmp_path), "run.ledger.jsonl")
    assert _cli("run", "--records", "48", "--nodes", "2", "--model",
                "alexnet", "--layers", "2", "--ledger", ledger) == 0
    assert _cli("report", "--slo", DEFAULT_RULES, ledger) == 0
    out = capsys.readouterr().out
    assert "0 breach" in out
    # A breaching ruleset exits 1.
    breaching = os.path.join(str(tmp_path), "strict.json")
    with open(breaching, "w") as fh:
        json.dump({"rules": [{
            "name": "impossible", "metric": "ledger.count:run_end",
            "comparator": ">=", "threshold": 99,
        }]}, fh)
    assert _cli("report", "--slo", breaching, ledger) == 1
    # --slo without a target is a usage error.
    assert _cli("report", "--slo", DEFAULT_RULES) == 2


def test_cli_resume_accepts_ledger(tmp_path):
    ckpt = os.path.join(str(tmp_path), "ckpts")
    ledger = os.path.join(str(tmp_path), "resume.ledger.jsonl")
    assert _cli("run", "--records", "48", "--nodes", "2", "--model",
                "alexnet", "--layers", "2",
                "--checkpoint-dir", ckpt) == 0
    assert _cli("resume", "--records", "48", "--nodes", "2", "--model",
                "alexnet", "--layers", "2", "--checkpoint-dir", ckpt,
                "--ledger", ledger) == 0
    events, problems = read_ledger(ledger)
    assert problems == [] and validate_events(events) == []
    assert any(e["kind"] == "run_end" for e in events)
