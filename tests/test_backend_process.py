"""The multiprocess execution backend: real forked workers, shared-
memory result transport, real SIGKILL chaos, and the exactly-once
commit barrier.

Everything the serial fault suite asserts about *simulated* failures
(`test_faults.py`) must hold when the failure is a real dead OS
process: lineage recompute + blacklist produce bit-identical output, a
``WorkerLost`` recovery event lands in the log, and — new with real
transport — every ``SharedMemory`` segment is unlinked on success,
crash, and resume alike (the shm analogue of the ``*.tmp`` reclaim
tests in ``test_recovery.py``).
"""

import numpy as np
import pytest

from repro.dataflow.backend import (
    ProcessPoolBackend,
    SERIAL_BACKEND,
    SerialBackend,
    orphaned_segments,
    resolve_backend,
)
from repro.dataflow.context import local_context
from repro.dataflow.executor import run_partition_tasks
from repro.dataflow.partition import Partition
from repro.dataflow.table import DistributedTable
from repro.exceptions import TaskFailure, WorkloadCrash
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    WORKER_KILL,
    equip_context,
)
from repro.metrics import MetricsRegistry


def _ctx(plan=None, seed=0, policy=None, num_nodes=2, cpu=4,
         exec_backend="process"):
    ctx = local_context(num_nodes=num_nodes, cores_per_node=4, cpu=cpu,
                        exec_backend=exec_backend)
    injector = FaultInjector(plan, seed=seed) if plan is not None else None
    return equip_context(ctx, injector=injector, policy=policy)


def _mapped_rows(ctx):
    rows = [
        {"id": i, "x": np.full((4, 4), i, dtype=np.float32)}
        for i in range(24)
    ]
    table = DistributedTable.from_rows(ctx, rows, 8, name="t_in")
    return table.map_partitions(
        lambda rows: [{"id": r["id"], "x": r["x"] * 2.0} for r in rows],
        name="t_out",
    )


def _assert_bit_identical(clean, recovered):
    clean_rows = clean.to_rows_sorted()
    recovered_rows = recovered.to_rows_sorted()
    assert [r["id"] for r in clean_rows] == [
        r["id"] for r in recovered_rows
    ]
    for a, b in zip(clean_rows, recovered_rows):
        assert np.array_equal(a["x"], b["x"])


# ---------------------------------------------------------------------
# backend resolution
# ---------------------------------------------------------------------
def test_resolve_backend():
    assert resolve_backend(None) is SERIAL_BACKEND
    assert resolve_backend("serial") is SERIAL_BACKEND
    assert isinstance(resolve_backend("process"), ProcessPoolBackend)
    custom = ProcessPoolBackend()
    assert resolve_backend(custom) is custom
    with pytest.raises(ValueError, match="backend"):
        resolve_backend("threads")


def test_context_resolves_backend_names():
    assert isinstance(
        local_context().exec_backend, SerialBackend
    )
    ctx = local_context(exec_backend="process")
    assert isinstance(ctx.exec_backend, ProcessPoolBackend)
    # Two process contexts never share a segment namespace sequence.
    other = local_context(exec_backend="process")
    assert ctx.exec_backend is not other.exec_backend


# ---------------------------------------------------------------------
# plain execution parity
# ---------------------------------------------------------------------
def test_map_partitions_bit_identical_to_serial():
    serial = _mapped_rows(local_context(num_nodes=2, cores_per_node=4))
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=4,
                        exec_backend="process")
    process = _mapped_rows(ctx)
    _assert_bit_identical(serial, process)
    assert [w.tasks_run for w in ctx.workers] == [4, 4]


def test_metrics_counters_match_serial():
    """Child-process counter increments merge back into the driver
    registry: engine counters come out identical to a serial run."""
    totals = {}
    for backend in ("serial", "process"):
        ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2,
                            exec_backend=backend)
        registry = MetricsRegistry()
        ctx.attach_metrics(registry)
        _mapped_rows(ctx)
        totals[backend] = {
            (name, labels): total
            for (name, labels), total in registry.counter_totals().items()
            if name in ("tasks_total", "waves_total")
        }
        ctx.exec_backend.close()
    assert totals["serial"] == totals["process"]
    assert sum(
        t for (name, _), t in totals["process"].items()
        if name == "tasks_total"
    ) == 8


def test_child_exception_ships_as_task_failure():
    """A deterministic task error raised inside the forked child
    re-enters the parent's normal failure dispatch: a structured
    TaskFailure with the original exception as cause — not a dead
    worker."""
    ctx = _ctx(policy=RetryPolicy())
    prefix = ctx.exec_backend.prefix

    def task(partition):
        if partition.index == 2:
            raise ValueError("bad partition payload")
        return partition.index

    with pytest.raises(TaskFailure) as info:
        run_partition_tasks(ctx, [Partition.from_rows(i, [{"id": i}])
                                  for i in range(4)], task)
    assert info.value.partition_index == 2
    assert isinstance(info.value.cause, ValueError)
    assert orphaned_segments(prefix) == []
    failures = ctx.recovery_log.of("task_failure")
    assert failures and failures[0]["cause"] == "ValueError"


def test_transient_failure_in_child_is_retried_from_lineage(tmp_path):
    """Transient errors raised *inside* a child retry exactly like
    serial ones. Retry state cannot live in a closure (each attempt is
    a fresh fork), so the task keys off a marker file."""
    marker = tmp_path / "fired"
    ctx = _ctx(policy=RetryPolicy(backoff_base_s=1.0))
    prefix = ctx.exec_backend.prefix

    def task(partition):
        if partition.index == 1 and not marker.exists():
            marker.write_text("1")
            from repro.exceptions import TransientTaskOOM

            raise TransientTaskOOM("transient child failure")
        return partition.index * 10

    results = run_partition_tasks(
        ctx, [Partition.from_rows(i, [{"id": i}]) for i in range(4)], task
    )
    assert results == [0, 10, 20, 30]
    retries = ctx.recovery_log.of("task_retry")
    assert len(retries) == 1 and retries[0]["partition"] == 1
    assert retries[0]["fault"] == "TransientTaskOOM"
    assert orphaned_segments(prefix) == []


# ---------------------------------------------------------------------
# chaos: real SIGKILL worker death (satellite)
# ---------------------------------------------------------------------
@pytest.mark.parametrize("phase", ["start", "transfer"])
def test_worker_kill_recovers_bit_identical(phase):
    """Mirror of the simulated worker-loss assertions in
    ``test_faults.py``, with a real SIGKILLed child: the wave dies, the
    worker is blacklisted, lineage recompute fails the work over, and
    the output is bit-identical — with no orphaned shm segments."""
    clean = _mapped_rows(local_context(num_nodes=2, cores_per_node=4))
    plan = FaultPlan().worker_kill(partition=5, phase=phase)
    ctx = _ctx(plan, cpu=2)
    prefix = ctx.exec_backend.prefix
    recovered = _mapped_rows(ctx)
    _assert_bit_identical(clean, recovered)
    assert ctx.excluded_workers == {1}
    kills = ctx.recovery_log.of("worker_kill")
    assert kills == [{
        "event": "worker_kill", "table": "map over t_in", "partition": 5,
        "worker": 1, "attempt": 1, "phase": phase, "sim_time_s": 0.0,
    }]
    losses = ctx.recovery_log.of("worker_lost")
    assert len(losses) == 1 and losses[0]["worker"] == 1
    assert "SIGKILL" in losses[0]["fault"]
    blacklists = ctx.recovery_log.of("blacklist")
    assert blacklists == [{
        "event": "blacklist", "worker": 1, "reason": "worker lost",
        "sim_time_s": 0.0,
    }]
    assert ctx.fault_injector.injected[WORKER_KILL] == 1
    assert orphaned_segments(prefix) == []


def test_worker_kill_discards_in_flight_wave_peers():
    """Killing one child fails the *whole* wave over: peers that
    finished before the kill was collected are discarded, recomputed
    on the surviving worker, and still commit exactly once."""
    clean = _mapped_rows(local_context(num_nodes=2, cores_per_node=4))
    plan = FaultPlan().worker_kill(partition=7, phase="start")
    ctx = _ctx(plan, cpu=4)
    recovered = _mapped_rows(ctx)
    _assert_bit_identical(clean, recovered)
    # Worker 1's wave of 4 died wholesale; worker 0 ran its own 4
    # partitions plus all 4 failed-over ones.
    assert ctx.workers[0].tasks_run == 8


def test_worker_kill_rules_are_inert_on_serial_backend():
    """The serial engine has no child process to kill: worker-kill
    rules neither fire nor consume their ``times`` budget there, so a
    chaos plan can run unchanged on both backends."""
    plan = FaultPlan().worker_kill(partition=5, phase="start")
    ctx = _ctx(plan, exec_backend="serial")
    clean = _mapped_rows(local_context(num_nodes=2, cores_per_node=4))
    out = _mapped_rows(ctx)
    _assert_bit_identical(clean, out)
    assert ctx.fault_injector.injected[WORKER_KILL] == 0
    assert ctx.excluded_workers == set()
    assert ctx.recovery_log.of("worker_kill") == []


# ---------------------------------------------------------------------
# shared-memory lifecycle (satellite): the shm analogue of the *.tmp
# reclaim tests in test_recovery.py
# ---------------------------------------------------------------------
def test_no_orphaned_segments_after_success():
    ctx = _ctx()
    prefix = ctx.exec_backend.prefix
    _mapped_rows(ctx)
    assert ctx.exec_backend.live_segments() == set()
    assert orphaned_segments(prefix) == []


def test_no_orphaned_segments_after_crash_mid_transfer():
    """The hardest leak case: the child died *between* creating its
    segment and writing the payload. The parent owns the name (it
    assigned it pre-fork) and must unlink it."""
    plan = FaultPlan().worker_kill(partition=3, phase="transfer")
    ctx = _ctx(plan, cpu=2)
    prefix = ctx.exec_backend.prefix
    _mapped_rows(ctx)
    assert ctx.exec_backend.live_segments() == set()
    assert orphaned_segments(prefix) == []


def test_no_orphaned_segments_after_workload_crash():
    """A WorkloadCrash aborts the run between waves; the wave-level
    cleanup sweep plus the supervisor's backend close must leave
    nothing in /dev/shm."""
    ctx = _ctx()
    prefix = ctx.exec_backend.prefix

    def task(partition):
        if partition.index == 3:
            raise WorkloadCrash("injected structural crash")
        return partition.index

    with pytest.raises(WorkloadCrash):
        run_partition_tasks(
            ctx, [Partition.from_rows(i, [{"id": i}]) for i in range(6)],
            task,
        )
    ctx.exec_backend.close()
    assert orphaned_segments(prefix) == []


def test_no_orphaned_segments_after_resume(tmp_path):
    """Crash a checkpointed process-backend run after materialization,
    resume it on a fresh process-backend context: outputs bit-identical
    to an uninterrupted serial run, checkpoints restored, and neither
    attempt leaked a segment."""
    from repro.cnn import build_model
    from repro.core.config import VistaConfig
    from repro.core.executor import FeatureTransferExecutor
    from repro.core.plans import ALL_PLANS
    from repro.data import foods_dataset
    from repro.recovery import CheckpointStore

    model = build_model("alexnet", profile="mini")
    dataset = foods_dataset(num_records=14, seed=5)
    layers = model.feature_layers[-1:]
    config = VistaConfig(
        cpu=2, num_partitions=4, mem_storage_bytes=10**9,
        mem_user_bytes=10**9, mem_dl_bytes=10**9,
        join="shuffle", persistence="deserialized",
    )

    def downstream(features, labels):
        return {"matrix": features.copy()}

    def run(downstream_fn, store=None, backend="process"):
        ctx = local_context(num_nodes=2, cores_per_node=4, cpu=config.cpu,
                            exec_backend=backend)
        prefix = getattr(ctx.exec_backend, "prefix", None)
        executor = FeatureTransferExecutor(
            ctx, model, dataset, layers, config,
            downstream_fn=downstream_fn, checkpoint_store=store,
        )
        try:
            result = executor.run(ALL_PLANS["staged"])
        finally:
            ctx.exec_backend.close()
            if prefix is not None:
                assert orphaned_segments(prefix) == []
        return result

    reference = run(downstream, backend="serial")

    def crashing(features, labels):
        raise WorkloadCrash("injected crash before downstream")

    root = str(tmp_path / "ckpts")
    with pytest.raises(WorkloadCrash):
        run(crashing, store=CheckpointStore(root))

    resumed_store = CheckpointStore(root)
    resumed = run(downstream, store=resumed_store)
    assert resumed_store.restore_total > 0
    for layer in reference.layer_results:
        assert np.array_equal(
            resumed.layer_results[layer].downstream["matrix"],
            reference.layer_results[layer].downstream["matrix"],
        )


def test_close_sweeps_tracked_segments():
    """close() is the abandon-path backstop: any segment the backend
    still tracks (e.g. the run aborted between assign and collect) is
    unlinked, and close is idempotent."""
    from multiprocessing import shared_memory

    backend = ProcessPoolBackend()
    name = backend._next_name()
    backend._live_segments.add(name)
    shm = shared_memory.SharedMemory(create=True, size=64, name=name)
    shm.close()
    assert orphaned_segments(backend.prefix) == [name]
    backend.close()
    assert orphaned_segments(backend.prefix) == []
    assert backend.live_segments() == set()
    backend.close()  # idempotent


# ---------------------------------------------------------------------
# exactly-once commit barrier (satellite)
# ---------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "process"])
def test_on_commit_fires_exactly_once_out_of_order(backend):
    """Out-of-order commit schedule: partition 0 fails transiently (so
    it commits a full retry round *after* its peers) while a worker
    dies between waves (so a discarded wave reschedules wholesale).
    Every partition's commit barrier must still fire exactly once,
    with the result it committed."""
    plan = (
        FaultPlan()
        .task_crash(partition=0, attempt=1)
        .worker_loss(worker=1, wave=2)
    )
    ctx = _ctx(plan, cpu=2, exec_backend=backend)
    commits = {}

    def on_commit(partition, result):
        commits.setdefault(partition.index, []).append(result)

    results = run_partition_tasks(
        ctx, [Partition.from_rows(i, [{"id": i}]) for i in range(8)],
        lambda p: p.index * 10, on_commit=on_commit,
    )
    assert results == [i * 10 for i in range(8)]
    assert sorted(commits) == list(range(8))
    assert all(len(v) == 1 for v in commits.values()), {
        k: len(v) for k, v in commits.items() if len(v) != 1
    }
    assert all(commits[i] == [i * 10] for i in range(8))


@pytest.mark.parametrize("backend", ["serial", "process"])
def test_checkpoint_partitions_written_exactly_once(backend, tmp_path):
    """The same barrier guards durable checkpoints: under the
    out-of-order schedule each map_blocks partition lands in the store
    exactly once (checkpoint_partitions_total counts puts)."""
    from repro.dataflow.columnar import ColumnarBlock
    from repro.recovery import CheckpointStore

    plan = (
        FaultPlan()
        .task_crash(partition=0, attempt=1)
        .worker_loss(worker=1, wave=2)
    )
    ctx = _ctx(plan, cpu=2, exec_backend=backend)
    rows = [
        {"id": i, "x": np.full(4, i, dtype=np.float32)} for i in range(16)
    ]
    table = DistributedTable.from_rows(ctx, rows, 8, name="t_in")
    store = CheckpointStore(str(tmp_path)).bind_run("run-a")
    table.map_blocks(
        lambda block: ColumnarBlock(
            {name: block.column(name) for name in block.column_names},
            block.num_rows,
        ),
        name="t_out", checkpoint=(store, "stage-a"),
    )
    assert store.checkpoint_partitions_total == 8
    if hasattr(ctx.exec_backend, "prefix"):
        assert orphaned_segments(ctx.exec_backend.prefix) == []
