"""Unit tests for the synthetic dataset generators and scaling."""

import numpy as np
import pytest

from repro.data import (
    amazon_dataset,
    foods_dataset,
    replicate_dataset,
    widen_structured_features,
)
from repro.data.foods import PAPER_NUM_STRUCTURED_FEATURES
from repro.ml import LogisticRegression, f1_score, train_test_split


def test_foods_shape():
    ds = foods_dataset(num_records=50)
    assert len(ds) == 50
    assert ds.num_structured_features == PAPER_NUM_STRUCTURED_FEATURES == 130
    assert ds.structured_matrix().shape == (50, 130)
    assert ds.image_rows[0]["image"].shape == (32, 32, 3)


def test_amazon_shape():
    ds = amazon_dataset(num_records=40)
    assert ds.num_structured_features == 200
    assert ds.structured_matrix().shape == (40, 200)


def test_ids_align_across_modalities():
    ds = foods_dataset(num_records=30)
    assert [r["id"] for r in ds.structured_rows] \
        == [r["id"] for r in ds.image_rows]


def test_labels_binary_and_mixed():
    labels = foods_dataset(num_records=100).labels()
    assert set(np.unique(labels)) == {0, 1}


def test_generation_deterministic():
    a = foods_dataset(num_records=20)
    b = foods_dataset(num_records=20)
    np.testing.assert_array_equal(a.structured_matrix(), b.structured_matrix())
    np.testing.assert_array_equal(a.images()[3], b.images()[3])


def test_structured_features_carry_signal():
    ds = foods_dataset(num_records=300)
    x_tr, x_te, y_tr, y_te = train_test_split(
        ds.structured_matrix(), ds.labels()
    )
    model = LogisticRegression(iterations=30).fit(x_tr, y_tr)
    assert f1_score(y_te, model.predict(x_te)) > 0.6


def test_images_carry_signal_beyond_structured():
    """Raw-pixel features must be label-informative — the premise of
    the whole accuracy experiment (Figure 8)."""
    ds = foods_dataset(num_records=300)
    pixels = np.stack([img.mean(axis=2).ravel() for img in ds.images()])
    x_tr, x_te, y_tr, y_te = train_test_split(pixels, ds.labels())
    model = LogisticRegression(iterations=30).fit(x_tr, y_tr)
    assert f1_score(y_te, model.predict(x_te)) > 0.6


def test_replicate_dataset_scales_rows():
    ds = foods_dataset(num_records=25)
    scaled = replicate_dataset(ds, 4)
    assert len(scaled) == 100
    assert scaled.name.endswith("4X")


def test_replicate_assigns_unique_ids():
    ds = foods_dataset(num_records=10)
    scaled = replicate_dataset(ds, 3)
    ids = [r["id"] for r in scaled.structured_rows]
    assert len(set(ids)) == 30


def test_replicate_rejects_bad_factor():
    ds = foods_dataset(num_records=5)
    with pytest.raises(ValueError):
        replicate_dataset(ds, 0)
    with pytest.raises(ValueError):
        replicate_dataset(ds, 1.5)


def test_widen_structured_features_pads():
    ds = foods_dataset(num_records=10)
    wide = widen_structured_features(ds, 1000)
    assert wide.structured_matrix().shape == (10, 1000)
    # original informative block preserved
    np.testing.assert_array_equal(
        wide.structured_matrix()[:, :130], ds.structured_matrix()
    )


def test_widen_structured_features_truncates():
    ds = foods_dataset(num_records=10)
    narrow = widen_structured_features(ds, 10)
    assert narrow.structured_matrix().shape == (10, 10)


def test_amazon_weaker_structured_signal_than_foods():
    """The paper's baselines: Foods struct-only F1 ~80%, Amazon ~59%."""
    foods = foods_dataset(num_records=400)
    amazon = amazon_dataset(num_records=400)

    def struct_f1(ds):
        x_tr, x_te, y_tr, y_te = train_test_split(
            ds.structured_matrix(), ds.labels()
        )
        model = LogisticRegression(iterations=30).fit(x_tr, y_tr)
        return f1_score(y_te, model.predict(x_te))

    assert struct_f1(foods) > struct_f1(amazon)
