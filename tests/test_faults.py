"""Seeded fault-injection suite for the dataflow recovery layer:
deterministic injection, lineage-based task retry with simulated
backoff, worker blacklisting/reassignment, and the structured
TaskFailure / retryable-crash contract."""

import numpy as np
import pytest

from repro.dataflow.context import local_context
from repro.dataflow.executor import run_partition_tasks
from repro.dataflow.partition import Partition
from repro.dataflow.table import DistributedTable
from repro.exceptions import (
    ClusterExhausted,
    NoFeasiblePlan,
    TaskFailure,
    TransientTaskOOM,
    UserMemoryExceeded,
    WorkerLost,
    WorkloadCrash,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    WORKER_KILL,
    WORKER_LOSS,
    equip_context,
)
from repro.faults.injector import InjectedTaskCrash
from repro.memory.model import Region


def _parts(n):
    return [Partition.from_rows(i, [{"id": i}]) for i in range(n)]


def _ctx(plan=None, seed=0, policy=None, num_nodes=2):
    ctx = local_context(num_nodes=num_nodes, cores_per_node=4)
    injector = FaultInjector(plan, seed=seed) if plan is not None else None
    return equip_context(ctx, injector=injector, policy=policy)


# ---------------------------------------------------------------------
# the crash taxonomy's retryable/transient contract (satellite)
# ---------------------------------------------------------------------
def test_retryable_attributes():
    assert WorkloadCrash("x").retryable is True
    assert UserMemoryExceeded("x").retryable is True
    assert UserMemoryExceeded("x").transient is False
    assert TransientTaskOOM("x").retryable is True
    assert TransientTaskOOM("x").transient is True
    assert isinstance(TransientTaskOOM("x"), UserMemoryExceeded)
    assert WorkerLost(worker_id=1).transient is True
    assert ClusterExhausted("x").retryable is False
    assert NoFeasiblePlan("x").retryable is False


def test_backoff_is_capped_exponential():
    policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=8.0)
    assert [policy.backoff_s(a) for a in (1, 2, 3, 4, 5)] == [
        1.0, 2.0, 4.0, 8.0, 8.0
    ]


def test_backoff_jitter_is_seeded_and_deterministic():
    """Satellite: jitter decorrelates per-partition backoff without
    giving up determinism — the schedule is a pure function of
    (jitter_seed, key, attempt), pinned here."""
    policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=8.0,
                         backoff_jitter=0.1, jitter_seed=0)
    schedule = [policy.backoff_s(a, key=3) for a in (1, 2, 3, 4)]
    # Same policy, same key, same attempts: bit-identical schedule.
    assert schedule == [policy.backoff_s(a, key=3) for a in (1, 2, 3, 4)]
    for attempt, (base, jittered) in enumerate(
        zip([1.0, 2.0, 4.0, 8.0], schedule), start=1
    ):
        assert base <= jittered <= base * 1.1, (attempt, jittered)
    # Distinct keys decorrelate; distinct seeds reshuffle.
    assert schedule != [policy.backoff_s(a, key=4) for a in (1, 2, 3, 4)]
    reseeded = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=8.0,
                           backoff_jitter=0.1, jitter_seed=1)
    assert schedule != [reseeded.backoff_s(a, key=3) for a in (1, 2, 3, 4)]
    # No key (or jitter disabled) falls back to the bare exponential.
    assert policy.backoff_s(3) == 4.0
    flat = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=8.0,
                       backoff_jitter=0.0)
    assert flat.backoff_s(3, key=3) == 4.0


# ---------------------------------------------------------------------
# task crash -> lineage retry
# ---------------------------------------------------------------------
def test_task_crash_retried_and_succeeds():
    plan = FaultPlan().task_crash(partition=3, attempt=1)
    ctx = _ctx(plan)
    results = run_partition_tasks(ctx, _parts(8), lambda p: p.index * 10)
    assert results == [i * 10 for i in range(8)]
    retries = ctx.recovery_log.of("task_retry")
    assert len(retries) == 1
    assert retries[0]["partition"] == 3
    assert retries[0]["attempt"] == 1
    assert retries[0]["fault"] == "InjectedTaskCrash"
    assert ctx.fault_injector.injected["task-crash"] == 1


def test_retry_backoff_advances_simulated_clock():
    plan = FaultPlan().task_crash(partition=0, attempt=None, times=3)
    policy = RetryPolicy(max_task_attempts=5, backoff_base_s=1.0,
                         backoff_cap_s=30.0, backoff_jitter=0.0)
    ctx = _ctx(plan, policy=policy)
    run_partition_tasks(ctx, _parts(4), lambda p: None)
    # three retries: 1s + 2s + 4s of simulated backoff, no real sleep
    assert ctx.fault_injector.clock.now == pytest.approx(7.0)
    backoffs = [e["backoff_s"] for e in ctx.recovery_log.of("task_retry")]
    assert backoffs == [1.0, 2.0, 4.0]
    times = [e["sim_time_s"] for e in ctx.recovery_log.of("task_retry")]
    assert times == sorted(times)


def test_retries_exhausted_raise_structured_task_failure():
    plan = FaultPlan().task_crash(partition=2, attempt=None, times=None)
    ctx = _ctx(plan)
    with pytest.raises(TaskFailure) as excinfo:
        run_partition_tasks(ctx, _parts(4), lambda p: None)
    failure = excinfo.value
    assert failure.partition_index == 2
    assert failure.attempt == RetryPolicy().max_task_attempts
    assert isinstance(failure.cause, InjectedTaskCrash)
    # Satellite: the original fault's traceback is chained via
    # ``raise ... from``, not flattened into the message.
    assert failure.__cause__ is failure.cause
    assert failure.__cause__.__traceback__ is not None
    # The terminal failure lands in the recovery log alongside the
    # retries that led up to it.
    failures = ctx.recovery_log.of("task_failure")
    assert len(failures) == 1
    assert failures[0]["partition"] == 2
    assert failures[0]["cause"] == "InjectedTaskCrash"


def test_transient_oom_exhaustion_raises_retryable_crash():
    """Out of task-retry budget, the transient OOM escalates to the
    supervisor as a *retryable* WorkloadCrash."""
    plan = FaultPlan().task_oom(partition=1, attempt=None, times=None)
    ctx = _ctx(plan)
    with pytest.raises(TransientTaskOOM) as excinfo:
        run_partition_tasks(ctx, _parts(4), lambda p: None)
    assert excinfo.value.retryable is True


def test_charges_released_after_faulty_run():
    plan = FaultPlan().task_crash(partition=1, attempt=1).task_crash(
        partition=5, attempt=1
    )
    ctx = _ctx(plan)
    run_partition_tasks(
        ctx, _parts(8), lambda p: None, charge_fn=lambda p, r: 1000
    )
    assert all(w.accountant.used(Region.USER) == 0 for w in ctx.workers)


# ---------------------------------------------------------------------
# worker loss, blacklisting, deterministic reassignment
# ---------------------------------------------------------------------
def test_worker_loss_blacklists_and_fails_over():
    plan = FaultPlan().worker_loss(worker=1)
    ctx = _ctx(plan)
    results = run_partition_tasks(ctx, _parts(8), lambda p: p.index)
    assert results == list(range(8))
    assert ctx.excluded_workers == {1}
    # every task ultimately ran on the surviving worker
    assert ctx.workers[1].tasks_run == 0
    assert ctx.workers[0].tasks_run == 8
    assert ctx.recovery_log.count("worker_lost") == 1
    blacklist = ctx.recovery_log.of("blacklist")
    assert blacklist == [{
        "event": "blacklist", "worker": 1, "reason": "worker lost",
        "sim_time_s": blacklist[0]["sim_time_s"],
    }]


def test_mid_wave_worker_loss_discards_inflight_wave():
    """Losing a worker during a wave recomputes even the wave's
    already-finished tasks — in-flight results die with the node."""
    rule = FaultRule(WORKER_LOSS, worker=1, partition=5)
    ctx = _ctx(FaultPlan([rule]))
    results = run_partition_tasks(ctx, _parts(8), lambda p: p.index)
    assert results == list(range(8))
    assert ctx.excluded_workers == {1}
    # worker 1 ran partitions 1 and 3 before dying at partition 5;
    # those count as (wasted) work, and all 4 of its partitions rerun
    # on worker 0 alongside worker 0's own 4.
    assert ctx.workers[1].tasks_run == 2
    assert ctx.workers[0].tasks_run == 8


def test_worker_for_exclusion_ring():
    ctx = local_context(num_nodes=3, cores_per_node=2)
    assert ctx.worker_for(4).node_id == 1
    ctx.blacklist_worker(1)
    assert ctx.worker_for(4).node_id == 2
    ctx.blacklist_worker(2)
    assert ctx.worker_for(4).node_id == 0
    ctx.blacklist_worker(0)
    with pytest.raises(ClusterExhausted):
        ctx.worker_for(4)


def test_losing_every_worker_exhausts_the_cluster():
    plan = FaultPlan().worker_loss(worker=0)
    ctx = _ctx(plan, num_nodes=1)
    with pytest.raises(ClusterExhausted) as excinfo:
        run_partition_tasks(ctx, _parts(4), lambda p: None)
    assert excinfo.value.retryable is False


def test_repeated_failures_blacklist_worker():
    plan = FaultPlan().task_crash(partition=1, attempt=None, times=2)
    policy = RetryPolicy(max_task_attempts=6, max_failures_per_worker=2)
    ctx = _ctx(plan, policy=policy)
    results = run_partition_tasks(ctx, _parts(4), lambda p: p.index)
    assert results == list(range(4))
    assert ctx.excluded_workers == {1}
    events = ctx.recovery_log.of("blacklist")
    assert [e["reason"] for e in events] == ["max task failures"]


def test_last_worker_is_never_blacklisted():
    plan = FaultPlan().task_crash(partition=0, attempt=None, times=2)
    policy = RetryPolicy(max_task_attempts=6, max_failures_per_worker=2)
    ctx = _ctx(plan, policy=policy, num_nodes=1)
    results = run_partition_tasks(ctx, _parts(2), lambda p: p.index)
    assert results == [0, 1]
    assert ctx.excluded_workers == set()
    assert ctx.recovery_log.count("blacklist_suppressed") == 1


# ---------------------------------------------------------------------
# stragglers + determinism
# ---------------------------------------------------------------------
def test_straggler_advances_clock_without_failing():
    plan = FaultPlan().straggler(partition=2, delay_s=7.5)
    ctx = _ctx(plan)
    results = run_partition_tasks(ctx, _parts(4), lambda p: p.index)
    assert results == list(range(4))
    assert ctx.fault_injector.clock.now == pytest.approx(7.5)
    assert ctx.recovery_log.of("straggler")[0]["delay_s"] == 7.5
    assert ctx.recovery_log.count("task_retry") == 0


# ---------------------------------------------------------------------
# worker-kill rules: fork-hook only (real SIGKILL, process backend)
# ---------------------------------------------------------------------
def test_worker_kill_budget_is_consumed_by_fork_hook_only():
    """``on_task_start`` must not burn a worker-kill rule's ``times``
    budget (the serial engine calls it for every task but has no child
    to kill); only ``on_task_fork`` fires and consumes it."""
    plan = FaultPlan().worker_kill(partition=2, times=1)
    injector = FaultInjector(plan, seed=0)
    # Serial-style start hooks: no firing, no budget consumed.
    for _ in range(3):
        injector.on_task_start("t", 2, worker_id=0, attempt=1)
    assert injector.injected[WORKER_KILL] == 0
    # The fork hook fires exactly once, then the budget is spent.
    assert injector.on_task_fork("t", 2, worker_id=0, attempt=1) == "start"
    assert injector.on_task_fork("t", 2, worker_id=0, attempt=1) is None
    assert injector.injected[WORKER_KILL] == 1


def test_worker_kill_fork_hook_respects_match_and_phase():
    plan = FaultPlan().worker_kill(partition=1, phase="transfer", times=2)
    injector = FaultInjector(plan, seed=0)
    assert injector.on_task_fork("t", 0, worker_id=0, attempt=1) is None
    assert (
        injector.on_task_fork("t", 1, worker_id=0, attempt=1) == "transfer"
    )


def test_worker_kill_phase_is_validated():
    with pytest.raises(ValueError, match="kill phase"):
        FaultPlan().worker_kill(partition=0, phase="mid-flight")


def _faulty_run(seed):
    plan = (
        FaultPlan()
        .task_crash(partition=None, attempt=None, probability=0.4, times=3)
        .worker_loss(worker=1, wave=2)
        .straggler(partition=0, delay_s=3.0)
    )
    ctx = _ctx(plan, seed=seed)
    results = run_partition_tasks(ctx, _parts(8), lambda p: p.index * 2)
    return results, ctx.recovery_log.events, ctx.fault_injector.clock.now


def test_same_seed_replays_identical_fault_sequence():
    results_a, events_a, clock_a = _faulty_run(seed=11)
    results_b, events_b, clock_b = _faulty_run(seed=11)
    assert results_a == results_b == [i * 2 for i in range(8)]
    assert events_a == events_b
    assert clock_a == clock_b


def test_blacklist_and_reassignment_are_deterministic():
    logs = []
    for _ in range(2):
        plan = FaultPlan().worker_loss(worker=0, wave=1)
        ctx = _ctx(plan, num_nodes=3)
        results = run_partition_tasks(ctx, _parts(9), lambda p: p.index)
        assert results == list(range(9))
        assert ctx.excluded_workers == {0}
        logs.append(ctx.recovery_log.events)
    assert logs[0] == logs[1]


# ---------------------------------------------------------------------
# table-level recovery: lineage recompute keeps outputs bit-identical
# ---------------------------------------------------------------------
def _mapped_rows(ctx):
    rows = [
        {"id": i, "x": np.full((4, 4), i, dtype=np.float32)}
        for i in range(24)
    ]
    table = DistributedTable.from_rows(ctx, rows, 8, name="t_in")
    out = table.map_partitions(
        lambda rows: [{"id": r["id"], "x": r["x"] * 2.0} for r in rows],
        name="t_out",
    )
    return out


def test_map_partitions_under_faults_is_bit_identical():
    clean = _mapped_rows(local_context(num_nodes=2, cores_per_node=4))
    plan = (
        FaultPlan()
        .task_crash(partition=2, attempt=1)
        .task_oom(partition=5, attempt=1)
        .worker_loss(worker=1, wave=2)
    )
    faulty = _mapped_rows(_ctx(plan))
    clean_rows = clean.to_rows_sorted()
    faulty_rows = faulty.to_rows_sorted()
    assert [r["id"] for r in clean_rows] == [r["id"] for r in faulty_rows]
    for a, b in zip(clean_rows, faulty_rows):
        assert np.array_equal(a["x"], b["x"])


def test_lineage_records_parent_tables():
    ctx = local_context(num_nodes=2, cores_per_node=4)
    out = _mapped_rows(ctx)
    assert out.lineage == ("map", "t_in")
    from repro.dataflow.joins import shuffle_hash_join

    rows = [{"id": i, "y": i} for i in range(24)]
    other = DistributedTable.from_rows(ctx, rows, 8, name="t_other")
    joined = shuffle_hash_join(out, other, num_partitions=4)
    assert joined.lineage[0] == "shuffle-join"


def test_retry_events_name_the_op_being_recomputed():
    plan = FaultPlan().task_crash(partition=1, attempt=1)
    ctx = _ctx(plan)
    _mapped_rows(ctx)
    retries = ctx.recovery_log.of("task_retry")
    assert retries and all("t_in" in e["table"] for e in retries)
