"""Integration tests for the declarative Vista API."""

import numpy as np
import pytest

from repro import Vista, default_resources
from repro.core.plans import LAZY, STAGED
from repro.data import foods_dataset
from repro.exceptions import InvalidLayerError


@pytest.fixture(scope="module")
def dataset():
    return foods_dataset(num_records=40)


@pytest.fixture(scope="module")
def resources():
    return default_resources(num_nodes=2)


def test_end_to_end_run(dataset, resources):
    vista = Vista("alexnet", 2, dataset, resources)
    result = vista.run()
    assert sorted(result.layer_results) == ["fc7", "fc8"]
    for layer_result in result.layer_results.values():
        assert "f1_train" in layer_result.downstream


def test_optimize_exposes_config(dataset, resources):
    vista = Vista("alexnet", 4, dataset, resources)
    config = vista.optimize()
    assert config.cpu == 7
    assert config.join in ("shuffle", "broadcast")


def test_layers_counted_from_top(dataset, resources):
    vista = Vista("resnet50", 3, dataset, resources)
    assert vista.layers == ["conv5_2", "conv5_3", "fc6"]


def test_sizing_report(dataset, resources):
    vista = Vista("alexnet", 2, dataset, resources)
    report = vista.sizing()
    assert set(report.intermediate_table_bytes) == {"fc7", "fc8"}
    assert report.s_single > 0


def test_invalid_layer_count_rejected(dataset, resources):
    with pytest.raises(InvalidLayerError):
        Vista("vgg16", 10, dataset, resources)


def test_invalid_backend_rejected(dataset, resources):
    with pytest.raises(ValueError):
        Vista("alexnet", 2, dataset, resources, backend="flink")


def test_ignite_backend_runs(dataset, resources):
    vista = Vista("alexnet", 2, dataset, resources, backend="ignite")
    result = vista.run()
    assert len(result.layer_results) == 2


def test_custom_downstream_fn(dataset, resources):
    captured = {}

    def downstream(features, labels):
        captured["shape"] = features.shape
        return {"n": len(labels)}

    vista = Vista(
        "alexnet", 1, dataset, resources, downstream_fn=downstream
    )
    result = vista.run()
    assert result.layer_results["fc8"].downstream["n"] == 40
    assert captured["shape"][0] == 40


def test_run_alternate_plan_same_results(dataset, resources):
    matrices = {}

    def capture(features, labels):
        return {"matrix": features.copy()}

    for plan in (STAGED, LAZY):
        vista = Vista(
            "alexnet", 2, dataset, resources, downstream_fn=capture
        )
        result = vista.run(plan=plan)
        matrices[plan.label] = result.layer_results["fc8"].downstream[
            "matrix"
        ]
    np.testing.assert_allclose(
        matrices["staged/aj"], matrices["lazy/bj"], rtol=1e-4, atol=1e-5
    )


def test_build_context_applies_config(dataset, resources):
    vista = Vista("alexnet", 2, dataset, resources)
    config = vista.optimize()
    ctx = vista.build_context(config)
    assert ctx.cpu == config.cpu
    assert ctx.num_nodes == resources.num_nodes
    assert ctx.workers[0].budget.storage_bytes == config.mem_storage_bytes


def test_premat_run(dataset, resources):
    vista = Vista("alexnet", 2, dataset, resources)
    result = vista.run(premat_layer="fc7")
    assert result.metrics["premat_flops"] > 0


def test_doctest_example_shape():
    """The class docstring's example must actually work."""
    from repro.core.api import Vista as VistaClass

    vista = VistaClass(
        model_name="alexnet", num_layers=4,
        dataset=foods_dataset(num_records=24),
        resources=default_resources(num_nodes=2),
    )
    result = vista.run()
    assert sorted(result.layer_results) == ["conv5", "fc6", "fc7", "fc8"]


def test_premat_with_feature_store_via_api(tmp_path, dataset, resources):
    from repro.features.store import FeatureStore

    store = FeatureStore(tmp_path / "fs")
    vista = Vista("alexnet", 2, dataset, resources)
    first = vista.run(premat_layer="fc7", feature_store=store)
    assert first.metrics["premat_store_hit"] is False
    second = Vista("alexnet", 2, dataset, resources).run(
        premat_layer="fc7", feature_store=store
    )
    assert second.metrics["premat_store_hit"] is True
    assert second.metrics["premat_flops"] == 0
