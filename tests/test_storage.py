"""Unit tests for the storage manager: LRU eviction, spills, and the
memory-only crash path."""

import os

import numpy as np
import pytest

from repro.dataflow.partition import Partition
from repro.dataflow.storage import StorageManager
from repro.exceptions import StorageMemoryExceeded


def _partition(index, nbytes=1000):
    # Each float32 element contributes 4 bytes of payload.
    rows = [{"id": index, "x": np.zeros(nbytes // 4, dtype=np.float32)}]
    return Partition.from_rows(index, rows)


def test_cache_and_get():
    storage = StorageManager(10_000)
    part = _partition(0)
    storage.cache("a", part)
    assert storage.get("a") is part
    assert storage.used_bytes > 0


def test_miss_returns_none():
    storage = StorageManager(10_000)
    assert storage.get("missing") is None


def test_lru_eviction_spills_oldest():
    storage = StorageManager(3_000)
    for index in range(4):
        storage.cache(f"p{index}", _partition(index, 1000))
    assert storage.spilled_bytes_total > 0
    assert "p0" in storage.spilled_keys()
    assert "p3" in storage.cached_keys()


def test_touch_protects_recently_used():
    storage = StorageManager(2_500)
    storage.cache("a", _partition(0, 1000))
    storage.cache("b", _partition(1, 1000))
    storage.get("a")  # a becomes most recent
    storage.cache("c", _partition(2, 1000))
    assert "b" in storage.spilled_keys()
    assert "a" in storage.cached_keys()


def test_spilled_partition_read_back_is_metered():
    storage = StorageManager(2_000)
    storage.cache("a", _partition(0, 1500))
    storage.cache("b", _partition(1, 1500))  # evicts a
    assert storage.get("a") is not None
    assert storage.spill_read_bytes_total > 0


def test_memory_only_overflow_crashes():
    storage = StorageManager(2_000, spill_enabled=False)
    storage.cache("a", _partition(0, 1500))
    with pytest.raises(StorageMemoryExceeded):
        storage.cache("b", _partition(1, 1500))


def test_memory_only_oversized_partition_crashes():
    storage = StorageManager(1_000, spill_enabled=False)
    with pytest.raises(StorageMemoryExceeded):
        storage.cache("a", _partition(0, 5_000))


def test_evict_releases_capacity():
    storage = StorageManager(2_000)
    storage.cache("a", _partition(0, 1500))
    used = storage.used_bytes
    storage.evict("a")
    assert storage.used_bytes == used - used
    assert storage.get("a") is None


def test_recache_same_key_is_idempotent():
    storage = StorageManager(10_000)
    part = _partition(0)
    storage.cache("a", part)
    used = storage.used_bytes
    storage.cache("a", part)
    assert storage.used_bytes == used


def test_peak_tracking():
    storage = StorageManager(10_000)
    storage.cache("a", _partition(0, 2000))
    storage.cache("b", _partition(1, 2000))
    storage.evict("a")
    assert storage.peak_bytes >= storage.used_bytes


def test_clear():
    storage = StorageManager(10_000)
    storage.cache("a", _partition(0))
    storage.clear()
    assert storage.used_bytes == 0
    assert storage.get("a") is None


def test_recache_after_eviction_supersedes_spilled_copy():
    """Regression: re-admitting a key that was LRU-evicted must drop
    the stale spilled copy, or the key is double-tracked and a later
    eviction double-counts its bytes."""
    storage = StorageManager(2_500)
    storage.cache("a", _partition(0, 1000))
    storage.cache("b", _partition(1, 1000))
    storage.cache("c", _partition(2, 1000))  # evicts a to disk
    assert "a" in storage.spilled_keys()
    storage.cache("a", _partition(0, 1000))  # re-admit (evicts b)
    assert "a" in storage.cached_keys()
    assert "a" not in storage.spilled_keys()
    unit = _partition(9, 1000).memory_bytes("deserialized")
    used = storage.used_bytes
    storage.evict("a")
    assert storage.used_bytes == used - unit
    assert storage.get("a") is None  # gone from memory AND disk


def test_metrics_count_hits_misses_and_evictions_exactly():
    from repro.metrics import MetricsRegistry, find_series

    registry = MetricsRegistry()
    storage = StorageManager(2_500).attach_metrics(registry, "w0")
    storage.cache("a", _partition(0, 1000))
    storage.cache("b", _partition(1, 1000))
    storage.get("a")                          # hit; a most recent
    storage.cache("c", _partition(2, 1000))   # evicts b (LRU)
    storage.get("b")                          # hit, via spill read
    storage.get("nope")                       # miss
    assert storage.hit_count == 2
    assert storage.miss_count == 1

    def total(name):
        (series,) = find_series(registry, name, worker="w0")
        return series["total"]

    assert total("storage_hits_total") == storage.hit_count
    assert total("storage_misses_total") == storage.miss_count
    assert total("storage_evictions_total") == storage.eviction_count
    assert total("storage_spill_bytes_total") == storage.spilled_bytes_total
    assert (
        total("storage_spill_read_bytes_total")
        == storage.spill_read_bytes_total
    )


def test_metrics_occupancy_timeline_and_residency_ages():
    from repro.metrics import MetricsRegistry, find_series, series_peak

    registry = MetricsRegistry()
    storage = StorageManager(2_500).attach_metrics(registry, "w0")
    storage.cache("a", _partition(0, 1000))
    storage.cache("b", _partition(1, 1000))
    storage.cache("c", _partition(2, 1000))  # evicts a
    (occupancy,) = find_series(registry, "storage_cached_bytes",
                               worker="w0")
    assert series_peak(occupancy) == storage.peak_bytes
    assert occupancy["last"] == storage.used_bytes
    (residency,) = find_series(registry, "storage_residency_age_ticks",
                               worker="w0")
    assert residency["count"] == 1  # one LRU eviction so far
    assert residency["min"] > 0


def test_metrics_memory_only_crash_is_counted():
    from repro.metrics import MetricsRegistry, find_series

    registry = MetricsRegistry()
    storage = StorageManager(2_000, spill_enabled=False).attach_metrics(
        registry, "w0"
    )
    storage.cache("a", _partition(0, 1500))
    with pytest.raises(StorageMemoryExceeded):
        storage.cache("b", _partition(1, 1500))
    (crashes,) = find_series(
        registry, "crash_total", worker="w0", region="storage"
    )
    assert crashes["total"] == 1
    assert crashes["labels"]["exception"] == "StorageMemoryExceeded"


# ---------------------------------------------------------------------
# on-disk spill files (spill_dir) and mid-write crash residue
# ---------------------------------------------------------------------
def test_spill_dir_writes_real_files_and_cleans_up(tmp_path):
    storage = StorageManager(2_500, spill_dir=str(tmp_path))
    storage.cache("a", _partition(0, 1000))
    storage.cache("b", _partition(1, 1000))
    storage.cache("c", _partition(2, 1000))  # evicts a to disk
    paths = storage.spill_file_paths()
    assert "a" in paths and os.path.exists(paths["a"])
    assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))
    assert storage.get("a") is not None  # re-admitted to memory
    assert "a" not in storage.spill_file_paths()
    assert not os.path.exists(paths["a"])
    storage.clear()
    assert storage.spill_file_paths() == {}
    assert not any(
        n.endswith(".spill") for n in os.listdir(tmp_path)
    )


def test_spill_crash_mid_write_leaves_no_tmp_orphan(tmp_path, monkeypatch):
    """Satellite regression: a crash between the tmp write and the
    rename must not leak a ``*.tmp`` orphan, and the retained
    in-memory copy must still serve re-reads."""
    storage = StorageManager(2_500, spill_dir=str(tmp_path))
    storage.cache("a", _partition(0, 1000))
    storage.cache("b", _partition(1, 1000))

    def crash_replace(src, dst):
        raise OSError("injected crash between write and rename")

    monkeypatch.setattr(os, "replace", crash_replace)
    storage.cache("c", _partition(2, 1000))  # eviction spills a; write dies
    monkeypatch.undo()
    assert os.listdir(tmp_path) == []  # no torn file, no tmp orphan
    assert "a" in storage.spilled_keys()
    assert storage.spill_file_paths() == {}
    assert storage.get("a") is not None  # fallback copy still serves


def test_stray_spill_tmp_reclaimed_on_construct(tmp_path):
    (tmp_path / "t_img-0.spill.tmp").write_bytes(b"torn")
    (tmp_path / "note.txt").write_bytes(b"keep")
    storage = StorageManager(2_500, spill_dir=str(tmp_path))
    assert storage.reclaimed_tmp_count == 1
    assert sorted(os.listdir(tmp_path)) == ["note.txt"]
