"""Unit tests for the cost model's component terms (cnn_cost, io_cost,
params) — the pieces the runtime estimator composes."""

import pytest

from repro.cnn import get_model_stats
from repro.core.plans import Materialization
from repro.costmodel import params
from repro.costmodel.cnn_cost import (
    inference_seconds,
    per_layer_inference_flops,
    plan_inference_flops,
)
from repro.costmodel.io_cost import (
    broadcast_seconds,
    image_read_seconds,
    serde_seconds,
    shuffle_seconds,
    spill_seconds,
    task_overhead_seconds,
    training_seconds,
)
from repro.costmodel.params import cloudlab_cluster, gpu_workstation
from repro.memory.model import GB

CLUSTER = cloudlab_cluster()
STATS = get_model_stats("alexnet")
LAYERS = STATS.feature_layers


class TestPlanFlops:
    def test_lazy_is_sum_of_paths(self):
        lazy = plan_inference_flops(
            STATS, LAYERS, 100, Materialization.LAZY
        )
        expected = 100 * sum(
            STATS.layer_stats(layer).flops_from_input for layer in LAYERS
        )
        assert lazy == expected

    def test_staged_is_deepest_path(self):
        staged = plan_inference_flops(
            STATS, LAYERS, 100, Materialization.STAGED
        )
        assert staged == 100 * STATS.layer_stats(
            LAYERS[-1]
        ).flops_from_input

    def test_eager_equals_staged(self):
        assert plan_inference_flops(
            STATS, LAYERS, 50, Materialization.EAGER
        ) == plan_inference_flops(
            STATS, LAYERS, 50, Materialization.STAGED
        )

    def test_base_layer_subtracts_prefix(self):
        full = plan_inference_flops(
            STATS, LAYERS, 10, Materialization.STAGED
        )
        from_base = plan_inference_flops(
            STATS, LAYERS, 10, Materialization.STAGED,
            base_layer=LAYERS[0],
        )
        assert from_base < full
        prefix = 10 * STATS.layer_stats(LAYERS[0]).flops_from_input
        assert full - from_base == prefix

    def test_per_layer_breakdown_sums_to_plan_total(self):
        breakdown = per_layer_inference_flops(
            STATS, LAYERS, 100, Materialization.STAGED
        )
        assert sum(breakdown.values()) == plan_inference_flops(
            STATS, LAYERS, 100, Materialization.STAGED
        )

    def test_per_layer_lazy_entries_are_full_paths(self):
        breakdown = per_layer_inference_flops(
            STATS, LAYERS, 1, Materialization.LAZY
        )
        for layer, flops in breakdown.items():
            assert flops == STATS.layer_stats(layer).flops_from_input


class TestInferenceSeconds:
    def test_scales_inversely_with_nodes(self):
        one = inference_seconds(1e13, "alexnet", cloudlab_cluster(1), 4)
        eight = inference_seconds(1e13, "alexnet", cloudlab_cluster(8), 4)
        assert one / eight == pytest.approx(8.0)

    def test_gpu_uses_gpu_throughput(self):
        cpu = inference_seconds(1e13, "resnet50", gpu_workstation(), 4)
        gpu = inference_seconds(
            1e13, "resnet50", gpu_workstation(), 4, use_gpu=True
        )
        assert gpu < cpu

    def test_model_efficiency_applied(self):
        vgg = inference_seconds(1e13, "vgg16", CLUSTER, 4)
        resnet = inference_seconds(1e13, "resnet50", CLUSTER, 4)
        assert vgg < resnet  # VGG runs closer to peak per FLOP


class TestIOCosts:
    def test_image_read_sublinear(self):
        t1 = image_read_seconds(20_000, cloudlab_cluster(1))
        t8 = image_read_seconds(20_000, cloudlab_cluster(8))
        assert 1 < t1 / t8 < 8

    def test_image_read_anchor(self):
        """Table 3: ~3.7 min to read Foods' 20k images on one node."""
        minutes = image_read_seconds(20_000, cloudlab_cluster(1)) / 60
        assert 3 < minutes < 5

    def test_shuffle_scales_with_bytes_and_nodes(self):
        assert shuffle_seconds(2 * GB, CLUSTER) == pytest.approx(
            2 * shuffle_seconds(1 * GB, CLUSTER)
        )
        assert shuffle_seconds(1 * GB, cloudlab_cluster(1)) > \
            shuffle_seconds(1 * GB, cloudlab_cluster(8))

    def test_broadcast_independent_of_node_count(self):
        assert broadcast_seconds(1 * GB, cloudlab_cluster(2)) == \
            broadcast_seconds(1 * GB, cloudlab_cluster(8))

    def test_spill_counts_write_plus_rereads(self):
        once = spill_seconds(10 * GB, CLUSTER, reread_passes=1)
        thrice = spill_seconds(10 * GB, CLUSTER, reread_passes=3)
        assert thrice == pytest.approx(2 * once)

    def test_serde_scales_with_cores(self):
        slow = serde_seconds(10 * GB, CLUSTER, 1)
        fast = serde_seconds(10 * GB, CLUSTER, 4)
        assert slow / fast == pytest.approx(4.0)

    def test_task_overhead_penalty_above_threshold(self):
        below = task_overhead_seconds(1000, 1000, CLUSTER, 4)
        above = task_overhead_seconds(1000, 3000, CLUSTER, 4)
        assert above > below

    def test_training_grows_with_iterations(self):
        five = training_seconds(20_000, 4000, 160, CLUSTER, 4, iterations=5)
        ten = training_seconds(20_000, 4000, 160, CLUSTER, 4, iterations=10)
        assert ten > five


class TestParams:
    def test_cpu_speedup_monotone(self):
        values = [params.cpu_speedup(c) for c in range(1, 9)]
        assert values == sorted(values)
        assert values[0] == 1.0

    def test_serialized_ratios_alexnet_compresses_hardest(self):
        ratios = params.SERIALIZED_RATIO
        assert ratios["alexnet"] < ratios["resnet50"] <= ratios["vgg16"]

    def test_gpu_workstation_spec(self):
        spec = gpu_workstation()
        assert spec.has_gpu
        assert spec.num_nodes == 1
        assert spec.gpu_memory_bytes == 12 * GB

    def test_cloudlab_spec(self):
        spec = cloudlab_cluster()
        assert not spec.has_gpu
        assert spec.num_nodes == 8
        assert spec.system_memory_bytes == 32 * GB
