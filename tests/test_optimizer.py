"""Unit tests for Algorithm 1 — the Vista optimizer."""

import pytest

from repro.cnn import get_model_stats
from repro.core.config import (
    DatasetStats,
    DownstreamSpec,
    Resources,
    SystemDefaults,
)
from repro.core.optimizer import (
    downstream_mem_bytes,
    num_partitions_for,
    optimize,
    user_memory_requirement,
)
from repro.core.sizing import estimate_sizes
from repro.exceptions import NoFeasiblePlan
from repro.memory.model import GB, MB


class TestNumPartitions:
    def test_multiple_of_total_cores(self):
        np_ = num_partitions_for(10 * GB, 7, 8, 100 * MB)
        assert np_ % (7 * 8) == 0

    def test_partitions_bounded_by_pmax(self):
        s_single = 50 * GB
        np_ = num_partitions_for(s_single, 4, 8, 100 * MB)
        assert s_single / np_ <= 100 * MB

    def test_small_data_gets_one_wave(self):
        assert num_partitions_for(1 * MB, 4, 2, 100 * MB) == 8


class TestPaperPicks:
    """Section 5.3: 'the Vista optimizer picks ... AlexNet: 7,
    VGG16: 4, and ResNet50: 7' on the 8-core, 32 GB nodes."""

    @pytest.mark.parametrize("model,nl,expected_cpu", [
        ("alexnet", 4, 7), ("vgg16", 3, 4), ("resnet50", 5, 7),
    ])
    def test_cpu_picks(self, model, nl, expected_cpu, paper_resources,
                       foods_stats):
        stats = get_model_stats(model)
        config = optimize(
            stats, stats.top_feature_layers(nl), foods_stats,
            paper_resources,
        )
        assert config.cpu == expected_cpu

    def test_broadcast_for_small_structured_table(self, paper_resources,
                                                  foods_stats):
        stats = get_model_stats("alexnet")
        config = optimize(
            stats, stats.top_feature_layers(4), foods_stats, paper_resources
        )
        assert config.join == "broadcast"

    def test_shuffle_for_large_structured_table(self, paper_resources,
                                                amazon_stats):
        stats = get_model_stats("alexnet")
        config = optimize(
            stats, stats.top_feature_layers(4), amazon_stats, paper_resources
        )
        assert config.join == "shuffle"

    def test_serialized_when_storage_cannot_hold_s_double(
        self, paper_resources, amazon_stats
    ):
        stats = get_model_stats("resnet50")
        config = optimize(
            stats, stats.top_feature_layers(5), amazon_stats, paper_resources
        )
        assert config.persistence == "serialized"

    def test_deserialized_when_storage_suffices(self, paper_resources,
                                                foods_stats):
        stats = get_model_stats("alexnet")
        config = optimize(
            stats, stats.top_feature_layers(4), foods_stats, paper_resources
        )
        assert config.persistence == "deserialized"


class TestConstraints:
    def test_eq9_cpu_leaves_a_core_for_os(self, paper_resources,
                                          foods_stats):
        for model in ("alexnet", "vgg16", "resnet50"):
            stats = get_model_stats(model)
            config = optimize(
                stats, stats.feature_layers, foods_stats, paper_resources
            )
            assert 1 <= config.cpu <= 7

    def test_eq12_total_memory_respected(self, paper_resources,
                                         foods_stats):
        defaults = SystemDefaults()
        for model in ("alexnet", "vgg16", "resnet50"):
            stats = get_model_stats(model)
            config = optimize(
                stats, stats.feature_layers, foods_stats, paper_resources,
                defaults=defaults,
            )
            total = (
                defaults.os_reserved_bytes + config.mem_dl_bytes
                + config.mem_user_bytes + defaults.core_memory_bytes
                + config.mem_storage_bytes
            )
            assert total <= paper_resources.system_memory_bytes

    def test_eq13_np_multiple_of_workers(self, paper_resources,
                                         foods_stats):
        stats = get_model_stats("resnet50")
        config = optimize(
            stats, stats.feature_layers, foods_stats, paper_resources
        )
        assert config.num_partitions % (
            config.cpu * paper_resources.num_nodes
        ) == 0

    def test_eq14_partition_size_bound(self, paper_resources, amazon_stats):
        defaults = SystemDefaults()
        stats = get_model_stats("resnet50")
        config = optimize(
            stats, stats.feature_layers, amazon_stats, paper_resources
        )
        sizing = estimate_sizes(
            stats, stats.feature_layers, amazon_stats, alpha=defaults.alpha
        )
        assert sizing.s_single / config.num_partitions \
            <= defaults.max_partition_bytes * 1.01

    def test_eq15_gpu_constraint_lowers_cpu(self, foods_stats):
        gpu_res = Resources(1, 32 * GB, 8, gpu_memory_bytes=12 * GB)
        stats = get_model_stats("vgg16")
        config = optimize(
            stats, stats.feature_layers, foods_stats, gpu_res
        )
        assert config.cpu * stats.gpu_mem_bytes < 12 * GB
        assert config.cpu <= 2

    def test_user_memory_covers_requirement(self, paper_resources,
                                            foods_stats):
        defaults = SystemDefaults()
        stats = get_model_stats("alexnet")
        layers = stats.feature_layers
        config = optimize(stats, layers, foods_stats, paper_resources)
        sizing = estimate_sizes(stats, layers, foods_stats)
        m_mem = downstream_mem_bytes(stats, layers, 130)
        need = user_memory_requirement(
            stats, sizing.s_single, config.num_partitions, config.cpu,
            m_mem, defaults.alpha,
        )
        assert config.mem_user_bytes >= need


class TestInfeasibility:
    def test_tiny_nodes_raise_no_feasible_plan(self, foods_stats):
        small = Resources(8, 4 * GB, 8)
        stats = get_model_stats("vgg16")
        with pytest.raises(NoFeasiblePlan):
            optimize(stats, stats.feature_layers, foods_stats, small)

    def test_downstream_in_dl_system_raises_dl_footprint(
        self, paper_resources, foods_stats
    ):
        stats = get_model_stats("alexnet")
        big_m = DownstreamSpec(mem_bytes=3 * GB, in_dl_system=True)
        config = optimize(
            stats, stats.feature_layers, foods_stats, paper_resources,
            downstream=big_m,
        )
        # DL region must hold max(f, M) per thread: 3 GB > 2 GB.
        assert config.mem_dl_bytes == config.cpu * 3 * GB
