"""Capacity planner: use the optimizer + cost model to answer
"what cluster do I need?" questions at paper scale, before touching a
cluster.

For a chosen CNN/dataset this prints, per cluster size: the optimizer's
configuration (cpu, np, memory split, join, persistence), the predicted
runtime, and — for the naive Lazy-7 configuration — whether the run
would crash and from which Section 4.1 scenario.

Run:  python examples/capacity_planner.py
"""

from repro.cnn import get_model_stats
from repro.core.config import DatasetStats, Resources
from repro.core.optimizer import optimize
from repro.core.plans import LAZY, STAGED
from repro.costmodel import (
    cloudlab_cluster,
    estimate_runtime,
    spark_default_setup,
    vista_setup,
)
from repro.exceptions import NoFeasiblePlan
from repro.memory.model import GB


def plan_for(model_name, dataset_stats, num_nodes, mem_gb=32):
    stats = get_model_stats(model_name)
    layers = stats.feature_layers
    resources = Resources(num_nodes, mem_gb * GB, 8)
    cluster = cloudlab_cluster(num_nodes)

    naive = estimate_runtime(
        stats, layers, dataset_stats, LAZY,
        spark_default_setup(7, dataset_stats.num_records), cluster,
    )
    try:
        config = optimize(stats, layers, dataset_stats, resources)
    except NoFeasiblePlan as exc:
        return naive, None, None, str(exc)
    vista = estimate_runtime(
        stats, layers, dataset_stats, STAGED, vista_setup(config), cluster
    )
    return naive, config, vista, None


def main():
    # A paper-scale workload: Amazon-sized data through ResNet50.
    amazon = DatasetStats(
        num_records=200_000, num_structured_features=200,
        avg_image_bytes=15 * 1024,
    )
    print("workload: ResNet50 x 5 layers over 200k records\n")
    print(f"{'nodes':>5s}  {'naive Lazy-7':>14s}  {'Vista':>8s}  "
          f"{'optimizer config'}")
    for num_nodes in (1, 2, 4, 8, 16):
        naive, config, vista, error = plan_for(
            "resnet50", amazon, num_nodes
        )
        naive_cell = (
            f"X ({naive.crash})" if naive.crashed
            else f"{naive.minutes:.0f} min"
        )
        if error:
            print(f"{num_nodes:>5d}  {naive_cell:>14s}  {'—':>8s}  "
                  f"infeasible: more memory needed")
            continue
        print(f"{num_nodes:>5d}  {naive_cell:>14s}  "
              f"{vista.minutes:>6.0f}m  {config.describe()}")

    # And the memory-bound case: VGG16 on small nodes.
    print("\nworkload: VGG16 x 3 layers, shrinking node memory")
    foods = DatasetStats(20_000, 130, 14 * 1024)
    for mem_gb in (32, 24, 16, 8):
        naive, config, vista, error = plan_for(
            "vgg16", foods, 8, mem_gb=mem_gb
        )
        if error:
            print(f"  {mem_gb} GB nodes: NO FEASIBLE PLAN — "
                  "Vista tells you to provision more memory")
        else:
            print(f"  {mem_gb} GB nodes: cpu={config.cpu}, "
                  f"predicted {vista.minutes:.0f} min")


if __name__ == "__main__":
    main()
