"""Multimodal product recommender (the paper's motivating example).

Alice at an online retailer predicts product popularity from
structured features (price/title/category embeddings) and product
images. She compares: structured features alone, structured + HOG,
and structured + CNN features from every explored layer of ResNet50 —
with a proper train/test split, exactly the Figure 8 methodology.

Run:  python examples/multimodal_recommender.py
"""

import numpy as np

from repro import Vista, default_resources
from repro.data import amazon_dataset
from repro.features.hog import hog_features
from repro.ml import LogisticRegression, f1_score, standardize, train_test_split


def evaluated_downstream(features, labels):
    """A downstream M with held-out evaluation: 80/20 split,
    standardized features, the paper's elastic-net LR."""
    x_tr, x_te, y_tr, y_te = train_test_split(features, labels, 0.2)
    x_tr, x_te = standardize(x_tr, x_te)
    model = LogisticRegression(learning_rate=2.0).fit(x_tr, y_tr)
    return {
        "model": model,
        "f1_test": f1_score(y_te, model.predict(x_te)),
    }


def main():
    dataset = amazon_dataset(num_records=400)
    structured = dataset.structured_matrix()
    labels = dataset.labels()

    # Baseline 1: structured features only.
    base = evaluated_downstream(structured, labels)
    print(f"structured only:       F1 = {base['f1_test']:.3f}")

    # Baseline 2: structured + classical HOG image features.
    hog = np.stack([hog_features(img) for img in dataset.images()])
    with_hog = evaluated_downstream(
        np.hstack([structured, hog]), labels
    )
    print(f"structured + HOG:      F1 = {with_hog['f1_test']:.3f}")

    # Vista: structured + CNN features, one model per explored layer,
    # materialized with the optimized Staged plan.
    vista = Vista(
        model_name="resnet50",
        num_layers=5,
        dataset=dataset,
        resources=default_resources(num_nodes=4),
        downstream_fn=evaluated_downstream,
    )
    result = vista.run()
    print("\nstructured + ResNet50 layer features:")
    for layer, layer_result in result.layer_results.items():
        print(f"  {layer:10s} F1 = {layer_result.downstream['f1_test']:.3f}")

    best_layer, best = max(
        result.layer_results.items(),
        key=lambda item: item[1].downstream["f1_test"],
    )
    lift = best.downstream["f1_test"] - base["f1_test"]
    print(f"\nbest layer: {best_layer} "
          f"(+{lift * 100:.1f} F1 points over structured-only)")


if __name__ == "__main__":
    main()
