"""Feature transfer from a DAG-structured network (DenseNet-style) —
the paper's Section 5.4 extension, working end to end.

The generalized Staged plan schedules a DAG's feature nodes so that no
operator ever runs twice and only the live cut of intermediate tensors
is held — exactly what the chain-structured Staged plan does for
AlexNet/VGG/ResNet, extended to multi-input layers (dense-block
concatenations).

Run:  python examples/dag_feature_transfer.py
"""

import numpy as np

from repro.cnn.dag import run_staged, staged_schedule
from repro.cnn.zoo.densenet import build_densenet_mini
from repro.data.synthetic import generate_dataset
from repro.features.pooling import pool_feature_tensor
from repro.ml import LogisticRegression, f1_score, standardize, train_test_split


def main():
    dag = build_densenet_mini()
    targets = dag.feature_nodes
    print(f"network: {dag}")

    print("\ngeneralized staged schedule:")
    for step in staged_schedule(dag, targets):
        print(f"  materialize {step.targets[0]:11s} "
              f"compute={len(step.compute):2d} ops, "
              f"keep live cut={list(step.keep)}")

    dataset = generate_dataset(
        "dag-demo", num_records=300, num_structured_features=24,
        image_shape=(16, 16, 3), seed=3,
    )
    labels = dataset.labels()
    structured = dataset.structured_matrix()

    # Staged DAG inference per record; accumulate per-target features.
    feature_matrices = {t: [] for t in targets}
    peak = 0
    for image in dataset.images():
        results, held = run_staged(dag, image, targets)
        peak = max(peak, held)
        for target in targets:
            feature_matrices[target].append(
                pool_feature_tensor(results[target])
            )
    print(f"\npeak simultaneously-held tensors per record: {peak} "
          f"(vs {len(dag.nodes)} nodes total)")

    print(f"\n{'feature node':14s} {'test F1':>8s}")
    x_tr, x_te, y_tr, y_te = train_test_split(structured, labels, 0.2)
    x_tr, x_te = standardize(x_tr, x_te)
    base = LogisticRegression(learning_rate=2.0).fit(x_tr, y_tr)
    print(f"{'(struct only)':14s} "
          f"{f1_score(y_te, base.predict(x_te)):>8.3f}")
    for target in targets:
        features = np.hstack(
            [structured, np.stack(feature_matrices[target])]
        )
        x_tr, x_te, y_tr, y_te = train_test_split(features, labels, 0.2)
        x_tr, x_te = standardize(x_tr, x_te)
        model = LogisticRegression(learning_rate=2.0).fit(x_tr, y_tr)
        print(f"{target:14s} {f1_score(y_te, model.predict(x_te)):>8.3f}")


if __name__ == "__main__":
    main()
