"""Plan explorer: run every logical plan on the real engines and
compare what they compute and what they cost.

Demonstrates the Section 4.2.1 story live: all five plans produce
bit-identical features, Lazy burns redundant FLOPs, Eager's cached
footprint dwarfs Staged's, and the physical join choice doesn't change
results.

Run:  python examples/plan_explorer.py
"""

import numpy as np

from repro.cnn import build_model
from repro.core.config import VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import ALL_PLANS
from repro.data import foods_dataset
from repro.dataflow.context import local_context


def run_plan(plan, model, dataset, layers):
    config = VistaConfig(
        cpu=2, num_partitions=8, mem_storage_bytes=0, mem_user_bytes=0,
        mem_dl_bytes=0, join="shuffle", persistence="deserialized",
    )
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2)
    executor = FeatureTransferExecutor(
        ctx, model, dataset, layers, config,
        downstream_fn=lambda features, labels: {"matrix": features.copy()},
    )
    return executor.run(plan)


def main():
    dataset = foods_dataset(num_records=64)
    model = build_model("alexnet", profile="mini")
    layers = ["conv5", "fc6", "fc7", "fc8"]

    print(f"{'plan':18s} {'GFLOPs':>8s} {'shuffleKB':>10s} "
          f"{'storage peak':>12s}")
    results = {}
    for name, plan in ALL_PLANS.items():
        result = run_plan(plan, model, dataset, layers)
        results[name] = result
        print(
            f"{name:18s} "
            f"{result.metrics['inference_flops'] / 1e9:>8.3f} "
            f"{result.metrics['shuffle_bytes'] / 1024:>10.1f} "
            f"{result.metrics['storage_peak_bytes']:>12d}"
        )

    # Every plan computed the exact same features.
    reference = results["staged"]
    for name, result in results.items():
        for layer in layers:
            np.testing.assert_allclose(
                result.layer_results[layer].downstream["matrix"],
                reference.layer_results[layer].downstream["matrix"],
                rtol=1e-4, atol=1e-5,
            )
    print("\nall plans produced identical feature matrices "
          "(checked bit-for-bit within fp tolerance)")

    lazy = results["lazy"].metrics["inference_flops"]
    staged = results["staged"].metrics["inference_flops"]
    print(f"Lazy performed {lazy / staged:.2f}x the inference FLOPs of "
          f"Staged — the redundancy Vista eliminates")


if __name__ == "__main__":
    main()
