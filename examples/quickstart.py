"""Quickstart: declarative feature transfer in a dozen lines.

Mirrors the paper's Figure 13 usage: pick a roster CNN, say how many
feature layers to explore, hand over the data tables and cluster
specs, and let Vista optimize and run everything — partial CNN
inference, joins, caching, and downstream training.

Run:  python examples/quickstart.py
"""

from repro import Vista, default_resources
from repro.data import foods_dataset


def main():
    # Foods-like multimodal dataset: 130 structured features + an
    # image per record, binary target (plant-based or not).
    dataset = foods_dataset(num_records=120)

    vista = Vista(
        model_name="alexnet",     # from the roster: alexnet/vgg16/resnet50
        num_layers=4,             # explore the top 4 feature layers
        dataset=dataset,
        resources=default_resources(num_nodes=2),  # 2x 32 GB, 8 cores
    )

    config = vista.optimize()
    print("optimizer decisions:", config.describe())

    result = vista.run()
    print(f"\nplan executed: {result.plan}")
    print(f"{'layer':8s}  {'feature dim':>11s}  {'train F1':>8s}")
    for layer, layer_result in result.layer_results.items():
        f1 = layer_result.downstream["f1_train"]
        print(f"{layer:8s}  {layer_result.feature_dim:>11d}  {f1:>8.3f}")

    best = max(
        result.layer_results.items(),
        key=lambda item: item[1].downstream["f1_train"],
    )
    print(f"\nbest transfer layer: {best[0]} "
          f"(F1 = {best[1].downstream['f1_train']:.3f})")
    print(f"inference GFLOPs: "
          f"{result.metrics['inference_flops'] / 1e9:.2f}")


if __name__ == "__main__":
    main()
