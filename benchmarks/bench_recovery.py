"""Benchmark: recovery overhead under seeded fault injection.

Runs one small end-to-end feature-transfer workload fault-free, then
replays it under each injected fault class — task crashes, a transient
OOM storm that forces one degradation-ladder step, worker loss, and a
straggler — through the :class:`~repro.core.resilient.ResilientRunner`
supervisor. For every scenario it verifies the recovered per-layer
feature matrices are bit-identical to the fault-free run, then reports
wall-clock overhead, extra tasks executed, recovery-log counts, and
the simulated seconds spent in backoff/stragglers.

Every scenario repeat runs under a ``scenario:<label>`` span of one
shared tracer (the last repeat additionally threads the tracer through
the supervisor, capturing the full attempt/degrade span tree), and the
reported numbers — wall seconds, workload attempts, degradation steps
— are read back out of those spans. The final repeat also runs with a
per-scenario :class:`~repro.metrics.MetricsRegistry` (tagged via
``base_labels``), and the merged metrics block lands in the committed
envelope next to the trace. ``BENCH_recovery.json`` is the shared
``trace/v2`` envelope so future PRs have a recovery-overhead
trajectory to compare against. The committed result file is
intentionally tracked in git: it is the perf record, not a scratch
artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--quick]
        [--records N] [--repeats R]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, trace_payload, write_results  # noqa: E402

from repro.core.api import Vista, default_resources  # noqa: E402
from repro.data import foods_dataset  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.metrics import MetricsRegistry, merge_exports  # noqa: E402
from repro.recovery import CheckpointStore  # noqa: E402
from repro.trace import Tracer  # noqa: E402

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_recovery.json",
)

SEED = 7


def _scenarios():
    """label -> (FaultPlan factory, needs_checkpoint_store). A fresh
    plan per run: the injector tracks firing budgets per rule object.
    The ``ckpt-*`` scenarios kill *both* workers mid-materialization
    (waves 5 and 6 — the train stage, after the inference stage's
    checkpoints committed), which is fatal without a store
    (ClusterExhausted is non-retryable); with a store the supervisor
    resumes from the checkpoints instead of degrading."""
    both_workers_lost = lambda: (  # noqa: E731
        FaultPlan()
        .worker_loss(worker=None, wave=5)
        .worker_loss(worker=None, wave=6)
    )
    return {
        "fault-free": (lambda: None, False),
        "task-crash": (lambda: FaultPlan().task_crash(
            partition=1, attempt=1, times=3
        ), False),
        "oom-degrade": (lambda: FaultPlan().task_oom(
            partition=0, attempt=None, times=4
        ), False),
        "worker-loss": (lambda: FaultPlan().worker_loss(worker=1), False),
        "straggler": (lambda: FaultPlan().straggler(
            partition=2, delay_s=30.0
        ), False),
        "ckpt-resume": (both_workers_lost, True),
        "ckpt-corrupt-resume": (lambda: both_workers_lost()
                                .checkpoint_corrupt(partition=0), True),
    }


def make_vista(records):
    return Vista(
        model_name="alexnet", num_layers=2,
        dataset=foods_dataset(num_records=records),
        resources=default_resources(num_nodes=2),
        downstream_fn=lambda features, labels: {"matrix": features.copy()},
    )


def run_scenario(label, plan_factory, records, repeats, baseline_matrices,
                 tracer, with_checkpoints=False):
    """Run one fault scenario ``repeats`` times under ``scenario:``
    spans; the final repeat threads the tracer through the supervisor
    so its attempt/degrade structure lands in the trace. With
    ``with_checkpoints``, each repeat gets a fresh checkpoint store in
    a scratch directory (one supervisor call covers the crash *and*
    the resume, so the store's saved ratio is the scenario's
    recomputation-saved measure)."""
    scenario_spans = []
    deep_span = None
    result = None
    metrics = None
    store = None
    for repeat in range(repeats):
        vista = make_vista(records)
        plan = plan_factory()
        deep = repeat == repeats - 1
        tracer.clock = None  # each scenario brings a fresh injector clock
        if deep:
            metrics = MetricsRegistry(base_labels={"scenario": label})
        scratch = tempfile.TemporaryDirectory() if with_checkpoints else None
        store = CheckpointStore(scratch.name) if with_checkpoints else None
        with tracer.span(f"scenario:{label}", repeat=repeat,
                         traced_run=deep) as sp:
            result = vista.run_resilient(
                fault_plan=plan, seed=SEED,
                tracer=tracer if deep else None,
                metrics=metrics if deep else None,
                checkpoint_store=store,
            )
        if scratch is not None:
            scratch.cleanup()
        scenario_spans.append(sp)
        if deep:
            deep_span = sp
    if baseline_matrices is not None:
        for layer, matrix in baseline_matrices.items():
            recovered = result.layer_results[layer].downstream["matrix"]
            assert np.array_equal(recovered, matrix), (
                f"{label}: features diverged on {layer} after recovery"
            )
    log = result.metrics["recovery_log"]
    count = lambda kind: sum(1 for e in log if e["event"] == kind)  # noqa: E731
    # trace-derived structure of the final run, cross-checked against
    # the recovery log (two independent records of the same recovery)
    trace_attempts = len(deep_span.find_all("attempt:"))
    trace_degrades = sum(
        1 for span in deep_span.walk()
        for event in span.events if event["event"] == "degrade"
    )
    assert trace_attempts == result.metrics["recovery_attempts"], (
        f"{label}: trace saw {trace_attempts} attempts, recovery log "
        f"{result.metrics['recovery_attempts']}"
    )
    assert trace_degrades == count("degrade"), (
        f"{label}: trace saw {trace_degrades} degrades, recovery log "
        f"{count('degrade')}"
    )
    row = {
        "scenario": label,
        "wall_seconds": min(sp.wall_s for sp in scenario_spans),
        "tasks_run": result.metrics["tasks_run"],
        "workload_attempts": trace_attempts,
        "task_retries": count("task_retry"),
        "blacklists": count("blacklist"),
        "degrades": trace_degrades,
        "resumes": count("resume"),
        "restored_partitions": result.metrics.get("restore_total", 0),
        "checkpoint_bytes": result.metrics.get("checkpoint_bytes", 0),
        "checkpoint_corruptions_detected": result.metrics.get(
            "checkpoint_corrupt_total", 0
        ),
        "recomputation_saved_ratio": result.metrics.get(
            "recomputation_saved_ratio", 0.0
        ),
        "sim_recovery_seconds": result.metrics.get("sim_time_s", 0.0),
        "faults_injected": result.metrics.get("faults_injected", {}),
    }
    return row, metrics


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats; skip writing the result file")
    parser.add_argument("--records", type=int, default=48)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write the result envelope to this path even "
                             "under --quick (the CI regression gate "
                             "compares it against the committed file)")
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 5)

    baseline_matrices = {
        layer: lr.downstream["matrix"]
        for layer, lr in make_vista(args.records).run().layer_results.items()
    }

    tracer = Tracer(name="bench_recovery")
    results = []
    scenario_metrics = []
    for label, (factory, with_checkpoints) in _scenarios().items():
        row, metrics = run_scenario(
            label, factory, args.records, repeats, baseline_matrices,
            tracer, with_checkpoints=with_checkpoints,
        )
        results.append(row)
        scenario_metrics.append(metrics.export())
    base_wall = next(
        r["wall_seconds"] for r in results if r["scenario"] == "fault-free"
    )
    for r in results:
        r["overhead_x"] = r["wall_seconds"] / base_wall
    base_tasks = next(
        r["tasks_run"] for r in results if r["scenario"] == "fault-free"
    )

    print_table(
        f"Recovery overhead ({args.records} records, repeats={repeats}, "
        f"seed={SEED}; features bit-identical in every scenario)",
        ["scenario", "wall s", "overhead", "attempts", "retries",
         "blacklists", "degrades", "resumes", "saved", "sim s"],
        [
            (
                r["scenario"],
                f"{r['wall_seconds']:.4f}",
                f"{r['overhead_x']:.2f}x",
                r["workload_attempts"],
                r["task_retries"],
                r["blacklists"],
                r["degrades"],
                r["resumes"],
                f"{r['recomputation_saved_ratio']:.2f}",
                f"{r['sim_recovery_seconds']:.1f}",
            )
            for r in results
        ],
    )

    by_scenario = {r["scenario"]: r for r in results}
    assert by_scenario["task-crash"]["task_retries"] > 0
    assert by_scenario["oom-degrade"]["degrades"] == 1
    assert by_scenario["oom-degrade"]["workload_attempts"] == 2
    assert by_scenario["worker-loss"]["blacklists"] == 1
    assert by_scenario["straggler"]["sim_recovery_seconds"] >= 30.0
    # The checkpointed scenarios resume instead of degrading, restore a
    # strict subset of the work, and recompute the rest.
    for label in ("ckpt-resume", "ckpt-corrupt-resume"):
        row = by_scenario[label]
        assert row["resumes"] >= 1, f"{label}: supervisor never resumed"
        assert row["degrades"] == 0, f"{label}: resume should beat degrade"
        assert row["restored_partitions"] > 0
        assert 0.0 < row["recomputation_saved_ratio"] < 1.0
    assert by_scenario["ckpt-corrupt-resume"][
        "checkpoint_corruptions_detected"] >= 1, (
        "injected corruption must be detected, never silently ingested"
    )
    # Lineage-only recovery re-executes work: the non-checkpointed
    # faulty scenarios never run fewer tasks than the clean run. The
    # ckpt-* scenarios are exempt by design — restored partitions never
    # become tasks, which is the whole point of durable checkpoints.
    assert all(
        r["tasks_run"] >= base_tasks
        for r in results if not r["scenario"].startswith("ckpt-")
    )

    out_path = args.out or RESULT_PATH
    if args.out or not args.quick:
        write_results(out_path, trace_payload(
            "recovery", results, trace=tracer,
            metrics=merge_exports(*scenario_metrics),
            records=args.records, repeats=repeats, seed=SEED,
        ))
        print(f"\nwrote {out_path}")
    return results


if __name__ == "__main__":
    main()
