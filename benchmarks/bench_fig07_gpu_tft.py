"""Figure 7: (A) end-to-end on a GPU workstation; (B) TFT+Beam vs
Vista on Foods/ResNet50 varying the number of explored layers.

Shape invariants (Section 5.1):
  (A) Lazy-5 and Lazy-7 crash with VGG16 on the 12 GB GPU; Eager takes
      significantly longer than Vista for ResNet50 (disk spills);
  (B) with one layer TFT+Beam is slightly faster than Vista, but as
      the layer count grows Vista clearly outperforms it (all-layers-
      in-one-go puts memory pressure on Flink -> spills).
"""

import pytest

from harness import FOODS, fmt_minutes, paper_workload, print_table
from repro.cnn import get_model_stats
from repro.core.config import Resources
from repro.core.optimizer import optimize
from repro.core.plans import EAGER, LAZY, STAGED
from repro.costmodel import (
    estimate_runtime,
    flink_setup,
    gpu_workstation,
    spark_default_setup,
    vista_setup,
)
from repro.costmodel.crashes import manual_setup
from repro.memory.model import GB

GPU_CLUSTER = gpu_workstation()
GPU_RESOURCES = Resources(1, 32 * GB, 8, gpu_memory_bytes=12 * GB)
APPROACHES = ["Lazy-1", "Lazy-5", "Lazy-7", "Eager", "Vista"]


def gpu_cell(model_name, approach):
    stats, layers = paper_workload(model_name)
    if approach.startswith("Lazy"):
        cpu = int(approach.split("-")[1])
        setup = spark_default_setup(cpu, FOODS.num_records)
        return estimate_runtime(
            stats, layers, FOODS, LAZY, setup, GPU_CLUSTER, use_gpu=True
        )
    if approach == "Eager":
        setup = manual_setup(stats, layers, FOODS, 5, label="eager")
        return estimate_runtime(
            stats, layers, FOODS, EAGER, setup, GPU_CLUSTER, use_gpu=True
        )
    config = optimize(stats, layers, FOODS, GPU_RESOURCES)
    return estimate_runtime(
        stats, layers, FOODS, STAGED, vista_setup(config), GPU_CLUSTER,
        use_gpu=True,
    )


@pytest.fixture(scope="module")
def gpu_matrix():
    return {
        (model, approach): gpu_cell(model, approach)
        for model in ("alexnet", "vgg16", "resnet50")
        for approach in APPROACHES
    }


def tft_beam_runtime(num_layers):
    """TFT+Beam modelled as the Eager plan on the hand-tuned Flink
    configuration (Section 5.1's comparison setup)."""
    stats = get_model_stats("resnet50")
    layers = stats.top_feature_layers(num_layers)
    return estimate_runtime(
        stats, layers, FOODS, EAGER, flink_setup(), gpu_workstation()
    )


def vista_runtime(num_layers):
    stats = get_model_stats("resnet50")
    layers = stats.top_feature_layers(num_layers)
    config = optimize(stats, layers, FOODS, GPU_RESOURCES)
    return estimate_runtime(
        stats, layers, FOODS, STAGED, vista_setup(config), gpu_workstation()
    )


@pytest.fixture(scope="module")
def tft_series():
    return {
        k: (tft_beam_runtime(k), vista_runtime(k)) for k in range(1, 6)
    }


def test_fig07a_gpu_matrix(gpu_matrix, benchmark):
    benchmark(lambda: gpu_cell("resnet50", "Vista"))
    rows = [
        [model] + [fmt_minutes(gpu_matrix[(model, a)]) for a in APPROACHES]
        for model in ("alexnet", "vgg16", "resnet50")
    ]
    print_table(
        "Figure 7(A) — Foods on GPU workstation (minutes, X = crash)",
        ["CNN"] + APPROACHES, rows,
    )


def test_fig07a_vgg_crashes_at_5_plus_threads(gpu_matrix):
    assert gpu_matrix[("vgg16", "Lazy-5")].crashed
    assert gpu_matrix[("vgg16", "Lazy-7")].crashed
    assert not gpu_matrix[("vgg16", "Lazy-1")].crashed


def test_fig07a_only_vgg_crashes(gpu_matrix):
    for model in ("alexnet", "resnet50"):
        for approach in APPROACHES:
            assert not gpu_matrix[(model, approach)].crashed, (model,
                                                               approach)


def test_fig07a_eager_resnet_much_slower_than_vista(gpu_matrix):
    eager = gpu_matrix[("resnet50", "Eager")]
    vista = gpu_matrix[("resnet50", "Vista")]
    assert eager.seconds > 1.5 * vista.seconds
    assert eager.spilled_bytes > 0


def test_fig07a_vista_never_crashes(gpu_matrix):
    for model in ("alexnet", "vgg16", "resnet50"):
        assert not gpu_matrix[(model, "Vista")].crashed


def test_fig07b_tft_beam_curve(tft_series, benchmark):
    benchmark(lambda: tft_beam_runtime(3))
    rows = [
        [k, f"{tft.minutes:.1f}", f"{vista.minutes:.1f}"]
        for k, (tft, vista) in sorted(tft_series.items())
    ]
    print_table(
        "Figure 7(B) — TFT+Beam vs Vista, Foods/ResNet50 (minutes)",
        ["#layers", "TFT+Beam", "Vista"], rows,
    )


def test_fig07b_crossover(tft_series):
    """One layer: TFT+Beam competitive; many layers: Vista wins
    clearly."""
    tft1, vista1 = tft_series[1]
    assert tft1.seconds < 1.3 * vista1.seconds  # competitive at k=1
    tft5, vista5 = tft_series[5]
    assert vista5.seconds < tft5.seconds  # Vista wins at k=5


def test_fig07b_gap_grows_with_layers(tft_series):
    gaps = [
        tft.seconds - vista.seconds
        for _, (tft, vista) in sorted(tft_series.items())
    ]
    assert gaps[-1] > gaps[0]
