"""Ablation: what each optimizer rule buys (DESIGN.md Section 5).

Three ablations of Algorithm 1, evaluated through the cost model on
the full Figure 6 grid:

  1. drop the cpu cap + DL constraint (always use cores-1): VGG16
     crashes — reliability comes from the constraint;
  2. drop the persistence downgrade (always deserialized): ResNet50 on
     Amazon/Ignite crashes and Spark spills grow — the serialized rule
     is load-bearing at scale;
  3. drop the broadcast rule (always shuffle): Foods runs get slower —
     the join rule buys efficiency, not reliability.
"""

import pytest

from harness import AMAZON, FOODS, paper_workload, print_table
from repro.core.config import Resources
from repro.core.optimizer import optimize
from repro.core.plans import STAGED
from repro.costmodel import cloudlab_cluster, estimate_runtime, vista_setup
from repro.memory.model import GB

CLUSTER = cloudlab_cluster()
RESOURCES = Resources(8, 32 * GB, 8)


def vista_report(model_name, ds, backend="spark", mutate=None):
    stats, layers = paper_workload(model_name)
    config = optimize(stats, layers, ds, RESOURCES)
    setup = vista_setup(config, backend=backend)
    if mutate is not None:
        setup = mutate(setup)
    return estimate_runtime(stats, layers, ds, STAGED, setup, CLUSTER)


@pytest.fixture(scope="module")
def grid():
    out = {}
    mutations = {
        "full": None,
        "no-cpu-cap": lambda s: s.with_(cpu=7),
        "no-ser-rule": lambda s: s.with_(persistence="deserialized"),
        "no-broadcast": lambda s: s.with_(join="shuffle"),
    }
    for ds_name, ds in (("foods", FOODS), ("amazon", AMAZON)):
        for backend in ("spark", "ignite"):
            for model in ("alexnet", "vgg16", "resnet50"):
                for ablation, mutate in mutations.items():
                    out[(ds_name, backend, model, ablation)] = vista_report(
                        model, ds, backend, mutate
                    )
    return out


def test_ablation_table(grid, benchmark):
    benchmark(lambda: vista_report("resnet50", FOODS))
    ablations = ["full", "no-cpu-cap", "no-ser-rule", "no-broadcast"]
    rows = []
    for (ds_name, backend, model, ablation), report in sorted(grid.items()):
        if ablation == "full":
            rows.append([
                f"{ds_name}/{backend}/{model}"] + [
                grid[(ds_name, backend, model, a)].cell()
                for a in ablations
            ])
    print_table(
        "Optimizer ablation — Vista minutes (X = crash)",
        ["workload"] + ablations, rows,
    )


def test_full_optimizer_never_crashes(grid):
    for key, report in grid.items():
        if key[3] == "full":
            assert not report.crashed, key


def test_dropping_cpu_constraint_crashes_vgg(grid):
    crashed = [
        key for key, report in grid.items()
        if key[3] == "no-cpu-cap" and report.crashed
    ]
    assert any(key[2] == "vgg16" for key in crashed)


def test_dropping_ser_rule_crashes_resnet_amazon_ignite(grid):
    report = grid[("amazon", "ignite", "resnet50", "no-ser-rule")]
    assert report.crashed


def test_dropping_ser_rule_increases_spark_spills(grid):
    full = grid[("amazon", "spark", "resnet50", "full")]
    ablated = grid[("amazon", "spark", "resnet50", "no-ser-rule")]
    assert ablated.spilled_bytes > full.spilled_bytes


def test_dropping_broadcast_slows_foods(grid):
    """On Foods the optimizer picks broadcast; forcing shuffle must not
    be faster (it shuffles the whole image table)."""
    for model in ("alexnet", "vgg16", "resnet50"):
        full = grid[("foods", "spark", model, "full")]
        ablated = grid[("foods", "spark", model, "no-broadcast")]
        assert ablated.seconds >= full.seconds * 0.999
