"""Figure 10: physical plan choices — Shuffle vs Broadcast join x
Serialized vs Deserialized persistence, varying data scale and the
number of structured features.

Shape invariants (Section 5.3):
  - on ResNet50 the four combinations are nearly indistinguishable at
    low scale; Serialized slightly wins at 8X (spill relief);
  - Broadcast slightly outperforms Shuffle on AlexNet;
  - Broadcast plans CRASH once the structured table gets wide enough
    (10,000 features at 8X);
  - no single combination dominates everywhere — the argument for an
    automated optimizer.
"""

import pytest

from harness import FOODS, fmt_minutes, print_table, scale_dataset_stats
from repro.cnn import get_model_stats
from repro.core.plans import STAGED
from repro.costmodel import cloudlab_cluster, estimate_runtime
from repro.costmodel.crashes import manual_setup

CLUSTER = cloudlab_cluster()
COMBOS = {
    "Shuffle/Deser.": ("shuffle", "deserialized"),
    "Shuffle/Ser.": ("shuffle", "serialized"),
    "Broad./Deser.": ("broadcast", "deserialized"),
    "Broad./Ser.": ("broadcast", "serialized"),
}
LAYER_COUNTS = {"alexnet": 4, "resnet50": 5}


def run(model_name, scale, num_structured_features=None):
    stats = get_model_stats(model_name)
    layers = stats.top_feature_layers(LAYER_COUNTS[model_name])
    ds = scale_dataset_stats(
        FOODS, factor=scale,
        num_structured_features=num_structured_features,
    )
    out = {}
    for label, (join, pers) in COMBOS.items():
        setup = manual_setup(
            stats, layers, ds, 4, join=join, persistence=pers, label=label
        )
        out[label] = estimate_runtime(
            stats, layers, ds, STAGED, setup, CLUSTER
        )
    return out


@pytest.fixture(scope="module")
def scale_sweep():
    return {
        (model, scale): run(model, scale)
        for model in ("alexnet", "resnet50")
        for scale in (1, 2, 4, 8)
    }


@pytest.fixture(scope="module")
def feature_sweep():
    return {
        (model, nf): run(model, 8, num_structured_features=nf)
        for model in ("alexnet", "resnet50")
        for nf in (10, 100, 1000, 10_000)
    }


def test_fig10_tables(scale_sweep, feature_sweep, benchmark):
    benchmark(lambda: run("alexnet", 2))
    for model in ("alexnet", "resnet50"):
        rows = [
            [f"{scale}X"] + [
                fmt_minutes(scale_sweep[(model, scale)][c]) for c in COMBOS
            ]
            for scale in (1, 2, 4, 8)
        ]
        print_table(
            f"Figure 10 — {model}, runtime (min) vs data scale",
            ["scale"] + list(COMBOS), rows,
        )
        rows = [
            [nf] + [
                fmt_minutes(feature_sweep[(model, nf)][c]) for c in COMBOS
            ]
            for nf in (10, 100, 1000, 10_000)
        ]
        print_table(
            f"Figure 10 — {model}/8X, runtime (min) vs #structured "
            "features",
            ["#features"] + list(COMBOS), rows,
        )


def test_combos_close_on_resnet_low_scale(scale_sweep):
    cells = scale_sweep[("resnet50", 1)]
    completed = [r.seconds for r in cells.values() if not r.crashed]
    assert max(completed) < 1.25 * min(completed)


def test_serialized_helps_resnet_at_8x(scale_sweep):
    cells = scale_sweep[("resnet50", 8)]
    assert cells["Shuffle/Ser."].seconds <= cells["Shuffle/Deser."].seconds


def test_broadcast_crashes_at_wide_structured_tables(feature_sweep):
    for model in ("alexnet", "resnet50"):
        wide = feature_sweep[(model, 10_000)]
        assert wide["Broad./Deser."].crashed
        assert wide["Broad./Ser."].crashed
        assert not wide["Shuffle/Deser."].crashed


def test_broadcast_fine_at_narrow_structured_tables(feature_sweep):
    for model in ("alexnet", "resnet50"):
        narrow = feature_sweep[(model, 100)]
        assert not narrow["Broad./Deser."].crashed


def test_no_single_combo_dominates(scale_sweep, feature_sweep):
    """The utility-of-an-optimizer claim: the winner changes across
    operating points (and the broadcast 'winner' can crash)."""
    winners = set()
    for cells in list(scale_sweep.values()) + list(feature_sweep.values()):
        completed = {
            label: r.seconds for label, r in cells.items() if not r.crashed
        }
        winners.add(min(completed, key=completed.get))
    crashed_somewhere = any(
        r.crashed
        for cells in feature_sweep.values() for r in cells.values()
    )
    assert len(winners) >= 2 or crashed_somewhere
