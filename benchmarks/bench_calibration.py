"""Benchmark: predicted-vs-observed cost-model calibration.

Runs every logical plan of one small end-to-end feature-transfer
workload with tracing and metrics on, then joins the cost model's
predictions against the run via
:func:`repro.explain.calibration.calibrate`:

- per-region memory peaks predicted by the engine-exact wave
  arithmetic of :func:`repro.explain.peaks.predict_workload_peaks`
  against the executor's observed memory waterlines (deterministic —
  the ratios must sit inside ``PEAK_PREDICTION_BAND``);
- per-stage runtime predicted by
  :func:`repro.costmodel.runtime.estimate_runtime` (priced on the
  executable CNN) against the measured span-tree wall seconds;
- the ``op_seconds{op_type}`` per-operator histogram each run records.

``BENCH_calibration.json`` is the committed ``trace/v2`` envelope so
future PRs gate on calibration *drift*: ``--check OLD.json`` re-runs
the workload and fails if any shared predicted/observed ratio moved
past its gate (:data:`~repro.explain.calibration.MEMORY_DRIFT_GATE` /
:data:`~repro.explain.calibration.RUNTIME_DRIFT_GATE`) or any fresh
memory ratio left the band. The committed result file is intentionally
tracked in git: it is the calibration record, not a scratch artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_calibration.py [--quick]
        [--records N] [--check OLD.json] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from harness import (  # noqa: E402
    load_envelope,
    print_table,
    trace_payload,
    write_results,
)

from repro.cnn import build_model  # noqa: E402
from repro.core.config import VistaConfig  # noqa: E402
from repro.data import foods_dataset  # noqa: E402
from repro.explain.calibration import (  # noqa: E402
    MEMORY_DRIFT_GATE,
    RUNTIME_DRIFT_GATE,
    calibrate,
    drift_violations,
)
from repro.memory.model import GB, MemoryBudget  # noqa: E402

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_calibration.json",
)

NUM_NODES = 2
CORES_PER_NODE = 4
CPU = 2
NUM_PARTITIONS = 8
LAYERS = ("fc7", "fc8")


def build_workload(records):
    """The standard calibration workload: mini AlexNet over a synthetic
    Foods sample under 1 GB-per-region worker budgets — roomy enough
    that all six plans complete, so every row carries ratios."""
    cnn = build_model("alexnet", profile="mini")
    dataset = foods_dataset(num_records=records)
    config = VistaConfig(
        cpu=CPU, num_partitions=NUM_PARTITIONS, mem_storage_bytes=0,
        mem_user_bytes=0, mem_dl_bytes=0, join="shuffle",
        persistence="deserialized",
    )
    budget = MemoryBudget(
        system_bytes=32 * GB, os_reserved_bytes=0, user_bytes=1 * GB,
        core_bytes=1 * GB, storage_bytes=1 * GB, dl_bytes=1 * GB,
        driver_bytes=1 * GB, storage_elastic=True,
    )
    return cnn, dataset, config, budget


def run_calibration(records):
    cnn, dataset, config, budget = build_workload(records)
    return calibrate(
        cnn, dataset, list(LAYERS), config, budget,
        num_nodes=NUM_NODES, cores_per_node=CORES_PER_NODE,
    )


def check_drift(report, baseline_path):
    """Gate a fresh report against a committed envelope; returns the
    number of violations (0 = pass)."""
    old_results = load_envelope(baseline_path, bench="calibration")["results"]
    failures = 0
    band = report.in_band()
    for key, ratio in sorted(band.items()):
        print(f"OUT OF BAND  memory_ratio {key} = {ratio}")
        failures += 1
    drift = drift_violations(old_results, report.results())
    for key, (old, new) in sorted(drift.items()):
        print(f"DRIFT        {key}: {old} -> {new}")
        failures += 1
    if failures == 0:
        print(
            f"calibration gate PASS vs {baseline_path} "
            f"(memory gate {MEMORY_DRIFT_GATE}x, "
            f"runtime gate {RUNTIME_DRIFT_GATE}x)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="skip writing the result file")
    parser.add_argument("--records", type=int, default=24)
    parser.add_argument("--check", metavar="OLD.json", default=None,
                        help="gate on drift vs a committed envelope")
    parser.add_argument("--out", default=RESULT_PATH,
                        help="result path (default: BENCH_calibration.json)")
    args = parser.parse_args(argv)

    report = run_calibration(args.records)

    print_table(
        f"Cost-model calibration ({report.model} x {LAYERS}, "
        f"{report.num_records} records, {NUM_NODES} nodes)",
        ["plan", "crashed", "mem user", "mem core", "mem dl",
         "mem storage", "mem driver", "rt inference", "rt join",
         "rt train"],
        [
            (
                row.plan,
                row.crash_kind or "-",
                *(
                    (lambda r: "-" if r is None else f"{r:.3f}")(
                        row.memory_ratios.get(region)
                    )
                    for region in ("user", "core", "dl", "storage", "driver")
                ),
                *(
                    (lambda r: "-" if r is None else f"{r:.1f}x")(
                        row.runtime_ratios.get(stage)
                    )
                    for stage in ("inference", "join", "train")
                ),
            )
            for row in report.rows
        ],
    )

    # the calibration contract: every plan completes on this workload
    # and every predicted memory peak lands inside the documented band
    assert not any(row.crashed for row in report.rows), (
        "calibration workload crashed: " +
        ", ".join(r.plan for r in report.rows if r.crashed)
    )
    band = report.in_band()
    assert not band, f"memory ratios out of band: {band}"
    assert all(row.runtime_ratios for row in report.rows), (
        "some plan produced no runtime ratios"
    )

    if args.check:
        failures = check_drift(report, args.check)
        if failures:
            print(f"\ncalibration gate FAIL: {failures} violation(s)")
            return 1

    if not args.quick:
        payload = trace_payload(
            "calibration", report.results(),
            records=args.records, num_nodes=NUM_NODES,
            cores_per_node=CORES_PER_NODE, cpu=CPU,
            num_partitions=NUM_PARTITIONS, layers=list(LAYERS),
            model=report.model,
            memory_drift_gate=MEMORY_DRIFT_GATE,
            runtime_drift_gate=RUNTIME_DRIFT_GATE,
        )
        payload["report"] = report.to_dict()
        write_results(args.out, payload)
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
