"""Dataflow benchmark: columnar tensor-native partitions vs the
legacy row-list layout, measured in one process.

Runs the same mini workload (alexnet, three feature layers) through a
set of logical plans twice — once with the default columnar partition
layout and once inside :class:`~repro.dataflow.columnar.row_layout` —
and reads every number back out of the exported trace spans:

- **Feature-stage inference** (``inference:<layer>`` spans whose input
  is a stored feature block, not the raw image table) is where the
  zero-copy contract pays: the columnar path feeds the stored ``(N,
  D)`` block straight into the batched kernels while the row path
  re-stacks N rows and splits the result back. The bench asserts the
  columnar layout wins this stage by >= 1.3x (full mode).
- **Single-buffer serialization**: one fixed 64-record mini-table is
  encoded once as the columnar wire buffer and once as N per-row
  pickles. The buffer must be smaller, and its per-row size is
  recorded as the ``serialized_bytes_per_row`` gauge — the encode is
  deterministic (fixed seed, raw little-endian buffers), so the
  committed value is compared *exactly* by the report CLI's
  ``EXACT_FIELDS`` gate: any byte of wire-format drift flips CI.
- End-to-end plan walls for both layouts ride along as the perf
  trajectory (cross-machine CI gates them at 3x like the other
  benches).

The committed ``BENCH_dataflow.json`` is the shared ``trace/v2``
envelope (span tree + metrics block) and is intentionally tracked in
git: it is the perf record, not a scratch artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_dataflow.py [--quick]
        [--records N] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import (  # noqa: E402
    find_span,
    print_table,
    trace_payload,
    write_results,
)

from repro.cnn import build_model  # noqa: E402
from repro.core.config import VistaConfig  # noqa: E402
from repro.core.executor import FeatureTransferExecutor  # noqa: E402
from repro.core.plans import ALL_PLANS  # noqa: E402
from repro.data import foods_dataset  # noqa: E402
from repro.dataflow.columnar import ColumnarBlock, row_layout  # noqa: E402
from repro.dataflow.context import local_context  # noqa: E402
from repro.metrics import MetricsRegistry  # noqa: E402
from repro.trace import Tracer  # noqa: E402

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_dataflow.json",
)

#: Plans the layout comparison runs (one per materialization family —
#: the reordered variants share the same dataflow operators).
PLANS = ("staged", "lazy", "eager")

#: Acceptance bound (full mode): columnar feature-stage inference must
#: beat the row layout by at least this factor.
MIN_FEATURE_INFERENCE_SPEEDUP = 1.3

#: The serialization micro-table is pinned (size and seed) so its
#: uncompressed columnar encode — and therefore the committed
#: ``serialized_bytes_per_row`` gauge — is bit-deterministic across
#: machines and across --quick/full runs.
SERIALIZATION_TABLE_RECORDS = 64


def _span_sum(trace, prefix, attr_filter=None):
    """Sum of ``wall_s`` over spans whose name starts with ``prefix``
    (optionally filtered on the span's attrs)."""
    total = 0.0
    stack = [trace]
    while stack:
        node = stack.pop()
        if node["name"].startswith(prefix):
            if attr_filter is None or attr_filter(node.get("attrs", {})):
                total += node["wall_s"]
        stack.extend(node.get("children", ()))
    return total


def run_plan(plan_name, records, metrics=None):
    """One traced end-to-end run; returns the exported span tree."""
    model = build_model("alexnet", profile="mini")
    layers = model.feature_layers[-3:]
    dataset = foods_dataset(num_records=records)
    config = VistaConfig(
        cpu=2, num_partitions=4, mem_storage_bytes=10**9,
        mem_user_bytes=10**9, mem_dl_bytes=10**9, join="shuffle",
        persistence="deserialized",
    )
    ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2)
    tracer = Tracer(name=f"dataflow:{plan_name}")
    executor = FeatureTransferExecutor(
        ctx, model, dataset, list(layers), config,
        downstream_fn=lambda f, l: {}, tracer=tracer, metrics=metrics,
    )
    executor.run(ALL_PLANS[plan_name])
    return tracer.export()


def bench_plans(records, tracer):
    """Each plan under both layouts; numbers come from the traces."""
    # One untimed run per layout first: the first run pays numpy and
    # allocator warm-up, which would otherwise land entirely on the
    # columnar side (it runs first within each plan).
    run_plan(PLANS[0], min(records, 128))
    with row_layout():
        run_plan(PLANS[0], min(records, 128))
    results = []
    for plan_name in PLANS:
        with tracer.span(f"plan:{plan_name}", records=records) as sp:
            columnar_trace = run_plan(plan_name, records)
            with row_layout():
                row_trace = run_plan(plan_name, records)
            feature_stage = lambda attrs: attrs.get("from_layer") != "image"
            columnar_feature = _span_sum(
                columnar_trace, "inference:", feature_stage
            )
            row_feature = _span_sum(row_trace, "inference:", feature_stage)
            entry = {
                "plan": plan_name,
                "records": records,
                "columnar_wall_seconds": find_span(
                    columnar_trace, "workload")["wall_s"],
                "row_wall_seconds": find_span(
                    row_trace, "workload")["wall_s"],
                "columnar_inference_seconds": _span_sum(
                    columnar_trace, "inference:"
                ),
                "row_inference_seconds": _span_sum(row_trace, "inference:"),
                "columnar_feature_inference_seconds": columnar_feature,
                "row_feature_inference_seconds": row_feature,
            }
            entry["wall_speedup"] = (
                entry["row_wall_seconds"] / entry["columnar_wall_seconds"]
            )
            if columnar_feature > 0:
                # "gain", not "speedup": the report CLI auto-gates any
                # *speedup field higher-is-better, and this ratio is
                # built from sub-millisecond spans — too noisy for a
                # cross-machine quick-vs-full gate. The full-mode run
                # asserts the floor itself instead.
                entry["feature_inference_gain"] = (
                    row_feature / columnar_feature
                )
            sp.add("plans", 1)
            results.append(entry)
    return results


def bench_serialization(repeats, registry):
    """Single-buffer wire format vs N per-row pickles on the pinned
    mini-table: sizes (deterministic) and encode+decode round-trip
    times (measured)."""
    dataset = foods_dataset(num_records=SERIALIZATION_TABLE_RECORDS)
    rows = [dict(row) for row in dataset.structured_rows]
    block = ColumnarBlock.from_rows(rows)

    buffer = block.to_buffer()
    n_pickle_bytes = sum(
        len(pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL))
        for row in rows
    )
    bytes_per_row = len(buffer) / block.num_rows
    registry.gauge("serialized_bytes_per_row").set(bytes_per_row)

    def roundtrip_columnar():
        ColumnarBlock.from_buffer(block.to_buffer()).column("features")

    def roundtrip_pickle():
        [pickle.loads(pickle.dumps(
            row, protocol=pickle.HIGHEST_PROTOCOL))
         for row in rows]

    def best_of(fn):
        best = float("inf")
        for _ in range(max(5, repeats)):
            start = time.perf_counter()
            for _ in range(10):
                fn()
            best = min(best, time.perf_counter() - start)
        return best

    columnar_seconds = best_of(roundtrip_columnar)
    pickle_seconds = best_of(roundtrip_pickle)
    return {
        "records": SERIALIZATION_TABLE_RECORDS,
        "columnar_buffer_bytes": len(buffer),
        "n_pickle_bytes": n_pickle_bytes,
        "serialized_bytes_per_row": bytes_per_row,
        "columnar_roundtrip_seconds": columnar_seconds,
        "pickle_roundtrip_seconds": pickle_seconds,
        "roundtrip_speedup": pickle_seconds / columnar_seconds,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer records; skip writing the result file")
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the result envelope to PATH (even with --quick)",
    )
    args = parser.parse_args(argv)
    records = args.records or (128 if args.quick else 512)

    tracer = Tracer(name="bench_dataflow")
    results = bench_plans(records, tracer)
    registry = MetricsRegistry()
    serialization = bench_serialization(
        repeats=3 if args.quick else 10, registry=registry
    )
    # One metrics-enabled columnar run so the committed envelope
    # carries the engine's own counters (shuffle/spill bytes, the
    # batched-fallback counter) next to the bench numbers.
    run_plan("staged", records, metrics=registry)
    trace = tracer.export()

    print_table(
        f"Columnar vs row layout (alexnet mini, {records} records)",
        ["plan", "row wall s", "col wall s", "wall",
         "row feat-inf s", "col feat-inf s", "feat-inf"],
        [
            (
                r["plan"],
                f"{r['row_wall_seconds']:.4f}",
                f"{r['columnar_wall_seconds']:.4f}",
                f"{r['wall_speedup']:.2f}x",
                f"{r['row_feature_inference_seconds']:.4f}",
                f"{r['columnar_feature_inference_seconds']:.4f}",
                f"{r.get('feature_inference_gain', 0):.2f}x",
            )
            for r in results
        ],
    )
    print(
        f"\nserialization ({serialization['records']} records): "
        f"single buffer {serialization['columnar_buffer_bytes']}B vs "
        f"{serialization['n_pickle_bytes']}B as per-row pickles "
        f"({serialization['serialized_bytes_per_row']:.1f} B/row); "
        f"round-trip {serialization['roundtrip_speedup']:.1f}x faster"
    )

    # The wire buffer must beat N pickles on size — deterministic, so
    # asserted in every mode.
    assert (serialization["columnar_buffer_bytes"]
            < serialization["n_pickle_bytes"]), (
        f"single-buffer encode {serialization['columnar_buffer_bytes']}B "
        f"is not smaller than {serialization['n_pickle_bytes']}B of "
        f"per-row pickles"
    )
    if not args.quick:
        worst = min(
            r["feature_inference_gain"] for r in results
            if "feature_inference_gain" in r
        )
        assert worst >= MIN_FEATURE_INFERENCE_SPEEDUP, (
            f"feature-stage inference only {worst:.2f}x faster columnar "
            f"vs rows; expected >= {MIN_FEATURE_INFERENCE_SPEEDUP}x"
        )

    out_path = args.out or (None if args.quick else RESULT_PATH)
    if out_path:
        write_results(out_path, trace_payload(
            "dataflow", results + [serialization], trace=trace,
            metrics=registry, records=records,
            serialization_records=SERIALIZATION_TABLE_RECORDS,
        ))
        print(f"\nwrote {out_path}")
    return results


if __name__ == "__main__":
    main()
