"""Benchmark: live-progress ETA accuracy against a real run ledger.

Runs one seeded end-to-end feature-transfer workload on the process
backend with a file-backed :class:`~repro.observe.RunLedger` and a
:class:`~repro.observe.ProgressState` listening live — exactly the
plumbing ``repro run --progress --ledger`` wires up — then scores the
monitor the way a user would experience it: at the first progress
snapshot past the halfway mark, how far off was the ETA from the wall
time the run actually had left? The acceptance band is **within 2x
either way** (``ratio`` in [0.5, 2.0]); the per-bucket online
calibration in :mod:`repro.observe.progress` is what earns it, because
the cost model's paper-scale stage predictions are orders of magnitude
off at mini scale until observed stage times reprice them.

The same ledger is then replayed through the rest of the
observability stack as a self-check — ``obs/v1`` validation, the
Perfetto exporter, and the committed ``slo/default.yaml`` ruleset —
and every repeat's ledger is ingested into a fresh run-history
warehouse (:class:`~repro.observe.HistoryStore`) to score ingest
throughput in events summarized per second plus the span-diff cost of
the CI twin gate. The committed ``BENCH_observe.json`` envelope
records all of it so future PRs have an ETA-accuracy and
ingest-throughput trajectory to compare against. The
result file is intentionally tracked in git: it is the record, not a
scratch artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_observe.py [--quick]
        [--records N] [--repeats R] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, trace_payload, write_results  # noqa: E402

from repro.core.api import Vista, default_resources  # noqa: E402
from repro.data import foods_dataset  # noqa: E402
from repro.observe import (  # noqa: E402
    HistoryStore,
    ProgressState,
    RunLedger,
    chrome_trace,
    diff_runs,
    evaluate_slo,
    has_breach,
    load_rules,
    predict_stage_plan,
    read_ledger,
    validate_chrome_trace,
    validate_events,
)
from repro.trace import Tracer  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_observe.json")
SLO_RULES = os.path.join(REPO_ROOT, "slo", "default.yaml")

#: ISSUE acceptance band: halfway ETA within 2x of actual remaining.
ETA_RATIO_BAND = (0.5, 2.0)


def one_run(records, num_layers, ledger_path):
    """One ledgered process-backend run; returns ``(state, events)``
    where ``state`` is the live ProgressState and ``events`` the
    in-memory ledger event list."""
    vista = Vista(
        model_name="alexnet",
        num_layers=num_layers,
        dataset=foods_dataset(num_records=records),
        resources=default_resources(num_nodes=2),
        exec_backend="process",
    )
    tracer = Tracer(name="bench_observe")
    ledger = RunLedger(ledger_path)
    config = vista.optimize()
    stage_plan = predict_stage_plan(
        vista.model_stats, vista.layers, vista.dataset_stats,
        vista.plan, config, vista.resources, backend=vista.backend,
    )
    ledger.emit("stage_plan", plan=vista.plan.label,
                stages=stage_plan.to_list())
    state = ProgressState(stage_plan)
    ledger.listeners.append(state)
    vista.run(tracer=tracer, ledger=ledger)
    ledger.emit("run_end", status="ok")
    ledger.close()
    return state, list(ledger.events), tracer


def halfway_eta(state, events):
    """Score the first snapshot at or past 50% predicted progress:
    ``ratio`` = predicted remaining / actual remaining wall time."""
    end_wall = next(
        e["wall_s"] for e in events if e.get("kind") == "run_end"
    )
    for wall_s, fraction, eta_s, stage_key in state.snapshots:
        if fraction >= 0.5:
            actual_remaining = end_wall - wall_s
            if actual_remaining <= 0:
                continue
            return {
                "halfway_wall_s": wall_s,
                "fraction": fraction,
                "stage_key": stage_key,
                "eta_s": eta_s,
                "actual_remaining_s": actual_remaining,
                "ratio": eta_s / actual_remaining,
            }
    raise AssertionError("no progress snapshot past the halfway mark")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats; skip writing the result file")
    parser.add_argument("--records", type=int, default=192)
    parser.add_argument("--layers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write the result envelope to this path even "
                             "under --quick")
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 3)

    rows = []
    last_tracer = None
    last_events = None
    ledger_paths = []
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            ledger_path = os.path.join(tmp, f"run{repeat}.ledger.jsonl")
            state, events, tracer = one_run(
                args.records, args.layers, ledger_path,
            )
            row = halfway_eta(state, events)
            row["repeat"] = repeat
            row["calibration_ratio"] = state.calibration_ratio()
            row["events"] = len(events)
            rows.append(row)
            last_tracer = tracer
            last_events = events
            last_ledger_path = ledger_path
            ledger_paths.append(ledger_path)

        # Replay the final ledger through the rest of the stack: the
        # file parses cleanly, validates as obs/v1, renders as a
        # loadable Chrome trace, and clears the committed SLO gates.
        parsed, parse_problems = read_ledger(last_ledger_path)
        schema_problems = validate_events(parsed)
        trace_doc = chrome_trace(trace=last_tracer.export(),
                                 ledger_events=parsed)
        trace_problems = validate_chrome_trace(trace_doc)
        verdicts = evaluate_slo(load_rules(SLO_RULES), last_ledger_path)
        replay = {
            "ledger_events": len(parsed),
            "parse_errors": len(parse_problems),
            "schema_problems": len(schema_problems),
            "perfetto_events": len(trace_doc["traceEvents"]),
            "perfetto_problems": len(trace_problems),
            "slo_rules": len(verdicts),
            "slo_breaches": sum(
                1 for v in verdicts if v.status == "breach"
            ),
        }

        # Ingest throughput: every repeat's ledger flows into a fresh
        # run-history warehouse; score events summarized per second,
        # then span-diff the first two repeats the way the CI twin
        # gate does. Wall seconds jitter between repeats, so only the
        # deterministic regression tier (sim/status/recovery/memory)
        # must be empty here.
        store = HistoryStore(os.path.join(tmp, "history"))
        total_events = 0
        ingest_start = time.perf_counter()
        run_records = []
        for ledger_path in ledger_paths:
            record, created = store.ingest(ledger_path)
            assert created, f"duplicate ingest of {ledger_path}"
            total_events += record["events"]
            run_records.append(record)
        ingest_s = time.perf_counter() - ingest_start
        _, re_created = store.ingest(ledger_paths[-1])
        assert not re_created, "re-ingest must be idempotent"
        diff_s = None
        deterministic_regressions = 0
        if len(run_records) >= 2:
            diff_start = time.perf_counter()
            diff = diff_runs(run_records[0], run_records[1])
            diff_s = time.perf_counter() - diff_start
            deterministic_regressions = sum(
                1 for regression in diff["regressions"]
                if not all(reason.startswith("wall ")
                           for reason in regression["reasons"])
            )
        history = {
            "runs_ingested": len(run_records),
            "ledger_events": total_events,
            "ingest_s": round(ingest_s, 6),
            "events_per_s": round(total_events / max(ingest_s, 1e-9), 1),
            "diff_s": round(diff_s, 6) if diff_s is not None else None,
            "deterministic_regressions": deterministic_regressions,
        }

    print_table(
        f"Halfway-ETA accuracy ({args.records} records, "
        f"{args.layers} layers, process backend, repeats={repeats})",
        ["repeat", "at s", "frac", "eta s", "actual s", "ratio", "cal"],
        [
            (
                r["repeat"],
                f"{r['halfway_wall_s']:.2f}",
                f"{r['fraction']:.2f}",
                f"{r['eta_s']:.2f}",
                f"{r['actual_remaining_s']:.2f}",
                f"{r['ratio']:.2f}x",
                f"{r['calibration_ratio']:.2f}",
            )
            for r in rows
        ],
    )
    print(f"ledger replay: {replay}")
    print(f"history ingest: {history}")

    lo, hi = ETA_RATIO_BAND
    median_ratio = statistics.median(r["ratio"] for r in rows)
    assert lo <= median_ratio <= hi, (
        f"median halfway ETA ratio {median_ratio:.2f}x outside "
        f"[{lo}x, {hi}x]"
    )
    assert replay["parse_errors"] == 0, "ledger must parse cleanly"
    assert replay["schema_problems"] == 0, "ledger must validate obs/v1"
    assert replay["perfetto_problems"] == 0, (
        "Perfetto export must be valid trace-event JSON"
    )
    assert replay["slo_breaches"] == 0, (
        "a clean run must clear slo/default.yaml"
    )
    assert history["deterministic_regressions"] == 0, (
        "twin repeats must span-diff with zero deterministic "
        "regressions"
    )

    results = [dict(r, scenario="eta") for r in rows]
    results.append(dict(replay, scenario="replay"))
    results.append(dict(history, scenario="history"))
    out_path = args.out or RESULT_PATH
    if args.out or not args.quick:
        write_results(out_path, trace_payload(
            "observe", results, trace=last_tracer,
            records=args.records, layers=args.layers, repeats=repeats,
            median_eta_ratio=median_ratio,
            eta_ratio_band=list(ETA_RATIO_BAND),
        ))
        print(f"\nwrote {out_path}")
    return results


if __name__ == "__main__":
    main()
