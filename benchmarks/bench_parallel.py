"""Benchmark: process-backend speedup curve + parallel calibration.

Runs the staged plan's feature-transfer workload per ``cpu`` setting on
both execution backends via
:func:`repro.explain.calibration.calibrate_parallel` and records

- the serial/process wall-clock **speedup** of the feature stage at
  each ``cpu`` (the curve Algorithm 1's knob is supposed to buy — the
  serial engine's ``cpu`` only ever changed accounting),
- the cost model's predicted inference seconds against the *actual
  parallel* wall (``runtime_ratio_capacity:parallel:cpu{n}``) — the
  calibration the serial engine could never provide, which is what let
  :data:`~repro.explain.calibration.RUNTIME_DRIFT_GATE` tighten from
  100x to its measured band.

``BENCH_parallel.json`` is the committed ``trace/v2`` envelope.
Wall-clock speedups are hardware-dependent, so the envelope records
``cores_available`` honestly and ``--check`` compares it exactly: a
baseline committed from a 1-core container never silently gates a
multi-core CI run (capacity drift is only gated when the core counts
match). Independently of any baseline, the run **asserts the >=1.5x
speedup floor at cpu=4 on the staged plan whenever the host actually
has >= 4 cores** — on smaller hosts the floor is reported as skipped,
because forking cannot beat serial without parallel hardware.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]
        [--records N] [--repeats N] [--check OLD.json] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from harness import (  # noqa: E402
    load_envelope,
    print_table,
    trace_payload,
    write_results,
)

from repro.cnn import build_model  # noqa: E402
from repro.core.config import VistaConfig  # noqa: E402
from repro.data import foods_dataset  # noqa: E402
from repro.explain.calibration import (  # noqa: E402
    RUNTIME_DRIFT_GATE,
    calibrate_parallel,
    drift_violations,
)
from repro.memory.model import GB, MemoryBudget  # noqa: E402

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel.json",
)

NUM_NODES = 2
CORES_PER_NODE = 4
NUM_PARTITIONS = 8
LAYERS = ("fc7",)
CPUS = (1, 2, 4)

#: The acceptance floor: process must beat serial by this factor on
#: the staged plan's feature stage at cpu=4 — asserted only on hosts
#: that actually have >= 4 cores to parallelize across.
SPEEDUP_FLOOR = 1.5
FLOOR_CPU = 4
FLOOR_MIN_CORES = 4


def build_workload(records):
    """Staged-plan workload sized so per-task inference dominates fork
    + shm-transfer overhead on a multi-core host."""
    cnn = build_model("alexnet", profile="mini")
    dataset = foods_dataset(num_records=records)
    config = VistaConfig(
        cpu=1, num_partitions=NUM_PARTITIONS, mem_storage_bytes=0,
        mem_user_bytes=0, mem_dl_bytes=0, join="shuffle",
        persistence="deserialized",
    )
    budget = MemoryBudget(
        system_bytes=32 * GB, os_reserved_bytes=0, user_bytes=1 * GB,
        core_bytes=1 * GB, storage_bytes=1 * GB, dl_bytes=1 * GB,
        driver_bytes=1 * GB, storage_elastic=True,
    )
    return cnn, dataset, config, budget


def run_parallel_calibration(records, cpus, repeats):
    cnn, dataset, config, budget = build_workload(records)
    return calibrate_parallel(
        cnn, dataset, list(LAYERS), config, budget,
        num_nodes=NUM_NODES, cores_per_node=CORES_PER_NODE,
        cpus=cpus, repeats=repeats,
    )


def check_drift(report, baseline_path):
    """Gate a fresh report against a committed envelope; returns the
    number of violations (0 = pass)."""
    old_results = load_envelope(baseline_path, bench="parallel")["results"]
    new_results = report.results()
    old_cores = old_results.get("cores_available")
    if old_cores != new_results["cores_available"]:
        # Different hardware: the capacity ratios are incomparable by
        # construction. The exact field caught it — report and pass.
        print(
            f"parallel gate SKIP vs {baseline_path}: baseline recorded "
            f"cores_available={old_cores}, this host has "
            f"{new_results['cores_available']}; capacity ratios are "
            "not comparable across core counts"
        )
        return 0
    failures = 0
    drift = drift_violations(old_results, new_results)
    for key, (old, new) in sorted(drift.items()):
        print(f"DRIFT        {key}: {old} -> {new}")
        failures += 1
    if failures == 0:
        print(
            f"parallel gate PASS vs {baseline_path} "
            f"(runtime gate {RUNTIME_DRIFT_GATE}x)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small matrix, skip writing the result file")
    parser.add_argument("--records", type=int, default=None,
                        help="dataset size (default 96, 24 with --quick)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="process-backend attempts per cpu, best wall "
                             "kept (default 3, 1 with --quick)")
    parser.add_argument("--check", metavar="OLD.json", default=None,
                        help="gate on drift vs a committed envelope")
    parser.add_argument("--out", default=RESULT_PATH,
                        help="result path (default: BENCH_parallel.json)")
    args = parser.parse_args(argv)

    records = args.records or (24 if args.quick else 96)
    repeats = args.repeats or (1 if args.quick else 3)
    cpus = CPUS[:2] if args.quick else CPUS

    report = run_parallel_calibration(records, cpus, repeats)

    print_table(
        f"Process-backend speedup ({report.model} x {LAYERS}, "
        f"{report.num_records} records, plan {report.plan}, "
        f"{report.cores_available} core(s) available)",
        ["cpu", "serial feat s", "process feat s", "speedup",
         "serial total s", "process total s", "predicted feat s"],
        [
            (
                row.cpu,
                f"{row.serial_feature_s:.4f}",
                f"{row.process_feature_s:.4f}",
                f"{row.speedup:.2f}x",
                f"{row.serial_total_s:.4f}",
                f"{row.process_total_s:.4f}",
                f"{row.predicted_feature_s:.6f}",
            )
            for row in report.rows
        ],
    )

    # Shape invariants that hold on any hardware: every cell ran, every
    # wall is positive, and every row carries a speedup + parallel
    # calibration ratio.
    assert [row.cpu for row in report.rows] == list(cpus)
    for row in report.rows:
        assert row.serial_feature_s > 0 and row.process_feature_s > 0, (
            f"cpu={row.cpu}: empty feature-stage wall"
        )
        assert row.speedup > 0, f"cpu={row.cpu}: no speedup recorded"
        assert row.parallel_ratio is not None, (
            f"cpu={row.cpu}: no parallel calibration ratio"
        )

    # The acceptance floor — only meaningful where parallel hardware
    # exists. --quick skips it too (its workload is too small for
    # compute to dominate fork overhead).
    floor_rows = [row for row in report.rows if row.cpu == FLOOR_CPU]
    if (floor_rows and not args.quick
            and report.cores_available >= FLOOR_MIN_CORES):
        speedup = floor_rows[0].speedup
        assert speedup >= SPEEDUP_FLOOR, (
            f"process backend speedup at cpu={FLOOR_CPU} is "
            f"{speedup:.2f}x on {report.cores_available} cores; "
            f"floor is {SPEEDUP_FLOOR}x"
        )
        print(f"\nspeedup floor PASS: {speedup:.2f}x >= "
              f"{SPEEDUP_FLOOR}x at cpu={FLOOR_CPU}")
    else:
        print(f"\nspeedup floor SKIPPED "
              f"(cores_available={report.cores_available} < "
              f"{FLOOR_MIN_CORES}, or --quick)")

    if args.check:
        failures = check_drift(report, args.check)
        if failures:
            print(f"\nparallel gate FAIL: {failures} violation(s)")
            return 1

    # Baseline-refresh decision (recorded in the envelope so the CI
    # `parallel` job can act on it mechanically): only an envelope
    # measured on real parallel hardware is worth committing as the
    # baseline — a sub-4-core host's speedup curve is fork-overhead-
    # bound and would poison every future multi-core comparison.
    refresh_eligible = report.cores_available >= FLOOR_MIN_CORES
    baseline_refresh = {
        "cores_available": report.cores_available,
        "eligible": refresh_eligible,
        "reason": (
            f"host has {report.cores_available} cores >= "
            f"{FLOOR_MIN_CORES}: a real multi-core record, safe to "
            f"commit as the new baseline"
            if refresh_eligible else
            f"host has {report.cores_available} core(s) < "
            f"{FLOOR_MIN_CORES}: speedups are fork-overhead-bound, "
            f"keep the committed baseline"
        ),
    }
    print(f"baseline refresh {'ELIGIBLE' if refresh_eligible else 'SKIP'}: "
          f"{baseline_refresh['reason']}")

    if not args.quick:
        payload = trace_payload(
            "parallel", report.results(),
            records=records, repeats=repeats, num_nodes=NUM_NODES,
            cores_per_node=CORES_PER_NODE, cpus=list(cpus),
            num_partitions=NUM_PARTITIONS, layers=list(LAYERS),
            model=report.model, plan=report.plan,
            speedup_floor=SPEEDUP_FLOOR, floor_cpu=FLOOR_CPU,
            floor_min_cores=FLOOR_MIN_CORES,
            runtime_drift_gate=RUNTIME_DRIFT_GATE,
            baseline_refresh=baseline_refresh,
        )
        payload["report"] = report.to_dict()
        write_results(args.out, payload)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
