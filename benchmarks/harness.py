"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables/figures: it prints
the same rows/series the paper reports (so EXPERIMENTS.md can compare
shapes) and asserts the qualitative invariants — who wins, which cells
crash, where crossovers fall.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

from repro.cnn import get_model_stats
from repro.core.config import DatasetStats
# Metric-series lookups, mirroring find_span/span_seconds for the
# trace/v2 metrics block: benches resolve a committed envelope's
# series and read its peak/total back out.
from repro.metrics import find_series, series_peak  # noqa: F401

#: The paper's workload grid: CNN -> number of layers explored.
PAPER_LAYER_COUNTS = {"alexnet": 4, "vgg16": 3, "resnet50": 5}

#: Paper-scale dataset statistics (Section 5's Foods and Amazon).
FOODS = DatasetStats(
    num_records=20_000, num_structured_features=130, avg_image_bytes=14 * 1024
)
AMAZON = DatasetStats(
    num_records=200_000, num_structured_features=200,
    avg_image_bytes=15 * 1024,
)


def paper_workload(model_name):
    """(ModelStats, layer list) for a paper workload."""
    stats = get_model_stats(model_name)
    return stats, stats.top_feature_layers(PAPER_LAYER_COUNTS[model_name])


def scale_dataset_stats(base, factor=1, num_structured_features=None):
    """Semi-synthetic scaling of DatasetStats (Section 5.3's '4X' and
    structured-feature sweeps)."""
    return DatasetStats(
        num_records=base.num_records * factor,
        num_structured_features=(
            num_structured_features
            if num_structured_features is not None
            else base.num_structured_features
        ),
        avg_image_bytes=base.avg_image_bytes,
    )


def print_table(title, headers, rows):
    """Render one paper-style table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ] if rows else [len(str(h)) for h in headers]
    print(f"\n### {title}")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt_minutes(report):
    """Figure-6 style cell: minutes or X on crash."""
    return report.cell()


class Timing:
    """Mutable wall-clock result filled in when a time_block exits."""

    def __init__(self, label=None):
        self.label = label
        self.seconds = None

    def __repr__(self):
        if self.seconds is None:
            return f"<Timing {self.label}: running>"
        return f"<Timing {self.label}: {self.seconds:.4f}s>"


@contextmanager
def time_block(label=None, sink=None):
    """Time a block of code; yields a :class:`Timing` whose ``seconds``
    is set when the block exits.

    With ``sink`` (a dict), the elapsed seconds are also recorded under
    ``label`` so benches can accumulate wall-clock numbers alongside
    their paper-shape assertions.
    """
    timing = Timing(label)
    start = time.perf_counter()
    try:
        yield timing
    finally:
        timing.seconds = time.perf_counter() - start
        if sink is not None:
            sink[label] = timing.seconds


def write_results(path, payload):
    """Write one bench's JSON result file (sorted keys, trailing
    newline) so successive runs diff cleanly."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path


#: Version tag of the shared trace-derived BENCH_*.json layout.
#: ``trace/v2`` extends v1 with a ``metrics`` block — the time-series
#: export of a :class:`~repro.metrics.MetricsRegistry` — next to the
#: span tree.
TRACE_SCHEMA = "trace/v2"


def trace_payload(bench, results, trace=None, metrics=None, **params):
    """The shared BENCH_*.json layout: every bench commits the same
    envelope — a schema tag, the bench name, its parameters, the
    result rows, the span tree the rows were derived from, and the
    metrics block — so downstream tooling reads one format.

    ``trace`` is a :class:`~repro.trace.Tracer`, a Span, or an already
    exported dict (None for benches run with tracing off). ``metrics``
    is a :class:`~repro.metrics.MetricsRegistry`, an already exported
    metrics dict (e.g. from ``merge_exports``), or None.
    """
    if trace is not None and hasattr(trace, "export"):
        trace = trace.export()
    elif trace is not None and hasattr(trace, "to_dict"):
        trace = trace.to_dict()
    if metrics is not None and hasattr(metrics, "export"):
        metrics = metrics.export()
    return {
        "schema": TRACE_SCHEMA,
        "bench": bench,
        "params": dict(params),
        "results": results,
        "trace": trace,
        "metrics": metrics,
    }


#: Committed ``trace/v2`` envelopes tracked at the repo root — the
#: perf/calibration records successive PRs gate against.
COMMITTED_BENCHES = {
    "kernels": "BENCH_kernels.json",
    "recovery": "BENCH_recovery.json",
    "calibration": "BENCH_calibration.json",
    "dataflow": "BENCH_dataflow.json",
    "parallel": "BENCH_parallel.json",
    "observe": "BENCH_observe.json",
}


def committed_bench_path(bench):
    """Absolute path of a committed BENCH_*.json envelope."""
    import os

    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        COMMITTED_BENCHES[bench],
    )


def load_envelope(path, bench=None):
    """Load a BENCH_*.json envelope, validating its schema tag (and,
    when given, that it records the expected bench)."""
    with open(path) as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r}, expected {TRACE_SCHEMA!r}"
        )
    if bench is not None and payload.get("bench") != bench:
        raise ValueError(
            f"{path}: bench {payload.get('bench')!r}, expected {bench!r}"
        )
    return payload


def find_span(trace_root, name):
    """First node matching ``name`` (prefix match) in an exported
    trace dict; raises KeyError if absent."""
    stack = [trace_root]
    while stack:
        node = stack.pop(0)
        if node["name"] == name or node["name"].startswith(name):
            return node
        stack.extend(node.get("children", ()))
    raise KeyError(f"no span matching {name!r} in trace")


def span_seconds(trace_root, name):
    """Wall seconds of the first span matching ``name`` (prefix match)
    in an exported trace dict — how benches read their timings back
    out of the trace instead of keeping a parallel stopwatch."""
    return find_span(trace_root, name)["wall_s"]
