"""Table 2 + Figure 16 (Appendix B): pre-materializing a base layer.

Table 2: sizes of pre-materialized feature layers for Foods (raw
images are ~0.26 GB); ResNet50's 5th-from-top layer is an order of
magnitude larger than the images.

Figure 16: workload runtime when each explored layer set starts from a
pre-materialized base layer vs from raw images.

Shape invariants:
  - feature layer sizes grow toward lower layers, and ResNet50's
    conv4_6 is far larger than the raw images;
  - premat helps AlexNet/VGG16 (cheap bases, big redundancy savings);
  - for ResNet50 starting from the huge 5th layer may NOT pay off
    (I/O of ~11.5 GB features vs recomputing), the paper's caveat.
"""

import pytest

from harness import FOODS, paper_workload, print_table
from repro.core.plans import STAGED
from repro.costmodel import (
    cloudlab_cluster,
    estimate_premat_runtime,
    estimate_runtime,
)
from repro.costmodel.crashes import manual_setup
from repro.memory.model import GB

CLUSTER = cloudlab_cluster()
RAW_IMAGES_GB = FOODS.num_records * FOODS.avg_image_bytes / GB


def layer_sizes(model_name):
    stats, layers = paper_workload(model_name)
    return {
        layer: stats.materialized_bytes(layer) * FOODS.num_records
        for layer in layers
    }


def premat_comparison(model_name, num_layers):
    """Runtime exploring the top ``num_layers`` layers, without and
    with pre-materialization of the lowest of them."""
    stats, all_layers = paper_workload(model_name)
    layers = all_layers[-num_layers:]
    setup = manual_setup(stats, layers, FOODS, 4, label="premat")
    plain = estimate_runtime(stats, layers, FOODS, STAGED, setup, CLUSTER)
    pre, main = estimate_premat_runtime(
        stats, layers, FOODS, STAGED, setup, CLUSTER
    )
    return plain, pre, main


@pytest.fixture(scope="module")
def sizes():
    return {m: layer_sizes(m) for m in ("alexnet", "vgg16", "resnet50")}


@pytest.fixture(scope="module")
def comparisons():
    out = {}
    for model in ("alexnet", "vgg16", "resnet50"):
        _, layers = paper_workload(model)
        for k in range(1, len(layers) + 1):
            out[(model, k)] = premat_comparison(model, k)
    return out


def test_table2_sizes(sizes, benchmark):
    benchmark(lambda: layer_sizes("resnet50"))
    rows = []
    for model, by_layer in sizes.items():
        for layer, nbytes in by_layer.items():
            rows.append([model, layer, f"{nbytes / GB:.2f}"])
    rows.append(["(raw images)", "-", f"{RAW_IMAGES_GB:.2f}"])
    print_table(
        "Table 2 — pre-materialized feature layer sizes, Foods (GB)",
        ["CNN", "layer", "size"], rows,
    )


def test_fig16_runtimes(comparisons):
    for model in ("alexnet", "vgg16", "resnet50"):
        rows = []
        for (m, k), (plain, pre, main) in sorted(comparisons.items()):
            if m != model:
                continue
            rows.append([
                f"{k}L", f"{plain.minutes:.1f}",
                f"{(pre.seconds + main.seconds) / 60:.1f}",
                f"{main.minutes:.1f}",
            ])
        print_table(
            f"Figure 16 — {model}: runtime (min) without premat / "
            "with premat incl. materialization / with premat excl.",
            ["layers", "no premat", "premat(total)", "premat(reuse)"],
            rows,
        )


def test_resnet_conv4_6_dwarfs_raw_images(sizes):
    assert sizes["resnet50"]["conv4_6"] > 30 * RAW_IMAGES_GB * GB


def test_fc_layers_small(sizes):
    """Top fc layers are ~0.08-0.3 GB at 20k records."""
    assert sizes["alexnet"]["fc8"] < 0.1 * GB
    assert sizes["vgg16"]["fc8"] < 0.1 * GB


def test_sizes_grow_toward_lower_layers(sizes):
    for model, by_layer in sizes.items():
        ordered = list(by_layer.values())
        # lowest explored layer is the largest
        assert ordered[0] == max(ordered)


def test_premat_reuse_faster_than_scratch(comparisons):
    """Once materialized, starting from the base layer beats
    recomputing from raw images for every CNN."""
    for model in ("alexnet", "vgg16", "resnet50"):
        _, layers = paper_workload(model)
        plain, _, main = comparisons[(model, len(layers))]
        assert main.seconds < plain.seconds, model


def test_resnet_premat_total_may_not_pay_off(comparisons):
    """Appendix B's caveat: including the materialization cost itself,
    pre-materializing ResNet50's ~11.5 GB 5th layer has the WORST
    total-cost ratio of the three CNNs (writing/reading the huge
    feature table eats the redundancy savings)."""
    ratios = {}
    for model in ("alexnet", "vgg16", "resnet50"):
        _, layers = paper_workload(model)
        plain, pre, main = comparisons[(model, len(layers))]
        ratios[model] = (pre.seconds + main.seconds) / plain.seconds
    assert ratios["resnet50"] > ratios["alexnet"]
    assert ratios["resnet50"] > ratios["vgg16"]
    assert ratios["resnet50"] > 1.0  # premat does NOT pay off in total
