"""Figure 11: system configuration sweeps — degree of parallelism
(cpu) and number of partitions (np) — with the optimizer's picks
overlaid.

Shape invariants (Section 5.3):
  (A) runtime decreases (sub-linearly) with cpu for every CNN, but
      VGG16 crashes beyond 4 cores (CNN Inference Memory blowup); the
      optimizer picks optimal/near-optimal cpu: AlexNet 7, VGG16 4,
      ResNet50 7;
  (B) np behaves non-monotonically: too-low np crashes (Core Memory),
      runtimes fall as np rises, then rise again from task overheads
      (np > 2000 status-compression penalty); the optimizer's np is
      close to the fastest.
"""

import pytest

from harness import FOODS, fmt_minutes, paper_workload, print_table
from repro.core.config import Resources
from repro.core.optimizer import optimize
from repro.core.plans import STAGED
from repro.costmodel import cloudlab_cluster, estimate_runtime
from repro.costmodel.crashes import manual_setup
from repro.memory.model import GB

CLUSTER = cloudlab_cluster()
RESOURCES = Resources(8, 32 * GB, 8)
CPUS = (1, 2, 4, 5, 6, 7)
NPS = (8, 32, 160, 640, 2560, 5120)


def cpu_sweep(model_name):
    stats, layers = paper_workload(model_name)
    return {
        cpu: estimate_runtime(
            stats, layers, FOODS, STAGED,
            manual_setup(stats, layers, FOODS, cpu, label=f"cpu={cpu}"),
            CLUSTER,
        )
        for cpu in CPUS
    }


def np_sweep(model_name):
    stats, layers = paper_workload(model_name)
    base = manual_setup(stats, layers, FOODS, 4, label="np-sweep")
    return {
        np_: estimate_runtime(
            stats, layers, FOODS, STAGED, base.with_(num_partitions=np_),
            CLUSTER,
        )
        for np_ in NPS
    }


@pytest.fixture(scope="module")
def cpu_results():
    return {m: cpu_sweep(m) for m in ("alexnet", "vgg16", "resnet50")}


@pytest.fixture(scope="module")
def np_results():
    return {m: np_sweep(m) for m in ("alexnet", "vgg16", "resnet50")}


@pytest.fixture(scope="module")
def optimizer_picks():
    picks = {}
    for model in ("alexnet", "vgg16", "resnet50"):
        stats, layers = paper_workload(model)
        picks[model] = optimize(stats, layers, FOODS, RESOURCES)
    return picks


def test_fig11_tables(cpu_results, np_results, optimizer_picks, benchmark):
    benchmark(lambda: cpu_sweep("alexnet"))
    rows = [
        [model] + [fmt_minutes(cpu_results[model][c]) for c in CPUS]
        + [optimizer_picks[model].cpu]
        for model in cpu_results
    ]
    print_table(
        "Figure 11(A) — runtime (min) vs cpu (Foods), X = crash",
        ["CNN"] + [f"cpu={c}" for c in CPUS] + ["opt pick"], rows,
    )
    rows = [
        [model] + [fmt_minutes(np_results[model][n]) for n in NPS]
        + [optimizer_picks[model].num_partitions]
        for model in np_results
    ]
    print_table(
        "Figure 11(B) — runtime (min) vs np (Foods), X = crash",
        ["CNN"] + [f"np={n}" for n in NPS] + ["opt pick"], rows,
    )


def test_runtime_decreases_with_cpu(cpu_results):
    for model, sweep in cpu_results.items():
        completed = [
            (cpu, r.seconds) for cpu, r in sweep.items() if not r.crashed
        ]
        cpus, times = zip(*sorted(completed))
        assert times[0] > times[-1]  # more cores -> faster overall


def test_vgg_crashes_beyond_4_cores(cpu_results):
    sweep = cpu_results["vgg16"]
    assert not sweep[4].crashed
    assert sweep[5].crashed and sweep[6].crashed and sweep[7].crashed


def test_alexnet_resnet_survive_7_cores(cpu_results):
    assert not cpu_results["alexnet"][7].crashed
    assert not cpu_results["resnet50"][7].crashed


def test_optimizer_picks_near_optimal_cpu(cpu_results, optimizer_picks):
    for model, sweep in cpu_results.items():
        completed = {
            cpu: r.seconds for cpu, r in sweep.items() if not r.crashed
        }
        best = min(completed.values())
        pick = optimizer_picks[model].cpu
        # the pick itself is feasible, and within 15% of the sweep's best
        assert pick in completed or pick == 7
        pick_time = completed.get(pick, best)
        assert pick_time <= 1.15 * best


def test_np_nonmonotonic(np_results):
    """Low np crashes or is slow; very high np pays overhead."""
    sweep = np_results["resnet50"]
    assert sweep[8].crashed  # partitions too big for Core Memory
    completed = {n: r.seconds for n, r in sweep.items() if not r.crashed}
    best_np = min(completed, key=completed.get)
    assert completed[5120] > completed[best_np]  # overhead at high np
    assert best_np not in (8, 5120)


def test_optimizer_np_close_to_fastest(np_results, optimizer_picks):
    for model, sweep in np_results.items():
        stats, layers = paper_workload(model)
        completed = {n: r.seconds for n, r in sweep.items()
                     if not r.crashed}
        best = min(completed.values())
        pick_setup = manual_setup(stats, layers, FOODS, 4).with_(
            num_partitions=optimizer_picks[model].num_partitions
        )
        pick_time = estimate_runtime(
            stats, layers, FOODS, STAGED, pick_setup, CLUSTER
        )
        assert not pick_time.crashed
        assert pick_time.seconds <= 1.2 * best
