"""Figure 9: logical plan alternatives — Eager vs Staged x join
Before/After inference, varying |L| and data scale, for AlexNet and
ResNet50 on (semi-synthetic) Foods.

Shape invariants (Section 5.3):
  - differences are small at low scale / low |L|;
  - Eager gets much slower than Staged as |L| and scale grow,
    especially for ResNet50 (disk spills of large intermediates);
  - AJ plans are comparable to BJ and marginally faster at scale.
"""

import pytest

from harness import FOODS, paper_workload, print_table, scale_dataset_stats
from repro.cnn import get_model_stats
from repro.core.plans import (
    EAGER,
    EAGER_REORDERED,
    LAZY,
    STAGED,
    STAGED_BJ,
)
from repro.costmodel import cloudlab_cluster, estimate_runtime
from repro.costmodel.crashes import manual_setup

CLUSTER = cloudlab_cluster()
PLANS = {
    "Eager/BJ": EAGER,
    "Eager/AJ": EAGER_REORDERED,
    "Staged/BJ": STAGED_BJ,
    "Staged/AJ": STAGED,
}


def run(model_name, num_layers, scale):
    stats = get_model_stats(model_name)
    layers = stats.top_feature_layers(num_layers)
    ds = scale_dataset_stats(FOODS, factor=scale)
    out = {}
    for label, plan in PLANS.items():
        setup = manual_setup(stats, layers, ds, 4, label=label)
        out[label] = estimate_runtime(
            stats, layers, ds, plan, setup, CLUSTER
        )
    return out


@pytest.fixture(scope="module")
def layer_sweep():
    return {
        (model, k): run(model, k, 2)
        for model in ("alexnet", "resnet50")
        for k in range(1, {"alexnet": 4, "resnet50": 5}[model] + 1)
    }


@pytest.fixture(scope="module")
def scale_sweep():
    return {
        (model, scale): run(
            model, {"alexnet": 4, "resnet50": 5}[model], scale
        )
        for model in ("alexnet", "resnet50")
        for scale in (1, 2, 4, 8)
    }


def test_fig09_tables(layer_sweep, scale_sweep, benchmark):
    benchmark(lambda: run("alexnet", 4, 2))
    for model in ("alexnet", "resnet50"):
        ks = sorted(k for m, k in layer_sweep if m == model)
        rows = [
            [k] + [
                f"{layer_sweep[(model, k)][p].minutes:.1f}" for p in PLANS
            ]
            for k in ks
        ]
        print_table(
            f"Figure 9({1 if model == 'alexnet' else 2}) — {model}/2X, "
            "runtime (min) vs #layers",
            ["#layers"] + list(PLANS), rows,
        )
        rows = [
            [f"{scale}X"] + [
                f"{scale_sweep[(model, scale)][p].minutes:.1f}"
                for p in PLANS
            ]
            for scale in (1, 2, 4, 8)
        ]
        print_table(
            f"Figure 9({3 if model == 'alexnet' else 4}) — {model}, "
            "runtime (min) vs data scale",
            ["scale"] + list(PLANS), rows,
        )


def test_differences_small_at_low_scale(layer_sweep):
    for model in ("alexnet", "resnet50"):
        cells = layer_sweep[(model, 1)]
        times = [r.seconds for r in cells.values()]
        assert max(times) < 1.6 * min(times)


def test_eager_degrades_for_resnet_at_scale(scale_sweep):
    cells = scale_sweep[("resnet50", 8)]
    assert cells["Eager/AJ"].seconds > 1.5 * cells["Staged/AJ"].seconds
    assert cells["Eager/AJ"].spilled_bytes > 0


def test_staged_never_worse_than_eager(scale_sweep, layer_sweep):
    for cells in list(scale_sweep.values()) + list(layer_sweep.values()):
        assert cells["Staged/AJ"].seconds <= cells["Eager/AJ"].seconds * 1.05


def test_aj_competitive_with_bj_at_scale(scale_sweep):
    """AJ plans are mostly comparable, marginally faster at larger
    scales (join operand is the compact image table, not features)."""
    cells = scale_sweep[("resnet50", 8)]
    assert cells["Staged/AJ"].seconds <= cells["Staged/BJ"].seconds


def test_eager_equals_staged_when_one_layer():
    """With |L| = 1 Eager and Staged are the same plan."""
    cells = run("resnet50", 1, 1)
    assert cells["Eager/AJ"].seconds == pytest.approx(
        cells["Staged/AJ"].seconds, rel=0.01
    )
