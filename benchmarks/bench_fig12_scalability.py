"""Figure 12: scalability — (A) scaleup (weak scaling), (B) speedup
(strong scaling) over 1-8 nodes, (C) single-node speedup vs cpu.

Shape invariants (Section 5.3):
  (A) near-linear scaleup for all three CNNs;
  (B) near-linear speedup for VGG16 and ResNet50, markedly sub-linear
      for AlexNet (its compute is small, so the sub-linear image reads
      and fixed overheads dominate);
  (C) single-node speedup vs cpu plateaus around 4 cores (TF uses all
      cores regardless of the cpu setting).
"""

import pytest

from harness import FOODS, paper_workload, print_table, scale_dataset_stats
from repro.core.plans import STAGED
from repro.costmodel import cloudlab_cluster, estimate_runtime, params
from repro.costmodel.crashes import manual_setup

NODES = (1, 2, 4, 8)


def _runtime(model_name, num_nodes, scale=1, cpu=4):
    stats, layers = paper_workload(model_name)
    ds = scale_dataset_stats(FOODS, factor=scale)
    setup = manual_setup(stats, layers, ds, cpu, label="scal")
    return estimate_runtime(
        stats, layers, ds, STAGED, setup, cloudlab_cluster(num_nodes)
    )


@pytest.fixture(scope="module")
def speedup():
    out = {}
    for model in ("alexnet", "vgg16", "resnet50"):
        t1 = _runtime(model, 1).seconds
        out[model] = {n: t1 / _runtime(model, n).seconds for n in NODES}
    return out


@pytest.fixture(scope="module")
def scaleup():
    out = {}
    for model in ("alexnet", "vgg16", "resnet50"):
        t1 = _runtime(model, 1, scale=1).seconds
        out[model] = {
            n: t1 / _runtime(model, n, scale=n).seconds for n in NODES
        }
    return out


@pytest.fixture(scope="module")
def cpu_speedup_curve():
    """Figure 12(C): relative throughput at cpu threads on one node."""
    return {cpu: params.cpu_speedup(cpu) for cpu in range(1, 9)}


def test_fig12_tables(speedup, scaleup, cpu_speedup_curve, benchmark):
    benchmark(lambda: _runtime("alexnet", 4))
    rows = [
        [model] + [f"{scaleup[model][n]:.2f}" for n in NODES]
        for model in scaleup
    ]
    print_table(
        "Figure 12(A) — scaleup (1.0 = perfect weak scaling)",
        ["CNN"] + [f"{n} nodes" for n in NODES], rows,
    )
    rows = [
        [model] + [f"{speedup[model][n]:.2f}" for n in NODES]
        for model in speedup
    ]
    print_table(
        "Figure 12(B) — speedup vs nodes",
        ["CNN"] + [f"{n} nodes" for n in NODES], rows,
    )
    rows = [
        [cpu, f"{s:.2f}"] for cpu, s in cpu_speedup_curve.items()
    ]
    print_table(
        "Figure 12(C) — single-node speedup vs cpu (0.25X data)",
        ["cpu", "speedup"], rows,
    )
    from repro.report import line_chart

    print()
    print(line_chart(
        "Figure 12(B) rendered — speedup vs nodes",
        {model: [speedup[model][n] for n in NODES] for model in speedup},
        xs=list(NODES),
    ))


def test_near_linear_scaleup(scaleup):
    for model, curve in scaleup.items():
        assert curve[8] > 0.75, (model, curve)


def test_vgg_resnet_near_linear_speedup(speedup):
    for model in ("vgg16", "resnet50"):
        assert speedup[model][8] > 5.5, (model, speedup[model])


def test_alexnet_markedly_sublinear_speedup(speedup):
    assert speedup["alexnet"][8] < speedup["vgg16"][8]
    assert speedup["alexnet"][8] < speedup["resnet50"][8]
    assert speedup["alexnet"][8] < 6.0


def test_speedup_monotone_in_nodes(speedup):
    for model, curve in speedup.items():
        values = [curve[n] for n in NODES]
        assert values == sorted(values)


def test_cpu_speedup_plateaus_at_4(cpu_speedup_curve):
    assert cpu_speedup_curve[4] > 2.0
    assert cpu_speedup_curve[8] < 1.35 * cpu_speedup_curve[4]
