"""Table 3 + Figure 17 (Appendix C): per-layer runtime breakdown and
the drill-down speedup split.

Table 3: minutes for CNN inference + first LR iteration per explored
layer under Staged, plus the image-read row, for 1/2/4/8 nodes.

Figure 17: speedup curves split into 'CNN inference + LR first
iteration' (near-linear) vs 'reading images' (sub-linear, the HDFS
small-files problem).

Shape invariants:
  - the first (lowest) explored layer dominates each CNN's total —
    that is where full inference from raw images happens;
  - compute speedups are near-linear; read speedups sub-linear;
  - ResNet50's 1-node layer-5 row lands near the paper's ~19 min.
"""

import pytest

from harness import FOODS, paper_workload, print_table
from repro.costmodel import cloudlab_cluster, per_layer_breakdown
from repro.costmodel.crashes import manual_setup

NODES = (1, 2, 4, 8)


def breakdown_for(model_name, num_nodes):
    stats, layers = paper_workload(model_name)
    setup = manual_setup(stats, layers, FOODS, 4, label="tab3")
    return per_layer_breakdown(
        stats, layers, FOODS, setup, cloudlab_cluster(num_nodes)
    )


@pytest.fixture(scope="module")
def table3():
    return {
        (model, n): breakdown_for(model, n)
        for model in ("resnet50", "alexnet", "vgg16")
        for n in NODES
    }


def test_table3(table3, benchmark):
    benchmark(lambda: breakdown_for("resnet50", 8))
    for model in ("resnet50", "alexnet", "vgg16"):
        _, layers = paper_workload(model)
        rows = []
        for depth, layer in enumerate(layers):
            label = f"{len(layers) - depth}"  # index from the top
            rows.append(
                [label, layer] + [
                    f"{table3[(model, n)][0][layer] / 60:.1f}"
                    for n in NODES
                ]
            )
        totals = [
            sum(table3[(model, n)][0].values()) / 60 for n in NODES
        ]
        rows.append(["total", ""] + [f"{t:.1f}" for t in totals])
        rows.append(
            ["read", "images"] + [
                f"{table3[(model, n)][1] / 60:.1f}" for n in NODES
            ]
        )
        print_table(
            f"Table 3 — {model}: per-layer inference + LR 1st iter "
            "(minutes) vs nodes",
            ["layer#", "layer", "1", "2", "4", "8"], rows,
        )


def test_first_layer_dominates(table3):
    for model in ("resnet50", "alexnet", "vgg16"):
        rows, _ = table3[(model, 1)]
        values = list(rows.values())
        assert values[0] == max(values)
        assert values[0] > 0.5 * sum(values)


def test_resnet_one_node_layer5_anchor(table3):
    """Table 3's measured anchor: ~19 minutes."""
    rows, _ = table3[("resnet50", 1)]
    minutes = rows["conv4_6"] / 60
    assert 13 < minutes < 25


def test_fig17_compute_speedup_near_linear(table3):
    for model in ("resnet50", "vgg16"):
        t1 = sum(table3[(model, 1)][0].values())
        t8 = sum(table3[(model, 8)][0].values())
        assert t1 / t8 > 5.0, model


def test_fig17_read_speedup_sublinear(table3):
    for model in ("resnet50", "alexnet", "vgg16"):
        read1 = table3[(model, 1)][1]
        read8 = table3[(model, 8)][1]
        assert 3 < read1 / read8 < 7.9, model


def test_fig17_alexnet_compute_speedup_weakest(table3):
    """AlexNet's absolute compute time is smallest, so overheads bite:
    its compute-side speedup trails VGG16's and ResNet50's."""
    speedups = {}
    for model in ("resnet50", "alexnet", "vgg16"):
        t1 = sum(table3[(model, 1)][0].values())
        t8 = sum(table3[(model, 8)][0].values())
        speedups[model] = t1 / t8
    assert speedups["alexnet"] <= min(
        speedups["vgg16"], speedups["resnet50"]
    ) + 0.01


def test_reads_identical_across_models(table3):
    """The read row depends only on the image count, not the CNN."""
    reads = {
        model: table3[(model, 4)][1]
        for model in ("resnet50", "alexnet", "vgg16")
    }
    values = list(reads.values())
    assert max(values) == pytest.approx(min(values))
