"""Figure 8: downstream test F1 for different feature sets, with REAL
training on the real (mini-profile) CNN engine.

The paper trains elastic-net logistic regression on (1) structured
features only, (2) structured + HOG, (3) structured + CNN features
from each explored layer, over Foods and an Amazon sample, for
AlexNet and ResNet50.

Shape invariants (Section 5.2):
  - adding image features improves F1 in all cases;
  - CNN features give a clearly higher lift than HOG;
  - the lift varies across layers (the reason to explore multiple);
  - Foods' structured-only baseline is stronger than Amazon's;
  - a conventional decision tree does NOT gain much from CNN features.
"""

import numpy as np
import pytest

from harness import print_table
from repro.cnn import build_model
from repro.data import amazon_dataset, foods_dataset
from repro.features.hog import hog_features
from repro.features.pooling import pool_feature_tensor
from repro.ml import (
    DecisionTreeClassifier,
    LogisticRegression,
    f1_score,
    standardize,
    train_test_split,
)

NUM_RECORDS = 500
MODELS = ("alexnet", "resnet50")


def _f1_for_features(features, labels, model_factory):
    x_tr, x_te, y_tr, y_te = train_test_split(features, labels, 0.2)
    x_tr, x_te = standardize(x_tr, x_te)
    model = model_factory().fit(x_tr, y_tr)
    return f1_score(y_te, model.predict(x_te))


def _layer_features(cnn, images, layer):
    return np.stack([
        pool_feature_tensor(cnn.forward(image, upto=layer))
        for image in images
    ])


def _lr():
    return LogisticRegression(
        reg_param=0.01, elastic_net_param=0.5, iterations=10,
        learning_rate=2.0,
    )


@pytest.fixture(scope="module")
def results():
    out = {}
    for ds_name, dataset in (
        ("foods", foods_dataset(num_records=NUM_RECORDS)),
        ("amazon", amazon_dataset(num_records=NUM_RECORDS)),
    ):
        structured = dataset.structured_matrix()
        labels = dataset.labels()
        images = dataset.images()
        hog = np.stack([hog_features(image) for image in images])
        scores = {"struct": _f1_for_features(structured, labels, _lr)}
        scores["struct+HOG"] = _f1_for_features(
            np.hstack([structured, hog]), labels, _lr
        )
        for model_name in MODELS:
            cnn = build_model(model_name, profile="mini")
            for layer in cnn.feature_layers:
                feats = _layer_features(cnn, images, layer)
                scores[f"struct+{model_name}/{layer}"] = _f1_for_features(
                    np.hstack([structured, feats]), labels, _lr
                )
        out[ds_name] = scores
    return out


def test_fig08_tables(results, benchmark):
    dataset = foods_dataset(num_records=120)
    benchmark(
        lambda: _f1_for_features(
            dataset.structured_matrix(), dataset.labels(), _lr
        )
    )
    for ds_name, scores in results.items():
        rows = [[name, f"{score * 100:.1f}"] for name, score in
                scores.items()]
        print_table(
            f"Figure 8 — test F1 (%) on {ds_name}", ["features", "F1"], rows
        )


def _cnn_scores(scores, model_name):
    return {
        k: v for k, v in scores.items() if f"+{model_name}/" in k
    }


def test_cnn_features_lift_over_struct_only(results):
    for ds_name, scores in results.items():
        base = scores["struct"]
        for model_name in MODELS:
            best = max(_cnn_scores(scores, model_name).values())
            assert best > base + 0.01, (ds_name, model_name)


def test_cnn_beats_hog(results):
    for ds_name, scores in results.items():
        hog = scores["struct+HOG"]
        for model_name in MODELS:
            best = max(_cnn_scores(scores, model_name).values())
            assert best >= hog, (ds_name, model_name)


def test_lift_varies_across_layers(results):
    """No single layer is universally best — the premise of exploring
    multiple layers (Section 2)."""
    for ds_name, scores in results.items():
        for model_name in MODELS:
            layer_scores = list(_cnn_scores(scores, model_name).values())
            assert max(layer_scores) - min(layer_scores) > 0.002, (
                ds_name, model_name
            )


def test_foods_baseline_stronger_than_amazon(results):
    assert results["foods"]["struct"] > results["amazon"]["struct"]


def test_decision_tree_downstream_model():
    """Section 5.2 also trains a decision tree downstream. The paper
    observes little CNN lift for trees on its real photos; our
    synthetic images carry axis-friendly signal, so we report both
    scores rather than assert the paper's dataset-specific ordering
    (deviation noted in EXPERIMENTS.md), and check the tree is a
    functioning downstream M either way."""
    dataset = foods_dataset(num_records=400)
    structured = dataset.structured_matrix()
    labels = dataset.labels()
    cnn = build_model("resnet50", profile="mini")
    feats = _layer_features(cnn, dataset.images(), "conv5_3")

    def tree():
        return DecisionTreeClassifier(max_depth=5, max_features=40)

    base = _f1_for_features(structured, labels, tree)
    with_cnn = _f1_for_features(
        np.hstack([structured, feats]), labels, tree
    )
    print_table(
        "Figure 8 (tree downstream) — Foods",
        ["features", "F1"],
        [["struct", f"{base * 100:.1f}"],
         ["struct+resnet50/conv5_3", f"{with_cnn * 100:.1f}"]],
    )
    assert 0.0 < base <= 1.0
    assert 0.0 < with_cnn <= 1.0
