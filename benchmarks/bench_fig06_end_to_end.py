"""Figure 6: end-to-end reliability and efficiency (CPU cluster).

Regenerates the full {Foods, Amazon} x {Spark, Ignite} x {AlexNet,
VGG16, ResNet50} matrix over the six approaches: Lazy-1/5/7, Lazy-5
with Pre-mat, Eager, and Vista. Cells are minutes, "X" is a crash.

Shape invariants asserted (the paper's Section 5.1 narrative):
  - Vista never crashes and is fastest or near-fastest everywhere;
  - on Spark, Lazy-5 and Lazy-7 crash for VGG16 on both datasets;
  - on Ignite, Lazy-7 crashes for all CNNs on Amazon and for ResNet50
    on Foods; Eager crashes for ResNet50 on Amazon;
  - Vista's runtime reduction vs the Lazy baselines is 58-92%-ish.
"""

import pytest

from harness import AMAZON, FOODS, fmt_minutes, paper_workload, print_table
from repro.core.optimizer import optimize
from repro.core.plans import EAGER, LAZY, STAGED
from repro.costmodel import (
    cloudlab_cluster,
    estimate_premat_runtime,
    estimate_runtime,
    ignite_default_setup,
    spark_default_setup,
    vista_setup,
)
from repro.costmodel.crashes import manual_setup
from repro.core.config import Resources
from repro.memory.model import GB

CLUSTER = cloudlab_cluster()
RESOURCES = Resources(8, 32 * GB, 8)
APPROACHES = ["Lazy-1", "Lazy-5", "Lazy-7", "Lazy-5+Premat", "Eager", "Vista"]


def run_cell(model_name, dataset_stats, backend, approach):
    """One Figure 6 cell: a RuntimeReport (possibly crashed)."""
    stats, layers = paper_workload(model_name)
    if approach.startswith("Lazy-") and "Premat" not in approach:
        cpu = int(approach.split("-")[1])
        setup = (
            spark_default_setup(cpu, dataset_stats.num_records)
            if backend == "spark" else ignite_default_setup(cpu)
        )
        return estimate_runtime(
            stats, layers, dataset_stats, LAZY, setup, CLUSTER
        )
    if approach == "Lazy-5+Premat":
        setup = manual_setup(
            stats, layers, dataset_stats, 5, backend=backend, label=approach
        )
        pre, main = estimate_premat_runtime(
            stats, layers, dataset_stats, LAZY, setup, CLUSTER,
            label=approach,
        )
        if main.crashed:
            return main
        main.seconds += pre.seconds
        main.breakdown["premat"] = pre.seconds
        return main
    if approach == "Eager":
        setup = manual_setup(
            stats, layers, dataset_stats, 5, backend=backend, label="eager"
        )
        return estimate_runtime(
            stats, layers, dataset_stats, EAGER, setup, CLUSTER
        )
    if approach == "Vista":
        config = optimize(stats, layers, dataset_stats, RESOURCES)
        return estimate_runtime(
            stats, layers, dataset_stats, STAGED,
            vista_setup(config, backend=backend), CLUSTER,
        )
    raise ValueError(approach)


def full_matrix():
    matrix = {}
    for ds_name, ds in (("foods", FOODS), ("amazon", AMAZON)):
        for backend in ("spark", "ignite"):
            for model in ("alexnet", "vgg16", "resnet50"):
                for approach in APPROACHES:
                    matrix[(ds_name, backend, model, approach)] = run_cell(
                        model, ds, backend, approach
                    )
    return matrix


@pytest.fixture(scope="module")
def matrix():
    return full_matrix()


def test_fig06_matrix(matrix, benchmark):
    benchmark(lambda: run_cell("resnet50", FOODS, "spark", "Vista"))
    for ds_name in ("foods", "amazon"):
        for backend in ("spark", "ignite"):
            rows = []
            for model in ("alexnet", "vgg16", "resnet50"):
                rows.append([model] + [
                    fmt_minutes(matrix[(ds_name, backend, model, a)])
                    for a in APPROACHES
                ])
            print_table(
                f"Figure 6 — {ds_name} / {backend} (minutes, X = crash)",
                ["CNN"] + APPROACHES, rows,
            )
    from repro.report import bar_chart

    for model in ("alexnet", "vgg16", "resnet50"):
        items = [
            (approach,
             None if matrix[("foods", "spark", model, approach)].crashed
             else matrix[("foods", "spark", model, approach)].minutes)
            for approach in APPROACHES
        ]
        print()
        print(bar_chart(
            f"Figure 6 rendered — foods/spark/{model}", items, unit=" min"
        ))


def test_vista_never_crashes(matrix):
    for key, report in matrix.items():
        if key[3] == "Vista":
            assert not report.crashed, key


def test_vista_is_fastest_or_near_fastest(matrix):
    for ds_name in ("foods", "amazon"):
        for backend in ("spark", "ignite"):
            for model in ("alexnet", "vgg16", "resnet50"):
                vista = matrix[(ds_name, backend, model, "Vista")]
                others = [
                    matrix[(ds_name, backend, model, a)]
                    for a in APPROACHES if a != "Vista"
                ]
                completed = [r.seconds for r in others if not r.crashed]
                assert vista.seconds <= min(completed) * 1.05


def test_spark_vgg_lazy_crashes(matrix):
    for ds_name in ("foods", "amazon"):
        for approach in ("Lazy-5", "Lazy-7"):
            assert matrix[(ds_name, "spark", "vgg16", approach)].crashed


def test_spark_non_vgg_lazy_completes(matrix):
    """Section 5.1: on Spark-TF only VGG16's Lazy runs crash."""
    for ds_name in ("foods", "amazon"):
        for model in ("alexnet", "resnet50"):
            for approach in ("Lazy-1", "Lazy-5", "Lazy-7"):
                assert not matrix[
                    (ds_name, "spark", model, approach)
                ].crashed, (ds_name, model, approach)


def test_ignite_lazy7_crashes_all_models_on_amazon(matrix):
    for model in ("alexnet", "vgg16", "resnet50"):
        assert matrix[("amazon", "ignite", model, "Lazy-7")].crashed


def test_ignite_lazy7_resnet_crashes_on_foods(matrix):
    assert matrix[("foods", "ignite", "resnet50", "Lazy-7")].crashed
    assert not matrix[("foods", "ignite", "alexnet", "Lazy-7")].crashed


def test_eager_crashes_ignite_amazon_resnet(matrix):
    assert matrix[("amazon", "ignite", "resnet50", "Eager")].crashed
    assert not matrix[("amazon", "ignite", "alexnet", "Eager")].crashed


def test_eager_spills_on_spark_amazon_resnet(matrix):
    eager = matrix[("amazon", "spark", "resnet50", "Eager")]
    vista = matrix[("amazon", "spark", "resnet50", "Vista")]
    assert not eager.crashed
    assert eager.spilled_bytes > 0
    assert eager.seconds > 1.5 * vista.seconds


def test_vista_runtime_reduction_band(matrix):
    """'reduces runtimes by 58% to 92% compared to baselines'
    (vs Lazy-1, the always-completing baseline)."""
    for ds_name in ("foods", "amazon"):
        for backend in ("spark", "ignite"):
            for model in ("alexnet", "vgg16", "resnet50"):
                lazy1 = matrix[(ds_name, backend, model, "Lazy-1")]
                vista = matrix[(ds_name, backend, model, "Vista")]
                reduction = 1 - vista.seconds / lazy1.seconds
                assert 0.5 <= reduction <= 0.95, (model, reduction)
