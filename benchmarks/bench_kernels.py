"""Microbenchmark: per-image vs batched NHWC inference kernels.

Times full-network inference over the AlexNet/VGG16/ResNet50 zoo two
ways — one image at a time through ``CNN.forward`` versus one
``CNN.forward_batch`` call per batch — verifies the two paths agree
(allclose at float32), and writes ``BENCH_kernels.json`` at the repo
root so future PRs have a perf trajectory to compare against.

The timings run *inside* trace spans and the reported seconds are read
back out of the exported span tree (``harness.span_seconds``) — the
committed JSON is the shared ``trace/v2`` envelope, with the full span
tree and a metrics block alongside the derived result rows. The bench
also measures the observability layers' own cost: batched inference
with the per-operator ``op_timer`` hook attached must stay within 5%
of untraced inference, and an end-to-end Vista run with a
:class:`~repro.metrics.MetricsRegistry` attached must stay within 5%
of an uninstrumented run.

The committed result file is intentionally tracked in git: it is the
perf record, not a scratch artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick]
        [--profile mini|full] [--batch N] [--repeats R] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import (  # noqa: E402
    find_span,
    print_table,
    span_seconds,
    trace_payload,
    write_results,
)

from repro.cnn import build_model  # noqa: E402
from repro.trace import Tracer  # noqa: E402

MODELS = ("alexnet", "vgg16", "resnet50")
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_kernels.json",
)

#: Acceptance bound: attaching the per-operator timing hook must cost
#: less than this fraction of untraced batched inference.
MAX_TRACER_OVERHEAD = 0.05

#: Acceptance bound: running a Vista workload with a metrics registry
#: attached must cost less than this fraction of an uninstrumented run.
MAX_METRICS_OVERHEAD = 0.05

#: Acceptance bound: streaming a file-backed run ledger (span events,
#: wave/task lifecycle, throttled metric samples) must cost less than
#: this fraction of the same traced run without a ledger.
MAX_LEDGER_OVERHEAD = 0.05


def bench_model(name, profile, batch_size, repeats, tracer):
    """Time per-image vs batched inference for one zoo model under a
    ``bench:<model>`` span; the caller reads the numbers back from the
    exported trace."""
    model = build_model(name, profile=profile)
    rng = np.random.default_rng(0)
    batch = rng.normal(size=(batch_size,) + model.input_shape).astype(
        np.float32
    )
    # correctness first: both paths must agree before we time them
    batched_out = model.forward_batch(batch)
    per_image_out = np.stack([model.forward(image) for image in batch])
    np.testing.assert_allclose(
        batched_out, per_image_out, rtol=1e-4, atol=1e-5,
        err_msg=f"{name}: batched and per-image inference diverged",
    )
    with tracer.span(f"bench:{name}", model=name, profile=profile,
                     batch_size=batch_size, repeats=repeats):
        with tracer.span("per_image") as sp:
            for _ in range(repeats):
                for image in batch:
                    model.forward(image)
            sp.add("images", repeats * batch_size)
        with tracer.span("batched") as sp:
            for _ in range(repeats):
                model.forward_batch(batch)
            sp.add("images", repeats * batch_size)


def bench_tracer_overhead(profile, batch_size, repeats):
    """Batched inference with vs without the per-operator timing hook.

    Trials interleave and each side takes its min, so OS noise cancels
    rather than landing on one side of the ratio. Samples are CPU time
    (``time.process_time``): inference is pure CPU, so process time
    captures the hook's true cost without the scheduler preemption
    that skews wall-clock ratios on shared machines.
    """
    model = build_model("alexnet", profile=profile)
    rng = np.random.default_rng(1)
    batch = rng.normal(size=(batch_size,) + model.input_shape).astype(
        np.float32
    )
    model.forward_batch(batch)  # warm caches
    tracer = Tracer(name="overhead")
    # Enough trials for the min to find a preemption-free sample per
    # side even on a machine with background load.
    trials = max(13, repeats)
    inner = 3  # amortize each sample over several batch inferences
    untraced = traced = float("inf")
    try:
        for _ in range(trials):
            model.op_timer = None
            start = time.process_time()
            for _ in range(inner):
                model.forward_batch(batch)
            untraced = min(untraced, time.process_time() - start)

            model.op_timer = tracer.record_op
            with tracer.span("traced_batch"):
                start = time.process_time()
                for _ in range(inner):
                    model.forward_batch(batch)
                traced = min(traced, time.process_time() - start)
    finally:
        model.op_timer = None
    return {
        "untraced_seconds": untraced,
        "traced_seconds": traced,
        "overhead_fraction": traced / untraced - 1.0,
    }


def bench_metrics_overhead(pairs=48):
    """End-to-end Vista run with vs without a metrics registry.

    The estimator is an *alternating sum ratio*: single runs alternate
    plain/instrumented back to back (order flipping each pair) and the
    overhead is the ratio of the two per-side CPU-time sums. On a
    shared machine the dominant noise is multiplicative — frequency
    scaling and steal-time windows lasting whole seconds, under which
    every sample in the window runs a constant factor slower — so
    per-sample best-of estimators only converge if *both* sides
    happen to sample inside the same fast window. Fine-grained
    alternation instead puts each pair inside one window, where the
    common factor cancels from the ratio, and summing averages the
    residual one-sided preemption spikes over all pairs. The runs are
    timed with ``time.process_time`` (CPU time): the workload is pure
    CPU, so CPU time measures exactly the cost the registry adds
    while ignoring scheduler wait. The last instrumented registry is
    returned so the committed envelope carries a real metrics block.
    """
    from repro import MetricsRegistry, Vista, default_resources
    from repro.data import foods_dataset

    # Shared dataset: generation cost stays out of the timings. The
    # registry's cost is per task/stage, not per record, so the record
    # count sets the signal-to-noise of the measured *fraction* — 320
    # records makes one run long enough that the fixed instrument cost
    # is well inside the budget and scheduler spikes average out.
    dataset = foods_dataset(num_records=320)

    def make_vista():
        return Vista(
            model_name="alexnet", num_layers=3, dataset=dataset,
            resources=default_resources(num_nodes=2),
        )

    def one(metrics=None):
        vista = make_vista()  # built untimed
        start = time.process_time()
        vista.run(metrics=metrics)
        return time.process_time() - start

    # Warm caches on both code paths before sampling starts.
    warm_until = time.process_time() + 1.0
    while time.process_time() < warm_until:
        make_vista().run(metrics=MetricsRegistry())
    plain_sum = instrumented_sum = 0.0
    registry = None
    for pair in range(max(8, pairs)):
        registry = MetricsRegistry()
        if pair % 2 == 0:
            plain_sum += one()
            instrumented_sum += one(registry)
        else:
            instrumented_sum += one(registry)
            plain_sum += one()
    return {
        "plain_seconds": plain_sum,
        "instrumented_seconds": instrumented_sum,
        "overhead_fraction": instrumented_sum / plain_sum - 1.0,
    }, registry


def bench_ledger_overhead(pairs=24):
    """End-to-end traced Vista run with vs without a file-backed run
    ledger, using the same paired alternating-order CPU-time estimator
    as :func:`bench_metrics_overhead` (see there for why alternation
    beats best-of under multiplicative machine noise). Both sides run
    with a tracer attached — the ledger's marginal cost is what the
    budget gates: the O_APPEND line writes for span/wave/task events
    plus the barrier fsyncs.
    """
    import tempfile

    from repro import Vista, default_resources
    from repro.data import foods_dataset
    from repro.observe import RunLedger
    from repro.trace import Tracer

    # Larger than the metrics bench workload on purpose: ledger cost is
    # per *event* (partition/span bound), not per record, so more
    # records grow the denominator without growing the event stream.
    dataset = foods_dataset(num_records=640)

    def make_vista():
        return Vista(
            model_name="alexnet", num_layers=3, dataset=dataset,
            resources=default_resources(num_nodes=2),
        )

    def one(ledger=None):
        vista = make_vista()  # built untimed
        tracer = Tracer()
        start = time.process_time()
        vista.run(tracer=tracer, ledger=ledger)
        elapsed = time.process_time() - start
        if ledger is not None:
            ledger.close()
        return elapsed

    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = os.path.join(tmp, "bench.ledger.jsonl")

        def make_ledger():
            # Truncate between runs so the file never grows unbounded;
            # append-mode open cost is part of what we measure.
            open(ledger_path, "w").close()
            return RunLedger(ledger_path)

        warm_until = time.process_time() + 1.0
        while time.process_time() < warm_until:
            one(make_ledger())
        plain_sum = ledgered_sum = 0.0
        events = 0
        for pair in range(max(8, pairs)):
            ledger = make_ledger()
            if pair % 2 == 0:
                plain_sum += one()
                ledgered_sum += one(ledger)
            else:
                ledgered_sum += one(ledger)
                plain_sum += one()
            events = len(ledger)
    return {
        "plain_seconds": plain_sum,
        "ledgered_seconds": ledgered_sum,
        "events_per_run": events,
        "overhead_fraction": ledgered_sum / plain_sum - 1.0,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats; skip writing the result file")
    parser.add_argument("--profile", default="mini",
                        choices=("mini", "full"))
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the result envelope to PATH (even with --quick)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 5)

    tracer = Tracer(name="bench_kernels")
    for name in MODELS:
        bench_model(name, args.profile, args.batch, repeats, tracer)
    trace = tracer.export()

    results = []
    for name in MODELS:
        subtree = find_span(trace, f"bench:{name}")
        per_image = span_seconds(subtree, "per_image")
        batched = span_seconds(subtree, "batched")
        results.append({
            "model": name,
            "profile": args.profile,
            "batch_size": args.batch,
            "repeats": repeats,
            "per_image_seconds": per_image,
            "batched_seconds": batched,
            "speedup": per_image / batched,
        })
    overhead = bench_tracer_overhead(args.profile, args.batch, repeats)
    metrics_overhead, metrics_registry = bench_metrics_overhead(
        pairs=24 if args.quick else 48
    )
    ledger_overhead = bench_ledger_overhead(
        pairs=12 if args.quick else 24
    )

    print_table(
        f"Kernel microbenchmark ({args.profile} profile, "
        f"batch={args.batch}, repeats={repeats})",
        ["model", "per-image s", "batched s", "speedup"],
        [
            (
                r["model"],
                f"{r['per_image_seconds']:.4f}",
                f"{r['batched_seconds']:.4f}",
                f"{r['speedup']:.1f}x",
            )
            for r in results
        ],
    )
    print(
        f"\ntracer overhead on batched inference: "
        f"{overhead['overhead_fraction'] * 100:.2f}% "
        f"(traced {overhead['traced_seconds']:.4f}s vs "
        f"untraced {overhead['untraced_seconds']:.4f}s)"
    )
    print(
        f"metrics overhead on an end-to-end run: "
        f"{metrics_overhead['overhead_fraction'] * 100:.2f}% "
        f"(instrumented {metrics_overhead['instrumented_seconds']:.4f}s "
        f"vs plain {metrics_overhead['plain_seconds']:.4f}s)"
    )
    print(
        f"ledger overhead on a traced end-to-end run: "
        f"{ledger_overhead['overhead_fraction'] * 100:.2f}% "
        f"(ledgered {ledger_overhead['ledgered_seconds']:.4f}s vs "
        f"plain {ledger_overhead['plain_seconds']:.4f}s, "
        f"{ledger_overhead['events_per_run']} events/run)"
    )

    best = max(r["speedup"] for r in results)
    if args.batch >= 32:
        assert best >= 3.0, (
            f"batched kernels only {best:.1f}x faster than per-image at "
            f"batch {args.batch}; expected >= 3x"
        )
    assert overhead["overhead_fraction"] < MAX_TRACER_OVERHEAD, (
        f"tracer overhead {overhead['overhead_fraction'] * 100:.2f}% "
        f"exceeds the {MAX_TRACER_OVERHEAD * 100:.0f}% budget"
    )
    assert metrics_overhead["overhead_fraction"] < MAX_METRICS_OVERHEAD, (
        f"metrics overhead "
        f"{metrics_overhead['overhead_fraction'] * 100:.2f}% exceeds "
        f"the {MAX_METRICS_OVERHEAD * 100:.0f}% budget"
    )
    assert ledger_overhead["overhead_fraction"] < MAX_LEDGER_OVERHEAD, (
        f"ledger overhead "
        f"{ledger_overhead['overhead_fraction'] * 100:.2f}% exceeds "
        f"the {MAX_LEDGER_OVERHEAD * 100:.0f}% budget"
    )
    out_path = args.out or (None if args.quick else RESULT_PATH)
    if out_path:
        write_results(out_path, trace_payload(
            "kernels", results, trace=trace, metrics=metrics_registry,
            profile=args.profile, batch_size=args.batch, repeats=repeats,
            tracer_overhead=overhead, metrics_overhead=metrics_overhead,
            ledger_overhead=ledger_overhead,
        ))
        print(f"\nwrote {out_path}")
    return results


if __name__ == "__main__":
    main()
