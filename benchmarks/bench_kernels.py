"""Microbenchmark: per-image vs batched NHWC inference kernels.

Times full-network inference over the AlexNet/VGG16/ResNet50 zoo two
ways — one image at a time through ``CNN.forward`` versus one
``CNN.forward_batch`` call per batch — verifies the two paths agree
(allclose at float32), and writes ``BENCH_kernels.json`` at the repo
root so future PRs have a perf trajectory to compare against.

The committed result file is intentionally tracked in git: it is the
perf record, not a scratch artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick]
        [--profile mini|full] [--batch N] [--repeats R]
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))

from harness import print_table, time_block, write_results  # noqa: E402

from repro.cnn import build_model  # noqa: E402

MODELS = ("alexnet", "vgg16", "resnet50")
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_kernels.json",
)


def bench_model(name, profile, batch_size, repeats):
    """Time per-image vs batched inference for one zoo model."""
    model = build_model(name, profile=profile)
    rng = np.random.default_rng(0)
    batch = rng.normal(size=(batch_size,) + model.input_shape).astype(
        np.float32
    )
    # correctness first: both paths must agree before we time them
    batched_out = model.forward_batch(batch)
    per_image_out = np.stack([model.forward(image) for image in batch])
    np.testing.assert_allclose(
        batched_out, per_image_out, rtol=1e-4, atol=1e-5,
        err_msg=f"{name}: batched and per-image inference diverged",
    )
    with time_block() as per_image:
        for _ in range(repeats):
            for image in batch:
                model.forward(image)
    with time_block() as batched:
        for _ in range(repeats):
            model.forward_batch(batch)
    return {
        "model": name,
        "profile": profile,
        "batch_size": batch_size,
        "repeats": repeats,
        "per_image_seconds": per_image.seconds,
        "batched_seconds": batched.seconds,
        "speedup": per_image.seconds / batched.seconds,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats; skip writing the result file")
    parser.add_argument("--profile", default="mini",
                        choices=("mini", "full"))
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 5)

    results = [
        bench_model(name, args.profile, args.batch, repeats)
        for name in MODELS
    ]
    print_table(
        f"Kernel microbenchmark ({args.profile} profile, "
        f"batch={args.batch}, repeats={repeats})",
        ["model", "per-image s", "batched s", "speedup"],
        [
            (
                r["model"],
                f"{r['per_image_seconds']:.4f}",
                f"{r['batched_seconds']:.4f}",
                f"{r['speedup']:.1f}x",
            )
            for r in results
        ],
    )

    best = max(r["speedup"] for r in results)
    if args.batch >= 32:
        assert best >= 3.0, (
            f"batched kernels only {best:.1f}x faster than per-image at "
            f"batch {args.batch}; expected >= 3x"
        )
    if not args.quick:
        write_results(RESULT_PATH, {"results": results})
        print(f"\nwrote {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()
