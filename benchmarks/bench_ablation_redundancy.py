"""Ablation: computational redundancy of the logical plans, measured
two ways — statically from the roster (paper-scale FLOPs) and
dynamically by metering the real mini-engine execution.

This isolates the single mechanism behind most of Vista's speedup
(Section 4.2.1): Lazy re-runs the shared inference prefix once per
layer; Staged/Eager run it once. The two measurements must agree on
the redundancy *ratio*, since mini models keep the same chain
structure.
"""

import pytest

from harness import paper_workload, print_table
from repro.cnn import build_model
from repro.core.config import VistaConfig
from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import EAGER, LAZY, STAGED, redundant_flops
from repro.data import foods_dataset
from repro.dataflow.context import local_context


def static_redundancy(model_name):
    """Paper-scale: Lazy total vs Staged total FLOPs per layer count."""
    stats, layers = paper_workload(model_name)
    out = {}
    for k in range(1, len(layers) + 1):
        subset = layers[-k:]
        staged = stats.layer_stats(subset[-1]).flops_from_input
        lazy = sum(
            stats.layer_stats(layer).flops_from_input for layer in subset
        )
        out[k] = (lazy, staged, redundant_flops(stats, subset))
    return out


def measured_ratios(model_name, num_layers):
    """Real execution: metered FLOPs for each plan on the mini engine."""
    model = build_model(model_name, profile="mini")
    layers = model.feature_layers[-num_layers:]
    dataset = foods_dataset(num_records=32)
    config = VistaConfig(
        cpu=2, num_partitions=4, mem_storage_bytes=10**9,
        mem_user_bytes=10**9, mem_dl_bytes=10**9, join="shuffle",
        persistence="deserialized",
    )
    out = {}
    for label, plan in (("lazy", LAZY), ("eager", EAGER),
                        ("staged", STAGED)):
        ctx = local_context(num_nodes=2, cores_per_node=4, cpu=2)
        executor = FeatureTransferExecutor(
            ctx, model, dataset, layers, config,
            downstream_fn=lambda f, l: {},
        )
        out[label] = executor.run(plan).metrics["inference_flops"]
    return out


@pytest.fixture(scope="module")
def static_results():
    return {m: static_redundancy(m) for m in
            ("alexnet", "vgg16", "resnet50")}


@pytest.fixture(scope="module")
def measured():
    return {
        m: measured_ratios(m, {"alexnet": 4, "vgg16": 3,
                               "resnet50": 5}[m])
        for m in ("alexnet", "vgg16", "resnet50")
    }


def test_redundancy_tables(static_results, measured, benchmark):
    benchmark(lambda: measured_ratios("alexnet", 2))
    for model, by_k in static_results.items():
        rows = [
            [k, f"{lazy / 1e9:.2f}", f"{staged / 1e9:.2f}",
             f"{redundant / lazy * 100:.0f}%"]
            for k, (lazy, staged, redundant) in sorted(by_k.items())
        ]
        print_table(
            f"Redundancy ablation — {model}: per-image GFLOPs",
            ["#layers", "Lazy", "Staged", "redundant"], rows,
        )
    rows = [
        [model, flops["lazy"], flops["staged"], flops["eager"],
         f"{flops['lazy'] / flops['staged']:.2f}x"]
        for model, flops in measured.items()
    ]
    print_table(
        "Redundancy ablation — measured FLOPs on the mini engine",
        ["CNN", "Lazy", "Staged", "Eager", "Lazy/Staged"], rows,
    )


def test_staged_eager_identical_flops(measured):
    for model, flops in measured.items():
        assert flops["staged"] == flops["eager"], model


def test_lazy_ratio_grows_with_layer_count(static_results):
    for model, by_k in static_results.items():
        ratios = [
            lazy / staged for _, (lazy, staged, _) in sorted(by_k.items())
        ]
        assert all(b >= a for a, b in zip(ratios, ratios[1:])), model


def test_lazy_ratio_near_layer_count_for_top_heavy_sets(static_results):
    """For layer sets clustered at the top of the network (AlexNet's
    fc7/fc8, VGG's fc stack), each extra Lazy pass costs ~a full
    inference: ratio ~= |L|."""
    lazy, staged, _ = static_results["vgg16"][3]
    assert lazy / staged > 2.9


def test_static_and_measured_ratios_agree_in_shape(static_results,
                                                   measured):
    """Mini models share the chain structure, so Lazy/Staged measured
    on them must exceed 1 and be largest for the CNN whose static
    ratio is largest."""
    static_ratio = {
        m: by_k[max(by_k)][0] / by_k[max(by_k)][1]
        for m, by_k in static_results.items()
    }
    measured_ratio = {
        m: flops["lazy"] / flops["staged"] for m, flops in measured.items()
    }
    assert all(r > 1.0 for r in measured_ratio.values())
    assert max(static_ratio, key=static_ratio.get) \
        == max(measured_ratio, key=measured_ratio.get)
