"""Figure 15 (Appendix A): estimated vs actual size of the largest
intermediate table, All-at-Time (Eager) vs Staged, for the three CNNs.

Two parts:
  1. Paper scale — Eq. 16 estimates for Foods/1X, Eager vs Staged.
  2. Mini scale — the SAME estimator arithmetic validated against
     *actual* tables materialized on the real dataflow engine, in both
     deserialized and serialized formats.

Shape invariants:
  - the estimate upper-bounds the actual deserialized size (the
    paper's 'accurate ... with a reasonable safety margin');
  - serialized is smaller than deserialized;
  - AlexNet features compress hardest (most zeros — Appendix A);
  - Eager's largest table >= Staged's for every CNN.
"""

import numpy as np
import pytest

from harness import FOODS, paper_workload, print_table
from repro.cnn import build_model
from repro.core.config import DatasetStats
from repro.core.sizing import eager_table_bytes, estimate_sizes
from repro.dataflow.partition import Partition
from repro.dataflow.record import estimate_rows_bytes
from repro.memory.model import GB


@pytest.fixture(scope="module")
def paper_estimates():
    out = {}
    for model in ("alexnet", "vgg16", "resnet50"):
        stats, layers = paper_workload(model)
        sizing = estimate_sizes(stats, layers, FOODS)
        out[model] = {
            "staged": sizing.s_single,
            "eager": eager_table_bytes(stats, layers, FOODS),
        }
    return out


def _materialize_rows(model_name, num_records=64):
    """Actually build one stage table's rows on the mini engine."""
    from repro.data import foods_dataset

    cnn = build_model(model_name, profile="mini")
    dataset = foods_dataset(num_records=num_records)
    layer = cnn.feature_layers[0]  # the largest (lowest) layer
    rows = []
    for srow, irow in zip(dataset.structured_rows, dataset.image_rows):
        rows.append({
            "id": srow["id"],
            "features": srow["features"],
            "label": srow["label"],
            "tensor": cnn.forward(irow["image"], upto=layer),
        })
    return rows


@pytest.fixture(scope="module")
def mini_actuals():
    out = {}
    for model in ("alexnet", "vgg16", "resnet50"):
        rows = _materialize_rows(model)
        partition = Partition.from_rows(0, rows)
        deserialized = estimate_rows_bytes(rows)
        serialized = len(partition.serialized_blob())
        # The same Eq. 16 arithmetic, at mini dims with alpha = 2.
        cnn = build_model(model, profile="mini")
        dim = int(np.prod(
            cnn.output_shape_of(cnn.feature_layers[0])
        ))
        ds = DatasetStats(len(rows), 130, 32 * 32 * 3 * 4)
        estimate = int(
            2.0 * len(rows) * (8 + 8 + 4 * dim)
            + ds.structured_table_bytes()
        )
        out[model] = {
            "estimate": estimate,
            "deserialized": deserialized,
            "serialized": serialized,
        }
    return out


def test_fig15_tables(paper_estimates, mini_actuals, benchmark):
    benchmark(lambda: _materialize_rows("alexnet", 16))
    rows = [
        [model,
         f"{est['eager'] / GB:.2f}",
         f"{est['staged'] / GB:.2f}"]
        for model, est in paper_estimates.items()
    ]
    print_table(
        "Figure 15 — estimated largest intermediate (GB), Foods/1X",
        ["CNN", "AaT (Eager)", "Staged"], rows,
    )
    rows = [
        [model, a["estimate"], a["deserialized"], a["serialized"]]
        for model, a in mini_actuals.items()
    ]
    print_table(
        "Figure 15 (mini-scale validation) — bytes",
        ["CNN", "Eq.16 estimate", "actual deser.", "actual ser."], rows,
    )


def test_estimate_upper_bounds_actual(mini_actuals):
    for model, a in mini_actuals.items():
        assert a["estimate"] >= a["deserialized"], model


def test_estimate_margin_is_reasonable(mini_actuals):
    """Safe but not absurd: within ~4x of the actual."""
    for model, a in mini_actuals.items():
        assert a["estimate"] < 4 * a["deserialized"], model


def test_serialized_smaller_than_deserialized(mini_actuals):
    for model, a in mini_actuals.items():
        assert a["serialized"] < a["deserialized"], model


def test_eager_at_least_staged(paper_estimates):
    for model, est in paper_estimates.items():
        assert est["eager"] >= est["staged"], model


def test_resnet_has_largest_intermediates(paper_estimates):
    staged = {m: est["staged"] for m, est in paper_estimates.items()}
    assert max(staged, key=staged.get) == "resnet50"


def test_paper_scale_magnitudes(paper_estimates):
    """Figure 15 shows ResNet50/1X intermediates in the tens of GB and
    VGG16's under 1 GB (fc layers only)."""
    assert paper_estimates["resnet50"]["staged"] > 20 * GB
    assert paper_estimates["vgg16"]["staged"] < 3 * GB
