"""Physical execution backends for the wave-based task engine.

The scheduler in :mod:`repro.dataflow.executor` decides *what* runs —
which partitions form a wave, who retries, who gets blacklisted. A
:class:`Backend` decides *how* one wave's tasks actually execute:

- :class:`SerialBackend` (the default) runs the wave's tasks
  sequentially in-process, exactly as the engine always has. Memory is
  still *accounted* as if ``cpu`` tasks run concurrently.
- :class:`ProcessPoolBackend` runs each wave task in its own forked OS
  process, so a wave of ``cpu`` tasks genuinely occupies ``cpu`` cores
  and the ``cpu`` knob (the one Algorithm 1 exists to pick) finally
  moves wall-clock time. Results travel back through POSIX shared
  memory as VCB1 single-buffer encodings
  (:meth:`~repro.dataflow.columnar.ColumnarBlock.to_buffer`), so image
  tensors are never pickled; a dead child — real ``SIGKILL`` included —
  surfaces as a genuine :class:`~repro.exceptions.WorkerLost` and flows
  through the existing lineage/retry/blacklist machinery unchanged.

Both backends expose one hook, :meth:`Backend.run_wave`, with the
scheduler's full wave context; everything above the wave (regrouping,
failover, commit barriers) is backend-agnostic.

Fault-injection semantics are preserved exactly: the process backend
screens ``injector.on_task_start`` in the *parent*, in wave order,
before forking — injected crashes, OOMs, stragglers, and simulated
worker losses fire at the same points with the same seeded RNG draws
as the serial engine, which is what keeps recovered outputs
bit-identical across backends. The one genuinely new fault kind,
``worker-kill`` (:func:`repro.faults.plan.FaultPlan.worker_kill`),
SIGKILLs the real child process — at fork (``phase="start"``) or after
it created its shared-memory segment but before the payload transfer
completed (``phase="transfer"``), the crash-mid-transfer case the
leak tests cover.

Shared-memory lifecycle: every segment name is drawn from a
per-backend prefix (``vista<pid>x<seq>``) assigned by the parent
*before* forking, so the parent can always unlink a segment whose
child died at any point. Segments are unlinked as each result is
copied out, and a wave-level cleanup sweep runs on every exit path;
:meth:`ProcessPoolBackend.close` and :func:`orphaned_segments` exist
so tests can assert nothing leaked.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct

from repro.dataflow.columnar import ColumnarBlock
from repro.exceptions import TaskFailure, WorkerLost, WorkloadCrash
from repro.metrics import NULL_METRICS
from repro.trace import NULL_TRACER

#: Directory POSIX shared memory appears under on Linux; the leak
#: tests scan it for orphaned ``vista*`` segments.
SHM_DIR = "/dev/shm"

_META_KILLED = "transfer-kill"


class Backend:
    """Protocol for one wave's physical execution.

    ``run_wave`` receives the scheduler's full wave context and returns
    the ``(position, result)`` pairs that succeeded; transient failures
    go on ``retry_next`` via :func:`_handle_task_failure` and
    :class:`~repro.exceptions.WorkerLost` propagates to the caller,
    which discards the wave.
    """

    name = "abstract"

    def run_wave(self, context, worker, wave, task_fn, region, charge_fn,
                 what, attempts, retry_next, policy, injector, recovery,
                 clock):
        raise NotImplementedError

    def close(self):
        """Release any backend-held resources (idempotent)."""

    def __repr__(self):
        return f"<{type(self).__name__}>"


class SerialBackend(Backend):
    """The in-process engine: tasks run sequentially, deterministic
    by construction, memory accounted as if ``cpu`` ran concurrently."""

    name = "serial"

    def run_wave(self, context, worker, wave, task_fn, region, charge_fn,
                 what, attempts, retry_next, policy, injector, recovery,
                 clock):
        charged = 0
        wave_results = []
        tracer = getattr(context, "tracer", NULL_TRACER)
        metrics = getattr(context, "metrics", NULL_METRICS)
        # resolved once per wave: the per-task loop below is the hot path
        tasks_counter = metrics.counter(
            "tasks_total", worker=f"w{worker.node_id}"
        )
        try:
            for position, partition in wave:
                attempt = attempts[partition.index] = (
                    attempts[partition.index] + 1
                )
                try:
                    if injector is not None:
                        injector.on_task_start(
                            what=what, partition_index=partition.index,
                            worker_id=worker.node_id, attempt=attempt,
                        )
                    result = task_fn(partition)
                    worker.tasks_run += 1
                    tracer.add("tasks")
                    tasks_counter.inc()
                    if charge_fn is not None:
                        nbytes = charge_fn(partition, result)
                        # count before charging: charge() increments used
                        # before raising, so the finally block must
                        # release it either way
                        charged += nbytes
                        tracer.add("charged_bytes", nbytes)
                        worker.accountant.charge(region, nbytes, what=what)
                except WorkerLost:
                    raise
                except Exception as exc:
                    _handle_task_failure(
                        context, worker, position, partition, attempt, exc,
                        retry_next, policy, recovery, clock, what,
                    )
                else:
                    wave_results.append((position, result))
        finally:
            worker.accountant.release(region, charged)
        return wave_results


class _Child:
    """Parent-side bookkeeping for one forked wave task."""

    __slots__ = ("position", "partition", "attempt", "pid", "read_fd",
                 "shm_name", "kill_phase", "reaped")

    def __init__(self, position, partition, attempt, pid, read_fd,
                 shm_name, kill_phase):
        self.position = position
        self.partition = partition
        self.attempt = attempt
        self.pid = pid
        self.read_fd = read_fd
        self.shm_name = shm_name
        self.kill_phase = kill_phase
        self.reaped = False


class ProcessPoolBackend(Backend):
    """One forked OS process per wave task, results via shared memory.

    Protocol per task (parent assigns the segment name pre-fork):

    1. parent screens fault injection (wave order, parent RNG), then
       forks; the child inherits ``task_fn`` and its partition — no
       closure pickling, ever;
    2. child runs the task, encodes the result (``ColumnarBlock`` →
       VCB1 single buffer, anything else → pickle), creates the
       named ``SharedMemory`` segment, sends a 1-byte handshake,
       waits for the parent's ack, copies the payload in, then ships
       a small pickled meta frame (segment size, encoding kind,
       metric counter deltas, per-op timer samples) down its pipe and
       ``os._exit(0)``s — no atexit, no inherited test harness;
    3. parent collects in wave order: a child that died (killed,
       crashed, torn pipe) raises :class:`WorkerLost` for the wave;
       shipped task exceptions re-enter the normal retry path; results
       are copied out of the segment (then unlinked immediately) and
       charged to the worker's region exactly as the serial engine
       charges them.

    Counter deltas and op-timer samples recorded by the child merge
    back into the *driver's* registries at collect time, so metrics
    and traces look the same whichever backend ran the wave.
    """

    name = "process"

    def __init__(self):
        self._seq = 0
        self.prefix = f"vista{os.getpid()}x"
        self._live_segments = set()
        self._tracker_ready = False

    # ------------------------------------------------------------------
    def _next_name(self):
        self._seq += 1
        return f"{self.prefix}{self._seq}"

    def _ensure_tracker(self):
        """Start the resource tracker before the first fork so every
        child shares the parent's tracker process (their segment
        registrations collapse into one set entry the parent's unlink
        later clears — no leak warnings at shutdown)."""
        if not self._tracker_ready:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            self._tracker_ready = True

    def live_segments(self):
        """Names of segments this backend may still own (normally
        empty between waves)."""
        return set(self._live_segments)

    def close(self):
        """Unlink any segment still tracked (idempotent sweep)."""
        for name in list(self._live_segments):
            self._unlink_segment(name)

    # ------------------------------------------------------------------
    def run_wave(self, context, worker, wave, task_fn, region, charge_fn,
                 what, attempts, retry_next, policy, injector, recovery,
                 clock):
        self._ensure_tracker()
        charged = 0
        wave_results = []
        tracer = getattr(context, "tracer", NULL_TRACER)
        metrics = getattr(context, "metrics", NULL_METRICS)
        ledger = getattr(context, "ledger", None)
        ledger_on = ledger is not None and ledger.enabled
        tasks_counter = metrics.counter(
            "tasks_total", worker=f"w{worker.node_id}"
        )
        children = []
        try:
            # Phase 1 — screen injection and fork, in wave order. All
            # surviving tasks run concurrently once forked.
            for position, partition in wave:
                attempt = attempts[partition.index] = (
                    attempts[partition.index] + 1
                )
                try:
                    if injector is not None:
                        injector.on_task_start(
                            what=what, partition_index=partition.index,
                            worker_id=worker.node_id, attempt=attempt,
                        )
                except WorkerLost:
                    raise
                except Exception as exc:
                    _handle_task_failure(
                        context, worker, position, partition, attempt, exc,
                        retry_next, policy, recovery, clock, what,
                    )
                    continue
                kill_phase = None
                if injector is not None:
                    kill_phase = injector.on_task_fork(
                        what=what, partition_index=partition.index,
                        worker_id=worker.node_id, attempt=attempt,
                    )
                child = self._fork_task(
                    context, position, partition, attempt, task_fn,
                    kill_phase,
                )
                children.append(child)
                if ledger_on:
                    # The parent emits on the child's behalf: the
                    # forked process inherits the ledger fd but its
                    # emit() is an owner-pid-guarded no-op.
                    ledger.emit("task_fork", pid=child.pid,
                                partition=partition.index,
                                attempt=attempt, what=what)
            # Phase 2 — collect in wave order; charges mirror the
            # serial engine's and are released when the wave ends.
            for child in children:
                try:
                    result = self._collect(context, child, worker)
                    worker.tasks_run += 1
                    tracer.add("tasks")
                    tasks_counter.inc()
                    if charge_fn is not None:
                        nbytes = charge_fn(child.partition, result)
                        charged += nbytes
                        tracer.add("charged_bytes", nbytes)
                        worker.accountant.charge(region, nbytes, what=what)
                except WorkerLost:
                    if ledger_on:
                        ledger.emit("task_collect", pid=child.pid,
                                    partition=child.partition.index,
                                    status="worker-lost")
                    raise
                except Exception as exc:
                    if ledger_on:
                        ledger.emit("task_collect", pid=child.pid,
                                    partition=child.partition.index,
                                    status=f"error:{type(exc).__name__}")
                    _handle_task_failure(
                        context, worker, child.position, child.partition,
                        child.attempt, exc, retry_next, policy, recovery,
                        clock, what,
                    )
                else:
                    if ledger_on:
                        ledger.emit("task_collect", pid=child.pid,
                                    partition=child.partition.index,
                                    status="ok")
                    wave_results.append((child.position, result))
        finally:
            worker.accountant.release(region, charged)
            self._cleanup_wave(children)
        return wave_results

    # ------------------------------------------------------------------
    # fork side
    # ------------------------------------------------------------------
    def _fork_task(self, context, position, partition, attempt, task_fn,
                   kill_phase):
        shm_name = self._next_name()
        meta_r, meta_w = os.pipe()
        ack_r, ack_w = os.pipe()
        self._live_segments.add(shm_name)
        pid = os.fork()
        if pid == 0:
            # Child: never returns. os._exit keeps pytest/atexit
            # machinery inherited over fork from ever running here.
            code = 1
            try:
                os.close(meta_r)
                os.close(ack_w)
                _child_main(meta_w, ack_r, shm_name, task_fn, partition,
                            context)
                code = 0
            except BaseException:
                pass
            finally:
                os._exit(code)
        os.close(meta_w)
        os.close(ack_r)
        if kill_phase == "start":
            os.kill(pid, signal.SIGKILL)
            os.close(ack_w)
        elif kill_phase == "transfer":
            # The ack is withheld: the child parks after creating its
            # segment and dies there — deterministically mid-transfer.
            pass
        else:
            os.write(ack_w, b"g")
            os.close(ack_w)
            ack_w = -1
        return _Child(position, partition, attempt, pid, meta_r, shm_name,
                      "ack:%d" % ack_w if kill_phase == "transfer"
                      else kill_phase)

    # ------------------------------------------------------------------
    # collect side
    # ------------------------------------------------------------------
    def _collect(self, context, child, worker):
        handshake = _read_exact(child.read_fd, 1)
        if child.kill_phase and child.kill_phase.startswith("ack:"):
            # crash-mid-transfer: the segment exists (handshake b"S"),
            # the payload never lands; the withheld ack fd is closed
            # after the kill so nothing dangles.
            os.kill(child.pid, signal.SIGKILL)
            os.close(int(child.kill_phase.split(":", 1)[1]))
        meta = None
        if handshake in (b"S", b"E"):
            frame = _read_exact(child.read_fd, 4)
            if len(frame) == 4:
                (length,) = struct.unpack("<I", frame)
                payload = _read_exact(child.read_fd, length)
                if len(payload) == length:
                    try:
                        meta = pickle.loads(payload)
                    except Exception:
                        meta = None
        os.close(child.read_fd)
        child.read_fd = -1
        _, status = os.waitpid(child.pid, 0)
        child.reaped = True
        code = os.waitstatus_to_exitcode(status)
        if meta is None or code != 0:
            self._unlink_segment(child.shm_name)
            raise WorkerLost(
                f"worker process {child.pid} died "
                f"({_describe_exit(code)}) running partition "
                f"{child.partition.index}",
                worker_id=worker.node_id,
            )
        self._merge_child_state(context, meta)
        if meta["status"] == "error":
            self._unlink_segment(child.shm_name)
            raise meta["exception"]
        data = self._read_segment(child.shm_name, meta["size"])
        if meta["kind"] == "block":
            return ColumnarBlock.from_buffer(data)
        return pickle.loads(data)

    def _read_segment(self, name, size):
        """Copy a child's payload out of its segment, then unlink it.
        The copy (``bytes``) is what zero-copy ``from_buffer`` views
        point into, so decoded arrays outlive the segment."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            data = bytes(shm.buf[:size])
        finally:
            shm.close()
        self._unlink_segment(name)
        return data

    def _unlink_segment(self, name):
        """Best-effort unlink; tolerates a segment the child never got
        to create (killed pre-creation)."""
        from multiprocessing import shared_memory

        self._live_segments.discard(name)
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def _cleanup_wave(self, children):
        """Exit-path sweep: kill and reap any child not yet collected,
        unlink every segment the wave assigned. Runs on success too
        (no-op by then) so no path can leak."""
        for child in children:
            if not child.reaped:
                try:
                    os.kill(child.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                try:
                    os.waitpid(child.pid, 0)
                except ChildProcessError:
                    pass
                child.reaped = True
            if child.read_fd >= 0:
                try:
                    os.close(child.read_fd)
                except OSError:
                    pass
                child.read_fd = -1
            if child.kill_phase and child.kill_phase.startswith("ack:"):
                try:
                    os.close(int(child.kill_phase.split(":", 1)[1]))
                except OSError:
                    pass
                child.kill_phase = "transfer"
            self._unlink_segment(child.shm_name)

    # ------------------------------------------------------------------
    # child-state merge
    # ------------------------------------------------------------------
    def _merge_child_state(self, context, meta):
        """Fold the child's observability deltas into the driver's
        registries: counter totals advance by the child's increments,
        per-op timer samples extend the executor's deferred-flush dict
        (and replay onto the tracer's current span when tracing), and
        engine-level task counters (batched fallbacks) accumulate on
        the context."""
        metrics = getattr(context, "metrics", NULL_METRICS)
        if getattr(metrics, "enabled", False):
            for (name, label_pairs), delta in meta.get("counters", ()):
                if delta:
                    metrics.counter(name, **dict(label_pairs)).inc(delta)
        tracer = getattr(context, "tracer", NULL_TRACER)
        op_samples = getattr(context, "_op_samples", None)
        for op_name, seconds_list in meta.get("ops", {}).items():
            if tracer.enabled:
                for seconds in seconds_list:
                    tracer.record_op(op_name, seconds)
            if op_samples is not None:
                op_samples.setdefault(op_name, []).extend(seconds_list)
        task_counters = getattr(context, "task_counters", None)
        if task_counters is not None:
            for key, delta in meta.get("task_counters", {}).items():
                task_counters[key] = task_counters.get(key, 0) + delta


# ----------------------------------------------------------------------
# child process body
# ----------------------------------------------------------------------
def _counter_snapshot(metrics):
    """``{(name, label_pairs): total}`` for every counter in a live
    registry (empty for NULL_METRICS)."""
    if not getattr(metrics, "enabled", False):
        return {}
    return metrics.counter_totals()


def _child_main(meta_w, ack_r, shm_name, task_fn, partition, context):
    """Run one task inside the forked child and ship the outcome.

    The child inherits the whole driver state by fork; it snapshots the
    mutable observability surfaces first, runs ``task_fn``, and ships
    only the *deltas* — parent-side state is never written from here.
    """
    from multiprocessing import shared_memory

    metrics = getattr(context, "metrics", NULL_METRICS)
    before_counters = _counter_snapshot(metrics)
    op_samples = getattr(context, "_op_samples", None)
    before_ops = (
        {name: len(vals) for name, vals in op_samples.items()}
        if op_samples is not None else {}
    )
    task_counters = getattr(context, "task_counters", None)
    before_tasks = dict(task_counters) if task_counters is not None else {}

    meta = {"status": "ok", "size": 0, "kind": "pickle"}
    payload = b""
    try:
        result = task_fn(partition)
        if isinstance(result, ColumnarBlock):
            payload = result.to_buffer()
            meta["kind"] = "block"
        else:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        meta["size"] = len(payload)
    except BaseException as exc:
        meta = {"status": "error", "exception": _shippable(exc)}

    after_counters = _counter_snapshot(metrics)
    deltas = []
    for key, total in after_counters.items():
        delta = total - before_counters.get(key, 0)
        if delta:
            deltas.append((key, delta))
    meta["counters"] = deltas
    if op_samples is not None:
        meta["ops"] = {
            name: vals[before_ops.get(name, 0):]
            for name, vals in op_samples.items()
            if len(vals) > before_ops.get(name, 0)
        }
    if task_counters is not None:
        meta["task_counters"] = {
            key: value - before_tasks.get(key, 0)
            for key, value in task_counters.items()
            if value != before_tasks.get(key, 0)
        }

    if meta["status"] == "ok" and payload:
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(payload)), name=shm_name
        )
        os.write(meta_w, b"S")
        _read_exact(ack_r, 1)  # parked here when the parent withholds
        shm.buf[:len(payload)] = payload
        shm.close()
    else:
        os.write(meta_w, b"E" if meta["status"] == "error" else b"S")
        _read_exact(ack_r, 1)
    frame = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    os.write(meta_w, struct.pack("<I", len(frame)))
    os.write(meta_w, frame)
    os.close(meta_w)


def _shippable(exc):
    """An exception instance that survives the pickle trip; falls back
    to a summary RuntimeError for exotic unpicklable errors."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _read_exact(fd, length):
    """Read exactly ``length`` bytes; short data (EOF — the writer
    died) returns what arrived."""
    chunks = []
    remaining = length
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _describe_exit(code):
    if code < 0:
        try:
            return f"killed by {signal.Signals(-code).name}"
        except ValueError:
            return f"killed by signal {-code}"
    return f"exit status {code}"


# ----------------------------------------------------------------------
# shared failure handling (used by both backends and the scheduler)
# ----------------------------------------------------------------------
def _handle_task_failure(context, worker, position, partition, attempt, exc,
                         retry_next, policy, recovery, clock, what):
    """Decide a failed task's fate: retry from lineage, hand a
    deterministic memory crash to the supervisor, or raise a
    structured TaskFailure."""
    if getattr(exc, "transient", False) and attempt < policy.max_task_attempts:
        worker.task_failures += 1
        # keyed jitter: same-wave retries of different partitions
        # desynchronize instead of stampeding a shared store together
        backoff = policy.backoff_s(attempt, key=partition.index)
        clock.advance(backoff)
        getattr(context, "tracer", NULL_TRACER).add("task_retries")
        getattr(context, "metrics", NULL_METRICS).counter(
            "task_retries_total", worker=f"w{worker.node_id}",
            fault=type(exc).__name__,
        ).inc()
        _record(recovery, clock, "task_retry", table=what,
                partition=partition.index, worker=worker.node_id,
                attempt=attempt, fault=type(exc).__name__,
                backoff_s=backoff)
        if worker.task_failures == policy.max_failures_per_worker:
            _maybe_blacklist(context, worker, recovery, clock)
        retry_next.append((position, partition))
        return
    if isinstance(exc, WorkloadCrash):
        # Structural memory overflow (or a transient one out of retry
        # budget): typed for the degrade-and-retry supervisor.
        raise exc
    # ``from exc`` keeps the original traceback on __cause__; the log
    # entry mirrors the chain so post-mortems see *what* failed, not
    # just the structured wrapper.
    _record(recovery, clock, "task_failure", table=what,
            partition=partition.index, worker=worker.node_id,
            attempt=attempt, cause=type(exc).__name__, error=str(exc))
    raise TaskFailure(
        partition_index=partition.index, worker_id=worker.node_id,
        attempt=attempt, cause=exc,
    ) from exc


def _maybe_blacklist(context, worker, recovery, clock):
    """Blacklist a repeatedly failing worker — unless it is the last
    one standing, in which case the cluster limps on."""
    if worker.node_id in context.excluded_workers:
        return
    survivors = [
        w for w in context.live_workers() if w.node_id != worker.node_id
    ]
    if not survivors:
        _record(recovery, clock, "blacklist_suppressed",
                worker=worker.node_id, reason="last live worker")
        return
    context.blacklist_worker(worker.node_id)
    _record(recovery, clock, "blacklist", worker=worker.node_id,
            reason="max task failures")


def _record(recovery, clock, event, **fields):
    if recovery is not None:
        recovery.record(event, sim_time_s=clock.now, **fields)


#: The process-wide serial backend every context defaults to.
SERIAL_BACKEND = SerialBackend()

#: Name -> constructor for the CLI / context plumbing.
BACKENDS = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
}


def resolve_backend(backend):
    """Accept a :class:`Backend` instance, a name (``"serial"`` /
    ``"process"``), or None (→ the shared serial backend)."""
    if backend is None:
        return SERIAL_BACKEND
    if isinstance(backend, Backend):
        return backend
    try:
        cls = BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"backend must be one of {sorted(BACKENDS)} or a Backend "
            f"instance, got {backend!r}"
        ) from None
    return SERIAL_BACKEND if cls is SerialBackend else cls()


def orphaned_segments(prefix):
    """Shared-memory segment names under ``prefix`` still present in
    :data:`SHM_DIR` — the leak tests assert this is empty after
    success, crash, and resume alike. Returns [] on platforms without
    a /dev/shm."""
    if not os.path.isdir(SHM_DIR):
        return []
    return sorted(
        name for name in os.listdir(SHM_DIR) if name.startswith(prefix)
    )
