"""Data partitions with deserialized and serialized representations.

Section 4.2.3: the persistence format for in-memory intermediate data
is either *deserialized* (live objects; fast, large) or *serialized*
(compressed bytes; smaller, pays translation CPU). Partitions support
both, report their size under each, and count how many times they were
converted so benchmarks can attribute serialization overhead.
"""

from __future__ import annotations

import pickle
import zlib

from repro.dataflow.record import estimate_rows_bytes

DESERIALIZED = "deserialized"
SERIALIZED = "serialized"


class Partition:
    """One partition of a distributed table.

    Holds either live rows, a compressed blob, or both (a blob with a
    decoded cache). ``rows()`` always returns live rows, converting if
    needed.
    """

    def __init__(self, index, rows=None, blob=None):
        if rows is None and blob is None:
            raise ValueError("a partition needs rows or a serialized blob")
        self.index = index
        self._rows = list(rows) if rows is not None else None
        self._blob = blob
        self._deser_bytes = None
        self.serialize_count = 0
        self.deserialize_count = 0

    @classmethod
    def from_rows(cls, index, rows):
        return cls(index, rows=rows)

    def __len__(self):
        return len(self.rows())

    def rows(self):
        if self._rows is None:
            self._rows = pickle.loads(zlib.decompress(self._blob))
            self.deserialize_count += 1
        return self._rows

    def serialized_blob(self):
        if self._blob is None:
            self._blob = zlib.compress(
                pickle.dumps(self._rows, protocol=pickle.HIGHEST_PROTOCOL), 1
            )
            self.serialize_count += 1
        return self._blob

    def drop_rows(self):
        """Keep only the serialized representation (after ensuring it
        exists); models storing a partition in serialized format."""
        self.serialized_blob()
        self._rows = None
        self._deser_bytes = None

    def drop_blob(self):
        """Keep only live rows."""
        self.rows()
        self._blob = None

    def memory_bytes(self, persistence=DESERIALIZED):
        """In-memory footprint under a persistence format."""
        if persistence == SERIALIZED:
            return len(self.serialized_blob())
        if self._deser_bytes is None:
            self._deser_bytes = estimate_rows_bytes(self.rows())
        return self._deser_bytes

    def invalidate_size(self):
        self._deser_bytes = None

    def __repr__(self):
        state = []
        if self._rows is not None:
            state.append(f"{len(self._rows)} rows")
        if self._blob is not None:
            state.append(f"{len(self._blob)}B blob")
        return f"<Partition {self.index}: {', '.join(state)}>"
