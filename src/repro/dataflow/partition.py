"""Data partitions with deserialized and serialized representations.

Section 4.2.3: the persistence format for in-memory intermediate data
is either *deserialized* (live objects; fast, large) or *serialized*
(compressed bytes; smaller, pays translation CPU). Partitions support
both, report their size under each, and count how many times they were
converted so benchmarks can attribute serialization overhead.

The deserialized payload is columnar by default: a
:class:`~repro.dataflow.columnar.ColumnarBlock` holding one contiguous
array per column, which batched inference, pooling, and vectorized
joins consume zero-copy, and whose ``memory_bytes`` is *exact* (real
buffer sizes). Legacy row-list payloads remain supported — rows that
cannot pack into one block (non-uniform schemas) keep the old layout
and the Appendix A per-record size heuristic. ``rows()`` always
returns live row dicts, materializing a lazy row view of the block
when needed, so per-row UDFs never notice the difference.

Serialization follows the layout: a columnar partition encodes as one
compressed single-buffer blob (one header + raw column buffers) instead
of N pickles; row partitions keep the pickle blob. Deserialization
sniffs the wire magic, so either blob kind round-trips.
"""

from __future__ import annotations

import pickle
import zlib

from repro.dataflow.columnar import (
    ColumnarBlock,
    NotColumnar,
    columnar_enabled,
    is_columnar_buffer,
)
from repro.dataflow.record import estimate_rows_bytes

DESERIALIZED = "deserialized"
SERIALIZED = "serialized"


class Partition:
    """One partition of a distributed table.

    Holds a columnar block, live rows, a compressed blob, or any mix
    (a blob with a decoded cache). ``rows()`` always returns live
    rows, converting if needed; ``block()`` returns the columnar
    payload (or None for legacy row partitions).
    """

    def __init__(self, index, rows=None, blob=None, block=None):
        if rows is None and blob is None and block is None:
            raise ValueError("a partition needs rows, a block, or a blob")
        self.index = index
        self._rows = list(rows) if rows is not None else None
        self._block = block
        self._blob = blob
        self._deser_bytes = None
        self.serialize_count = 0
        self.deserialize_count = 0

    @classmethod
    def from_rows(cls, index, rows):
        """Build from row dicts; packs them into a columnar block when
        the layout is enabled and the rows share one schema."""
        rows = list(rows)
        if columnar_enabled():
            try:
                return cls(index, block=ColumnarBlock.from_rows(rows))
            except NotColumnar:
                pass
        return cls(index, rows=rows)

    @classmethod
    def from_block(cls, index, block):
        return cls(index, block=block)

    def __len__(self):
        if self._block is not None:
            return self._block.num_rows
        if self._rows is not None:
            return len(self._rows)
        block = self.block()  # decodes the blob; avoids row views
        if block is not None:
            return block.num_rows
        return len(self.rows())

    @property
    def is_columnar(self):
        """True when a columnar payload is available (decoding the
        blob if that is all we hold)."""
        return self.block() is not None

    def block(self):
        """The columnar payload, or None for legacy row partitions.
        Decodes a columnar blob on demand (counted as one
        deserialization)."""
        if self._block is None and self._rows is None \
                and self._blob is not None:
            self._decode()
        return self._block

    def rows(self):
        """Live row dicts — a lazy row view of the columnar block, or
        the stored rows for legacy payloads."""
        if self._rows is None:
            if self._block is None:
                self._decode()
            if self._block is not None:
                self._rows = self._block.to_rows()
        return self._rows

    def _decode(self):
        raw = zlib.decompress(self._blob)
        if is_columnar_buffer(raw):
            self._block = ColumnarBlock.from_buffer(raw)
        else:
            self._rows = pickle.loads(raw)
        self.deserialize_count += 1

    def serialized_blob(self):
        """The compressed wire form: a single-buffer columnar encode
        (one header + raw column buffers) for columnar payloads, a
        pickle of the row list for legacy ones."""
        if self._blob is None:
            if self._block is not None:
                raw = self._block.to_buffer()
            else:
                raw = pickle.dumps(
                    self._rows, protocol=pickle.HIGHEST_PROTOCOL
                )
            self._blob = zlib.compress(raw, 1)
            self.serialize_count += 1
        return self._blob

    def drop_rows(self):
        """Keep only the serialized representation (after ensuring it
        exists); models storing a partition in serialized format."""
        self.serialized_blob()
        self._rows = None
        self._block = None
        self._deser_bytes = None

    def drop_blob(self):
        """Keep only the deserialized payload."""
        self.rows()
        self._blob = None

    def memory_bytes(self, persistence=DESERIALIZED):
        """In-memory footprint under a persistence format.

        Serialized is the compressed blob length. Deserialized is
        *exact* for columnar payloads (real buffer sizes via
        :attr:`ColumnarBlock.nbytes`); legacy row payloads keep the
        Appendix A Tungsten-style per-record estimate.
        """
        if persistence == SERIALIZED:
            return len(self.serialized_blob())
        if self._deser_bytes is None:
            block = self.block()
            if block is not None:
                self._deser_bytes = block.nbytes
            else:
                self._deser_bytes = estimate_rows_bytes(self.rows())
        return self._deser_bytes

    def invalidate_size(self):
        self._deser_bytes = None

    def __repr__(self):
        state = []
        if self._block is not None:
            state.append(f"{self._block.num_rows} rows (columnar)")
        elif self._rows is not None:
            state.append(f"{len(self._rows)} rows")
        if self._blob is not None:
            state.append(f"{len(self._blob)}B blob")
        return f"<Partition {self.index}: {', '.join(state)}>"
