"""DistributedTable: the engine's table abstraction.

A table is a list of :class:`Partition` objects placed on the simulated
workers of a :class:`ClusterContext`. Operators are eager (each returns
a fully materialized new table), which keeps memory accounting exact —
the workload the paper studies materializes its intermediates anyway.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.columnar import ColumnarBlock
from repro.dataflow.partition import DESERIALIZED, Partition
from repro.dataflow.record import estimate_record_bytes, estimate_rows_bytes
from repro.dataflow.executor import run_partition_tasks
from repro.memory.model import Region
from repro.metrics import NULL_METRICS
from repro.trace import NULL_TRACER


class DistributedTable:
    """A partitioned table of dict records with a designated key field.

    ``lineage`` records how the table was derived — ``(op, *parent
    table names)`` — mirroring RDD lineage: because operators are
    eager, a parent's partitions stay materialized, so a failed task
    over this table is recomputed by re-running the op's UDF on the
    parent partition (see ``repro.dataflow.executor``).
    """

    def __init__(self, context, partitions, name=None, key="id",
                 lineage=None):
        self.context = context
        self.partitions = list(partitions)
        self.name = name or context.next_table_name()
        self.key = key
        self.lineage = tuple(lineage) if lineage else ("source",)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, context, rows, num_partitions=None, name=None,
                  key="id"):
        """Build a table by chunking ``rows`` evenly into partitions."""
        rows = list(rows)
        if num_partitions is None:
            num_partitions = max(1, context.total_cores())
        num_partitions = max(1, min(int(num_partitions), max(1, len(rows))))
        chunks = [[] for _ in range(num_partitions)]
        for position, row in enumerate(rows):
            chunks[position % num_partitions].append(row)
        partitions = [
            Partition.from_rows(index, chunk)
            for index, chunk in enumerate(chunks)
        ]
        return cls(context, partitions, name=name, key=key)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def num_partitions(self):
        return len(self.partitions)

    def num_rows(self):
        return sum(len(p) for p in self.partitions)

    def memory_bytes(self, persistence=DESERIALIZED):
        return sum(p.memory_bytes(persistence) for p in self.partitions)

    def max_partition_bytes(self, persistence=DESERIALIZED):
        if not self.partitions:
            return 0
        return max(p.memory_bytes(persistence) for p in self.partitions)

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def map_rows(self, fn, name=None, user_alpha=1.0):
        """Apply ``fn(row) -> row`` per record (a per-row UDF).

        Output rows of each concurrently running task are charged to
        the worker's User Memory (times ``user_alpha``, the paper's
        JVM-object fudge factor) for the duration of the task wave.
        """
        return self.map_partitions(
            lambda rows: [fn(row) for row in rows], name=name,
            user_alpha=user_alpha,
        )

    def map_partitions(self, fn, name=None, user_alpha=1.0):
        """Apply ``fn(rows) -> rows`` per partition (a MapPartitions
        UDF), with wave-based User Memory accounting."""
        def task(partition):
            return list(fn(partition.rows()))

        def charge(partition, out_rows):
            return int(user_alpha * estimate_rows_bytes(out_rows))

        tracer = getattr(self.context, "tracer", NULL_TRACER)
        with tracer.span(f"map:{name or self.name}", table=self.name) as sp:
            outputs = run_partition_tasks(
                self.context, self.partitions, task, region=Region.USER,
                charge_fn=charge, what=f"map over {self.name}",
            )
            partitions = [
                Partition.from_rows(p.index, rows)
                for p, rows in zip(self.partitions, outputs)
            ]
            result = DistributedTable(
                self.context, partitions, name=name, key=self.key,
                lineage=("map", self.name),
            )
            if tracer.enabled:
                sp.set("out_table", result.name)
                sp.add("rows_in", self.num_rows())
                sp.add("rows_out", result.num_rows())
                sp.add("bytes_out", result.memory_bytes())
        return result

    def map_blocks(self, block_fn, row_fn=None, name=None, user_alpha=1.0,
                   checkpoint=None):
        """Apply ``block_fn(block) -> block`` per columnar partition —
        the zero-copy batched path: the UDF reads the stored column
        arrays in place and returns a new
        :class:`~repro.dataflow.columnar.ColumnarBlock`.

        Legacy row partitions route through ``row_fn(rows) -> rows``
        when given (otherwise their rows are packed into a block
        first). Wave-based User Memory accounting matches
        :meth:`map_partitions`, but columnar outputs are charged their
        *exact* buffer bytes instead of the per-record estimate.

        ``checkpoint=(store, stage_id)`` makes the stage durable:
        checksum-valid partitions already in the
        :class:`~repro.recovery.store.CheckpointStore` are restored
        (skipping their tasks entirely — the resume path), every
        freshly committed wave's outputs are persisted as they land,
        and the stage is marked complete at the end.
        """
        store, stage_id = checkpoint if checkpoint is not None else (None, None)

        def task(partition):
            block = partition.block()
            if block is not None:
                return block_fn(block)
            if row_fn is not None:
                return list(row_fn(partition.rows()))
            return block_fn(ColumnarBlock.from_rows(partition.rows()))

        def charge(partition, out):
            if isinstance(out, ColumnarBlock):
                return int(user_alpha * out.nbytes)
            return int(user_alpha * estimate_rows_bytes(out))

        def to_partition(index, out):
            if isinstance(out, ColumnarBlock):
                return Partition.from_block(index, out)
            return Partition.from_rows(index, out)

        recovery = getattr(self.context, "recovery_log", None)
        tracer = getattr(self.context, "tracer", NULL_TRACER)
        with tracer.span(f"map:{name or self.name}", table=self.name) as sp:
            restored = {}
            if store is not None:
                restored = store.restore_stage(stage_id,
                                               recovery_log=recovery)
                if restored and recovery is not None:
                    recovery.record(
                        "checkpoint_restore", stage=str(stage_id),
                        partitions=sorted(restored),
                    )
            pending = [
                p for p in self.partitions if p.index not in restored
            ]
            committed = {}

            def on_commit(partition, out):
                if partition.index in committed:
                    # The engine's commit barrier already guarantees
                    # exactly-once; this belt-and-braces guard keeps a
                    # future backend from ever double-writing a
                    # checkpoint partition.
                    return
                part = to_partition(partition.index, out)
                committed[partition.index] = part
                store.put_partition(stage_id, part)

            outputs = run_partition_tasks(
                self.context, pending, task, region=Region.USER,
                charge_fn=charge, what=f"map over {self.name}",
                on_commit=on_commit if store is not None else None,
            )
            computed = {
                p.index: committed.get(p.index) or to_partition(p.index, out)
                for p, out in zip(pending, outputs)
            }
            partitions = [
                restored.get(p.index) or computed[p.index]
                for p in self.partitions
            ]
            if store is not None:
                store.commit_stage(stage_id, lineage=("map", self.name))
            result = DistributedTable(
                self.context, partitions, name=name, key=self.key,
                lineage=("map", self.name),
            )
            if tracer.enabled:
                sp.set("out_table", result.name)
                sp.add("rows_in", self.num_rows())
                sp.add("rows_out", result.num_rows())
                sp.add("bytes_out", result.memory_bytes())
                if store is not None:
                    sp.add("restored_partitions", len(restored))
        return result

    def project(self, fields, name=None):
        """Keep only ``fields`` (the key is always kept)."""
        keep = list(dict.fromkeys([self.key, *fields]))

        def slim(row):
            return {field: row[field] for field in keep if field in row}

        return self.map_rows(slim, name=name)

    def filter_rows(self, predicate, name=None):
        return self.map_partitions(
            lambda rows: [row for row in rows if predicate(row)], name=name
        )

    def repartition_by_key(self, num_partitions, name=None):
        """Hash-partition rows on the key into ``num_partitions``
        shuffle blocks, metering the shuffled bytes on the context."""
        num_partitions = max(1, int(num_partitions))
        tracer = getattr(self.context, "tracer", NULL_TRACER)
        with tracer.span(f"shuffle:{self.name}", table=self.name) as sp:
            from repro.dataflow.columnar import NotColumnar

            try:
                partitions, shuffled, num_rows = self._shuffle_columnar(
                    num_partitions
                )
            except NotColumnar:   # mixed schemas across partitions
                partitions = None
            if partitions is None:
                partitions, shuffled, num_rows = self._shuffle_rows(
                    num_partitions
                )
            _meter_shuffle(self.context, shuffled)
            sp.add("rows", num_rows)
            sp.add("shuffle_bytes", shuffled)
            sp.add("partitions", num_partitions)
            return DistributedTable(
                self.context, partitions, name=name, key=self.key,
                lineage=("shuffle", self.name),
            )

    def _shuffle_columnar(self, num_partitions):
        """Vectorized hash partitioning: one modulo over each
        partition's key column and one fancy-index gather per bucket.
        Returns ``(None, 0, 0)`` when any partition is legacy rows or
        the key column is not integer-typed (``hash(i) == i`` for the
        non-negative integer keys this engine uses, so the bucket
        assignment is bit-identical to the row path's)."""
        per_bucket = [[] for _ in range(num_partitions)]
        shuffled = 0
        num_rows = 0
        for partition in self.partitions:
            block = partition.block()
            if block is None:
                return None, 0, 0
            if block.num_rows == 0:
                continue
            if not block.has_column(self.key) \
                    or not block.is_array(self.key):
                return None, 0, 0
            keys = block.column(self.key)
            if not np.issubdtype(keys.dtype, np.integer) \
                    or (keys.size and int(keys.min()) < 0):
                return None, 0, 0
            buckets = keys % num_partitions
            shuffled += block.nbytes
            num_rows += block.num_rows
            for bucket in np.unique(buckets):
                indices = np.nonzero(buckets == bucket)[0]
                per_bucket[int(bucket)].append(block.take(indices))
        partitions = [
            Partition.from_block(index, ColumnarBlock.concat(blocks))
            for index, blocks in enumerate(per_bucket)
        ]
        return partitions, shuffled, num_rows

    def _shuffle_rows(self, num_partitions):
        """Legacy per-row hash partitioning."""
        buckets = [[] for _ in range(num_partitions)]
        shuffled = 0
        for partition in self.partitions:
            for row in partition.rows():
                bucket = hash(row[self.key]) % num_partitions
                buckets[bucket].append(row)
                shuffled += estimate_record_bytes(row)
        partitions = [
            Partition.from_rows(index, bucket)
            for index, bucket in enumerate(buckets)
        ]
        return partitions, shuffled, sum(len(b) for b in buckets)

    def cache(self, persistence=DESERIALIZED):
        """Persist every partition in its worker's Storage region."""
        tracer = getattr(self.context, "tracer", NULL_TRACER)
        with tracer.span(f"cache:{self.name}", table=self.name,
                         persistence=persistence) as sp:
            for partition in self.partitions:
                if persistence != DESERIALIZED:
                    partition.drop_rows()
                worker = self.context.worker_for(partition.index)
                worker.storage.cache(
                    (self.name, partition.index), partition, persistence
                )
            if tracer.enabled:
                sp.add("bytes", self.memory_bytes(persistence))
                sp.add("partitions", self.num_partitions)
        return self

    def unpersist(self):
        tracer = getattr(self.context, "tracer", NULL_TRACER)
        tracer.event("unpersist", table=self.name)
        for partition in self.partitions:
            worker = self.context.worker_for(partition.index)
            worker.storage.evict((self.name, partition.index))
        return self

    def collect(self):
        """Gather all rows at the driver (charged to Driver memory —
        crash scenario (4) of Section 4.1)."""
        nbytes = self.memory_bytes()
        tracer = getattr(self.context, "tracer", NULL_TRACER)
        tracer.add("collect_bytes", nbytes)
        self.context.driver.charge(
            Region.DRIVER, nbytes, what=f"collect of {self.name}"
        )
        try:
            rows = []
            for partition in self.partitions:
                rows.extend(partition.rows())
            return rows
        finally:
            self.context.driver.release(Region.DRIVER, nbytes)

    def to_rows_sorted(self):
        """All rows ordered by key — handy for deterministic asserts."""
        return sorted(self.collect(), key=lambda row: row[self.key])

    def __repr__(self):
        return (
            f"<DistributedTable {self.name}: {self.num_rows()} rows in "
            f"{self.num_partitions} partitions>"
        )


def _meter_shuffle(context, nbytes):
    context.shuffle_bytes_total = getattr(
        context, "shuffle_bytes_total", 0
    ) + int(nbytes)
    getattr(context, "metrics", NULL_METRICS).counter(
        "shuffle_bytes_total"
    ).inc(int(nbytes))
