"""Record layout and size estimation (Appendix A, Figure 14).

Rows are plain dicts from field name to value. The estimator mirrors
Spark's Tungsten binary record format: a fixed 8-byte slot per field
(null-tracking bitmap folded into the first slot), with variable-length
fields (numpy arrays, TensorLists, strings, raw image bytes) storing an
8-byte offset+length header in their slot and the payload at the end
of the record.

Vista uses this arithmetic (Eq. 16) to bound intermediate table sizes,
and the storage manager uses it to account deserialized cache usage.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensorlist import TensorList

_FIXED_SLOT = 8
_VAR_HEADER = 8


def estimate_value_bytes(value):
    """Payload bytes of one variable-length value (0 for fixed-size)."""
    if value is None or isinstance(value, (bool, int, float, np.integer,
                                           np.floating)):
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, TensorList):
        # Each member tensor carries its own header inside the list.
        return value.nbytes() + _VAR_HEADER * len(value)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple)):
        return sum(_FIXED_SLOT + estimate_value_bytes(v) for v in value)
    raise TypeError(f"cannot estimate size of {type(value).__name__}")


def estimate_record_bytes(row):
    """Tungsten-style size of one record: null bitmap + one 8-byte slot
    per field + variable-length payloads."""
    size = _FIXED_SLOT  # null-tracking bitmap word
    for value in row.values():
        size += _FIXED_SLOT
        size += estimate_value_bytes(value)
    return size


def estimate_rows_bytes(rows):
    """Total Tungsten-style bytes of an iterable of records."""
    return sum(estimate_record_bytes(row) for row in rows)
