"""Cluster context: simulated workers, a driver, and their memory.

A :class:`ClusterContext` models the paper's experimental setup — N
worker nodes with a fixed core count and System Memory each, plus a
driver — inside one process. Partitions of a table are assigned to
workers by ``partition_index % num_nodes``, matching the round-robin
block placement both Spark and Ignite default to.
"""

from __future__ import annotations

from repro.memory.model import GB, MemoryAccountant
from repro.dataflow.storage import StorageManager
from repro.metrics import NULL_METRICS
from repro.observe.ledger import NULL_LEDGER
from repro.trace import NULL_TRACER


class Worker:
    """One simulated worker node."""

    def __init__(self, node_id, budget):
        self.node_id = node_id
        self.budget = budget
        self.accountant = MemoryAccountant(budget)
        self.storage = StorageManager(
            budget.storage_bytes, spill_enabled=budget.storage_elastic
        )
        self.tasks_run = 0
        self.task_failures = 0

    def __repr__(self):
        return f"<Worker {self.node_id}>"


class ClusterContext:
    """A simulated cluster of workers sharing one driver.

    Parameters
    ----------
    budget:
        The per-worker :class:`~repro.memory.model.MemoryBudget`
        (every node is homogeneous, as in the paper's testbed).
    num_nodes:
        Worker count.
    cores_per_node:
        Physical cores per node (``cpu_sys`` in Table 1A).
    cpu:
        Degree of parallelism actually used per worker (``cpu`` in
        Table 1B); defaults to ``cores_per_node``.
    exec_backend:
        Physical wave-execution backend: ``"serial"`` (default),
        ``"process"``, or a :class:`~repro.dataflow.backend.Backend`
        instance. Scheduling semantics are identical either way; the
        process backend actually parallelizes each wave across forked
        OS processes.
    """

    def __init__(self, budget, num_nodes=1, cores_per_node=8, cpu=None,
                 exec_backend=None):
        from repro.dataflow.backend import resolve_backend

        self.num_nodes = int(num_nodes)
        self.cores_per_node = int(cores_per_node)
        self.cpu = int(cpu) if cpu is not None else self.cores_per_node
        self.exec_backend = resolve_backend(exec_backend)
        self.workers = [Worker(i, budget) for i in range(self.num_nodes)]
        self.driver = MemoryAccountant(budget)
        self._next_table_id = 0
        #: Node ids of lost/blacklisted workers; partitions that would
        #: land on an excluded worker fail over deterministically to
        #: the next live node in ring order.
        self.excluded_workers = set()
        #: Structured tracer shared by every layer running on this
        #: context; NULL_TRACER (no-op) unless attach_tracer is called.
        self.tracer = NULL_TRACER
        #: Time-series metrics registry shared by every layer running
        #: on this context; NULL_METRICS unless attach_metrics is
        #: called.
        self.metrics = NULL_METRICS
        #: Streaming run ledger shared by every layer running on this
        #: context; NULL_LEDGER unless attach_ledger is called.
        self.ledger = NULL_LEDGER

    def attach_tracer(self, tracer):
        """Share a :class:`~repro.trace.Tracer` with the dataflow
        engine, the storage managers, and (via the shared simulated
        clock) the fault/recovery layer."""
        self.tracer = tracer
        for worker in self.workers:
            worker.storage.tracer = tracer
        injector = getattr(self, "fault_injector", None)
        if injector is not None and tracer.enabled and tracer.clock is None:
            tracer.clock = injector.clock
        return tracer

    def attach_metrics(self, metrics):
        """Share a :class:`~repro.metrics.MetricsRegistry` with every
        worker's memory accountant and storage manager, the driver's
        accountant, and (via the shared simulated clock) the
        fault/recovery layer — after which the context records
        per-region occupancy timelines, storage hit/miss/spill series,
        and task/wave occupancy."""
        self.metrics = metrics
        for worker in self.workers:
            worker.accountant.attach_metrics(
                metrics, owner=f"w{worker.node_id}"
            )
            worker.storage.attach_metrics(
                metrics, owner=f"w{worker.node_id}"
            )
        self.driver.attach_metrics(metrics, owner="driver")
        injector = getattr(self, "fault_injector", None)
        if injector is not None and metrics.enabled and metrics.clock is None:
            metrics.clock = injector.clock
        return metrics

    def attach_ledger(self, ledger):
        """Share a :class:`~repro.observe.ledger.RunLedger` with every
        layer running on this context: the tracer streams span
        open/close events into it, the metrics registry streams
        throttled samples, and the wave scheduler/backends emit
        stage/wave/task lifecycle. Attach *after* ``attach_tracer`` /
        ``attach_metrics`` so the sinks land on the live instances."""
        self.ledger = ledger
        if ledger.enabled:
            if self.tracer.enabled:
                self.tracer.sink = ledger
            if self.metrics.enabled:
                self.metrics.sink = ledger
            injector = getattr(self, "fault_injector", None)
            if injector is not None and ledger.clock is None:
                ledger.clock = injector.clock
            log = getattr(self, "recovery_log", None)
            if log is not None:
                log.sink = ledger
        return ledger

    def worker_for(self, partition_index):
        if not self.excluded_workers:
            return self.workers[partition_index % self.num_nodes]
        for offset in range(self.num_nodes):
            worker = self.workers[(partition_index + offset) % self.num_nodes]
            if worker.node_id not in self.excluded_workers:
                return worker
        from repro.exceptions import ClusterExhausted

        raise ClusterExhausted(
            f"all {self.num_nodes} workers are lost or blacklisted; "
            "provision replacement machines"
        )

    def blacklist_worker(self, node_id):
        """Exclude a worker from task placement (worker loss or
        repeated task failures)."""
        node_id = int(node_id)
        if node_id not in self.excluded_workers:
            self.metrics.counter(
                "blacklists_total", worker=f"w{node_id}"
            ).inc()
        self.excluded_workers.add(node_id)

    def live_workers(self):
        return [
            w for w in self.workers
            if w.node_id not in self.excluded_workers
        ]

    def total_cores(self):
        return self.cpu * self.num_nodes

    def next_table_name(self, prefix="table"):
        self._next_table_id += 1
        return f"{prefix}_{self._next_table_id}"

    def total_spilled_bytes(self):
        return sum(w.storage.spilled_bytes_total for w in self.workers)

    def total_spill_read_bytes(self):
        return sum(w.storage.spill_read_bytes_total for w in self.workers)

    def reset_metrics(self):
        # Metric counters only: a lost worker (excluded_workers) stays
        # lost across runs on the same context.
        for worker in self.workers:
            worker.storage.spilled_bytes_total = 0
            worker.storage.spill_read_bytes_total = 0
            worker.storage.eviction_count = 0
            worker.storage.hit_count = 0
            worker.storage.miss_count = 0
            worker.tasks_run = 0
            worker.task_failures = 0
            worker.accountant.reset_peaks()

    def __repr__(self):
        return (
            f"<ClusterContext {self.num_nodes} nodes x "
            f"{self.cores_per_node} cores (cpu={self.cpu})>"
        )


def local_context(system_gb=4, heap_gb=2, num_nodes=2, cores_per_node=4,
                  cpu=None, backend="spark", storage_gb=None,
                  exec_backend=None):
    """Convenience constructor for small test/example clusters.

    ``backend`` picks the memory-budget *model* (spark/ignite);
    ``exec_backend`` picks the physical wave executor (serial/process)
    — orthogonal knobs with unfortunately similar names, kept for
    compatibility with the paper's terminology.
    """
    from repro.memory.spark import spark_memory_budget
    from repro.memory.ignite import ignite_memory_budget

    system = int(system_gb * GB)
    heap = int(heap_gb * GB)
    if backend == "spark":
        budget = spark_memory_budget(
            system, heap, os_reserved_bytes=int(0.25 * GB)
        )
    elif backend == "ignite":
        storage = int((storage_gb if storage_gb is not None else 1) * GB)
        budget = ignite_memory_budget(
            system, heap, storage, os_reserved_bytes=int(0.25 * GB)
        )
    else:
        raise ValueError(f"backend must be 'spark' or 'ignite', got {backend!r}")
    return ClusterContext(
        budget, num_nodes=num_nodes, cores_per_node=cores_per_node, cpu=cpu,
        exec_backend=exec_backend,
    )
