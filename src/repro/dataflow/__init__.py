"""A miniature parallel-dataflow (PD) engine.

This package is the reproduction's substitute for Spark/Ignite: it
provides partitioned tables over key-value records, map /
mapPartitions / project operators, shuffle-hash and broadcast joins,
serialized and deserialized in-memory persistence with LRU eviction
and disk spill, and per-worker memory accounting wired to the
Section 4.1 crash scenarios.

It deliberately implements only the PD abstractions the paper's plans
and optimizer rely on (Figure 2A's left column) — structured data
querying, distributed memory management, partitioning — in a single
process with *simulated* workers, which keeps execution deterministic
while preserving the memory-use behaviour Vista optimizes.
"""

from repro.dataflow.context import ClusterContext, Worker
from repro.dataflow.joins import broadcast_join, shuffle_hash_join
from repro.dataflow.partition import Partition
from repro.dataflow.record import estimate_record_bytes
from repro.dataflow.storage import StorageManager
from repro.dataflow.table import DistributedTable

__all__ = [
    "ClusterContext",
    "DistributedTable",
    "Partition",
    "StorageManager",
    "Worker",
    "broadcast_join",
    "estimate_record_bytes",
    "shuffle_hash_join",
]
