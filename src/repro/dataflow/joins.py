"""Physical join operators (Section 4.2.3).

Two distributed key-key equi-join implementations:

- **shuffle-hash join**: both tables are hash-partitioned on the key
  into the same number of shuffle blocks; co-located blocks are joined
  with a local hash join. The build side's hash table is charged to
  Core Memory per wave — an oversized partition here is crash
  scenario (3) of Section 4.1.
- **broadcast join**: the smaller table is collected at the driver
  (Driver memory — crash scenario (4)) and a full copy is charged to
  every worker's User Memory; the bigger table is then joined in place
  with no shuffle. Faster when the small side fits (Figure 10), but
  crashes as the structured side grows (Figure 10(3,4)).

Join output merges the two records; on a field-name clash the left
(probe) side wins except for the key, which is identical by
definition.
"""

from __future__ import annotations

from repro.dataflow.partition import Partition
from repro.dataflow.record import estimate_rows_bytes
from repro.dataflow.executor import run_partition_tasks
from repro.memory.model import Region
from repro.metrics import NULL_METRICS
from repro.trace import NULL_TRACER

SHUFFLE = "shuffle"
BROADCAST = "broadcast"


def _merge(left_row, right_row):
    merged = dict(right_row)
    merged.update(left_row)
    return merged


def shuffle_hash_join(left, right, num_partitions=None, name=None,
                      core_alpha=1.0):
    """Distributed shuffle-hash join of two tables on their keys.

    ``num_partitions`` is the number of shuffle blocks (``np`` in
    Table 1B); defaults to the larger side's partition count.
    """
    from repro.dataflow.table import DistributedTable

    if left.key != right.key:
        raise ValueError(
            f"key mismatch: {left.key!r} vs {right.key!r}"
        )
    if num_partitions is None:
        num_partitions = max(left.num_partitions, right.num_partitions)
    tracer = getattr(left.context, "tracer", NULL_TRACER)
    with tracer.span("join:shuffle", left=left.name, right=right.name,
                     strategy=SHUFFLE) as sp:
        left_shuffled = left.repartition_by_key(num_partitions)
        right_shuffled = right.repartition_by_key(num_partitions)

        # Build on the smaller side, probe with the larger.
        if left.memory_bytes() <= right.memory_bytes():
            build, probe = left_shuffled, right_shuffled
        else:
            build, probe = right_shuffled, left_shuffled
        build_rows = {p.index: p.rows() for p in build.partitions}

        def task(probe_partition):
            rows = build_rows.get(probe_partition.index, [])
            table = {}
            for row in rows:
                table[row[build.key]] = row
            joined = []
            for row in probe_partition.rows():
                match = table.get(row[probe.key])
                if match is not None:
                    joined.append(_merge(row, match))
            return joined

        build_size_hist = getattr(
            left.context, "metrics", NULL_METRICS
        ).histogram("join_build_bytes", strategy=SHUFFLE)

        def charge(probe_partition, joined):
            build_bytes = estimate_rows_bytes(
                build_rows.get(probe_partition.index, [])
            )
            build_size_hist.observe(build_bytes)
            return int(core_alpha * build_bytes)

        outputs = run_partition_tasks(
            left.context, probe.partitions, task, region=Region.CORE,
            charge_fn=charge, what="shuffle-hash join build",
        )
        partitions = [
            Partition.from_rows(p.index, rows)
            for p, rows in zip(probe.partitions, outputs)
        ]
        result = DistributedTable(
            left.context, partitions, name=name, key=left.key,
            lineage=("shuffle-join", left.name, right.name),
        )
        if tracer.enabled:
            sp.set("build_side", build.name)
            sp.add("rows_left", left.num_rows())
            sp.add("rows_right", right.num_rows())
            sp.add("rows_out", result.num_rows())
            sp.add("bytes_out", result.memory_bytes())
        return result


def broadcast_join(small, big, name=None):
    """Broadcast the ``small`` table and join ``big`` against it."""
    from repro.dataflow.table import DistributedTable

    if small.key != big.key:
        raise ValueError(f"key mismatch: {small.key!r} vs {big.key!r}")
    context = small.context
    tracer = getattr(context, "tracer", NULL_TRACER)
    with tracer.span("join:broadcast", small=small.name, big=big.name,
                     strategy=BROADCAST) as sp:
        small_rows = small.collect()  # charges Driver memory
        small_bytes = estimate_rows_bytes(small_rows)
        lookup = {row[small.key]: row for row in small_rows}
        sp.add("broadcast_bytes", small_bytes)
        metrics = getattr(context, "metrics", NULL_METRICS)
        metrics.counter("broadcast_bytes_total").inc(small_bytes)
        metrics.histogram(
            "join_build_bytes", strategy=BROADCAST
        ).observe(small_bytes)

        # A full copy of the broadcast table lives in every worker's
        # User Memory for the duration of the join.
        charged = []
        try:
            for worker in context.workers:
                worker.accountant.charge(
                    Region.USER, small_bytes, what="broadcast table copy"
                )
                charged.append(worker)

            def task(partition):
                joined = []
                for row in partition.rows():
                    match = lookup.get(row[big.key])
                    if match is not None:
                        joined.append(_merge(row, match))
                return joined

            outputs = run_partition_tasks(
                context, big.partitions, task, region=Region.USER,
                charge_fn=lambda p, rows: estimate_rows_bytes(rows),
                what="broadcast join output",
            )
        finally:
            for worker in charged:
                worker.accountant.release(Region.USER, small_bytes)
        partitions = [
            Partition.from_rows(p.index, rows)
            for p, rows in zip(big.partitions, outputs)
        ]
        result = DistributedTable(
            context, partitions, name=name, key=big.key,
            lineage=("broadcast-join", small.name, big.name),
        )
        if tracer.enabled:
            sp.add("rows_small", small.num_rows())
            sp.add("rows_big", big.num_rows())
            sp.add("rows_out", result.num_rows())
            sp.add("bytes_out", result.memory_bytes())
        return result


def join(left, right, how=SHUFFLE, num_partitions=None, name=None):
    """Dispatch on the physical join decision (Table 1B's ``join``)."""
    if how == SHUFFLE:
        return shuffle_hash_join(
            left, right, num_partitions=num_partitions, name=name
        )
    if how == BROADCAST:
        small, big = (
            (left, right)
            if left.memory_bytes() <= right.memory_bytes()
            else (right, left)
        )
        return broadcast_join(small, big, name=name)
    raise ValueError(f"unknown join operator {how!r}")
