"""Physical join operators (Section 4.2.3).

Two distributed key-key equi-join implementations:

- **shuffle-hash join**: both tables are hash-partitioned on the key
  into the same number of shuffle blocks; co-located blocks are joined
  with a local hash join. The build side's hash table is charged to
  Core Memory per wave — an oversized partition here is crash
  scenario (3) of Section 4.1.
- **broadcast join**: the smaller table is collected at the driver
  (Driver memory — crash scenario (4)) and a full copy is charged to
  every worker's User Memory; the bigger table is then joined in place
  with no shuffle. Faster when the small side fits (Figure 10), but
  crashes as the structured side grows (Figure 10(3,4)).

On columnar partitions both operators run vectorized: key matching is
one stable argsort + ``searchsorted`` over the build side's key
column, and the joined output is assembled with one fancy-index gather
per column — no per-row Python loop, and the gathered tensor columns
come straight from the stored blocks (zero-copy reads). Legacy row
partitions (or non-integer keys) fall back to the per-row hash join.

Join output merges the two records; on a field-name clash the left
(probe) side wins except for the key, which is identical by
definition.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.columnar import ColumnarBlock, NotColumnar
from repro.dataflow.partition import Partition
from repro.dataflow.record import estimate_rows_bytes
from repro.dataflow.executor import run_partition_tasks
from repro.memory.model import Region
from repro.metrics import NULL_METRICS
from repro.trace import NULL_TRACER

SHUFFLE = "shuffle"
BROADCAST = "broadcast"


def _merge(left_row, right_row):
    merged = dict(right_row)
    merged.update(left_row)
    return merged


def _join_key_column(block, key):
    """The key column when it supports vectorized matching (an integer
    array), else None."""
    if block is None or not block.has_column(key) \
            or not block.is_array(key):
        return None
    keys = block.column(key)
    if not np.issubdtype(keys.dtype, np.integer):
        return None
    return keys


def _columnar_hash_join(probe_block, probe_key, build_block, build_key):
    """Vectorized local hash join: match the probe block's key column
    against the build block's and gather the merged output one column
    at a time. Output row order follows the probe block (as the row
    path's probe loop does); duplicate build keys resolve to the last
    occurrence (dict-insert semantics). Returns None when either side
    cannot be matched vectorized.
    """
    if probe_block is None or build_block is None:
        return None
    if probe_block.num_rows == 0 or build_block.num_rows == 0:
        return ColumnarBlock.empty()
    probe_keys = _join_key_column(probe_block, probe_key)
    build_keys = _join_key_column(build_block, build_key)
    if probe_keys is None or build_keys is None:
        return None
    order = np.argsort(build_keys, kind="stable")
    sorted_keys = build_keys[order]
    # side="right" - 1 lands on the *last* duplicate, matching the
    # row path's dict overwrite semantics.
    pos = np.searchsorted(sorted_keys, probe_keys, side="right") - 1
    safe = np.maximum(pos, 0)
    matched = (pos >= 0) & (sorted_keys[safe] == probe_keys)
    probe_idx = np.nonzero(matched)[0]
    build_idx = order[safe[matched]]
    if len(probe_idx) == 0:
        return ColumnarBlock.empty()

    def gather(block, name, indices):
        column = block.column(name)
        if isinstance(column, np.ndarray):
            return column[indices]
        return [column[i] for i in indices]

    # Merged field order mirrors _merge(probe, build): build columns
    # first (probe values win on a clash), then probe-only columns.
    columns = {}
    for name in build_block.column_names:
        if probe_block.has_column(name):
            columns[name] = gather(probe_block, name, probe_idx)
        else:
            columns[name] = gather(build_block, name, build_idx)
    for name in probe_block.column_names:
        if name not in columns:
            columns[name] = gather(probe_block, name, probe_idx)
    return ColumnarBlock(columns, len(probe_idx))


def _rows_hash_join(probe_rows, probe_key, build_rows, build_key):
    """Legacy per-row local hash join."""
    table = {}
    for row in build_rows:
        table[row[build_key]] = row
    joined = []
    for row in probe_rows:
        match = table.get(row[probe_key])
        if match is not None:
            joined.append(_merge(row, match))
    return joined


def shuffle_hash_join(left, right, num_partitions=None, name=None,
                      core_alpha=1.0):
    """Distributed shuffle-hash join of two tables on their keys.

    ``num_partitions`` is the number of shuffle blocks (``np`` in
    Table 1B); defaults to the larger side's partition count.
    """
    from repro.dataflow.table import DistributedTable

    if left.key != right.key:
        raise ValueError(
            f"key mismatch: {left.key!r} vs {right.key!r}"
        )
    if num_partitions is None:
        num_partitions = max(left.num_partitions, right.num_partitions)
    tracer = getattr(left.context, "tracer", NULL_TRACER)
    with tracer.span("join:shuffle", left=left.name, right=right.name,
                     strategy=SHUFFLE) as sp:
        left_shuffled = left.repartition_by_key(num_partitions)
        right_shuffled = right.repartition_by_key(num_partitions)

        # Build on the smaller side, probe with the larger.
        if left.memory_bytes() <= right.memory_bytes():
            build, probe = left_shuffled, right_shuffled
        else:
            build, probe = right_shuffled, left_shuffled
        build_parts = {p.index: p for p in build.partitions}

        def task(probe_partition):
            build_partition = build_parts.get(probe_partition.index)
            if build_partition is None:
                return ColumnarBlock.empty()
            joined = _columnar_hash_join(
                probe_partition.block(), probe.key,
                build_partition.block(), build.key,
            )
            if joined is not None:
                return joined
            return _rows_hash_join(
                probe_partition.rows(), probe.key,
                build_partition.rows(), build.key,
            )

        build_size_hist = getattr(
            left.context, "metrics", NULL_METRICS
        ).histogram("join_build_bytes", strategy=SHUFFLE)

        def charge(probe_partition, joined):
            build_partition = build_parts.get(probe_partition.index)
            build_bytes = (
                build_partition.memory_bytes()
                if build_partition is not None else 0
            )
            build_size_hist.observe(build_bytes)
            return int(core_alpha * build_bytes)

        outputs = run_partition_tasks(
            left.context, probe.partitions, task, region=Region.CORE,
            charge_fn=charge, what="shuffle-hash join build",
        )
        partitions = [
            Partition.from_block(p.index, out)
            if isinstance(out, ColumnarBlock)
            else Partition.from_rows(p.index, out)
            for p, out in zip(probe.partitions, outputs)
        ]
        result = DistributedTable(
            left.context, partitions, name=name, key=left.key,
            lineage=("shuffle-join", left.name, right.name),
        )
        if tracer.enabled:
            sp.set("build_side", build.name)
            sp.add("rows_left", left.num_rows())
            sp.add("rows_right", right.num_rows())
            sp.add("rows_out", result.num_rows())
            sp.add("bytes_out", result.memory_bytes())
        return result


def broadcast_join(small, big, name=None):
    """Broadcast the ``small`` table and join ``big`` against it."""
    from repro.dataflow.table import DistributedTable

    if small.key != big.key:
        raise ValueError(f"key mismatch: {small.key!r} vs {big.key!r}")
    context = small.context
    tracer = getattr(context, "tracer", NULL_TRACER)
    with tracer.span("join:broadcast", small=small.name, big=big.name,
                     strategy=BROADCAST) as sp:
        small_bytes = small.memory_bytes()
        small_rows = small.collect()  # charges Driver memory
        # One columnar copy of the broadcast table serves every
        # partition's vectorized probe; legacy fallback keeps a dict.
        try:
            small_block = ColumnarBlock.from_rows(small_rows)
        except NotColumnar:
            small_block = None
        lookup = None
        if _join_key_column(small_block, small.key) is None:
            small_block = None
            lookup = {row[small.key]: row for row in small_rows}
        sp.add("broadcast_bytes", small_bytes)
        metrics = getattr(context, "metrics", NULL_METRICS)
        metrics.counter("broadcast_bytes_total").inc(small_bytes)
        metrics.histogram(
            "join_build_bytes", strategy=BROADCAST
        ).observe(small_bytes)

        # A full copy of the broadcast table lives in every worker's
        # User Memory for the duration of the join.
        charged = []
        try:
            for worker in context.workers:
                worker.accountant.charge(
                    Region.USER, small_bytes, what="broadcast table copy"
                )
                charged.append(worker)

            def task(partition):
                if small_block is not None:
                    joined = _columnar_hash_join(
                        partition.block(), big.key,
                        small_block, small.key,
                    )
                    if joined is not None:
                        return joined
                rows = (
                    small_rows if lookup is None else None
                )
                table = (
                    lookup if lookup is not None
                    else {row[small.key]: row for row in rows}
                )
                joined = []
                for row in partition.rows():
                    match = table.get(row[big.key])
                    if match is not None:
                        joined.append(_merge(row, match))
                return joined

            def charge(partition, out):
                if isinstance(out, ColumnarBlock):
                    return out.nbytes
                return estimate_rows_bytes(out)

            outputs = run_partition_tasks(
                context, big.partitions, task, region=Region.USER,
                charge_fn=charge, what="broadcast join output",
            )
        finally:
            for worker in charged:
                worker.accountant.release(Region.USER, small_bytes)
        partitions = [
            Partition.from_block(p.index, out)
            if isinstance(out, ColumnarBlock)
            else Partition.from_rows(p.index, out)
            for p, out in zip(big.partitions, outputs)
        ]
        result = DistributedTable(
            context, partitions, name=name, key=big.key,
            lineage=("broadcast-join", small.name, big.name),
        )
        if tracer.enabled:
            sp.add("rows_small", small.num_rows())
            sp.add("rows_big", big.num_rows())
            sp.add("rows_out", result.num_rows())
            sp.add("bytes_out", result.memory_bytes())
        return result


def join(left, right, how=SHUFFLE, num_partitions=None, name=None):
    """Dispatch on the physical join decision (Table 1B's ``join``)."""
    if how == SHUFFLE:
        return shuffle_hash_join(
            left, right, num_partitions=num_partitions, name=name
        )
    if how == BROADCAST:
        small, big = (
            (left, right)
            if left.memory_bytes() <= right.memory_bytes()
            else (right, left)
        )
        return broadcast_join(small, big, name=name)
    raise ValueError(f"unknown join operator {how!r}")
