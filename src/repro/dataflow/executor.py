"""Task execution with wave-based memory accounting and fault recovery.

Tasks are grouped into waves of size ``cpu`` per worker, every task in
a wave holds its memory charge until the wave completes, and the
per-region accountants raise the Section 4.1 crash exceptions if a
wave's combined footprint overflows a region. This reproduces the
paper's "higher parallelism -> bigger footprint -> crash" behaviour.

*How* a wave's tasks physically execute is delegated to the context's
:class:`~repro.dataflow.backend.Backend`: the default
:class:`~repro.dataflow.backend.SerialBackend` runs them sequentially
in-process (deterministic, accounted as if ``cpu`` ran concurrently),
while :class:`~repro.dataflow.backend.ProcessPoolBackend` forks one OS
process per wave task so ``cpu`` genuinely parallelizes the wave.
Scheduling — regrouping, retries, blacklisting, failover, commit
barriers — stays here and is identical across backends.

On top of that sits the recovery layer. Because every table in this
engine is eagerly materialized, a task's input partition *is* its
lineage — re-running ``task_fn`` on the parent partition recomputes
the lost output exactly, the way Spark rebuilds a lost partition from
its RDD lineage. The scheduler therefore:

- retries **transient** task failures (injected crashes/OOMs from a
  :class:`~repro.faults.injector.FaultInjector`, real
  :class:`~repro.exceptions.TransientTaskOOM`) with capped exponential
  backoff on the simulated clock, up to
  ``RetryPolicy.max_task_attempts``;
- on :class:`~repro.exceptions.WorkerLost` discards the in-flight
  wave, blacklists the worker on the context, and fails its remaining
  partitions over to live workers (``ClusterContext.worker_for``'s
  exclusion ring);
- blacklists a worker after ``RetryPolicy.max_failures_per_worker``
  task failures (never the last live worker);
- re-raises deterministic Section 4.1 memory crashes unchanged — task
  retry cannot shrink a structural footprint; that is the
  degrade-and-retry supervisor's job — and wraps any other task error
  in a structured :class:`~repro.exceptions.TaskFailure`.

Every recovery action is appended to the context's
:class:`~repro.faults.retry.RecoveryLog` (if one is attached) with a
simulated timestamp.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dataflow.backend import (  # noqa: F401  (re-exported: these
    SERIAL_BACKEND,                   # lived here before backends split out)
    _handle_task_failure,
    _maybe_blacklist,
    _record,
    resolve_backend,
)
from repro.exceptions import WorkerLost
from repro.faults.clock import SimulatedClock
from repro.faults.retry import RetryPolicy
from repro.memory.model import Region
from repro.metrics import NULL_METRICS
from repro.trace import NULL_TRACER

_DEFAULT_POLICY = RetryPolicy()


def group_by_worker(context, partitions):
    """Group (position, partition) pairs by their assigned worker."""
    return _group_pairs(context, enumerate(partitions))


def _group_pairs(context, pairs):
    grouped = defaultdict(list)
    for position, partition in pairs:
        grouped[context.worker_for(partition.index)].append(
            (position, partition)
        )
    return grouped


def _waves(items, width):
    for start in range(0, len(items), width):
        yield items[start:start + width]


def run_partition_tasks(context, partitions, task_fn, region=Region.USER,
                        charge_fn=None, what="udf execution",
                        on_commit=None):
    """Run ``task_fn(partition) -> result`` over every partition.

    ``charge_fn(partition, result) -> bytes`` gives the per-task memory
    footprint charged to ``region`` on that partition's worker for the
    duration of its wave. ``on_commit(partition, result)`` — if given —
    fires as each wave's results are committed (after the wave survived
    its memory charges and any injected faults), which is the hook the
    checkpoint layer uses for wave-granular durability: a partition
    lost with a mid-wave ``WorkerLost`` is never reported committed,
    and the committed-position set guarantees the barrier fires
    **exactly once per partition** even when retry rounds or a
    parallel backend complete waves out of partition order.
    Results are returned in partition order; transient failures are
    retried from lineage as described in the module docstring.
    """
    results = [None] * len(partitions)
    injector = getattr(context, "fault_injector", None)
    policy = getattr(context, "retry_policy", None) or _DEFAULT_POLICY
    recovery = getattr(context, "recovery_log", None)
    clock = injector.clock if injector is not None else SimulatedClock()
    attempts = defaultdict(int)
    tracer = getattr(context, "tracer", NULL_TRACER)
    tracer.add("partitions", len(partitions))
    ledger = getattr(context, "ledger", None)
    if ledger is not None and ledger.enabled:
        ledger.emit("stage_tasks", what=what, partitions=len(partitions))
    pending = list(enumerate(partitions))
    committed = set()
    while pending:
        retry_next = []
        # Regrouping each round is what reassigns a blacklisted
        # worker's partitions: worker_for skips excluded nodes.
        for worker, items in _group_pairs(context, pending).items():
            _run_worker_share(
                context, worker, items, task_fn, region, charge_fn, what,
                results, attempts, retry_next, policy, injector, recovery,
                clock, on_commit, committed,
            )
        # A partition already committed must never run again: a wave
        # discarded *after* an earlier wave committed (worker lost
        # between waves) reschedules only genuinely uncommitted work.
        pending = [pair for pair in retry_next if pair[0] not in committed]
    return results


def _run_worker_share(context, worker, items, task_fn, region, charge_fn,
                      what, results, attempts, retry_next, policy, injector,
                      recovery, clock, on_commit=None, committed=None):
    """Run one worker's partitions in waves of ``context.cpu``."""
    tracer = getattr(context, "tracer", NULL_TRACER)
    metrics = getattr(context, "metrics", NULL_METRICS)
    backend = getattr(context, "exec_backend", None) or SERIAL_BACKEND
    ledger = getattr(context, "ledger", None)
    ledger_on = ledger is not None and ledger.enabled
    occupancy = metrics.gauge("wave_tasks", worker=f"w{worker.node_id}")
    if committed is None:
        committed = set()
    for start in range(0, len(items), context.cpu):
        wave = items[start:start + context.cpu]
        tracer.add("waves")
        metrics.counter("waves_total", worker=f"w{worker.node_id}").inc()
        metrics.histogram("wave_size", worker=f"w{worker.node_id}").observe(
            len(wave)
        )
        occupancy.set(len(wave))
        if ledger_on:
            ledger.emit("wave_start", worker=worker.node_id,
                        size=len(wave), what=what)
        try:
            if injector is not None:
                injector.on_wave_start(worker.node_id, what=what)
            wave_results = backend.run_wave(
                context, worker, wave, task_fn, region, charge_fn, what,
                attempts, retry_next, policy, injector, recovery, clock,
            )
        except WorkerLost as loss:
            # The in-flight wave dies with the worker; everything this
            # worker had not finished fails over to live workers.
            if ledger_on:
                ledger.emit("wave_end", worker=worker.node_id,
                            results=0, what=what, status="worker-lost")
            _record(recovery, clock, "worker_lost", table=what,
                    worker=worker.node_id, fault=str(loss))
            context.blacklist_worker(worker.node_id)
            _record(recovery, clock, "blacklist", worker=worker.node_id,
                    reason="worker lost")
            scheduled = {position for position, _ in retry_next}
            retry_next.extend(
                pair for pair in items[start:] if pair[0] not in scheduled
            )
            return
        finally:
            occupancy.set(0)
        if ledger_on:
            ledger.emit("wave_end", worker=worker.node_id,
                        results=len(wave_results), what=what, status="ok")
        by_position = dict(wave)
        for position, result in wave_results:
            if position in committed:
                continue  # the exactly-once commit barrier
            committed.add(position)
            results[position] = result
            if ledger_on:
                ledger.emit("task_commit", what=what,
                            partition=by_position[position].index)
            if on_commit is not None:
                on_commit(by_position[position], result)
        if worker.node_id in context.excluded_workers:
            # Blacklisted mid-wave by the failure threshold: committed
            # waves stand, the rest of the share is reassigned.
            scheduled = {position for position, _ in retry_next}
            retry_next.extend(
                pair for pair in items[start + context.cpu:]
                if pair[0] not in scheduled
            )
            return


def charge_model_replicas(context, model_bytes, region=Region.DL,
                          what="CNN model replicas"):
    """Charge ``cpu`` model replicas on every live worker (issue (1) of
    Section 4.1: each execution thread spawns its own DL model replica).

    Returns a callable that releases the charges; crashes with
    :class:`DLExecutionMemoryExceeded` if a worker cannot hold them.
    """
    charged = []
    try:
        for worker in context.live_workers():
            nbytes = context.cpu * int(model_bytes)
            try:
                worker.accountant.charge(region, nbytes, what=what)
            except Exception:
                # charge() increments before raising: roll this one back
                worker.accountant.release(region, nbytes)
                raise
            charged.append((worker, nbytes))
    except Exception:
        for worker, nbytes in charged:
            worker.accountant.release(region, nbytes)
        raise

    def release():
        for worker, nbytes in charged:
            worker.accountant.release(region, nbytes)

    return release
