"""Task execution with wave-based memory accounting.

Tasks over partitions run deterministically (sequentially) but are
*accounted* as if ``cpu`` tasks per worker run concurrently: tasks are
grouped into waves of size ``cpu`` per worker, every task in a wave
holds its memory charge until the wave completes, and the per-region
accountants raise the Section 4.1 crash exceptions if a wave's
combined footprint overflows a region. This reproduces the paper's
"higher parallelism -> bigger footprint -> crash" behaviour without
nondeterministic threading.
"""

from __future__ import annotations

from collections import defaultdict

from repro.memory.model import Region


def group_by_worker(context, partitions):
    """Group (position, partition) pairs by their assigned worker."""
    grouped = defaultdict(list)
    for position, partition in enumerate(partitions):
        grouped[context.worker_for(partition.index)].append(
            (position, partition)
        )
    return grouped


def _waves(items, width):
    for start in range(0, len(items), width):
        yield items[start:start + width]


def run_partition_tasks(context, partitions, task_fn, region=Region.USER,
                        charge_fn=None, what="udf execution"):
    """Run ``task_fn(partition) -> result`` over every partition.

    ``charge_fn(partition, result) -> bytes`` gives the per-task memory
    footprint charged to ``region`` on that partition's worker for the
    duration of its wave. Results are returned in partition order.
    """
    results = [None] * len(partitions)
    for worker, items in group_by_worker(context, partitions).items():
        for wave in _waves(items, context.cpu):
            charged = 0
            try:
                for position, partition in wave:
                    result = task_fn(partition)
                    results[position] = result
                    worker.tasks_run += 1
                    if charge_fn is not None:
                        nbytes = charge_fn(partition, result)
                        # count before charging: charge() increments
                        # used before raising, so the finally block
                        # must release it either way
                        charged += nbytes
                        worker.accountant.charge(region, nbytes, what=what)
            finally:
                worker.accountant.release(region, charged)
    return results


def charge_model_replicas(context, model_bytes, region=Region.DL,
                          what="CNN model replicas"):
    """Charge ``cpu`` model replicas on every worker (issue (1) of
    Section 4.1: each execution thread spawns its own DL model replica).

    Returns a callable that releases the charges; crashes with
    :class:`DLExecutionMemoryExceeded` if a worker cannot hold them.
    """
    charged = []
    try:
        for worker in context.workers:
            nbytes = context.cpu * int(model_bytes)
            try:
                worker.accountant.charge(region, nbytes, what=what)
            except Exception:
                # charge() increments before raising: roll this one back
                worker.accountant.release(region, nbytes)
                raise
            charged.append((worker, nbytes))
    except Exception:
        for worker, nbytes in charged:
            worker.accountant.release(region, nbytes)
        raise

    def release():
        for worker, nbytes in charged:
            worker.accountant.release(region, nbytes)

    return release
