"""Task execution with wave-based memory accounting and fault recovery.

Tasks over partitions run deterministically (sequentially) but are
*accounted* as if ``cpu`` tasks per worker run concurrently: tasks are
grouped into waves of size ``cpu`` per worker, every task in a wave
holds its memory charge until the wave completes, and the per-region
accountants raise the Section 4.1 crash exceptions if a wave's
combined footprint overflows a region. This reproduces the paper's
"higher parallelism -> bigger footprint -> crash" behaviour without
nondeterministic threading.

On top of that sits the recovery layer. Because every table in this
engine is eagerly materialized, a task's input partition *is* its
lineage — re-running ``task_fn`` on the parent partition recomputes
the lost output exactly, the way Spark rebuilds a lost partition from
its RDD lineage. The scheduler therefore:

- retries **transient** task failures (injected crashes/OOMs from a
  :class:`~repro.faults.injector.FaultInjector`, real
  :class:`~repro.exceptions.TransientTaskOOM`) with capped exponential
  backoff on the simulated clock, up to
  ``RetryPolicy.max_task_attempts``;
- on :class:`~repro.exceptions.WorkerLost` discards the in-flight
  wave, blacklists the worker on the context, and fails its remaining
  partitions over to live workers (``ClusterContext.worker_for``'s
  exclusion ring);
- blacklists a worker after ``RetryPolicy.max_failures_per_worker``
  task failures (never the last live worker);
- re-raises deterministic Section 4.1 memory crashes unchanged — task
  retry cannot shrink a structural footprint; that is the
  degrade-and-retry supervisor's job — and wraps any other task error
  in a structured :class:`~repro.exceptions.TaskFailure`.

Every recovery action is appended to the context's
:class:`~repro.faults.retry.RecoveryLog` (if one is attached) with a
simulated timestamp.
"""

from __future__ import annotations

from collections import defaultdict

from repro.exceptions import TaskFailure, WorkerLost, WorkloadCrash
from repro.faults.clock import SimulatedClock
from repro.faults.retry import RetryPolicy
from repro.memory.model import Region
from repro.metrics import NULL_METRICS
from repro.trace import NULL_TRACER

_DEFAULT_POLICY = RetryPolicy()


def group_by_worker(context, partitions):
    """Group (position, partition) pairs by their assigned worker."""
    return _group_pairs(context, enumerate(partitions))


def _group_pairs(context, pairs):
    grouped = defaultdict(list)
    for position, partition in pairs:
        grouped[context.worker_for(partition.index)].append(
            (position, partition)
        )
    return grouped


def _waves(items, width):
    for start in range(0, len(items), width):
        yield items[start:start + width]


def run_partition_tasks(context, partitions, task_fn, region=Region.USER,
                        charge_fn=None, what="udf execution",
                        on_commit=None):
    """Run ``task_fn(partition) -> result`` over every partition.

    ``charge_fn(partition, result) -> bytes`` gives the per-task memory
    footprint charged to ``region`` on that partition's worker for the
    duration of its wave. ``on_commit(partition, result)`` — if given —
    fires as each wave's results are committed (after the wave survived
    its memory charges and any injected faults), which is the hook the
    checkpoint layer uses for wave-granular durability: a partition
    lost with a mid-wave ``WorkerLost`` is never reported committed.
    Results are returned in partition order; transient failures are
    retried from lineage as described in the module docstring.
    """
    results = [None] * len(partitions)
    injector = getattr(context, "fault_injector", None)
    policy = getattr(context, "retry_policy", None) or _DEFAULT_POLICY
    recovery = getattr(context, "recovery_log", None)
    clock = injector.clock if injector is not None else SimulatedClock()
    attempts = defaultdict(int)
    tracer = getattr(context, "tracer", NULL_TRACER)
    tracer.add("partitions", len(partitions))
    pending = list(enumerate(partitions))
    while pending:
        retry_next = []
        # Regrouping each round is what reassigns a blacklisted
        # worker's partitions: worker_for skips excluded nodes.
        for worker, items in _group_pairs(context, pending).items():
            _run_worker_share(
                context, worker, items, task_fn, region, charge_fn, what,
                results, attempts, retry_next, policy, injector, recovery,
                clock, on_commit,
            )
        pending = retry_next
    return results


def _run_worker_share(context, worker, items, task_fn, region, charge_fn,
                      what, results, attempts, retry_next, policy, injector,
                      recovery, clock, on_commit=None):
    """Run one worker's partitions in waves of ``context.cpu``."""
    tracer = getattr(context, "tracer", NULL_TRACER)
    metrics = getattr(context, "metrics", NULL_METRICS)
    occupancy = metrics.gauge("wave_tasks", worker=f"w{worker.node_id}")
    for start in range(0, len(items), context.cpu):
        wave = items[start:start + context.cpu]
        tracer.add("waves")
        metrics.counter("waves_total", worker=f"w{worker.node_id}").inc()
        metrics.histogram("wave_size", worker=f"w{worker.node_id}").observe(
            len(wave)
        )
        occupancy.set(len(wave))
        try:
            if injector is not None:
                injector.on_wave_start(worker.node_id, what=what)
            wave_results = _run_wave(
                context, worker, wave, task_fn, region, charge_fn, what,
                attempts, retry_next, policy, injector, recovery, clock,
            )
        except WorkerLost as loss:
            # The in-flight wave dies with the worker; everything this
            # worker had not finished fails over to live workers.
            _record(recovery, clock, "worker_lost", table=what,
                    worker=worker.node_id, fault=str(loss))
            context.blacklist_worker(worker.node_id)
            _record(recovery, clock, "blacklist", worker=worker.node_id,
                    reason="worker lost")
            scheduled = {position for position, _ in retry_next}
            retry_next.extend(
                pair for pair in items[start:] if pair[0] not in scheduled
            )
            return
        finally:
            occupancy.set(0)
        by_position = dict(wave)
        for position, result in wave_results:
            results[position] = result
            if on_commit is not None:
                on_commit(by_position[position], result)
        if worker.node_id in context.excluded_workers:
            # Blacklisted mid-wave by the failure threshold: committed
            # waves stand, the rest of the share is reassigned.
            scheduled = {position for position, _ in retry_next}
            retry_next.extend(
                pair for pair in items[start + context.cpu:]
                if pair[0] not in scheduled
            )
            return


def _run_wave(context, worker, wave, task_fn, region, charge_fn, what,
              attempts, retry_next, policy, injector, recovery, clock):
    """Run one wave; returns the (position, result) pairs that
    succeeded. Transient failures are scheduled on ``retry_next``
    while the rest of the wave keeps running (concurrent peers finish
    in a real cluster); WorkerLost propagates to the caller."""
    charged = 0
    wave_results = []
    tracer = getattr(context, "tracer", NULL_TRACER)
    metrics = getattr(context, "metrics", NULL_METRICS)
    # resolved once per wave: the per-task loop below is the hot path
    tasks_counter = metrics.counter("tasks_total", worker=f"w{worker.node_id}")
    try:
        for position, partition in wave:
            attempt = attempts[partition.index] = attempts[partition.index] + 1
            try:
                if injector is not None:
                    injector.on_task_start(
                        what=what, partition_index=partition.index,
                        worker_id=worker.node_id, attempt=attempt,
                    )
                result = task_fn(partition)
                worker.tasks_run += 1
                tracer.add("tasks")
                tasks_counter.inc()
                if charge_fn is not None:
                    nbytes = charge_fn(partition, result)
                    # count before charging: charge() increments used
                    # before raising, so the finally block must
                    # release it either way
                    charged += nbytes
                    tracer.add("charged_bytes", nbytes)
                    worker.accountant.charge(region, nbytes, what=what)
            except WorkerLost:
                raise
            except Exception as exc:
                _handle_task_failure(
                    context, worker, position, partition, attempt, exc,
                    retry_next, policy, recovery, clock, what,
                )
            else:
                wave_results.append((position, result))
    finally:
        worker.accountant.release(region, charged)
    return wave_results


def _handle_task_failure(context, worker, position, partition, attempt, exc,
                         retry_next, policy, recovery, clock, what):
    """Decide a failed task's fate: retry from lineage, hand a
    deterministic memory crash to the supervisor, or raise a
    structured TaskFailure."""
    if getattr(exc, "transient", False) and attempt < policy.max_task_attempts:
        worker.task_failures += 1
        # keyed jitter: same-wave retries of different partitions
        # desynchronize instead of stampeding a shared store together
        backoff = policy.backoff_s(attempt, key=partition.index)
        clock.advance(backoff)
        getattr(context, "tracer", NULL_TRACER).add("task_retries")
        getattr(context, "metrics", NULL_METRICS).counter(
            "task_retries_total", worker=f"w{worker.node_id}",
            fault=type(exc).__name__,
        ).inc()
        _record(recovery, clock, "task_retry", table=what,
                partition=partition.index, worker=worker.node_id,
                attempt=attempt, fault=type(exc).__name__,
                backoff_s=backoff)
        if worker.task_failures == policy.max_failures_per_worker:
            _maybe_blacklist(context, worker, recovery, clock)
        retry_next.append((position, partition))
        return
    if isinstance(exc, WorkloadCrash):
        # Structural memory overflow (or a transient one out of retry
        # budget): typed for the degrade-and-retry supervisor.
        raise exc
    # ``from exc`` keeps the original traceback on __cause__; the log
    # entry mirrors the chain so post-mortems see *what* failed, not
    # just the structured wrapper.
    _record(recovery, clock, "task_failure", table=what,
            partition=partition.index, worker=worker.node_id,
            attempt=attempt, cause=type(exc).__name__, error=str(exc))
    raise TaskFailure(
        partition_index=partition.index, worker_id=worker.node_id,
        attempt=attempt, cause=exc,
    ) from exc


def _maybe_blacklist(context, worker, recovery, clock):
    """Blacklist a repeatedly failing worker — unless it is the last
    one standing, in which case the cluster limps on."""
    if worker.node_id in context.excluded_workers:
        return
    survivors = [
        w for w in context.live_workers() if w.node_id != worker.node_id
    ]
    if not survivors:
        _record(recovery, clock, "blacklist_suppressed",
                worker=worker.node_id, reason="last live worker")
        return
    context.blacklist_worker(worker.node_id)
    _record(recovery, clock, "blacklist", worker=worker.node_id,
            reason="max task failures")


def _record(recovery, clock, event, **fields):
    if recovery is not None:
        recovery.record(event, sim_time_s=clock.now, **fields)


def charge_model_replicas(context, model_bytes, region=Region.DL,
                          what="CNN model replicas"):
    """Charge ``cpu`` model replicas on every live worker (issue (1) of
    Section 4.1: each execution thread spawns its own DL model replica).

    Returns a callable that releases the charges; crashes with
    :class:`DLExecutionMemoryExceeded` if a worker cannot hold them.
    """
    charged = []
    try:
        for worker in context.live_workers():
            nbytes = context.cpu * int(model_bytes)
            try:
                worker.accountant.charge(region, nbytes, what=what)
            except Exception:
                # charge() increments before raising: roll this one back
                worker.accountant.release(region, nbytes)
                raise
            charged.append((worker, nbytes))
    except Exception:
        for worker, nbytes in charged:
            worker.accountant.release(region, nbytes)
        raise

    def release():
        for worker, nbytes in charged:
            worker.accountant.release(region, nbytes)

    return release
