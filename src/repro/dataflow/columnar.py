"""Columnar, tensor-native partition payloads.

The engine's partitions originally stored per-row ``dict`` records;
every batched stage then re-packed N rows into one ``(N, H, W, C)``
block and split the result back into rows — paying a pack/unpack tax
on every stage and N pickles on every serialization. This module
stores a partition the way the kernels want it (TQP/SystemML-style
tensor-native blocks):

- one contiguous numpy array per column, with the row axis first —
  numeric scalar columns as ``(N,)`` arrays, tensor columns as one
  ``(N, H, W, C)`` or ``(N, D)`` block;
- an *object* column (a plain list) only where values cannot form one
  block: ragged tensors, :class:`~repro.tensor.tensorlist.TensorList`
  members, strings, Nones;
- lazy row-view materialization (:meth:`ColumnarBlock.to_rows`) so
  legacy per-row UDFs keep working — scalar cells come back as Python
  scalars and tensor cells as zero-copy row views into the block.

The zero-copy contract consumers rely on:

- ``column(name)`` returns the stored array itself, never a copy —
  batched inference, pooling, and vectorized joins read it in place;
- ``to_rows()`` row views alias the column buffers;
- ``from_buffer(to_buffer(...))`` reconstructs array columns with
  ``np.frombuffer`` over the blob (read-only views, no re-pickle).

Consumers must therefore never mutate a column or a row view in
place; every engine operator builds fresh output blocks instead.

Sizing is exact: :attr:`ColumnarBlock.nbytes` sums the real buffer
sizes (object columns fall back to the Appendix A per-value
estimator), replacing the Tungsten per-record heuristic for columnar
payloads. The wire format (:meth:`to_buffer`) is a single buffer —
one JSON header plus the raw column buffers back to back — instead of
N pickles, which is what shrinks spill and shuffle bytes.
"""

from __future__ import annotations

import json
import pickle

import numpy as np

from repro.dataflow.record import _VAR_HEADER, estimate_value_bytes

#: Wire-format magic for a single-buffer columnar blob (version 1).
MAGIC = b"VCB1"

_enabled = True


def columnar_enabled():
    """Whether new partitions pack their rows into columnar blocks."""
    return _enabled


def set_columnar_enabled(flag):
    """Globally enable/disable columnar packing (benchmarks use this
    to run the legacy row layout as a baseline). Returns the previous
    setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


class row_layout:
    """Context manager forcing the legacy row-list layout."""

    def __enter__(self):
        self._previous = set_columnar_enabled(False)
        return self

    def __exit__(self, *exc):
        set_columnar_enabled(self._previous)
        return False


class NotColumnar(TypeError):
    """Rows cannot be packed into one columnar block (non-uniform
    schema or an unsupported value type)."""


def _classify(values):
    """Pack one column's values into an array when possible, else keep
    them as an object column (a plain list)."""
    first = values[0]
    if isinstance(first, np.ndarray) and first.ndim >= 1:
        shape, dtype = first.shape, first.dtype
        if all(
            isinstance(v, np.ndarray)
            and v.shape == shape and v.dtype == dtype
            for v in values
        ):
            return np.stack(values)
        return list(values)
    if isinstance(first, bool) or isinstance(first, np.bool_):
        if all(isinstance(v, (bool, np.bool_)) for v in values):
            return np.asarray(values, dtype=np.bool_)
        return list(values)
    if isinstance(first, (int, np.integer)):
        if all(
            isinstance(v, (int, np.integer))
            and not isinstance(v, (bool, np.bool_))
            for v in values
        ):
            try:
                return np.asarray(values, dtype=np.int64)
            except OverflowError:
                return list(values)
        return list(values)
    if isinstance(first, (float, np.floating)):
        if all(isinstance(v, (float, np.floating)) for v in values):
            return np.asarray(values, dtype=np.float64)
        return list(values)
    return list(values)


def pack_column(values):
    """Public entry to the column classifier: pack a list of cell
    values into an array column when they are homogeneous, else return
    them as an object column (the list itself)."""
    if not values:
        return []
    return _classify(list(values))


class ColumnarBlock:
    """One partition's payload in columnar, tensor-native layout.

    ``columns`` maps field name to either a numpy array whose first
    axis is the row axis, or a list (an object column). Column
    insertion order is the record field order legacy row views see.
    """

    __slots__ = ("_columns", "_num_rows", "_nbytes")

    def __init__(self, columns, num_rows):
        self._columns = dict(columns)
        self._num_rows = int(num_rows)
        self._nbytes = None
        for name, column in self._columns.items():
            length = (
                column.shape[0] if isinstance(column, np.ndarray)
                else len(column)
            )
            if length != self._num_rows:
                raise ValueError(
                    f"column {name!r} has {length} rows, expected "
                    f"{self._num_rows}"
                )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows):
        """Pack uniform-schema row dicts into one block.

        Raises :class:`NotColumnar` when the rows do not share one
        field set (legacy payloads keep the row-list layout).
        """
        rows = list(rows)
        if not rows:
            return cls({}, 0)
        first = rows[0]
        if not isinstance(first, dict):
            raise NotColumnar("rows must be dicts")
        names = list(first)
        fields = set(names)
        for row in rows:
            if not isinstance(row, dict) or set(row) != fields:
                raise NotColumnar("rows do not share a uniform schema")
        columns = {
            name: _classify([row[name] for row in rows]) for name in names
        }
        return cls(columns, len(rows))

    @classmethod
    def empty(cls):
        return cls({}, 0)

    # ------------------------------------------------------------------
    # shape / access
    # ------------------------------------------------------------------
    @property
    def num_rows(self):
        return self._num_rows

    def __len__(self):
        return self._num_rows

    @property
    def column_names(self):
        return list(self._columns)

    def has_column(self, name):
        return name in self._columns

    def column(self, name):
        """The stored column itself — an array (row axis first) or an
        object list. Zero-copy: callers must not mutate it."""
        return self._columns[name]

    def is_array(self, name):
        return isinstance(self._columns[name], np.ndarray)

    def to_rows(self):
        """Materialize legacy row dicts (lazily used by per-row UDFs).

        Scalar columns come back as Python scalars (``tolist``);
        tensor columns come back as zero-copy row views.
        """
        if self._num_rows == 0:
            return []
        per_column = {}
        for name, column in self._columns.items():
            if isinstance(column, np.ndarray):
                per_column[name] = (
                    column.tolist() if column.ndim == 1 else list(column)
                )
            else:
                per_column[name] = column
        names = list(self._columns)
        return [
            {name: per_column[name][i] for name in names}
            for i in range(self._num_rows)
        ]

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    @property
    def nbytes(self):
        """Exact in-memory payload bytes: real buffer sizes for array
        columns; the Appendix A per-value estimate (plus an 8-byte
        slot, mirroring Tungsten's variable-length header) for object
        column members."""
        if self._nbytes is None:
            total = 0
            for column in self._columns.values():
                if isinstance(column, np.ndarray):
                    total += int(column.nbytes)
                else:
                    total += sum(
                        _VAR_HEADER + estimate_value_bytes(value)
                        for value in column
                    )
            self._nbytes = total
        return self._nbytes

    # ------------------------------------------------------------------
    # vectorized structural ops
    # ------------------------------------------------------------------
    def take(self, indices):
        """Gather rows by position into a new block (one fancy-index
        per column — no per-row Python loop for array columns)."""
        indices = np.asarray(indices, dtype=np.intp)
        columns = {}
        for name, column in self._columns.items():
            if isinstance(column, np.ndarray):
                columns[name] = column[indices]
            else:
                columns[name] = [column[i] for i in indices]
        return ColumnarBlock(columns, len(indices))

    def select(self, names):
        """Keep only ``names`` (column order follows ``names``)."""
        return ColumnarBlock(
            {name: self._columns[name] for name in names}, self._num_rows
        )

    @classmethod
    def concat(cls, blocks):
        """Concatenate blocks row-wise (schemas must match; empty
        blocks are skipped)."""
        blocks = [b for b in blocks if b.num_rows]
        if not blocks:
            return cls.empty()
        names = blocks[0].column_names
        for block in blocks[1:]:
            if block.column_names != names:
                raise NotColumnar(
                    "cannot concat blocks with different schemas"
                )
        columns = {}
        for name in names:
            parts = [b.column(name) for b in blocks]
            if all(isinstance(p, np.ndarray) for p in parts):
                columns[name] = np.concatenate(parts)
            else:
                merged = []
                for part in parts:
                    merged.extend(
                        list(part) if isinstance(part, np.ndarray) else part
                    )
                columns[name] = merged
        return cls(columns, sum(b.num_rows for b in blocks))

    # ------------------------------------------------------------------
    # single-buffer wire format
    # ------------------------------------------------------------------
    def to_buffer(self):
        """Encode as one buffer: ``MAGIC | u32 header_len | header
        (JSON) | column buffers`` — array columns as raw C-contiguous
        bytes, object columns as one pickle each. Deterministic for
        array-only blocks (fixed JSON key order, raw buffers)."""
        header_cols = []
        buffers = []
        for name, column in self._columns.items():
            if isinstance(column, np.ndarray):
                raw = np.ascontiguousarray(column).tobytes()
                header_cols.append({
                    "dtype": column.dtype.str,
                    "kind": "array",
                    "len": len(raw),
                    "name": name,
                    "shape": list(column.shape),
                })
            else:
                raw = pickle.dumps(
                    list(column), protocol=pickle.HIGHEST_PROTOCOL
                )
                header_cols.append({
                    "kind": "object",
                    "len": len(raw),
                    "name": name,
                })
            buffers.append(raw)
        header = json.dumps(
            {"cols": header_cols, "n": self._num_rows},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        parts = [MAGIC, len(header).to_bytes(4, "little"), header]
        parts.extend(buffers)
        return b"".join(parts)

    @classmethod
    def from_buffer(cls, data):
        """Decode :meth:`to_buffer` output. Array columns are
        ``np.frombuffer`` views over ``data`` (read-only, zero-copy)."""
        if data[:4] != MAGIC:
            raise ValueError("not a columnar buffer (bad magic)")
        header_len = int.from_bytes(data[4:8], "little")
        header = json.loads(data[8:8 + header_len].decode("utf-8"))
        offset = 8 + header_len
        view = memoryview(data)
        columns = {}
        for spec in header["cols"]:
            raw = view[offset:offset + spec["len"]]
            offset += spec["len"]
            if spec["kind"] == "array":
                columns[spec["name"]] = np.frombuffer(
                    raw, dtype=np.dtype(spec["dtype"])
                ).reshape(spec["shape"])
            else:
                columns[spec["name"]] = pickle.loads(raw)
        return cls(columns, header["n"])

    def __repr__(self):
        kinds = {
            name: (
                f"{column.dtype}{list(column.shape[1:])}"
                if isinstance(column, np.ndarray) else "object"
            )
            for name, column in self._columns.items()
        }
        return f"<ColumnarBlock {self._num_rows} rows: {kinds}>"


def is_columnar_buffer(data):
    """True iff ``data`` is a :meth:`ColumnarBlock.to_buffer` blob."""
    return bytes(data[:4]) == MAGIC
