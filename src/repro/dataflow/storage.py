"""Storage Memory management: caching, LRU eviction, disk spill.

Models the Storage region of the abstract memory model. Spark-style
elastic storage evicts least-recently-used partitions to disk when the
region fills (raising *runtimes*, not errors); Ignite-style static
memory-only storage crashes with :class:`StorageMemoryExceeded`
instead — the behavioural difference behind Figure 6's per-backend
crash pattern.

"Disk" is a byte counter plus retained partition references: the data
is never thrown away (we are one process), but every spill and
re-read is metered so benchmarks and the cost model can charge I/O.
With ``spill_dir`` set, evictions additionally write each spilled
partition's serialized blob to a real file using the checkpoint
store's tmp + rename protocol, so a crash mid-spill leaves a stray
``*.tmp`` (reclaimed on the next manager construction) rather than a
torn spill file — the regression tests inject exactly that crash and
assert no orphans leak.
"""

from __future__ import annotations

import os
import re
from collections import OrderedDict

from repro.dataflow.partition import DESERIALIZED
from repro.exceptions import StorageMemoryExceeded
from repro.metrics import NULL_METRICS
from repro.trace import NULL_TRACER

_UNSAFE_KEY = re.compile(r"[^A-Za-z0-9_.-]+")


class StorageManager:
    """Per-worker storage region with LRU eviction and spill metering.

    With a tracer attached (``ClusterContext.attach_tracer``), every
    admission, LRU spill, and spill re-read also lands on the current
    trace span as ``storage_*`` counters and ``spill``/``spill_read``
    events, so traces show exactly which cached table paid disk I/O.

    With a metrics registry attached (``attach_metrics``), the region
    additionally emits a ``storage_cached_bytes`` occupancy timeline,
    exact hit/miss/eviction/spill counters, and a residency-age
    histogram (how many registry ticks each admitted partition stayed
    memory-resident before its LRU eviction).
    """

    def __init__(self, capacity_bytes, spill_enabled=True, spill_dir=None):
        self.capacity_bytes = int(capacity_bytes)
        self.spill_enabled = spill_enabled
        self.spill_dir = str(spill_dir) if spill_dir is not None else None
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self._m = None
        self._cached = OrderedDict()   # key -> (partition, bytes)
        self._spilled = {}             # key -> (partition, bytes)
        self._spill_files = {}         # key -> on-disk blob path
        self._admitted_tick = {}       # key -> registry tick at admission
        self.used_bytes = 0
        self.peak_bytes = 0
        self.spilled_bytes_total = 0
        self.spill_read_bytes_total = 0
        self.eviction_count = 0
        self.hit_count = 0
        self.miss_count = 0
        self.reclaimed_tmp_count = 0
        if self.spill_dir is not None:
            from repro.recovery.store import reclaim_tmp_files

            os.makedirs(self.spill_dir, exist_ok=True)
            # Stray *.tmp files are the residue of a crash mid-spill;
            # only complete (renamed) spill files are ever trusted.
            self.reclaimed_tmp_count = len(reclaim_tmp_files(self.spill_dir))

    def _spill_to_disk(self, key, partition):
        """Write a spilled partition's serialized blob to a real file
        via tmp + rename. Failures leave no tmp residue and fall back
        to the in-memory retained copy (the spill stays metered).

        The file name carries the writing process's pid: under the
        process execution backend a forked child inherits this manager,
        and pid-scoping keeps a child's spill (discarded with the
        child) from ever clobbering — or being trusted as — the
        driver's copy of the same key."""
        if self.spill_dir is None:
            return
        from repro.recovery.store import atomic_write_bytes

        name = _UNSAFE_KEY.sub("-", str(key)).strip("-") or "partition"
        path = os.path.join(self.spill_dir, f"{name}.p{os.getpid()}.spill")
        try:
            atomic_write_bytes(path, partition.serialized_blob(),
                               fsync=False)
        except OSError:
            return  # retained in-memory copy still serves re-reads
        self._spill_files[key] = path

    def _drop_spill_file(self, key):
        path = self._spill_files.pop(key, None)
        if path is not None and os.path.exists(path):
            os.remove(path)

    def attach_metrics(self, metrics, owner):
        """Emit this region's timeline and counters on ``metrics``,
        labelled with the owning worker."""
        self.metrics = metrics
        owner = str(owner)
        self._m = {
            "cached_bytes": metrics.gauge(
                "storage_cached_bytes", worker=owner
            ),
            "hits": metrics.counter("storage_hits_total", worker=owner),
            "misses": metrics.counter("storage_misses_total", worker=owner),
            "evictions": metrics.counter(
                "storage_evictions_total", worker=owner
            ),
            "spill_bytes": metrics.counter(
                "storage_spill_bytes_total", worker=owner
            ),
            "spill_read_bytes": metrics.counter(
                "storage_spill_read_bytes_total", worker=owner
            ),
            "residency": metrics.histogram(
                "storage_residency_age_ticks", worker=owner
            ),
            "crashes": metrics.counter(
                "crash_total", worker=owner, region="storage",
                exception=StorageMemoryExceeded.__name__,
            ),
        }
        self._m["cached_bytes"].set(self.used_bytes)
        return self

    def _sample_occupancy(self):
        if self._m is not None:
            self._m["cached_bytes"].set(self.used_bytes)

    def _crash(self, message):
        if self._m is not None:
            self._m["crashes"].inc()
        raise StorageMemoryExceeded(message)

    def cache(self, key, partition, persistence=DESERIALIZED):
        """Admit a partition into Storage Memory.

        Evicts LRU partitions to disk to make room when spill is
        enabled; otherwise raises :class:`StorageMemoryExceeded` when
        the region cannot hold the partition. Re-admitting a key that
        was previously evicted supersedes its spilled copy: the key
        lives in exactly one place afterwards, so ``cached_bytes`` and
        the spill counters stay consistent across evict/re-cache
        cycles.
        """
        if key in self._cached:
            self._touch(key)
            return
        nbytes = partition.memory_bytes(persistence)
        if nbytes > self.capacity_bytes and not self.spill_enabled:
            self._crash(
                f"partition of {nbytes} B exceeds storage region of "
                f"{self.capacity_bytes} B and spills are disabled"
            )
        self._make_room(nbytes)
        # The fresh admission is authoritative; drop any stale spilled
        # copy so the key is not double-tracked (and a later eviction
        # cannot double-count its bytes).
        self._spilled.pop(key, None)
        self._drop_spill_file(key)
        self._cached[key] = (partition, nbytes)
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.tracer.add("storage_cached_bytes", nbytes)
        if self._m is not None:
            self._admitted_tick[key] = self.metrics._tick
            self._sample_occupancy()

    def _make_room(self, needed):
        while self.used_bytes + needed > self.capacity_bytes and self._cached:
            if not self.spill_enabled:
                self._crash(
                    f"storage region full ({self.used_bytes} B used, "
                    f"{needed} B needed, capacity {self.capacity_bytes} B) "
                    "and spills are disabled"
                )
            evict_key, (partition, nbytes) = self._cached.popitem(last=False)
            self._spilled[evict_key] = (partition, nbytes)
            self._spill_to_disk(evict_key, partition)
            self.used_bytes -= nbytes
            self.spilled_bytes_total += nbytes
            self.eviction_count += 1
            self.tracer.add("storage_spill_bytes", nbytes)
            self.tracer.event("spill", key=str(evict_key), bytes=nbytes)
            if self._m is not None:
                self._m["evictions"].inc()
                self._m["spill_bytes"].inc(nbytes)
                admitted = self._admitted_tick.pop(evict_key, None)
                if admitted is not None:
                    self._m["residency"].observe(
                        self.metrics._tick - admitted
                    )
                self._sample_occupancy()
        if self.used_bytes + needed > self.capacity_bytes:
            if not self.spill_enabled:
                self._crash(
                    f"partition of {needed} B cannot fit in storage region "
                    f"of {self.capacity_bytes} B"
                )
            # Nothing left to evict: the new partition itself goes
            # straight to disk (counted below by the caller's get()).

    def _touch(self, key):
        self._cached.move_to_end(key)

    def get(self, key):
        """Fetch a cached partition, reading it back from disk (and
        metering the read) if it was spilled. Returns None on miss.

        A memory-resident fetch counts as a hit; a spilled fetch also
        counts as a hit (the data survived) but pays the metered
        ``spill_read``; an unknown key is a miss.
        """
        if key in self._cached:
            self._touch(key)
            self.hit_count += 1
            if self._m is not None:
                self._m["hits"].inc()
            return self._cached[key][0]
        if key in self._spilled:
            partition, nbytes = self._spilled.pop(key)
            self.hit_count += 1
            self.spill_read_bytes_total += nbytes
            self.tracer.add("storage_spill_read_bytes", nbytes)
            self.tracer.event("spill_read", key=str(key), bytes=nbytes)
            if self._m is not None:
                self._m["hits"].inc()
                self._m["spill_read_bytes"].inc(nbytes)
            self._make_room(nbytes)
            if self.used_bytes + nbytes <= self.capacity_bytes:
                self._cached[key] = (partition, nbytes)
                self._drop_spill_file(key)
                self.used_bytes += nbytes
                self.peak_bytes = max(self.peak_bytes, self.used_bytes)
                if self._m is not None:
                    self._admitted_tick[key] = self.metrics._tick
                    self._sample_occupancy()
            else:
                self._spilled[key] = (partition, nbytes)
            return partition
        self.miss_count += 1
        if self._m is not None:
            self._m["misses"].inc()
        return None

    def evict(self, key):
        """Drop a partition from the region entirely (unpersist)."""
        if key in self._cached:
            _, nbytes = self._cached.pop(key)
            self.used_bytes -= nbytes
            self._sample_occupancy()
        self._spilled.pop(key, None)
        self._drop_spill_file(key)
        self._admitted_tick.pop(key, None)

    def clear(self):
        self._cached.clear()
        self._spilled.clear()
        for key in list(self._spill_files):
            self._drop_spill_file(key)
        self._admitted_tick.clear()
        self.used_bytes = 0
        self._sample_occupancy()

    def cached_keys(self):
        return list(self._cached)

    def spilled_keys(self):
        return list(self._spilled)

    def spill_file_paths(self):
        """On-disk blob paths of currently spilled partitions (empty
        without ``spill_dir``)."""
        return dict(self._spill_files)

    def __repr__(self):
        return (
            f"<StorageManager {self.used_bytes}/{self.capacity_bytes} B, "
            f"{len(self._cached)} cached, {len(self._spilled)} spilled>"
        )
