"""Storage Memory management: caching, LRU eviction, disk spill.

Models the Storage region of the abstract memory model. Spark-style
elastic storage evicts least-recently-used partitions to disk when the
region fills (raising *runtimes*, not errors); Ignite-style static
memory-only storage crashes with :class:`StorageMemoryExceeded`
instead — the behavioural difference behind Figure 6's per-backend
crash pattern.

"Disk" is a byte counter plus retained partition references: the data
is never thrown away (we are one process), but every spill and
re-read is metered so benchmarks and the cost model can charge I/O.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.dataflow.partition import DESERIALIZED
from repro.exceptions import StorageMemoryExceeded
from repro.trace import NULL_TRACER


class StorageManager:
    """Per-worker storage region with LRU eviction and spill metering.

    With a tracer attached (``ClusterContext.attach_tracer``), every
    admission, LRU spill, and spill re-read also lands on the current
    trace span as ``storage_*`` counters and ``spill``/``spill_read``
    events, so traces show exactly which cached table paid disk I/O.
    """

    def __init__(self, capacity_bytes, spill_enabled=True):
        self.capacity_bytes = int(capacity_bytes)
        self.spill_enabled = spill_enabled
        self.tracer = NULL_TRACER
        self._cached = OrderedDict()   # key -> (partition, bytes)
        self._spilled = {}             # key -> (partition, bytes)
        self.used_bytes = 0
        self.peak_bytes = 0
        self.spilled_bytes_total = 0
        self.spill_read_bytes_total = 0
        self.eviction_count = 0

    def cache(self, key, partition, persistence=DESERIALIZED):
        """Admit a partition into Storage Memory.

        Evicts LRU partitions to disk to make room when spill is
        enabled; otherwise raises :class:`StorageMemoryExceeded` when
        the region cannot hold the partition.
        """
        if key in self._cached:
            self._touch(key)
            return
        nbytes = partition.memory_bytes(persistence)
        if nbytes > self.capacity_bytes and not self.spill_enabled:
            raise StorageMemoryExceeded(
                f"partition of {nbytes} B exceeds storage region of "
                f"{self.capacity_bytes} B and spills are disabled"
            )
        self._make_room(nbytes)
        self._cached[key] = (partition, nbytes)
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.tracer.add("storage_cached_bytes", nbytes)

    def _make_room(self, needed):
        while self.used_bytes + needed > self.capacity_bytes and self._cached:
            if not self.spill_enabled:
                raise StorageMemoryExceeded(
                    f"storage region full ({self.used_bytes} B used, "
                    f"{needed} B needed, capacity {self.capacity_bytes} B) "
                    "and spills are disabled"
                )
            evict_key, (partition, nbytes) = self._cached.popitem(last=False)
            self._spilled[evict_key] = (partition, nbytes)
            self.used_bytes -= nbytes
            self.spilled_bytes_total += nbytes
            self.eviction_count += 1
            self.tracer.add("storage_spill_bytes", nbytes)
            self.tracer.event("spill", key=str(evict_key), bytes=nbytes)
        if self.used_bytes + needed > self.capacity_bytes:
            if not self.spill_enabled:
                raise StorageMemoryExceeded(
                    f"partition of {needed} B cannot fit in storage region "
                    f"of {self.capacity_bytes} B"
                )
            # Nothing left to evict: the new partition itself goes
            # straight to disk (counted below by the caller's get()).

    def _touch(self, key):
        self._cached.move_to_end(key)

    def get(self, key):
        """Fetch a cached partition, reading it back from disk (and
        metering the read) if it was spilled. Returns None on miss."""
        if key in self._cached:
            self._touch(key)
            return self._cached[key][0]
        if key in self._spilled:
            partition, nbytes = self._spilled.pop(key)
            self.spill_read_bytes_total += nbytes
            self.tracer.add("storage_spill_read_bytes", nbytes)
            self.tracer.event("spill_read", key=str(key), bytes=nbytes)
            self._make_room(nbytes)
            if self.used_bytes + nbytes <= self.capacity_bytes:
                self._cached[key] = (partition, nbytes)
                self.used_bytes += nbytes
                self.peak_bytes = max(self.peak_bytes, self.used_bytes)
            else:
                self._spilled[key] = (partition, nbytes)
            return partition
        return None

    def evict(self, key):
        """Drop a partition from the region entirely (unpersist)."""
        if key in self._cached:
            _, nbytes = self._cached.pop(key)
            self.used_bytes -= nbytes
        self._spilled.pop(key, None)

    def clear(self):
        self._cached.clear()
        self._spilled.clear()
        self.used_bytes = 0

    def cached_keys(self):
        return list(self._cached)

    def spilled_keys(self):
        return list(self._spilled)

    def __repr__(self):
        return (
            f"<StorageManager {self.used_bytes}/{self.capacity_bytes} B, "
            f"{len(self._cached)} cached, {len(self._spilled)} spilled>"
        )
