"""repro — reproduction of "Vista: Optimized System for Declarative
Feature Transfer from Deep CNNs at Scale" (Nakandala & Kumar, SIGMOD
2020).

Public API highlights:

- :class:`repro.core.Vista` — the declarative entry point: pick a
  roster CNN, a number of feature layers, a dataset, and cluster
  resources; Vista optimizes the configuration and runs its Staged
  plan.
- :mod:`repro.cnn` — numpy CNN inference engine with partial
  inference and the AlexNet/VGG16/ResNet50 roster.
- :mod:`repro.dataflow` — the miniature parallel-dataflow engine with
  the paper's memory model and crash semantics.
- :mod:`repro.costmodel` — the calibrated analytical model used to
  regenerate the paper's runtime figures at paper scale.
"""

from repro.core import (
    Vista,
    ResilientRunner,
    Resources,
    DatasetStats,
    VistaConfig,
    default_resources,
    optimize,
)
from repro.cnn import build_model, get_model_stats
# repro.core must be imported first: repro.explain imports from it.
from repro.explain import ExplainResult, WhatIfReport, explain, what_if
from repro.exceptions import (
    NoFeasiblePlan,
    VistaError,
    WorkloadCrash,
)
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.metrics import NULL_METRICS, MetricsRegistry
from repro.recovery import CheckpointStore
from repro.trace import Tracer

__version__ = "1.0.0"

__all__ = [
    "CheckpointStore",
    "DatasetStats",
    "ExplainResult",
    "FaultInjector",
    "FaultPlan",
    "MetricsRegistry",
    "NULL_METRICS",
    "NoFeasiblePlan",
    "ResilientRunner",
    "Resources",
    "RetryPolicy",
    "Tracer",
    "Vista",
    "VistaConfig",
    "VistaError",
    "WhatIfReport",
    "WorkloadCrash",
    "build_model",
    "default_resources",
    "explain",
    "get_model_stats",
    "optimize",
    "what_if",
    "__version__",
]
