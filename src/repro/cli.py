"""Command-line interface: ``python -m repro <command>``.

Commands
--------
models
    Show the roster CNNs with their optimizer-facing statistics.
plan
    Run the Vista optimizer (Algorithm 1) for a workload at paper
    scale and print the chosen configuration and size estimates.
estimate
    Predict runtime/crash for an approach (lazy-N / eager / vista) on
    the paper-scale cost model.
run
    Execute the workload end to end at mini scale on the real engines
    with a synthetic dataset, printing per-layer downstream F1.
    ``--checkpoint-dir`` makes stage outputs durable.
resume
    Pick up an interrupted checkpointed run: restore checksum-valid
    stage partitions from ``--checkpoint-dir``, recompute the rest.
    Takes the same observability flags as ``run`` (``--trace``,
    ``--metrics``, ``--progress``, ``--ledger``, ``--perfetto``).
explain
    Show the complete Algorithm 1 candidate ledger (every cpu with its
    Eq. 9-15 terms and rejection reasons), optionally pricing a pinned
    what-if configuration.
top
    Render the live progress view of an ``obs/v1`` run ledger —
    per-stage predicted-vs-observed seconds and the calibrated ETA —
    or validate every ledger line against the schema.
report
    Render a recorded metrics export (memory waterlines, crash
    attribution), diff two exports against a regression gate, or
    evaluate a declarative SLO ruleset (``--slo RULES TARGET``)
    against an envelope or run ledger, exiting nonzero on breach.
history
    The run-history warehouse: ``ingest`` obs/v1 ledgers and trace/v2
    envelopes into an append-only store of ``runsum/v1`` summaries,
    ``list``/``show`` them, ``diff`` two runs span-by-span
    (flamegraph-style, exiting nonzero on regressions), and ``trend``
    metric timelines with robust change-point detection (``--gate``
    exits nonzero on flagged drift).
"""

from __future__ import annotations

import argparse
import sys

from repro.memory.model import GB


def _add_workload_args(parser):
    parser.add_argument(
        "--model", default="resnet50",
        choices=["alexnet", "vgg16", "resnet50"],
    )
    parser.add_argument("--layers", type=int, default=None,
                        help="number of top feature layers (default: all)")
    parser.add_argument(
        "--dataset", default="foods", choices=["foods", "amazon"],
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--memory-gb", type=float, default=32.0)
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--gpu-gb", type=float, default=0.0)


def _add_observability_args(parser):
    """The one shared registration point for run-observability flags:
    ``run`` and ``resume`` take the identical set, so a run
    interrupted with a ledger can be resumed with a ledger."""
    parser.add_argument(
        "--trace", action="store_true",
        help="record a span trace and print the flame-style summary",
    )
    parser.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="write the recorded trace as JSON to PATH",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="record time-series metrics and print the run report "
             "(memory waterlines, predicted-vs-observed peaks)",
    )
    parser.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write a trace/v2 envelope with the metrics block to PATH",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print live per-stage progress with a cost-model ETA "
             "(online-calibrated predicted-vs-observed stage seconds)",
    )
    parser.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="stream an append-only obs/v1 run ledger to PATH as the "
             "run executes; readable to the kill point even if the "
             "run never returns (inspect with `repro top PATH`)",
    )
    parser.add_argument(
        "--perfetto", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON (driver spans + wave "
             "scheduler + forked-worker pid tracks) loadable in "
             "ui.perfetto.dev",
    )
    parser.add_argument(
        "--inject-straggler", metavar="PART:SECONDS", default=None,
        help="deterministically delay the task for partition PART by "
             "SECONDS on the simulated clock (a seeded straggler "
             "fault) — the controlled drift source the history trend "
             "gate is exercised against in CI",
    )


def _dataset_stats(name):
    from repro.core.config import DatasetStats

    if name == "foods":
        return DatasetStats(20_000, 130, 14 * 1024)
    return DatasetStats(200_000, 200, 15 * 1024)


def _workload(args):
    from repro.cnn import get_model_stats
    from repro.core.config import Resources

    stats = get_model_stats(args.model)
    count = args.layers or len(stats.feature_layers)
    layers = stats.top_feature_layers(count)
    resources = Resources(
        num_nodes=args.nodes,
        system_memory_bytes=int(args.memory_gb * GB),
        cores_per_node=args.cores,
        gpu_memory_bytes=int(args.gpu_gb * GB),
    )
    return stats, layers, _dataset_stats(args.dataset), resources


def cmd_models(args):
    from repro.cnn import MODEL_ROSTER

    print(f"{'model':10s} {'params':>8s} {'GFLOP/img':>9s} "
          f"{'|f|ser':>8s} {'|f|mem':>8s} {'|f|gpu':>8s}  feature layers")
    for name, stats in MODEL_ROSTER.items():
        print(
            f"{name:10s} {stats.total_params / 1e6:>7.1f}M "
            f"{stats.total_flops / 1e9:>9.2f} "
            f"{stats.serialized_bytes / GB:>7.2f}G "
            f"{stats.runtime_mem_bytes / GB:>7.2f}G "
            f"{stats.gpu_mem_bytes / GB:>7.2f}G  "
            f"{','.join(stats.feature_layers)}"
        )
    return 0


def cmd_plan(args):
    from repro.core.optimizer import optimize
    from repro.core.sizing import estimate_sizes
    from repro.exceptions import NoFeasiblePlan

    stats, layers, dataset_stats, resources = _workload(args)
    sizing = estimate_sizes(stats, layers, dataset_stats)
    print(f"workload: {args.model} x {len(layers)} layers over "
          f"{dataset_stats.num_records} records ({args.dataset})")
    for layer in layers:
        nbytes = sizing.intermediate_table_bytes[layer]
        print(f"  |T_{layer}| ~= {nbytes / GB:.2f} GB")
    print(f"  s_single = {sizing.s_single / GB:.2f} GB, "
          f"s_double = {sizing.s_double / GB:.2f} GB")
    try:
        config = optimize(stats, layers, dataset_stats, resources)
    except NoFeasiblePlan as exc:
        print(f"NO FEASIBLE PLAN: {exc}")
        return 1
    print(f"optimizer: {config.describe()}")
    return 0


def cmd_estimate(args):
    from repro.core.optimizer import optimize
    from repro.core.plans import EAGER, LAZY, STAGED
    from repro.costmodel import (
        estimate_runtime,
        ignite_default_setup,
        spark_default_setup,
        vista_setup,
    )
    from repro.costmodel.crashes import manual_setup
    from repro.costmodel.params import ClusterSpec

    stats, layers, dataset_stats, resources = _workload(args)
    cluster = ClusterSpec(
        num_nodes=args.nodes, cores_per_node=args.cores,
        system_memory_bytes=int(args.memory_gb * GB),
    )
    approach = args.approach
    if approach.startswith("lazy-"):
        cpu = int(approach.split("-")[1])
        setup = (
            spark_default_setup(cpu, dataset_stats.num_records)
            if args.backend == "spark" else ignite_default_setup(cpu)
        )
        report = estimate_runtime(
            stats, layers, dataset_stats, LAZY, setup, cluster
        )
    elif approach == "eager":
        setup = manual_setup(
            stats, layers, dataset_stats, 5, backend=args.backend,
            cluster_memory_bytes=int(args.memory_gb * GB), label="eager",
        )
        report = estimate_runtime(
            stats, layers, dataset_stats, EAGER, setup, cluster
        )
    else:  # vista
        config = optimize(stats, layers, dataset_stats, resources)
        report = estimate_runtime(
            stats, layers, dataset_stats, STAGED,
            vista_setup(config, backend=args.backend), cluster,
        )
    if report.crashed:
        print(f"{approach}: CRASH ({report.crash})")
        return 1
    print(f"{approach}: {report.minutes:.1f} min")
    for part, seconds in sorted(
        report.breakdown.items(), key=lambda item: -item[1]
    ):
        print(f"  {part:10s} {seconds / 60:>7.1f} min")
    if report.spilled_bytes:
        print(f"  spilled    {report.spilled_bytes / GB:>7.1f} GB")
    return 0


def _write_run_export(path, args, metrics_registry, tracer, result=None,
                      crash=None):
    """Write a ``trace/v2`` envelope for a metrics-enabled run: the
    summary metrics as ``results`` plus the trace and metrics blocks,
    so ``repro report --compare`` can gate run against run."""
    import json

    results = {}
    if result is not None:
        results = {
            key: value for key, value in result.metrics.items()
            if key != "recovery_log"
        }
    if crash is not None:
        results["crashed"] = True
        results["crash_exception"] = type(crash).__name__
    envelope = {
        "schema": "trace/v2",
        "bench": "run",
        "params": {
            "model": args.model, "dataset": args.dataset,
            "records": args.records, "nodes": args.nodes,
            "layers": args.layers or 2,
        },
        "results": results,
        "trace": tracer.export() if tracer is not None else None,
        "metrics": (
            metrics_registry.export()
            if metrics_registry is not None else None
        ),
    }
    with open(path, "w") as handle:
        json.dump(envelope, handle, indent=2, sort_keys=True, default=str)
    print(f"metrics export written to {path}")


def _make_ledger(args):
    """Build the run ledger when any live-observability flag asks for
    one: file-backed with ``--ledger PATH``, memory-only when only
    ``--progress``/``--perfetto`` need the event stream."""
    want = (
        getattr(args, "ledger", None) is not None
        or getattr(args, "progress", False)
        or getattr(args, "perfetto", None) is not None
    )
    if not want:
        return None
    from repro.observe import RunLedger

    return RunLedger(getattr(args, "ledger", None))


def _finalize_ledger(args, ledger, tracer):
    """Close out the run's observability artifacts (both the success
    and the crash path run through here)."""
    if ledger is None:
        return
    if getattr(args, "perfetto", None):
        from repro.observe import write_chrome_trace

        write_chrome_trace(
            args.perfetto,
            trace=tracer.export() if tracer is not None else None,
            ledger=list(ledger.events),
        )
        print(f"perfetto trace written to {args.perfetto}")
    ledger.close()
    if ledger.path:
        print(f"run ledger written to {ledger.path} "
              f"({len(ledger)} events; inspect with `repro top "
              f"{ledger.path}`)")


def _straggler_context(vista, config, spec):
    """Build the run's cluster context with a seeded straggler fault
    wired in: ``PART:SECONDS`` delays that partition's task on the
    simulated clock (no failure), recording a ``recovery`` event —
    the deterministic drift source the history trend gate flags."""
    from repro.faults import FaultInjector, FaultPlan, equip_context

    part_text, _, delay_text = str(spec).partition(":")
    try:
        partition = int(part_text)
        delay_s = float(delay_text) if delay_text else 10.0
    except ValueError:
        raise SystemExit(
            f"--inject-straggler expects PART:SECONDS, got {spec!r}"
        ) from None
    context = vista.build_context(config)
    injector = FaultInjector(
        FaultPlan().straggler(partition=partition, delay_s=delay_s),
        seed=0,
    )
    return equip_context(context, injector=injector)


def cmd_run(args):
    from repro import Vista
    from repro.core.config import Resources
    from repro.data import amazon_dataset, foods_dataset
    from repro.exceptions import WorkloadCrash

    ledger = _make_ledger(args)
    tracer = None
    if args.trace or args.trace_json or ledger is not None:
        # The ledger's span/progress events come from the tracer sink,
        # so any live-observability flag implies a tracer.
        from repro.trace import Tracer

        tracer = Tracer()
    metrics_registry = None
    if args.metrics or args.metrics_json:
        from repro.metrics import MetricsRegistry

        metrics_registry = MetricsRegistry()
    checkpoint_store = None
    if getattr(args, "checkpoint_dir", None):
        from repro.recovery import CheckpointStore

        checkpoint_store = CheckpointStore(args.checkpoint_dir)
    maker = foods_dataset if args.dataset == "foods" else amazon_dataset
    dataset = maker(num_records=args.records)
    resources = Resources(
        num_nodes=args.nodes,
        system_memory_bytes=int(args.memory_gb * GB),
        cores_per_node=args.cores,
    )
    stats_layers = args.layers
    vista = Vista(
        model_name=args.model,
        num_layers=stats_layers or 2,
        dataset=dataset,
        resources=resources,
        exec_backend=getattr(args, "backend", None) or "serial",
    )
    config = vista.optimize(tracer=tracer, metrics=metrics_registry)
    print(f"optimizer: {config.describe()}")
    context = None
    if getattr(args, "inject_straggler", None):
        context = _straggler_context(vista, config, args.inject_straggler)
    if ledger is not None:
        from repro.observe import (
            ProgressRenderer,
            environment_meta,
            predict_stage_plan,
            run_fingerprint,
        )

        meta = {
            "model": args.model, "dataset": args.dataset,
            "records": args.records, "nodes": args.nodes,
            "layers": args.layers or 2,
            "exec_backend": getattr(args, "backend", None) or "serial",
            "resumed": bool(getattr(args, "_resumed", False)),
            "env": environment_meta(),
        }
        ledger.emit("run_meta", fingerprint=run_fingerprint(meta),
                    **meta)
        stage_plan = predict_stage_plan(
            vista.model_stats, vista.layers, vista.dataset_stats,
            vista.plan, config, vista.resources, backend=vista.backend,
        )
        ledger.emit("stage_plan", plan=vista.plan.label,
                    stages=stage_plan.to_list())
        if args.progress:
            ledger.listeners.append(ProgressRenderer(stage_plan))
    try:
        result = vista.run(context=context, tracer=tracer,
                           metrics=metrics_registry,
                           checkpoint_store=checkpoint_store,
                           ledger=ledger)
    except WorkloadCrash as crash:
        if ledger is not None:
            ledger.emit("run_end",
                        status=f"crash:{type(crash).__name__}")
        print(f"CRASHED: {type(crash).__name__}: {crash}")
        if checkpoint_store is not None:
            print(
                f"checkpoints survive under {checkpoint_store.root} "
                f"(run `repro resume --checkpoint-dir "
                f"{checkpoint_store.root} ...` with the same workload "
                "to pick up from them)"
            )
        if metrics_registry is not None:
            from repro.report import render_crash_report

            print()
            print(render_crash_report(metrics_registry))
            if args.metrics_json:
                _write_run_export(
                    args.metrics_json, args, metrics_registry, tracer,
                    crash=crash,
                )
        _finalize_ledger(args, ledger, tracer)
        return 1
    if ledger is not None:
        ledger.emit("run_end", status="ok")
    for layer, layer_result in result.layer_results.items():
        print(f"  {layer:10s} dim={layer_result.feature_dim:<6d} "
              f"train F1={layer_result.downstream['f1_train']:.3f}")
    print(f"inference GFLOPs: "
          f"{result.metrics['inference_flops'] / 1e9:.3f}")
    if checkpoint_store is not None:
        _print_checkpoint_summary(checkpoint_store)
    if tracer is not None:
        exported = tracer.export()
        if args.trace:
            from repro.report import render_trace

            print()
            print(render_trace(exported))
        if args.trace_json:
            import json

            with open(args.trace_json, "w") as handle:
                json.dump(exported, handle, indent=2, sort_keys=True,
                          default=str)
            print(f"trace written to {args.trace_json}")
    if metrics_registry is not None:
        if args.metrics:
            from repro.report import render_report

            print()
            print(render_report(metrics_registry))
        if args.metrics_json:
            _write_run_export(
                args.metrics_json, args, metrics_registry, tracer,
                result=result,
            )
    _finalize_ledger(args, ledger, tracer)
    return 0


def _print_checkpoint_summary(store):
    print(
        f"checkpoints: {store.checkpoint_partitions_total} partitions / "
        f"{store.checkpoint_bytes} B written, {store.restore_total} "
        f"restored, {store.recompute_total} recomputed "
        f"(saved ratio {store.saved_ratio():.2f})"
    )
    if store.corrupt_total or store.missing_total or store.torn_manifest_total:
        print(
            f"checkpoint integrity: {store.corrupt_total} corrupt, "
            f"{store.missing_total} missing, "
            f"{store.torn_manifest_total} torn manifests — all recovered "
            "by recompute"
        )


def cmd_resume(args):
    """Resume an interrupted checkpointed run: same workload flags as
    ``run``, restoring checksum-valid stage partitions from
    ``--checkpoint-dir`` and recomputing only the rest."""
    import os

    if not os.path.isdir(args.checkpoint_dir):
        print(
            f"resume: checkpoint dir {args.checkpoint_dir!r} does not "
            "exist (nothing to resume from)",
            file=sys.stderr,
        )
        return 2
    # Mark the run_meta so history summaries can tell a resumed run
    # from a fresh one with the same workload fingerprint inputs.
    args._resumed = True
    return cmd_run(args)


def cmd_explain(args):
    from repro.core.config import DownstreamSpec
    from repro.explain import explain
    from repro.report import render_explain

    stats, layers, dataset_stats, resources = _workload(args)
    pins = {}
    if args.pin_cpu is not None:
        pins["cpu"] = args.pin_cpu
    if args.pin_plan is not None:
        pins["plan"] = args.pin_plan
    if args.pin_join is not None:
        pins["join"] = args.pin_join
    if args.pin_persistence is not None:
        pins["persistence"] = args.pin_persistence
    if args.pin_user_frac is not None:
        pins["user_fraction"] = args.pin_user_frac
    if args.pin_storage_frac is not None:
        pins["storage_fraction"] = args.pin_storage_frac
    result = explain(
        stats, layers, dataset_stats, resources,
        downstream=DownstreamSpec(), backend=args.backend,
        what_if_pins=pins or None,
    )
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(result.to_envelope(), handle, indent=2,
                      sort_keys=True, default=str)
            handle.write("\n")
        print(f"explain envelope written to {args.json}")
    else:
        print(render_explain(result))
    return 0 if result.feasible else 1


def _progress_from_events(events):
    """Rebuild the progress view a ledger recorded: the ``stage_plan``
    event restores the cost-model predictions, then every event
    replays through the same :class:`ProgressState` the live monitor
    uses. None when the ledger carries no stage plan."""
    from repro.observe import ProgressState, StagePlan

    plan_event = next(
        (e for e in events if e.get("kind") == "stage_plan"), None
    )
    if plan_event is None or not plan_event.get("stages"):
        return None
    state = ProgressState(StagePlan.from_list(
        plan_event["stages"], plan_label=plan_event.get("plan")
    ))
    for event in events:
        state.on_event(event)
    return state


def _render_ledger_summary(events, problems):
    kinds = {}
    for event in events:
        kind = event.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    last_wall = max(
        (float(e.get("wall_s") or 0.0) for e in events), default=0.0
    )
    lines = [f"### ledger — {len(events)} events, "
             f"{last_wall:.3f}s of run recorded"]
    for kind in sorted(kinds):
        lines.append(f"  {kind:<20s} {kinds[kind]:>6d}")
    for problem in problems:
        lines.append(f"  parse problem: {problem}")
    return "\n".join(lines)


def cmd_top(args):
    from repro.observe import read_ledger, render_progress, validate_events

    def load():
        return read_ledger(args.ledger)

    try:
        events, problems = load()
    except OSError as exc:
        print(f"top: cannot read {args.ledger!r}: {exc}", file=sys.stderr)
        return 2
    if args.validate:
        schema_problems = validate_events(events)
        for problem in problems:
            print(f"parse: {problem}")
        for problem in schema_problems:
            print(f"schema: {problem}")
        print(f"{len(events)} events, {len(problems)} parse problem(s), "
              f"{len(schema_problems)} schema problem(s)")
        return 1 if (problems or schema_problems) else 0

    def render(events, problems):
        state = _progress_from_events(events)
        if state is None:
            print(_render_ledger_summary(events, problems))
            return state
        print(render_progress(state))
        return state

    state = render(events, problems)
    while args.follow:
        if any(e.get("kind") == "run_end" for e in events):
            break
        import time

        time.sleep(args.interval)
        events, problems = load()
        print()
        state = render(events, problems)
    if state is not None and not state.run_ended:
        # No run_end: the run is live — or was killed mid-flight.
        print("  (no run_end event: run still in flight, or killed)")
    return 0


def cmd_report(args):
    from repro.report import (
        compare,
        has_regression,
        render_compare,
        render_report,
    )

    if getattr(args, "slo", None):
        if not args.target:
            print("report --slo RULES requires a TARGET "
                  "(trace/v2 envelope or obs/v1 ledger)",
                  file=sys.stderr)
            return 2
        from repro.observe import (
            evaluate_slo,
            has_breach,
            load_rules,
            render_slo,
        )

        try:
            rules = load_rules(args.slo)
        except (OSError, ValueError, KeyError) as exc:
            print(f"report: bad ruleset {args.slo!r}: {exc}",
                  file=sys.stderr)
            return 2
        verdicts = evaluate_slo(rules, args.target, baseline=args.baseline)
        print(render_slo(
            verdicts, title=f"SLO {args.slo} vs {args.target}"
        ))
        return 1 if has_breach(verdicts) else 0
    if args.compare:
        old_path, new_path = args.compare
        rows = compare(old_path, new_path, gate=args.gate)
        print(render_compare(rows, gate=args.gate))
        if not rows:
            print("no shared metrics to compare")
            return 2
        return 1 if has_regression(rows) else 0
    if args.metrics_json:
        print(render_report(args.metrics_json, width=args.width))
        return 0
    print("report: pass --metrics-json FILE or --compare OLD NEW",
          file=sys.stderr)
    return 2


def _default_history_rules(args):
    """Resolve the trend ruleset: ``--rules`` wins, else the repo's
    ``slo/default.yaml`` when the working directory has one."""
    import os

    if getattr(args, "rules", None):
        return args.rules
    candidate = os.path.join("slo", "default.yaml")
    return candidate if os.path.exists(candidate) else None


def cmd_history(args):
    from repro.observe import HistoryStore

    store = HistoryStore(args.store)
    command = args.history_command
    if command == "ingest":
        slo_rules = None
        rules_path = _default_history_rules(args)
        if rules_path is not None:
            from repro.observe import load_rules

            try:
                slo_rules = load_rules(rules_path)
            except (OSError, ValueError, KeyError) as exc:
                print(f"history ingest: bad ruleset {rules_path!r}: "
                      f"{exc}", file=sys.stderr)
                return 2
        failures = 0
        for path in args.paths:
            try:
                record, created = store.ingest(path, slo_rules=slo_rules)
            except (OSError, ValueError) as exc:
                print(f"history ingest: {path}: {exc}", file=sys.stderr)
                failures += 1
                continue
            verb = "ingested" if created else "already ingested"
            print(
                f"{verb} {record['run_id']} [{record['kind']}] "
                f"status={record['status']} "
                f"stages={len(record.get('stages') or {})} "
                f"from {path}"
            )
        return 2 if failures else 0
    if command == "list":
        from repro.report import render_history_list

        records = store.summaries(last=args.last)
        print(render_history_list(records,
                                  title=f"run history ({store.root})"))
        return 0 if records else 2
    # show / diff / trend all need a non-empty store.
    ids = store.run_ids()
    if not ids:
        print(f"history {command}: store {store.root!r} is empty "
              "(run `repro history ingest` first)", file=sys.stderr)
        return 2
    if command == "show":
        from repro.report import render_history_show

        try:
            record = store.load(store.resolve(args.run))
        except (KeyError, ValueError, OSError) as exc:
            print(f"history show: {exc}", file=sys.stderr)
            return 2
        print(render_history_show(record))
        return 0
    if command == "diff":
        from repro.observe import diff_runs, has_regressions
        from repro.report import render_history_diff

        try:
            base = store.load(store.resolve(args.run_a))
            target = store.load(store.resolve(args.run_b))
        except (KeyError, ValueError, OSError) as exc:
            print(f"history diff: {exc}", file=sys.stderr)
            return 2
        diff = diff_runs(base, target,
                         wall_ratio_gate=args.wall_gate,
                         wall_floor_s=args.wall_floor)
        print(render_history_diff(diff))
        return 1 if has_regressions(diff) else 0
    if command == "trend":
        from repro.observe import (
            HistoryRule,
            evaluate_trend,
            load_history_rules,
            trend_has_breach,
        )
        from repro.report import render_trend

        if args.metric:
            rules = [
                HistoryRule(name=f"metric:{spec}", metric=spec,
                            threshold=args.threshold,
                            min_runs=args.min_runs)
                for spec in args.metric
            ]
        else:
            rules_path = _default_history_rules(args)
            if rules_path is None:
                print("history trend: no --metric and no ruleset "
                      "(pass --rules FILE or run from a checkout "
                      "with slo/default.yaml)", file=sys.stderr)
                return 2
            try:
                rules = load_history_rules(rules_path)
            except (OSError, ValueError, KeyError) as exc:
                print(f"history trend: bad ruleset {rules_path!r}: "
                      f"{exc}", file=sys.stderr)
                return 2
            if not rules:
                print(f"history trend: {rules_path!r} has no "
                      "history: scope", file=sys.stderr)
                return 2
        report = evaluate_trend(store.summaries(), rules,
                                last=args.last)
        print(render_trend(
            report, title=f"history trend ({store.root})"
        ))
        if args.gate and trend_has_breach(report):
            return 1
        return 0
    raise AssertionError(f"unknown history command {command!r}")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vista (SIGMOD 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="show the CNN roster")

    plan = sub.add_parser("plan", help="run the Vista optimizer")
    _add_workload_args(plan)

    estimate = sub.add_parser(
        "estimate", help="paper-scale runtime/crash prediction"
    )
    _add_workload_args(estimate)
    estimate.add_argument(
        "--approach", default="vista",
        choices=["lazy-1", "lazy-5", "lazy-7", "eager", "vista"],
    )
    estimate.add_argument(
        "--backend", default="spark", choices=["spark", "ignite"]
    )

    def _add_run_args(sub_parser):
        _add_workload_args(sub_parser)
        sub_parser.add_argument("--records", type=int, default=80)
        _add_observability_args(sub_parser)
        sub_parser.add_argument(
            "--backend", default="serial", choices=["serial", "process"],
            help="physical wave executor: 'serial' (deterministic "
                 "in-process default) or 'process' (one forked OS "
                 "process per wave task, results via shared memory)",
        )

    run = sub.add_parser("run", help="mini-scale end-to-end execution")
    _add_run_args(run)
    run.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="durably checkpoint stage outputs under DIR (integrity-"
             "verified VCB1 partitions + SHA-256 manifest); an "
             "interrupted run can later be picked up with `repro resume`",
    )

    resume = sub.add_parser(
        "resume",
        help="resume an interrupted checkpointed run: restore checksum-"
             "valid stage partitions from --checkpoint-dir, recompute "
             "the rest",
    )
    _add_run_args(resume)
    resume.add_argument(
        "--checkpoint-dir", metavar="DIR", required=True,
        help="checkpoint directory of the interrupted run (required)",
    )

    explain = sub.add_parser(
        "explain",
        help="EXPLAIN the optimizer's plan choice (full Algorithm 1 "
             "candidate ledger), optionally with a pinned what-if",
    )
    _add_workload_args(explain)
    explain.add_argument(
        "--backend", default="spark", choices=["spark", "ignite"]
    )
    explain.add_argument(
        "--pin-cpu", type=int, default=None, metavar="N",
        help="what-if: pin the per-worker parallelism",
    )
    explain.add_argument(
        "--pin-plan", default=None,
        choices=["lazy", "lazy-reordered", "eager", "eager-reordered",
                 "staged", "staged-bj"],
        help="what-if: pin the logical plan",
    )
    explain.add_argument(
        "--pin-join", default=None, choices=["shuffle", "broadcast"],
        help="what-if: pin the physical join",
    )
    explain.add_argument(
        "--pin-persistence", default=None,
        choices=["serialized", "deserialized"],
        help="what-if: pin the persistence format",
    )
    explain.add_argument(
        "--pin-user-frac", type=float, default=None, metavar="F",
        help="what-if: pin User Memory to F x the post-DL/OS/Core "
             "worker memory",
    )
    explain.add_argument(
        "--pin-storage-frac", type=float, default=None, metavar="F",
        help="what-if: pin Storage Memory to F x the post-DL/OS/Core "
             "worker memory",
    )
    explain.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the ledger as a trace/v2 envelope to PATH instead "
             "of rendering",
    )

    top = sub.add_parser(
        "top",
        help="live progress view of an obs/v1 run ledger (per-stage "
             "predicted-vs-observed seconds, calibrated ETA)",
    )
    top.add_argument("ledger", metavar="LEDGER",
                     help="path to an obs/v1 run ledger (JSONL)")
    top.add_argument(
        "--validate", action="store_true",
        help="validate every ledger line against the obs/v1 schema "
             "instead of rendering; exit 1 on any problem",
    )
    top.add_argument(
        "--follow", action="store_true",
        help="keep re-rendering until the ledger records run_end",
    )
    top.add_argument("--interval", type=float, default=0.5,
                     help="poll interval for --follow, in seconds")

    report = sub.add_parser(
        "report",
        help="render/diff recorded metrics exports, or evaluate an "
             "SLO ruleset against an envelope or ledger",
    )
    report.add_argument(
        "target", nargs="?", metavar="TARGET", default=None,
        help="for --slo: the trace/v2 envelope or obs/v1 ledger to "
             "evaluate",
    )
    report.add_argument(
        "--slo", metavar="RULES", default=None,
        help="evaluate the declarative SLO ruleset (YAML subset or "
             "JSON) against TARGET; exit 1 on any breach-severity "
             "violation",
    )
    report.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline envelope for baseline-ratio / baseline-equal "
             "SLO rules",
    )
    report.add_argument(
        "--metrics-json", metavar="FILE", default=None,
        help="render the run report for a metrics/trace JSON export",
    )
    report.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="diff two exports; exit 1 if any metric regressed past "
             "the gate",
    )
    report.add_argument(
        "--gate", type=float, default=1.15,
        help="regression gate factor (default 1.15 = 15%% slack)",
    )
    report.add_argument("--width", type=int, default=60,
                        help="waterline chart width in columns")

    history = sub.add_parser(
        "history",
        help="run-history warehouse: ingest obs/v1 ledgers / trace/v2 "
             "envelopes, span-aligned profile diffs, drift timelines",
    )
    history.add_argument(
        "--store", metavar="DIR", default="history",
        help="history store directory (default ./history)",
    )
    hsub = history.add_subparsers(dest="history_command", required=True)
    h_ingest = hsub.add_parser(
        "ingest", help="summarize source files into the store "
                       "(idempotent: re-ingesting is a no-op)",
    )
    h_ingest.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="obs/v1 ledgers and/or trace/v2 envelopes",
    )
    h_ingest.add_argument(
        "--rules", metavar="FILE", default=None,
        help="SLO ruleset evaluated at ingest time; verdict counts "
             "are stored on the record (default: slo/default.yaml "
             "when present)",
    )
    h_list = hsub.add_parser("list", help="list ingested runs")
    h_list.add_argument("--last", type=int, default=None, metavar="K",
                        help="show only the K newest runs")
    h_show = hsub.add_parser("show", help="show one run's summary")
    h_show.add_argument(
        "run", metavar="RUN",
        help="run id prefix, or @N / @-N ingest-order ordinal",
    )
    h_diff = hsub.add_parser(
        "diff", help="span-aligned flamegraph diff of two runs; exit "
                     "1 on any regression",
    )
    h_diff.add_argument("run_a", metavar="RUN_A",
                        help="base run (id prefix or @N ordinal)")
    h_diff.add_argument("run_b", metavar="RUN_B",
                        help="target run (id prefix or @N ordinal)")
    h_diff.add_argument(
        "--wall-gate", type=float, default=2.0, metavar="RATIO",
        help="wall-second regression ratio gate (default 2.0x)",
    )
    h_diff.add_argument(
        "--wall-floor", type=float, default=0.5, metavar="SECONDS",
        help="absolute wall-second floor a regression must also clear "
             "(default 0.5s)",
    )
    h_trend = hsub.add_parser(
        "trend", help="robust (median/MAD) change-point detection "
                      "over the run timeline",
    )
    h_trend.add_argument(
        "--metric", action="append", default=None, metavar="GLOB",
        help="ad-hoc metric spec(s) over runsum/v1 records (e.g. "
             "stages.*.sim_s); repeatable; default: the history: "
             "scope of slo/default.yaml",
    )
    h_trend.add_argument(
        "--rules", metavar="FILE", default=None,
        help="ruleset file providing the history: scope "
             "(default slo/default.yaml)",
    )
    h_trend.add_argument("--last", type=int, default=None, metavar="K",
                         help="detect over only the K newest runs")
    h_trend.add_argument(
        "--threshold", type=float, default=3.5, metavar="Z",
        help="robust z-score threshold for --metric rules "
             "(default 3.5)",
    )
    h_trend.add_argument(
        "--min-runs", type=int, default=3, metavar="N",
        help="minimum runs before a series is judged (default 3)",
    )
    h_trend.add_argument(
        "--gate", action="store_true",
        help="exit 1 when any breach-severity drift is flagged",
    )
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "models": cmd_models,
        "plan": cmd_plan,
        "estimate": cmd_estimate,
        "run": cmd_run,
        "resume": cmd_resume,
        "explain": cmd_explain,
        "top": cmd_top,
        "report": cmd_report,
        "history": cmd_history,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
