"""Durable checkpoint store for long materialization runs.

A feature-transfer run is a sequence of materialized stages (partial
CNN inference tables, ``f̂_l`` prefixes, vectorized train tables).
Losing the cluster mid-run used to mean recomputing the whole epoch
from the source table; this module makes stage outputs *durable
artifacts* instead (DeepLens's materialized-view stance, SystemML's
lineage-backed intermediates): every committed partition is persisted
as its deterministic single-buffer VCB1 encoding, and a JSON manifest
carries per-partition SHA-256 digests plus the run's plan/config
fingerprint, so a resumed run restores exactly the partitions that
verify and recomputes only the missing or corrupt ones.

Durability discipline
---------------------
Every file — partition payloads and the manifest — is written with
the tmp + fsync + rename protocol: bytes go to ``<final>.tmp`` in the
same directory, are flushed and fsynced, then atomically ``os.replace``d
over the final name. A crash mid-write therefore leaves either the old
complete file or a stray ``*.tmp`` (reclaimed on the next
:meth:`CheckpointStore.bind_run`), never a half-written final file.
Torn manifests (truncated after a simulated fsync lie, or a seeded
``checkpoint-torn`` fault) are *detected* at bind time — the JSON no
longer parses or fails structural checks — and the run directory is
quarantined: all of its checkpoints are discarded and recovery falls
back to full lineage recompute rather than trusting unverifiable
state.

Integrity discipline
--------------------
Restore never trusts a file: the payload's SHA-256 is recomputed and
compared against the manifest digest, its length against the recorded
length, and its decoded row count against the recorded row count. Any
mismatch counts on ``corrupt_total`` (surfaced as the
``checkpoint_corrupt_total`` metric) and the partition is recomputed
from lineage — an injected bit flip can cost recompute time but can
never leak corrupt feature bytes into a train table.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re

from repro.dataflow.columnar import ColumnarBlock, is_columnar_buffer
from repro.dataflow.partition import Partition
from repro.exceptions import CheckpointIntegrityError
from repro.metrics import NULL_METRICS

#: Manifest schema tag.
MANIFEST_SCHEMA = "ckpt/v1"
MANIFEST_NAME = "manifest.json"

_UNSAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def _safe(name):
    """Filesystem-safe form of a stage id (``infer:image->conv5+aj`` →
    ``infer-image-conv5-aj``)."""
    return _UNSAFE.sub("-", str(name)).strip("-")


def sha256_hex(data):
    return hashlib.sha256(data).hexdigest()


def atomic_write_bytes(path, data, fsync=True):
    """Write ``data`` to ``path`` via tmp + fsync + rename so a torn
    write can never masquerade as a complete file."""
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return len(data)


def reclaim_tmp_files(directory):
    """Remove stray ``*.tmp`` files left by a mid-write crash; returns
    the reclaimed paths (resume reports them, tests assert none leak)."""
    reclaimed = []
    if not os.path.isdir(directory):
        return reclaimed
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".tmp"):
            path = os.path.join(directory, entry)
            os.remove(path)
            reclaimed.append(path)
    return reclaimed


def run_fingerprint(model_name, model_seed, layers, dataset_fp, plan_label,
                    config):
    """Deterministic fingerprint of everything that shapes a stage
    output's bytes: the model identity, layer set, dataset, logical
    plan, and the config knobs that change partition composition.
    Checkpoints are only ever restored into a run with the same
    fingerprint — a degraded plan or re-partitioned config gets a
    fresh (empty) checkpoint namespace."""
    payload = json.dumps(
        {
            "model": model_name,
            "model_seed": model_seed,
            "layers": list(layers),
            "dataset": dataset_fp,
            "plan": plan_label,
            "join": config.join,
            "persistence": config.persistence,
            "num_partitions": config.num_partitions,
        },
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def encode_partition(partition):
    """A partition's durable payload: the deterministic VCB1
    single-buffer encoding for columnar partitions, a pickle of the
    row list for legacy ones. Returns ``(kind, payload_bytes)``."""
    block = partition.block()
    if block is not None:
        return "vcb1", block.to_buffer()
    return "rows", pickle.dumps(
        partition.rows(), protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_partition(index, kind, payload):
    """Rebuild a :class:`Partition` from a verified payload."""
    if kind == "vcb1":
        if not is_columnar_buffer(payload):
            raise CheckpointIntegrityError(
                f"partition {index}: payload is not a VCB1 buffer",
                partition=index,
            )
        return Partition.from_block(index, ColumnarBlock.from_buffer(payload))
    return Partition(index, rows=pickle.loads(payload))


class CheckpointStore:
    """Durable, integrity-verified checkpoints under one root
    directory.

    One store serves many runs: each run fingerprint gets its own
    subdirectory holding a manifest plus one payload file per
    ``(stage, partition)``. Bind the store to a run with
    :meth:`bind_run` before using the stage API; the resilient
    supervisor and the executor share one store object so the
    restore/recompute counters accumulate across resume attempts.

    Counters (also emitted on an attached metrics registry):

    - ``checkpoint_bytes``: payload bytes durably written;
    - ``checkpoint_partitions_total``: partitions written;
    - ``restore_total``: partitions restored (checksum-verified);
    - ``recompute_total``: partitions computed in checkpointed stages
      (fresh work — on a resume run, what the store could *not* save);
    - ``corrupt_total``: checksum/length/row-count mismatches detected;
    - ``missing_total``: manifested payload files that disappeared;
    - ``torn_manifest_total``: unreadable manifests quarantined.
    """

    def __init__(self, root, metrics=None, fault_injector=None, fsync=True):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.fault_injector = fault_injector
        self.fsync = fsync
        self.fingerprint = None
        self._run_dir = None
        self._manifest = None
        self.checkpoint_bytes = 0
        self.checkpoint_partitions_total = 0
        self.restore_total = 0
        self.recompute_total = 0
        self.corrupt_total = 0
        self.missing_total = 0
        self.torn_manifest_total = 0
        self.reclaimed_tmp_total = 0

    def attach_metrics(self, metrics):
        self.metrics = metrics if metrics is not None else NULL_METRICS
        return self

    # ------------------------------------------------------------------
    # run binding
    # ------------------------------------------------------------------
    def bind_run(self, fingerprint):
        """Open (or create) the checkpoint namespace for one run
        fingerprint: reclaim stray tmp files from a mid-write crash,
        load the manifest, and quarantine the whole namespace if the
        manifest is torn. Returns self."""
        self.fingerprint = str(fingerprint)
        self._run_dir = os.path.join(self.root, self.fingerprint)
        os.makedirs(self._run_dir, exist_ok=True)
        reclaimed = reclaim_tmp_files(self._run_dir)
        self.reclaimed_tmp_total += len(reclaimed)
        try:
            self._manifest = self._load_manifest()
        except CheckpointIntegrityError:
            self._quarantine()
        return self

    def _manifest_path(self):
        return os.path.join(self._run_dir, MANIFEST_NAME)

    def _load_manifest(self):
        path = self._manifest_path()
        if not os.path.exists(path):
            return {"schema": MANIFEST_SCHEMA,
                    "fingerprint": self.fingerprint, "stages": {}}
        try:
            with open(path, "rb") as handle:
                manifest = json.loads(handle.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as cause:
            raise CheckpointIntegrityError(
                f"torn manifest at {path}: {cause}"
            ) from cause
        if (manifest.get("schema") != MANIFEST_SCHEMA
                or manifest.get("fingerprint") != self.fingerprint
                or not isinstance(manifest.get("stages"), dict)):
            raise CheckpointIntegrityError(
                f"manifest at {path} failed structural checks "
                f"(schema={manifest.get('schema')!r}, "
                f"fingerprint={manifest.get('fingerprint')!r})"
            )
        return manifest

    def _quarantine(self):
        """A torn manifest means nothing in the namespace is
        trustworthy: discard every file and start fresh — recovery
        falls back to recompute, never to unverifiable restores."""
        self.torn_manifest_total += 1
        self.metrics.counter("checkpoint_torn_manifest_total").inc()
        for entry in os.listdir(self._run_dir):
            os.remove(os.path.join(self._run_dir, entry))
        self._manifest = {"schema": MANIFEST_SCHEMA,
                          "fingerprint": self.fingerprint, "stages": {}}

    def _require_bound(self):
        if self._manifest is None:
            raise RuntimeError(
                "CheckpointStore is not bound to a run; call bind_run()"
            )

    def _write_manifest(self):
        payload = json.dumps(
            self._manifest, sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        path = self._manifest_path()
        atomic_write_bytes(path, payload, fsync=self.fsync)
        injector = self.fault_injector
        if injector is not None:
            injector.on_manifest_commit(path)

    # ------------------------------------------------------------------
    # stage API
    # ------------------------------------------------------------------
    def put_partition(self, stage_id, partition, wave=None):
        """Durably persist one committed partition: atomic payload
        write, SHA-256 digest into the manifest, atomic manifest
        rewrite — partition-granular durability, so a crash one wave
        later still finds this partition restorable."""
        self._require_bound()
        kind, payload = encode_partition(partition)
        digest = sha256_hex(payload)
        filename = f"{_safe(stage_id)}__p{partition.index}.ckpt"
        path = os.path.join(self._run_dir, filename)
        atomic_write_bytes(path, payload, fsync=self.fsync)
        injector = self.fault_injector
        if injector is not None:
            injector.on_checkpoint_write(stage_id, partition.index, path)
        stage = self._manifest["stages"].setdefault(
            str(stage_id),
            {"partitions": {}, "complete": False, "lineage": None},
        )
        stage["partitions"][str(partition.index)] = {
            "file": filename,
            "sha256": digest,
            "nbytes": len(payload),
            "num_rows": len(partition),
            "kind": kind,
            "wave": wave,
        }
        self._write_manifest()
        self.checkpoint_bytes += len(payload)
        self.checkpoint_partitions_total += 1
        self.recompute_total += 1
        self.metrics.counter("checkpoint_bytes_total").inc(len(payload))
        self.metrics.counter("checkpoint_partitions_total").inc()
        self.metrics.counter("recompute_total").inc()
        return digest

    def commit_stage(self, stage_id, lineage=None):
        """Mark a stage's checkpoint complete (every partition
        committed) and record its lineage tuple."""
        self._require_bound()
        stage = self._manifest["stages"].setdefault(
            str(stage_id),
            {"partitions": {}, "complete": False, "lineage": None},
        )
        stage["complete"] = True
        if lineage is not None:
            stage["lineage"] = list(lineage)
        self._write_manifest()

    def stage_entries(self, stage_id):
        """The manifest's partition entries for a stage (may be
        partial — a crash mid-stage leaves the committed prefix)."""
        self._require_bound()
        stage = self._manifest["stages"].get(str(stage_id))
        return dict(stage["partitions"]) if stage else {}

    def stage_complete(self, stage_id):
        self._require_bound()
        stage = self._manifest["stages"].get(str(stage_id))
        return bool(stage and stage.get("complete"))

    def restore_stage(self, stage_id, recovery_log=None):
        """Restore every checksum-valid partition of a stage.

        Returns ``{partition_index: Partition}`` for entries whose
        payload verifies (digest, length, and row count all match the
        manifest). Corrupt or missing entries are dropped from the
        manifest — with the integrity error (and its ``__cause__``
        chain) recorded on ``recovery_log`` — so the caller recomputes
        exactly those partitions from lineage.
        """
        self._require_bound()
        restored = {}
        dropped = []
        for key, entry in sorted(
            self.stage_entries(stage_id).items(), key=lambda kv: int(kv[0])
        ):
            index = int(key)
            try:
                restored[index] = self._verify_and_load(
                    stage_id, index, entry
                )
            except CheckpointIntegrityError as err:
                dropped.append(key)
                kind = ("missing" if isinstance(
                    err.__cause__, FileNotFoundError) else "corrupt")
                if kind == "missing":
                    self.missing_total += 1
                    self.metrics.counter("checkpoint_missing_total").inc()
                else:
                    self.corrupt_total += 1
                    self.metrics.counter("checkpoint_corrupt_total").inc()
                if recovery_log is not None:
                    recovery_log.record(
                        "checkpoint_invalid", stage=str(stage_id),
                        partition=index, kind=kind, error=str(err),
                        cause=type(err.__cause__).__name__
                        if err.__cause__ is not None else None,
                    )
        if dropped:
            stage = self._manifest["stages"].get(str(stage_id))
            for key in dropped:
                stage["partitions"].pop(key, None)
            stage["complete"] = False
            self._write_manifest()
        if restored:
            self.restore_total += len(restored)
            self.metrics.counter("restore_total").inc(len(restored))
        return restored

    def _verify_and_load(self, stage_id, index, entry):
        path = os.path.join(self._run_dir, entry["file"])
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
        except FileNotFoundError as cause:
            raise CheckpointIntegrityError(
                f"stage {stage_id!r} partition {index}: payload file "
                f"{entry['file']} is missing",
                stage=str(stage_id), partition=index,
            ) from cause
        if len(payload) != entry["nbytes"]:
            raise CheckpointIntegrityError(
                f"stage {stage_id!r} partition {index}: payload is "
                f"{len(payload)} B, manifest says {entry['nbytes']} B "
                "(torn write)",
                stage=str(stage_id), partition=index,
            )
        digest = sha256_hex(payload)
        if digest != entry["sha256"]:
            raise CheckpointIntegrityError(
                f"stage {stage_id!r} partition {index}: SHA-256 mismatch "
                f"({digest[:12]}… != {entry['sha256'][:12]}…)",
                stage=str(stage_id), partition=index,
            )
        try:
            partition = decode_partition(index, entry["kind"], payload)
        except CheckpointIntegrityError:
            raise
        except Exception as cause:
            raise CheckpointIntegrityError(
                f"stage {stage_id!r} partition {index}: payload failed "
                f"to decode: {cause}",
                stage=str(stage_id), partition=index,
            ) from cause
        if len(partition) != entry["num_rows"]:
            raise CheckpointIntegrityError(
                f"stage {stage_id!r} partition {index}: decoded "
                f"{len(partition)} rows, manifest says {entry['num_rows']}",
                stage=str(stage_id), partition=index,
            )
        return partition

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def valid_partition_count(self):
        """Manifest-level count of checkpointed partitions for the
        bound run — the resume-first policy's progress measure (files
        are verified lazily at restore time)."""
        self._require_bound()
        return sum(
            len(stage["partitions"])
            for stage in self._manifest["stages"].values()
        )

    def stages(self):
        self._require_bound()
        return sorted(self._manifest["stages"])

    def counters(self):
        """Flat dict of the store's counters (merged into
        ``WorkloadResult.metrics`` by the executor)."""
        return {
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoint_partitions_total": self.checkpoint_partitions_total,
            "restore_total": self.restore_total,
            "recompute_total": self.recompute_total,
            "checkpoint_corrupt_total": self.corrupt_total,
            "checkpoint_missing_total": self.missing_total,
            "checkpoint_torn_manifest_total": self.torn_manifest_total,
            "checkpoint_reclaimed_tmp_total": self.reclaimed_tmp_total,
        }

    def saved_ratio(self):
        """Fraction of checkpoint-eligible partitions served from the
        store instead of recomputed: ``restore / (restore +
        recompute)``; 0.0 before any checkpointed stage ran."""
        total = self.restore_total + self.recompute_total
        return self.restore_total / total if total else 0.0

    def __repr__(self):
        return (
            f"<CheckpointStore {self.root} run={self.fingerprint} "
            f"restored={self.restore_total} "
            f"recomputed={self.recompute_total}>"
        )
