"""Durable checkpoint/resume for long materialization runs.

See :mod:`repro.recovery.store` for the format and the durability /
integrity disciplines; DESIGN.md §4i for the resume protocol.
"""

from repro.recovery.store import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    CheckpointStore,
    atomic_write_bytes,
    decode_partition,
    encode_partition,
    reclaim_tmp_files,
    run_fingerprint,
    sha256_hex,
)

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "CheckpointStore",
    "atomic_write_bytes",
    "decode_partition",
    "encode_partition",
    "reclaim_tmp_files",
    "run_fingerprint",
    "sha256_hex",
]
