"""Feature preprocessing: standardization and train/test splitting.

The paper evaluates on a held-out "20% of the data" test split
(Section 5.2); splits here are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np


def standardize(train_features, *other_feature_sets):
    """Zero-mean/unit-variance scale fitted on the training set and
    applied to every passed set. Returns arrays in the given order."""
    train_features = np.asarray(train_features, dtype=np.float64)
    mean = train_features.mean(axis=0)
    std = train_features.std(axis=0)
    std[std == 0.0] = 1.0
    scaled = [(train_features - mean) / std]
    for features in other_feature_sets:
        features = np.asarray(features, dtype=np.float64)
        scaled.append((features - mean) / std)
    if not other_feature_sets:
        return scaled[0]
    return tuple(scaled)


def train_test_split(features, labels, test_fraction=0.2, seed=0):
    """Deterministic shuffled split; returns (X_tr, X_te, y_tr, y_te)."""
    features = np.asarray(features)
    labels = np.asarray(labels)
    if len(features) != len(labels):
        raise ValueError("features and labels must have equal length")
    n = len(labels)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    cut = int(round(n * (1.0 - test_fraction)))
    train_idx, test_idx = order[:cut], order[cut:]
    return (
        features[train_idx], features[test_idx],
        labels[train_idx], labels[test_idx],
    )
