"""Multi-layer perceptron classifier.

Used in the TFT+Beam comparison (Figure 7B): "a 3-layer MLP (each
hidden layer has 1024 units) for 10 iterations using distributed
TF/Horovod". Here it is a plain numpy MLP trained with full-batch
gradient descent; hidden widths default smaller so tests stay fast but
the paper's configuration is one constructor call away.
"""

from __future__ import annotations

import numpy as np


class MLPClassifier:
    """Binary MLP with ReLU hidden layers and a logistic output."""

    def __init__(self, hidden_units=(64, 64), iterations=10,
                 learning_rate=0.05, random_state=0):
        self.hidden_units = tuple(hidden_units)
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.random_state = random_state
        self._weights = None
        self._biases = None

    def fit(self, features, labels):
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        rng = np.random.default_rng(self.random_state)
        sizes = [features.shape[1], *self.hidden_units, 1]
        self._weights = [
            rng.normal(0, np.sqrt(2.0 / sizes[i]), (sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self._biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        n = len(labels)
        for _ in range(self.iterations):
            activations, pre = self._forward(features)
            probs = activations[-1][:, 0]
            delta = ((probs - labels) / n)[:, None]
            for layer in reversed(range(len(self._weights))):
                grad_w = activations[layer].T @ delta
                grad_b = delta.sum(axis=0)
                if layer > 0:
                    delta = (delta @ self._weights[layer].T) * (
                        pre[layer - 1] > 0
                    )
                self._weights[layer] -= self.learning_rate * grad_w
                self._biases[layer] -= self.learning_rate * grad_b
        return self

    def _forward(self, features):
        activations = [features]
        pre_activations = []
        out = features
        last = len(self._weights) - 1
        for layer, (weights, bias) in enumerate(
            zip(self._weights, self._biases)
        ):
            z = out @ weights + bias
            if layer < last:
                pre_activations.append(z)
                out = np.maximum(z, 0.0)
            else:
                out = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
            activations.append(out)
        return activations, pre_activations

    def predict_proba(self, features):
        if self._weights is None:
            raise RuntimeError("model is not fitted; call fit() first")
        features = np.asarray(features, dtype=np.float64)
        activations, _ = self._forward(features)
        return activations[-1][:, 0]

    def predict(self, features):
        return (self.predict_proba(features) >= 0.5).astype(np.int64)
