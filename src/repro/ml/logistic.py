"""Binary logistic regression with elastic-net regularization.

The paper's downstream model M: "logistic regression with elastic net
regularization with alpha = 0.5 and a regularization value of 0.01"
trained "for 10 iterations" (Section 5.1, Figure 8). Training is
full-batch gradient descent with an L1 proximal step, the iteration
structure MLlib uses, so the cost model's "first iteration dominates"
accounting (Appendix C) carries over.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(z):
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression:
    """Elastic-net logistic regression via proximal gradient descent.

    Parameters
    ----------
    reg_param:
        Overall regularization strength (the paper's 0.01).
    elastic_net_param:
        Mix between L1 (1.0) and L2 (0.0); the paper's alpha = 0.5.
    iterations:
        Gradient steps; the paper runs 10.
    learning_rate:
        Step size for gradient descent.
    """

    def __init__(self, reg_param=0.01, elastic_net_param=0.5, iterations=10,
                 learning_rate=1.0):
        self.reg_param = reg_param
        self.elastic_net_param = elastic_net_param
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.weights = None
        self.bias = 0.0

    def fit(self, features, labels):
        """Train on (n, d) features and (n,) binary {0, 1} labels."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        n, d = features.shape
        self.weights = np.zeros(d)
        self.bias = 0.0
        l1 = self.reg_param * self.elastic_net_param
        l2 = self.reg_param * (1.0 - self.elastic_net_param)
        # Normalize the step by a Lipschitz-style bound so training is
        # stable across feature scales without per-dataset tuning.
        lipschitz = 0.25 * (np.square(features).sum(axis=1).mean() + 1.0) + l2
        step = self.learning_rate / max(lipschitz, 1e-12)
        for _ in range(self.iterations):
            margins = features @ self.weights + self.bias
            residual = _sigmoid(margins) - labels
            grad_w = features.T @ residual / n + l2 * self.weights
            grad_b = residual.mean()
            self.weights -= step * grad_w
            self.bias -= step * grad_b
            # Proximal (soft-threshold) step for the L1 part.
            threshold = step * l1
            self.weights = np.sign(self.weights) * np.maximum(
                np.abs(self.weights) - threshold, 0.0
            )
        return self

    def decision_function(self, features):
        self._check_fitted()
        return np.asarray(features, dtype=np.float64) @ self.weights + self.bias

    def predict_proba(self, features):
        return _sigmoid(self.decision_function(features))

    def predict(self, features):
        return (self.decision_function(features) >= 0.0).astype(np.int64)

    def _check_fitted(self):
        if self.weights is None:
            raise RuntimeError("model is not fitted; call fit() first")
