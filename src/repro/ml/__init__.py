"""Downstream ML models and utilities (the workload's ``M``).

The paper trains logistic regression with elastic-net regularization
(alpha = 0.5, lambda = 0.01, 10 iterations — Figure 8's caption) as the
primary downstream model, a decision tree as the "data scientists often
prefer trees" alternative (Section 5.2), and a 3-layer MLP for the
TFT+Beam comparison (Figure 7B). All are implemented from scratch on
numpy, standing in for MLlib / distributed TF.
"""

from repro.ml.logistic import LogisticRegression
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.metrics import accuracy_score, f1_score
from repro.ml.preprocess import standardize, train_test_split

__all__ = [
    "DecisionTreeClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "accuracy_score",
    "f1_score",
    "standardize",
    "train_test_split",
]
