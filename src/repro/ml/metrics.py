"""Classification metrics: F1 (the paper's Figure 8 metric) and
accuracy."""

from __future__ import annotations

import numpy as np


def _counts(y_true, y_pred):
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    tp = int(((y_true == 1) & (y_pred == 1)).sum())
    fp = int(((y_true == 0) & (y_pred == 1)).sum())
    fn = int(((y_true == 1) & (y_pred == 0)).sum())
    return tp, fp, fn


def f1_score(y_true, y_pred):
    """Binary F1 of the positive class; 0.0 when undefined."""
    tp, fp, fn = _counts(y_true, y_pred)
    denom = 2 * tp + fp + fn
    if denom == 0:
        return 0.0
    return 2 * tp / denom


def accuracy_score(y_true, y_pred):
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.size == 0:
        return 0.0
    return float((y_true == y_pred).mean())
