"""CART-style binary decision tree classifier.

Section 5.2: "We also tried a decision tree as the downstream ML
model" — the paper observes conventional-depth trees do not benefit
much from CNN features, which our Figure 8 bench re-checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    prediction: float = 0.5  # P(label = 1) at a leaf

    @property
    def is_leaf(self):
        return self.left is None


def _gini(counts):
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return 1.0 - np.square(p).sum()


class DecisionTreeClassifier:
    """Greedy CART tree on binary labels with Gini impurity splits.

    ``max_features`` optionally subsamples split candidates per node,
    which keeps training tractable on wide CNN-feature matrices.
    """

    def __init__(self, max_depth=5, min_samples_split=10, max_features=None,
                 random_state=0):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.random_state = random_state
        self._root = None

    def fit(self, features, labels):
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        rng = np.random.default_rng(self.random_state)
        self._root = self._grow(features, labels, depth=0, rng=rng)
        return self

    def _grow(self, features, labels, depth, rng):
        node = _Node(prediction=labels.mean() if len(labels) else 0.5)
        if (
            depth >= self.max_depth
            or len(labels) < self.min_samples_split
            or labels.min() == labels.max()
        ):
            return node
        split = self._best_split(features, labels, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], labels[mask], depth + 1, rng)
        node.right = self._grow(features[~mask], labels[~mask], depth + 1, rng)
        return node

    def _best_split(self, features, labels, rng):
        n, d = features.shape
        candidates = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            candidates = rng.choice(d, size=self.max_features, replace=False)
        parent_counts = np.bincount(labels, minlength=2).astype(np.float64)
        best = None
        best_gain = 1e-12
        parent_impurity = _gini(parent_counts)
        for feature in candidates:
            order = np.argsort(features[:, feature], kind="stable")
            values = features[order, feature]
            sorted_labels = labels[order]
            ones = np.cumsum(sorted_labels)
            totals = np.arange(1, n + 1)
            # Candidate split after each position where the value changes.
            change = np.nonzero(np.diff(values))[0]
            for position in change:
                left_n = totals[position]
                left_ones = ones[position]
                left = np.array(
                    [left_n - left_ones, left_ones], dtype=np.float64
                )
                right = parent_counts - left
                weighted = (
                    left_n * _gini(left) + (n - left_n) * _gini(right)
                ) / n
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    threshold = 0.5 * (values[position] + values[position + 1])
                    best = (int(feature), float(threshold))
        return best

    def predict_proba(self, features):
        if self._root is None:
            raise RuntimeError("model is not fitted; call fit() first")
        features = np.asarray(features, dtype=np.float64)
        return np.array([self._walk(row) for row in features])

    def _walk(self, row):
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict(self, features):
        return (self.predict_proba(features) >= 0.5).astype(np.int64)
