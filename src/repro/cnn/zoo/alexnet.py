"""AlexNet (Krizhevsky et al., 2012) — the paper's smallest roster CNN.

The paper transfers layers conv5 through fc8 (|L| = 4). The ``full``
profile is the real 227x227 architecture; the ``mini`` profile keeps
the same layer names and chain structure at 32x32 with narrow channels
so it executes quickly in tests and examples.
"""

from __future__ import annotations

from repro.cnn.shapes import LayerSpec

NAME = "alexnet"
FULL_INPUT_SHAPE = (227, 227, 3)
MINI_INPUT_SHAPE = (32, 32, 3)
FEATURE_LAYERS = ["conv5", "fc6", "fc7", "fc8"]


def full_specs():
    """The real AlexNet chain (ReLU fused into conv/dense layers)."""
    return [
        LayerSpec("conv1", "conv", {"filters": 96, "kernel": 11, "stride": 4}),
        LayerSpec("lrn1", "lrn"),
        LayerSpec("pool1", "maxpool", {"kernel": 3, "stride": 2}),
        LayerSpec("conv2", "conv", {"filters": 256, "kernel": 5, "padding": 2}),
        LayerSpec("lrn2", "lrn"),
        LayerSpec("pool2", "maxpool", {"kernel": 3, "stride": 2}),
        LayerSpec("conv3", "conv", {"filters": 384, "kernel": 3, "padding": 1}),
        LayerSpec("conv4", "conv", {"filters": 384, "kernel": 3, "padding": 1}),
        LayerSpec(
            "conv5", "conv", {"filters": 256, "kernel": 3, "padding": 1},
            feature_layer=True,
        ),
        LayerSpec("pool5", "maxpool", {"kernel": 3, "stride": 2}),
        LayerSpec("flatten", "flatten"),
        LayerSpec("fc6", "dense", {"units": 4096}, feature_layer=True),
        LayerSpec("fc7", "dense", {"units": 4096}, feature_layer=True),
        LayerSpec(
            "fc8", "dense", {"units": 1000, "relu": False}, feature_layer=True
        ),
    ]


def mini_specs():
    """Scaled-down AlexNet with identical layer names for fast tests."""
    return [
        LayerSpec("conv1", "conv",
                  {"filters": 8, "kernel": 3, "stride": 2, "padding": 1}),
        LayerSpec("lrn1", "lrn"),
        LayerSpec("pool1", "maxpool", {"kernel": 2}),
        LayerSpec("conv2", "conv", {"filters": 16, "kernel": 3, "padding": 1}),
        LayerSpec("lrn2", "lrn"),
        LayerSpec("pool2", "maxpool", {"kernel": 2}),
        LayerSpec("conv3", "conv", {"filters": 16, "kernel": 3, "padding": 1}),
        LayerSpec("conv4", "conv", {"filters": 16, "kernel": 3, "padding": 1}),
        LayerSpec("conv5", "conv", {"filters": 8, "kernel": 3, "padding": 1},
                  feature_layer=True),
        LayerSpec("pool5", "maxpool", {"kernel": 2}),
        LayerSpec("flatten", "flatten"),
        LayerSpec("fc6", "dense", {"units": 32}, feature_layer=True),
        LayerSpec("fc7", "dense", {"units": 32}, feature_layer=True),
        LayerSpec("fc8", "dense", {"units": 10, "relu": False},
                  feature_layer=True),
    ]
