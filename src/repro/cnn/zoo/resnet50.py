"""ResNet50 (He et al., 2016) — the roster CNN with the largest
feature layers.

The paper transfers the top 5 layers drawn from the last two layer
blocks: conv4_6, conv5_1, conv5_2, conv5_3, and the globally pooled
2048-d output it labels fc6 (Figure 8). conv4_6's 14x14x1024 output is
what makes Eager's intermediates blow past memory on the Amazon
dataset (Figure 6) and drives the very large pre-materialized sizes in
Table 2.

Bottleneck residual blocks are single composite TensorOps so the CNN
remains a chain (paper footnote 1).
"""

from __future__ import annotations

from repro.cnn.shapes import LayerSpec

NAME = "resnet50"
FULL_INPUT_SHAPE = (224, 224, 3)
MINI_INPUT_SHAPE = (32, 32, 3)
FEATURE_LAYERS = ["conv4_6", "conv5_1", "conv5_2", "conv5_3", "fc6"]

# (stage, block count, inner filters, stride of the first block)
_FULL_STAGES = [(2, 3, 64, 1), (3, 4, 128, 2), (4, 6, 256, 2), (5, 3, 512, 2)]
_MINI_STAGES = [(2, 3, 4, 1), (3, 4, 8, 2), (4, 6, 8, 2), (5, 3, 16, 2)]


def _stage_specs(stages, feature_names):
    specs = []
    for stage, count, filters, first_stride in stages:
        for i in range(1, count + 1):
            name = f"conv{stage}_{i}"
            specs.append(
                LayerSpec(
                    name, "bottleneck",
                    {"filters": filters, "stride": first_stride if i == 1 else 1},
                    feature_layer=name in feature_names,
                )
            )
    return specs


def full_specs():
    feature_names = set(FEATURE_LAYERS)
    specs = [
        LayerSpec("conv1", "conv",
                  {"filters": 64, "kernel": 7, "stride": 2, "padding": 3}),
        LayerSpec("pool1", "maxpool", {"kernel": 3, "stride": 2, "padding": 1}),
    ]
    specs.extend(_stage_specs(_FULL_STAGES, feature_names))
    specs.append(LayerSpec("avgpool", "global_avgpool"))
    specs.append(LayerSpec("fc6", "flatten", feature_layer=True))
    specs.append(
        LayerSpec("fc1000", "dense", {"units": 1000, "relu": False})
    )
    return specs


def mini_specs():
    feature_names = set(FEATURE_LAYERS)
    specs = [
        LayerSpec("conv1", "conv",
                  {"filters": 8, "kernel": 3, "stride": 1, "padding": 1}),
        LayerSpec("pool1", "maxpool", {"kernel": 2}),
    ]
    specs.extend(_stage_specs(_MINI_STAGES, feature_names))
    specs.append(LayerSpec("avgpool", "global_avgpool"))
    specs.append(LayerSpec("fc6", "flatten", feature_layer=True))
    specs.append(
        LayerSpec("fc1000", "dense", {"units": 10, "relu": False})
    )
    return specs
