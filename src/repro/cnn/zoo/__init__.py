"""Model zoo: AlexNet, VGG16, ResNet50 in full and mini profiles.

``build_model(name, profile)`` returns an executable
:class:`repro.cnn.network.CNN`; ``get_model_stats(name)`` returns the
full-profile statistics the optimizer consumes (always the real
architecture, regardless of which profile executes).
"""

from __future__ import annotations

from repro.cnn.zoo import alexnet, resnet50, vgg16
from repro.cnn.zoo.builder import build_from_specs
from repro.cnn.zoo.roster import (
    MODEL_ROSTER,
    FeatureLayerStats,
    ModelStats,
    get_model_stats,
)
from repro.exceptions import InvalidLayerError

_ARCHITECTURES = {
    alexnet.NAME: alexnet,
    vgg16.NAME: vgg16,
    resnet50.NAME: resnet50,
}


def build_model(name, profile="mini", seed=0):
    """Build an executable roster CNN.

    ``profile="full"`` gives the real architecture (slow in numpy;
    intended for spot checks), ``profile="mini"`` a scaled-down
    analogue with identical layer names used by tests, examples and
    mini-scale integration runs.
    """
    try:
        arch = _ARCHITECTURES[name]
    except KeyError:
        raise InvalidLayerError(
            f"unknown roster model {name!r}; roster has "
            f"{sorted(_ARCHITECTURES)}"
        ) from None
    if profile == "full":
        specs, input_shape = arch.full_specs(), arch.FULL_INPUT_SHAPE
    elif profile == "mini":
        specs, input_shape = arch.mini_specs(), arch.MINI_INPUT_SHAPE
    else:
        raise ValueError(f"profile must be 'full' or 'mini', got {profile!r}")
    return build_from_specs(
        name, specs, input_shape, arch.FEATURE_LAYERS, seed=seed
    )


__all__ = [
    "MODEL_ROSTER",
    "FeatureLayerStats",
    "ModelStats",
    "build_from_specs",
    "build_model",
    "get_model_stats",
]
