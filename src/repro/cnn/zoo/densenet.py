"""DenseNet-style DAG network (mini profile).

The paper's footnote 1 notes its chain formalization "is easy to
extend ... to DAG-structured CNNs such as DenseNet"; Section 5.4 calls
generalizing Staged materialization to DAGs future work. This module
provides a mini DenseNet built on :mod:`repro.cnn.dag`: dense blocks
whose every layer consumes the channel-concatenation of *all* previous
layers in the block — the canonical multi-input feature dependency.

Feature nodes: the two block outputs and the pooled head, so the
generalized staged schedule has real multi-parent work to do.
"""

from __future__ import annotations

from repro.cnn.dag import DagCNN, DagNode
from repro.cnn.layers import Conv2D, Dense, Flatten, GlobalAvgPool, MaxPool2D
from repro.cnn.weights import he_normal, model_rng

NAME = "densenet-mini"
MINI_INPUT_SHAPE = (16, 16, 3)
GROWTH_RATE = 4


def _conv(rng, name, in_channels, out_channels, shape, kernel=3, stride=1,
          padding=1):
    weights = he_normal(
        rng, (kernel, kernel, in_channels, out_channels),
        kernel * kernel * in_channels,
    )
    return Conv2D(
        (shape[0], shape[1], in_channels), out_channels, kernel,
        stride=stride, padding=padding, weights=weights, name=name,
    )


def _dense_block(rng, nodes, block_id, input_node, input_channels, shape,
                 num_layers=3):
    """Append one dense block: layer i consumes concat(all previous).

    Returns (output node name, output channel count).
    """
    members = [input_node]
    channels = input_channels
    for i in range(1, num_layers + 1):
        name = f"block{block_id}_conv{i}"
        nodes.append(
            DagNode(
                name,
                _conv(rng, name, channels, GROWTH_RATE, shape),
                inputs=tuple(members),
                merge="concat" if len(members) > 1 else "single",
            )
        )
        members.append(name)
        channels += GROWTH_RATE
    out_name = f"block{block_id}_out"
    # transition: concat of everything, 1x1 conv to halve channels
    out_channels = channels // 2
    nodes.append(
        DagNode(
            out_name,
            _conv(rng, out_name, channels, out_channels, shape, kernel=1,
                  padding=0),
            inputs=tuple(members),
            merge="concat",
            feature_node=True,
        )
    )
    return out_name, out_channels


def build_densenet_mini(seed=0):
    """Build the mini DenseNet DAG with feature nodes
    [block1_out, block2_out, head]."""
    rng = model_rng(NAME, seed=seed)
    h, w, c = MINI_INPUT_SHAPE
    nodes = [DagNode("stem", _conv(rng, "stem", c, 8, (h, w)))]
    block1, channels = _dense_block(rng, nodes, 1, "stem", 8, (h, w))
    nodes.append(
        DagNode("pool1", MaxPool2D((h, w, channels), 2, name="pool1"),
                inputs=(block1,))
    )
    h2, w2 = h // 2, w // 2
    block2, channels = _dense_block(
        rng, nodes, 2, "pool1", channels, (h2, w2)
    )
    nodes.append(
        DagNode("gap", GlobalAvgPool((h2, w2, channels), name="gap"),
                inputs=(block2,))
    )
    nodes.append(
        DagNode("flat", Flatten((1, 1, channels), name="flat"),
                inputs=("gap",))
    )
    head_weights = he_normal(rng, (channels, 8), channels)
    nodes.append(
        DagNode(
            "head",
            Dense(channels, 8, weights=head_weights, relu=False,
                  name="head"),
            inputs=("flat",),
            feature_node=True,
        )
    )
    return DagCNN(NAME, nodes)
