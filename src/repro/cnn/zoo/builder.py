"""Instantiate executable CNNs from LayerSpec chains.

The zoo architecture files describe networks declaratively; this module
turns those descriptions into weighted :class:`repro.cnn.layers`
TensorOps with deterministic "pretrained" weights.
"""

from __future__ import annotations

import numpy as np

from repro.cnn import layers as L
from repro.cnn.network import CNN
from repro.cnn.shapes import profile_network
from repro.cnn.weights import he_normal, model_rng
from repro.exceptions import ShapeError


def _build_layer(spec, input_shape, rng):
    kind = spec.kind
    p = spec.params
    if kind == "conv":
        cin = input_shape[2]
        k = p["kernel"]
        filters = p["filters"]
        fan_in = k * k * cin
        weights = he_normal(rng, (k, k, cin, filters), fan_in)
        op = L.Conv2D(
            input_shape, filters, k, stride=p.get("stride", 1),
            padding=p.get("padding", 0), weights=weights, name=spec.name,
        )
        if p.get("relu", True):
            return _FusedReLUConv(op)
        return op
    if kind == "maxpool":
        return L.MaxPool2D(
            input_shape, p["kernel"], stride=p.get("stride", p["kernel"]),
            padding=p.get("padding", 0), name=spec.name,
        )
    if kind == "avgpool":
        return L.AvgPool2D(
            input_shape, p["kernel"], stride=p.get("stride", p["kernel"]),
            padding=p.get("padding", 0), name=spec.name,
        )
    if kind == "global_avgpool":
        return L.GlobalAvgPool(input_shape, name=spec.name)
    if kind == "relu":
        return L.ReLU(input_shape, name=spec.name)
    if kind == "lrn":
        return L.LocalResponseNorm(input_shape, name=spec.name)
    if kind == "flatten":
        return L.Flatten(input_shape, name=spec.name)
    if kind == "dense":
        n_in = input_shape[0]
        units = p["units"]
        weights = he_normal(rng, (n_in, units), n_in)
        return L.Dense(
            n_in, units, weights=weights, relu=p.get("relu", True),
            name=spec.name,
        )
    if kind == "bottleneck":
        return L.BottleneckBlock(
            input_shape, p["filters"], stride=p.get("stride", 1), rng=rng,
            name=spec.name,
        )
    raise ShapeError(f"unknown layer kind: {kind}")


class _FusedReLUConv(L.Conv2D):
    """Conv2D with a ReLU fused in, keeping the chain one-op-per-layer.

    Built by wrapping an initialized Conv2D rather than re-deriving
    weights, so the builder stays the single initialization point.
    """

    def __init__(self, conv):
        super().__init__(
            conv.input_shape, conv.filters, conv.kernel, stride=conv.stride,
            padding=conv.padding, weights=conv.weights, bias=conv.bias,
            name=conv.name,
        )

    def apply(self, tensor):
        out = super().apply(tensor)
        np.maximum(out, 0.0, out=out)
        return out

    def apply_batch(self, batch):
        out = super().apply_batch(batch)
        np.maximum(out, 0.0, out=out)
        return out


def build_from_specs(name, specs, input_shape, feature_layers, seed=0):
    """Build an executable :class:`CNN` from a spec chain.

    Attaches the statically inferred :class:`LayerProfile` list as
    ``cnn.profiles`` so executable models carry their own metadata.
    """
    rng = model_rng(name, seed=seed)
    profiles = profile_network(specs, input_shape)
    ops = []
    shape = tuple(input_shape)
    for spec, profile in zip(specs, profiles):
        op = _build_layer(spec, shape, rng)
        if tuple(op.output_shape) != tuple(profile.output_shape):
            raise ShapeError(
                f"{name}/{spec.name}: built shape {op.output_shape} != "
                f"profiled shape {profile.output_shape}"
            )
        ops.append(op)
        shape = op.output_shape
    cnn = CNN(name, ops, feature_layers)
    cnn.profiles = profiles
    return cnn
