"""The model roster: static per-model statistics used by the optimizer.

Section 3.3: "a roster of popular named deep CNNs with numbered
feature layers ... in which we store these statistics". For each
roster CNN the optimizer (Table 1) looks up the serialized size
``|f|_ser``, the runtime memory footprint ``|f|_mem``, the GPU
footprint ``|f|_mem_gpu``, and per-layer shapes/FLOPs.

Serialized sizes and FLOPs are computed exactly from the architecture
(params x 4 bytes, multiply-add = 2 FLOPs). Runtime footprints cannot
be derived statically — the paper itself notes serialized formats
*underestimate* in-memory footprints — so they are calibration
constants chosen to reproduce the paper's crash pattern: VGG16's
footprint forces its per-worker parallelism down to 4 cores on a 32 GB
node (Fig. 11A) and makes 5-7 thread Lazy plans crash (Fig. 6); on the
12 GB Titan X only VGG16 crashes at 5+ threads (Fig. 7A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnn.shapes import profile_network, total_flops, total_params
from repro.cnn.zoo import alexnet, resnet50, vgg16
from repro.exceptions import InvalidLayerError

GB = 1024 ** 3
MB = 1024 ** 2

#: Flat transfer dims use the paper's 2x2 grid max-pool on conv layers.
POOL_GRID = 2

# Calibrated runtime footprints (see module docstring).
_RUNTIME_MEM_GB = {"alexnet": 2.0, "vgg16": 5.5, "resnet50": 2.0}
_GPU_MEM_GB = {"alexnet": 1.0, "vgg16": 4.0, "resnet50": 1.6}

#: Compressed-size ratio of serialized feature data. Appendix A:
#: AlexNet features are only 13% non-zero and compress hardest; VGG16's
#: and ResNet50's are ~36% non-zero.
_SERIALIZED_RATIO = {"alexnet": 0.25, "vgg16": 0.45, "resnet50": 0.40}


@dataclass(frozen=True)
class FeatureLayerStats:
    """Static statistics of one transferable feature layer."""

    name: str
    index: int                 # 1-based layer index within the chain
    output_shape: tuple
    transfer_dim: int          # flat dim after grid pooling g_l
    flops_from_input: int      # FLOPs of f̂_l from the raw image


class ModelStats:
    """Statically computed + calibrated statistics for a roster CNN."""

    def __init__(self, name, specs, input_shape, feature_layers):
        self.name = name
        self.input_shape = tuple(input_shape)
        self.profiles = profile_network(specs, input_shape)
        self.total_params = total_params(self.profiles)
        self.total_flops = total_flops(self.profiles)
        self.serialized_bytes = 4 * self.total_params
        self.runtime_mem_bytes = int(_RUNTIME_MEM_GB[name] * GB)
        self.gpu_mem_bytes = int(_GPU_MEM_GB[name] * GB)
        self.serialized_ratio = _SERIALIZED_RATIO[name]
        self.feature_layers = list(feature_layers)
        self._by_name = {}
        cumulative = 0
        index_by_name = {p.name: i + 1 for i, p in enumerate(self.profiles)}
        for profile in self.profiles:
            cumulative += profile.flops
            if profile.name in set(feature_layers):
                self._by_name[profile.name] = FeatureLayerStats(
                    name=profile.name,
                    index=index_by_name[profile.name],
                    output_shape=profile.output_shape,
                    transfer_dim=_transfer_dim(profile.output_shape),
                    flops_from_input=cumulative,
                )
        missing = [fl for fl in feature_layers if fl not in self._by_name]
        if missing:
            raise InvalidLayerError(f"{name}: feature layers not found: {missing}")

    def layer_stats(self, layer_name):
        try:
            return self._by_name[layer_name]
        except KeyError:
            raise InvalidLayerError(
                f"{self.name} has no feature layer {layer_name!r}"
            ) from None

    def top_feature_layers(self, count):
        """The ``count`` highest feature layers, lowest first."""
        if count < 1 or count > len(self.feature_layers):
            raise InvalidLayerError(
                f"{self.name} exposes {len(self.feature_layers)} feature "
                f"layers; requested {count}"
            )
        return self.feature_layers[-count:]

    def flops_between(self, lower, upper):
        """FLOPs of partial inference from feature layer ``lower`` (or
        the raw image when None) through feature layer ``upper``."""
        upper_flops = self.layer_stats(upper).flops_from_input
        lower_flops = self.layer_stats(lower).flops_from_input if lower else 0
        if upper_flops < lower_flops:
            raise InvalidLayerError(
                f"{self.name}: {upper} is below {lower} in the network"
            )
        return upper_flops - lower_flops

    def transfer_bytes(self, layer_name):
        """Bytes of the flat single-precision transfer vector g_l(.)."""
        return 4 * self.layer_stats(layer_name).transfer_dim

    def materialized_bytes(self, layer_name):
        """Bytes of the *unpooled* feature tensor as materialized on
        disk/in flight (what pre-materialization in Appendix B pays)."""
        shape = self.layer_stats(layer_name).output_shape
        size = 1
        for dim in shape:
            size *= dim
        return 4 * size

    def __repr__(self):
        return (
            f"<ModelStats {self.name}: {self.total_params / 1e6:.1f}M params, "
            f"{self.total_flops / 1e9:.2f} GFLOP/image, "
            f"feature_layers={self.feature_layers}>"
        )


def _transfer_dim(output_shape):
    if len(output_shape) == 3:
        height, width, channels = output_shape
        return min(height, POOL_GRID) * min(width, POOL_GRID) * channels
    size = 1
    for dim in output_shape:
        size *= dim
    return size


def _build_roster():
    return {
        alexnet.NAME: ModelStats(
            alexnet.NAME, alexnet.full_specs(), alexnet.FULL_INPUT_SHAPE,
            alexnet.FEATURE_LAYERS,
        ),
        vgg16.NAME: ModelStats(
            vgg16.NAME, vgg16.full_specs(), vgg16.FULL_INPUT_SHAPE,
            vgg16.FEATURE_LAYERS,
        ),
        resnet50.NAME: ModelStats(
            resnet50.NAME, resnet50.full_specs(), resnet50.FULL_INPUT_SHAPE,
            resnet50.FEATURE_LAYERS,
        ),
    }


MODEL_ROSTER = _build_roster()


def get_model_stats(name):
    """Look up a roster model's statistics by name."""
    try:
        return MODEL_ROSTER[name]
    except KeyError:
        raise InvalidLayerError(
            f"unknown roster model {name!r}; roster has "
            f"{sorted(MODEL_ROSTER)}"
        ) from None
