"""VGG16 (Simonyan & Zisserman, 2014) — the paper's most
compute-heavy roster CNN.

The paper transfers fc6 through fc8 (|L| = 3). VGG16's huge runtime
memory footprint is what drives the optimizer to cap its per-worker
parallelism at 4 cores (Figure 11A) and makes Lazy-5/Lazy-7 crash in
Figure 6.
"""

from __future__ import annotations

from repro.cnn.shapes import LayerSpec

NAME = "vgg16"
FULL_INPUT_SHAPE = (224, 224, 3)
MINI_INPUT_SHAPE = (32, 32, 3)
FEATURE_LAYERS = ["fc6", "fc7", "fc8"]

# (block, conv count, filters) for the five convolutional blocks.
_FULL_BLOCKS = [(1, 2, 64), (2, 2, 128), (3, 3, 256), (4, 3, 512), (5, 3, 512)]
_MINI_BLOCKS = [(1, 2, 8), (2, 2, 8), (3, 3, 16), (4, 3, 16), (5, 3, 16)]


def _conv_blocks(blocks):
    specs = []
    for block, count, filters in blocks:
        for i in range(1, count + 1):
            specs.append(
                LayerSpec(
                    f"conv{block}_{i}", "conv",
                    {"filters": filters, "kernel": 3, "padding": 1},
                )
            )
        specs.append(LayerSpec(f"pool{block}", "maxpool", {"kernel": 2}))
    return specs


def full_specs():
    specs = _conv_blocks(_FULL_BLOCKS)
    specs.append(LayerSpec("flatten", "flatten"))
    specs.append(LayerSpec("fc6", "dense", {"units": 4096}, feature_layer=True))
    specs.append(LayerSpec("fc7", "dense", {"units": 4096}, feature_layer=True))
    specs.append(
        LayerSpec("fc8", "dense", {"units": 1000, "relu": False},
                  feature_layer=True)
    )
    return specs


def mini_specs():
    specs = _conv_blocks(_MINI_BLOCKS)
    specs.append(LayerSpec("flatten", "flatten"))
    specs.append(LayerSpec("fc6", "dense", {"units": 32}, feature_layer=True))
    specs.append(LayerSpec("fc7", "dense", {"units": 32}, feature_layer=True))
    specs.append(
        LayerSpec("fc8", "dense", {"units": 10, "relu": False},
                  feature_layer=True)
    )
    return specs
