"""DAG-structured networks and staged materialization over DAGs.

Section 5.4 of the paper: supporting models like DenseNet or BERT
"requires generalizing our staged materialization plan to support
arbitrary DAG architectures", because a feature layer may depend on
*multiple* input layers (concatenation or element-wise addition of
several decoder outputs). This module implements that extension:

- :class:`DagNode` / :class:`DagCNN` — a network as a DAG of TensorOps
  whose nodes may take several inputs, merged by concatenation (along
  the channel axis or flat), element-wise addition, or as the single
  input;
- partial inference from any *materialized cut*: given tensors for a
  set of already-computed nodes, compute any set of target nodes
  without re-running their ancestors;
- :func:`staged_schedule` — the generalized Staged plan: for an
  ordered list of target feature nodes, the minimal sequence of
  (compute targets, frontier to keep materialized) steps such that no
  operator ever runs twice and only the *live cut* is ever held — the
  DAG analogue of the chain plan's "keep exactly the previous layer".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidLayerError, ShapeError


@dataclass
class DagNode:
    """One node of a DAG network.

    ``op`` is a TensorOp applied to the merged inputs; ``inputs`` are
    upstream node names (empty = the network input); ``merge`` is how
    multiple inputs combine before ``op``: "single", "concat" (last
    axis), "concat_flat", or "add".
    """

    name: str
    op: object
    inputs: tuple = ()
    merge: str = "single"
    feature_node: bool = False


def _merge_tensors(tensors, merge, name):
    if len(tensors) == 1 and merge in ("single", "concat", "concat_flat",
                                       "add"):
        return tensors[0]
    if merge == "concat":
        return np.concatenate(tensors, axis=-1)
    if merge == "concat_flat":
        return np.concatenate([np.ravel(t) for t in tensors])
    if merge == "add":
        out = tensors[0]
        for tensor in tensors[1:]:
            if tensor.shape != out.shape:
                raise ShapeError(
                    f"{name}: add-merge shape mismatch "
                    f"{tensor.shape} vs {out.shape}"
                )
            out = out + tensor
        return out
    raise ShapeError(f"{name}: unknown merge {merge!r}")


class DagCNN:
    """A network whose layers form a DAG (Def. 3.4 generalized).

    Nodes are evaluated in insertion order, which must be a valid
    topological order (validated at construction).
    """

    def __init__(self, name, nodes):
        self.name = name
        self.nodes = {}
        self._order = []
        seen = set()
        for node in nodes:
            if node.name in self.nodes:
                raise InvalidLayerError(
                    f"duplicate DAG node {node.name!r}"
                )
            for upstream in node.inputs:
                if upstream not in seen:
                    raise InvalidLayerError(
                        f"node {node.name!r} depends on {upstream!r} "
                        "which is not defined earlier (not a topological "
                        "order)"
                    )
            self.nodes[node.name] = node
            self._order.append(node.name)
            seen.add(node.name)
        self.feature_nodes = [
            n for n in self._order if self.nodes[n].feature_node
        ]

    # ------------------------------------------------------------------
    # graph structure
    # ------------------------------------------------------------------
    def ancestors(self, names):
        """All transitive upstream node names of ``names`` (exclusive)."""
        result = set()
        stack = list(names)
        while stack:
            current = stack.pop()
            for upstream in self.nodes[current].inputs:
                if upstream not in result:
                    result.add(upstream)
                    stack.append(upstream)
        return result

    def required_subgraph(self, targets, materialized=()):
        """Nodes that must run to produce ``targets`` given tensors for
        the ``materialized`` cut, in topological order.

        Backward traversal from the targets that *stops at* already
        materialized nodes: an ancestor never re-runs when every path
        from it to a target passes through the cut.
        """
        materialized = set(materialized)
        needed = set()
        stack = [t for t in targets if t not in materialized]
        while stack:
            current = stack.pop()
            if current in needed:
                continue
            needed.add(current)
            for upstream in self.nodes[current].inputs:
                if upstream not in materialized and upstream not in needed:
                    stack.append(upstream)
        return [name for name in self._order if name in needed]

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def forward(self, input_tensor, targets=None, materialized=None):
        """Compute ``targets`` (default: all feature nodes) from the
        network input, reusing tensors for any ``materialized`` nodes
        (dict name -> tensor) — partial DAG inference.

        Returns a dict target name -> tensor.
        """
        targets = list(targets or self.feature_nodes)
        for target in targets:
            if target not in self.nodes:
                raise InvalidLayerError(
                    f"{self.name} has no node {target!r}"
                )
        values = dict(materialized or {})
        for name in self.required_subgraph(targets, values):
            node = self.nodes[name]
            if node.inputs:
                tensors = [values[upstream] for upstream in node.inputs]
                merged = _merge_tensors(tensors, node.merge, name)
            else:
                merged = np.asarray(input_tensor, dtype=np.float32)
            values[name] = node.op(merged)
        return {target: values[target] for target in targets}

    def flops_of(self, names):
        """Total FLOPs of running exactly ``names`` (profiles attached
        per node op as ``op.flops`` or 0)."""
        return sum(
            getattr(self.nodes[n].op, "flops", 0) for n in names
        )

    def __repr__(self):
        return (
            f"<DagCNN {self.name}: {len(self._order)} nodes, "
            f"feature_nodes={self.feature_nodes}>"
        )


@dataclass(frozen=True)
class StagedStep:
    """One step of the generalized Staged plan."""

    targets: tuple         # feature nodes materialized this step
    compute: tuple         # operator nodes executed this step
    keep: tuple            # the live cut to keep for later steps


def staged_schedule(dag, ordered_targets):
    """Generalized Staged materialization over a DAG.

    Produces steps such that (a) every operator runs exactly once
    across all steps (no Lazy-style redundancy), and (b) after each
    step only the *live cut* is kept: nodes whose outputs some later
    step still needs. This is the paper's Section 5.4 extension.
    """
    ordered_targets = list(ordered_targets)
    for target in ordered_targets:
        if target not in dag.nodes:
            raise InvalidLayerError(f"{dag.name} has no node {target!r}")
    steps = []
    materialized = set()
    for position, target in enumerate(ordered_targets):
        compute = dag.required_subgraph([target], materialized)
        materialized.update(compute)
        # Minimal live cut: materialized nodes that future computation
        # reads *directly* (inputs of not-yet-run nodes on remaining
        # targets' paths), plus remaining targets already materialized.
        # Anything upstream of the cut is covered and can be dropped.
        remaining = ordered_targets[position + 1:]
        live = set()
        if remaining:
            future_compute = dag.required_subgraph(remaining, materialized)
            for name in future_compute:
                for upstream in dag.nodes[name].inputs:
                    if upstream in materialized:
                        live.add(upstream)
            live |= set(remaining) & materialized
        steps.append(
            StagedStep(
                targets=(target,),
                compute=tuple(compute),
                keep=tuple(sorted(live)),
            )
        )
    return steps


def run_staged(dag, input_tensor, ordered_targets):
    """Execute a staged schedule, holding only each step's live cut.

    Returns (results dict, peak number of simultaneously held tensors)
    so tests can check both correctness and the memory discipline.
    """
    results = {}
    held = {}
    peak_held = 0
    for step in staged_schedule(dag, ordered_targets):
        out = dag.forward(
            input_tensor, targets=list(step.targets) + list(step.keep),
            materialized=held,
        )
        for target in step.targets:
            results[target] = out[target]
        held = {name: out[name] for name in step.keep}
        peak_held = max(peak_held, len(held) + len(step.targets))
    return results, peak_held


def build_demo_dag(input_shape=(16, 16, 3), seed=0):
    """A small DenseNet/BERT-flavoured DAG for tests and examples:
    two conv branches whose outputs are consumed both individually and
    through concat- and add-merges, with three feature nodes."""
    from repro.cnn.layers import Conv2D, Dense, Flatten, GlobalAvgPool
    from repro.cnn.weights import he_normal, model_rng

    rng = model_rng("demo-dag", seed=seed)
    h, w, c = input_shape

    def conv(name, in_c, out_c, shape):
        weights = he_normal(rng, (3, 3, in_c, out_c), 9 * in_c)
        return Conv2D(
            (shape[0], shape[1], in_c), out_c, 3, padding=1,
            weights=weights, name=name,
        )

    stem = conv("stem", c, 8, (h, w))
    branch_a = conv("branch_a", 8, 8, (h, w))
    branch_b = conv("branch_b", 8, 8, (h, w))
    # dense-style concat of stem + both branches: 24 channels
    fuse = conv("fuse", 24, 8, (h, w))
    pool = GlobalAvgPool((h, w, 8), name="pool")
    flat = Flatten((1, 1, 8), name="flat")
    head_w = he_normal(rng, (8, 4), 8)
    head = Dense(8, 4, weights=head_w, relu=False, name="head")

    return DagCNN(
        "demo-dag",
        [
            DagNode("stem", stem),
            DagNode("branch_a", branch_a, inputs=("stem",)),
            DagNode("branch_b", branch_b, inputs=("stem",)),
            DagNode(
                "residual", _AddRelu((h, w, 8)),
                inputs=("branch_a", "branch_b"), merge="add",
                feature_node=True,
            ),
            DagNode(
                "fuse", fuse,
                inputs=("stem", "branch_a", "branch_b"), merge="concat",
                feature_node=True,
            ),
            DagNode("pool", pool, inputs=("fuse",)),
            DagNode("flat", flat, inputs=("pool",)),
            DagNode("head", head, inputs=("flat",), feature_node=True),
        ],
    )


class _AddRelu:
    """Tiny op for the demo DAG: ReLU over an already-merged tensor."""

    def __init__(self, shape):
        self.input_shape = tuple(shape)
        self.output_shape = tuple(shape)
        self.flops = int(np.prod(shape))
        self.name = "add_relu"

    def __call__(self, tensor):
        return np.maximum(tensor, 0.0)
