"""Executable CNN layer TensorOps.

Each class here is a :class:`~repro.tensor.ops.TensorOp` over (H, W, C)
feature tensors (or flat vectors for dense layers). Convolution uses
im2col + matmul; everything is plain numpy, single precision.

Every layer also implements the batched NHWC contract
(``apply_batch`` over an (N, H, W, C) stack): convolution does one
batch-wide im2col and a single large GEMM, pooling takes 5-d strided
windows over the batch axis, and the pointwise ops broadcast. Batching
amortizes per-image kernel overheads — the SystemML-style batched
matrix formulation of conv layers — and is what the partition-level
executor path runs on.

The ResNet bottleneck block is a *composite* TensorOp so that the CNN
as a whole remains an indexed chain (Def. 3.4) even though internally
the block is a small DAG — exactly the simplification the paper's
footnote 1 makes.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.ops import TensorOp
from repro.cnn.shapes import conv_output_hw


def _pad_hw(tensor, padding, value=0.0):
    if padding == 0:
        return tensor
    return np.pad(
        tensor, ((padding, padding), (padding, padding), (0, 0)),
        mode="constant", constant_values=value,
    )


def _pad_hw_batch(batch, padding, value=0.0):
    if padding == 0:
        return batch
    return np.pad(
        batch, ((0, 0), (padding, padding), (padding, padding), (0, 0)),
        mode="constant", constant_values=value,
    )


def _im2col(tensor, kernel, stride, out_h, out_w):
    """Extract (out_h*out_w, kernel*kernel*C) patches from (H, W, C)."""
    h, w, c = tensor.shape
    strides = tensor.strides
    windows = np.lib.stride_tricks.as_strided(
        tensor,
        shape=(out_h, out_w, kernel, kernel, c),
        strides=(
            strides[0] * stride,
            strides[1] * stride,
            strides[0],
            strides[1],
            strides[2],
        ),
        writeable=False,
    )
    return windows.reshape(out_h * out_w, kernel * kernel * c)


def _im2col_batch(batch, kernel, stride, out_h, out_w):
    """Extract (N*out_h*out_w, kernel*kernel*C) patches from a whole
    (N, H, W, C) batch at once."""
    n, h, w, c = batch.shape
    strides = batch.strides
    windows = np.lib.stride_tricks.as_strided(
        batch,
        shape=(n, out_h, out_w, kernel, kernel, c),
        strides=(
            strides[0],
            strides[1] * stride,
            strides[2] * stride,
            strides[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    return windows.reshape(n * out_h * out_w, kernel * kernel * c)


class Conv2D(TensorOp):
    """2-d convolution with bias. Weights shape: (K, K, Cin, Cout)."""

    def __init__(self, input_shape, filters, kernel, stride=1, padding=0,
                 weights=None, bias=None, name="conv"):
        h, w, cin = input_shape
        out_h, out_w = conv_output_hw(h, w, kernel, stride, padding)
        super().__init__(input_shape, (out_h, out_w, filters), name=name)
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.filters = filters
        if weights is None:
            weights = np.zeros((kernel, kernel, cin, filters), dtype=np.float32)
        if bias is None:
            bias = np.zeros(filters, dtype=np.float32)
        self.weights = np.asarray(weights, dtype=np.float32)
        self.bias = np.asarray(bias, dtype=np.float32)
        self._wmat = self.weights.reshape(kernel * kernel * cin, filters)

    def apply(self, tensor):
        out_h, out_w, _ = self.output_shape
        padded = _pad_hw(tensor.astype(np.float32, copy=False), self.padding)
        cols = _im2col(padded, self.kernel, self.stride, out_h, out_w)
        out = cols @ self._wmat + self.bias
        return out.reshape(out_h, out_w, self.filters)

    def apply_batch(self, batch):
        out_h, out_w, _ = self.output_shape
        n = batch.shape[0]
        padded = _pad_hw_batch(
            batch.astype(np.float32, copy=False), self.padding
        )
        cols = _im2col_batch(padded, self.kernel, self.stride, out_h, out_w)
        out = cols @ self._wmat + self.bias
        return out.reshape(n, out_h, out_w, self.filters)


class _Pool2D(TensorOp):
    #: Constant used to fill spatial padding before windowing.
    pad_value = 0.0

    def __init__(self, input_shape, kernel, stride=None, padding=0, name="pool"):
        h, w, c = input_shape
        stride = stride or kernel
        out_h, out_w = conv_output_hw(h, w, kernel, stride, padding)
        super().__init__(input_shape, (out_h, out_w, c), name=name)
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def _windows(self, tensor):
        out_h, out_w, c = self.output_shape
        padded = _pad_hw(tensor, self.padding, self.pad_value)
        strides = padded.strides
        return np.lib.stride_tricks.as_strided(
            padded,
            shape=(out_h, out_w, self.kernel, self.kernel, c),
            strides=(
                strides[0] * self.stride,
                strides[1] * self.stride,
                strides[0],
                strides[1],
                strides[2],
            ),
            writeable=False,
        )

    def _windows_batch(self, batch):
        out_h, out_w, c = self.output_shape
        padded = _pad_hw_batch(batch, self.padding, self.pad_value)
        strides = padded.strides
        return np.lib.stride_tricks.as_strided(
            padded,
            shape=(batch.shape[0], out_h, out_w, self.kernel, self.kernel, c),
            strides=(
                strides[0],
                strides[1] * self.stride,
                strides[2] * self.stride,
                strides[1],
                strides[2],
                strides[3],
            ),
            writeable=False,
        )


class MaxPool2D(_Pool2D):
    """Max pooling. Padding uses -inf so pads never win the max."""

    pad_value = -np.inf

    def apply(self, tensor):
        return self._windows(tensor).max(axis=(2, 3))

    def apply_batch(self, batch):
        return self._windows_batch(batch).max(axis=(3, 4))


class AvgPool2D(_Pool2D):
    """Average pooling (zero-padded)."""

    def apply(self, tensor):
        return self._windows(tensor).mean(axis=(2, 3), dtype=np.float32)

    def apply_batch(self, batch):
        return self._windows_batch(batch).mean(axis=(3, 4), dtype=np.float32)


class GlobalAvgPool(TensorOp):
    """Global average pooling to a (1, 1, C) tensor."""

    def __init__(self, input_shape, name="global_avgpool"):
        c = input_shape[2]
        super().__init__(input_shape, (1, 1, c), name=name)

    def apply(self, tensor):
        return tensor.mean(axis=(0, 1), dtype=np.float32).reshape(1, 1, -1)

    def apply_batch(self, batch):
        out = batch.mean(axis=(1, 2), dtype=np.float32)
        return out.reshape(batch.shape[0], 1, 1, -1)


class ReLU(TensorOp):
    """Rectified linear non-linearity."""

    def __init__(self, shape, name="relu"):
        super().__init__(shape, shape, name=name)

    def apply(self, tensor):
        return np.maximum(tensor, 0.0)

    def apply_batch(self, batch):
        return np.maximum(batch, 0.0)


class LocalResponseNorm(TensorOp):
    """AlexNet-style local response normalization across channels.

    The cross-channel sum-of-squares is a sliding-window sum over the
    (last) channel axis, so the same vectorized kernel serves both the
    per-image and the batched path. Out-of-range channels contribute
    exact zeros, which keeps results identical to the windowed-slice
    formulation.
    """

    def __init__(self, shape, depth_radius=2, bias=2.0, alpha=1e-4, beta=0.75,
                 name="lrn"):
        super().__init__(shape, shape, name=name)
        self.depth_radius = depth_radius
        self.bias = bias
        self.alpha = alpha
        self.beta = beta

    def _normalize(self, tensor):
        squared = np.square(tensor)
        channels = tensor.shape[-1]
        radius = self.depth_radius
        padded = np.zeros(
            tensor.shape[:-1] + (channels + 2 * radius,), dtype=squared.dtype
        )
        padded[..., radius:radius + channels] = squared
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, 2 * radius + 1, axis=-1
        )
        scale = windows.sum(axis=-1)
        denom = np.power(self.bias + self.alpha * scale, self.beta)
        return (tensor / denom).astype(np.float32)

    def apply(self, tensor):
        return self._normalize(tensor)

    def apply_batch(self, batch):
        return self._normalize(batch)


class Flatten(TensorOp):
    """Reshape a tensor to a flat vector (the in-network flatten, as
    opposed to the user-facing FlattenOp ``g_l``)."""

    def __init__(self, input_shape, name="flatten"):
        length = int(np.prod(input_shape))
        super().__init__(input_shape, (length,), name=name)

    def apply(self, tensor):
        return np.ascontiguousarray(tensor).reshape(-1)

    def apply_batch(self, batch):
        return np.ascontiguousarray(batch).reshape(batch.shape[0], -1)


class Dense(TensorOp):
    """Fully connected layer with optional ReLU fused in."""

    def __init__(self, n_in, n_out, weights=None, bias=None, relu=True,
                 name="dense"):
        super().__init__((n_in,), (n_out,), name=name)
        if weights is None:
            weights = np.zeros((n_in, n_out), dtype=np.float32)
        if bias is None:
            bias = np.zeros(n_out, dtype=np.float32)
        self.weights = np.asarray(weights, dtype=np.float32)
        self.bias = np.asarray(bias, dtype=np.float32)
        self.relu = relu

    def apply(self, tensor):
        out = tensor @ self.weights + self.bias
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def apply_batch(self, batch):
        out = batch @ self.weights + self.bias
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out


class BottleneckBlock(TensorOp):
    """ResNet bottleneck residual block as one composite TensorOp.

    1x1 reduce -> 3x3 (strided) -> 1x1 expand, plus an identity or
    1x1-projection shortcut, ReLU after the add.
    """

    def __init__(self, input_shape, filters, stride=1, rng=None, name="block"):
        h, w, cin = input_shape
        cout = 4 * filters
        out_h, out_w = conv_output_hw(h, w, 3, stride, 1)
        super().__init__(input_shape, (out_h, out_w, cout), name=name)
        rng = rng or np.random.default_rng(0)

        def he(shape, fan_in):
            return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(
                np.float32
            )

        self.reduce = Conv2D(
            input_shape, filters, 1,
            weights=he((1, 1, cin, filters), cin), name=f"{name}/reduce",
        )
        self.conv3 = Conv2D(
            self.reduce.output_shape, filters, 3, stride=stride, padding=1,
            weights=he((3, 3, filters, filters), 9 * filters),
            name=f"{name}/conv3",
        )
        self.expand = Conv2D(
            self.conv3.output_shape, cout, 1,
            weights=he((1, 1, filters, cout), filters), name=f"{name}/expand",
        )
        if stride != 1 or cin != cout:
            self.shortcut = Conv2D(
                input_shape, cout, 1, stride=stride,
                weights=he((1, 1, cin, cout), cin), name=f"{name}/shortcut",
            )
        else:
            self.shortcut = None

    def apply(self, tensor):
        branch = np.maximum(self.reduce(tensor), 0.0)
        branch = np.maximum(self.conv3(branch), 0.0)
        branch = self.expand(branch)
        identity = self.shortcut(tensor) if self.shortcut else tensor
        return np.maximum(branch + identity, 0.0)

    def apply_batch(self, batch):
        branch = np.maximum(self.reduce.apply_batch(batch), 0.0)
        branch = np.maximum(self.conv3.apply_batch(branch), 0.0)
        branch = self.expand.apply_batch(branch)
        identity = (
            self.shortcut.apply_batch(batch) if self.shortcut else batch
        )
        return np.maximum(branch + identity, 0.0)

    def param_count(self):
        count = self.reduce.weights.size + self.reduce.bias.size
        count += self.conv3.weights.size + self.conv3.bias.size
        count += self.expand.weights.size + self.expand.bias.size
        if self.shortcut:
            count += self.shortcut.weights.size + self.shortcut.bias.size
        return int(count)
