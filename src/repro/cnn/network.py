"""The CNN abstraction (Definition 3.4) with partial inference.

A ``CNN`` is an indexed chain of TensorOps ``f = f_nl ∘ ... ∘ f_1``.
Layer indices here are 1-based to match the paper's notation; named
feature layers (the transfer candidates users pick) map onto those
indices.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import InvalidLayerError
from repro.tensor.ops import TensorOp


class CNN(TensorOp):
    """An indexed chain of layer TensorOps.

    Parameters
    ----------
    name:
        Roster name, e.g. ``"alexnet"``.
    layers:
        Ordered list of TensorOps; layer ``i`` (1-based) is
        ``layers[i-1]``.
    feature_layers:
        Names of the layers exposed for feature transfer, ordered from
        lowest to highest in the network.
    """

    def __init__(self, name, layers, feature_layers):
        if not layers:
            raise InvalidLayerError("a CNN needs at least one layer")
        super().__init__(layers[0].input_shape, layers[-1].output_shape, name=name)
        self.layers = list(layers)
        self._index_by_name = {op.name: i + 1 for i, op in enumerate(self.layers)}
        if len(self._index_by_name) != len(self.layers):
            raise InvalidLayerError(f"duplicate layer names in {name}")
        for fl in feature_layers:
            if fl not in self._index_by_name:
                raise InvalidLayerError(f"feature layer {fl!r} not in {name}")
        self.feature_layers = list(feature_layers)

    @property
    def num_layers(self):
        return len(self.layers)

    def layer_index(self, name):
        """1-based index of a named layer."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise InvalidLayerError(f"{self.name} has no layer {name!r}") from None

    def layer_name(self, index):
        self._check_index(index)
        return self.layers[index - 1].name

    def output_shape_of(self, layer):
        """Output shape of a layer given by name or 1-based index."""
        index = self._resolve(layer)
        return self.layers[index - 1].output_shape

    def top_feature_layers(self, count):
        """The ``count`` highest feature layers, lowest first — the
        paper's API takes |L| counted from the top-most layer."""
        if count < 1 or count > len(self.feature_layers):
            raise InvalidLayerError(
                f"{self.name} exposes {len(self.feature_layers)} feature "
                f"layers; requested {count}"
            )
        return self.feature_layers[-count:]

    def _resolve(self, layer):
        if isinstance(layer, str):
            return self.layer_index(layer)
        return int(layer)

    def _check_index(self, index):
        if not 1 <= index <= self.num_layers:
            raise InvalidLayerError(
                f"layer index {index} out of range 1..{self.num_layers}"
            )

    #: Per-operator timing hook: None (untraced, zero overhead beyond
    #: one attribute check per chain) or a recorder callable
    #: ``hook(name, seconds)`` like
    #: :meth:`repro.trace.Tracer.record_op`; the engine times each
    #: layer op itself and hands the hook the wall seconds, so a timed
    #: op costs two clock reads and one call — no context-manager
    #: protocol interleaving with the kernels.
    op_timer = None

    def _apply_chain(self, out, ops, batched):
        timer = self.op_timer
        if timer is None:
            if batched:
                for op in ops:
                    out = op.call_batch(out)
            else:
                for op in ops:
                    out = op(out)
            return out
        clock = time.perf_counter
        for op in ops:
            start = clock()
            out = op.call_batch(out) if batched else op(out)
            timer(op.name, clock() - start)
        return out

    def apply(self, tensor):
        return self.forward(tensor)

    def apply_batch(self, batch):
        return self.forward_batch(batch)

    def forward(self, tensor, upto=None):
        """Run inference through layer ``upto`` (name or index);
        the whole network if omitted. This is ``f̂_l`` (Def. 3.4)."""
        stop = self._resolve(upto) if upto is not None else self.num_layers
        self._check_index(stop)
        out = np.asarray(tensor, dtype=np.float32)
        return self._apply_chain(out, self.layers[:stop], batched=False)

    def forward_batch(self, batch, upto=None):
        """Batched inference over an (N, H, W, C) image stack through
        layer ``upto``; the whole network if omitted.

        Each layer runs its vectorized ``apply_batch`` kernel once per
        batch instead of once per image, amortizing kernel overheads.
        """
        stop = self._resolve(upto) if upto is not None else self.num_layers
        self._check_index(stop)
        out = np.asarray(batch, dtype=np.float32)
        return self._apply_chain(out, self.layers[:stop], batched=True)

    def partial_forward(self, tensor, start, upto):
        """Partial CNN inference ``f̂_{i→j}`` (Definition 3.7).

        ``tensor`` must be the *output* of layer ``start`` (so inference
        resumes at layer ``start + 1``) and runs through layer ``upto``.
        ``start=0`` means start from the raw image.
        """
        begin, stop = self._partial_range(start, upto)
        out = np.asarray(tensor, dtype=np.float32)
        return self._apply_chain(out, self.layers[begin:stop], batched=False)

    def partial_forward_batch(self, batch, start, upto):
        """Batched partial inference ``f̂_{i→j}`` over an (N, ...) stack
        of layer-``start`` outputs (``start=0``: raw images)."""
        begin, stop = self._partial_range(start, upto)
        out = np.asarray(batch, dtype=np.float32)
        return self._apply_chain(out, self.layers[begin:stop], batched=True)

    def _partial_range(self, start, upto):
        begin = self._resolve(start) if start else 0
        stop = self._resolve(upto)
        if begin:
            self._check_index(begin)
        self._check_index(stop)
        if stop < begin:
            raise InvalidLayerError(
                f"partial inference needs start <= upto, got {begin} > {stop}"
            )
        return begin, stop

    def flops_between(self, start, upto, profiles=None):
        """FLOPs of ``f̂_{start→upto}`` given the layer profiles from
        :func:`repro.cnn.shapes.profile_network` (or this instance's
        attached ``profiles``)."""
        profiles = profiles if profiles is not None else self.profiles
        begin = self._resolve(start) if start else 0
        stop = self._resolve(upto)
        return sum(p.flops for p in profiles[begin:stop])

    # Populated by the zoo builders with LayerProfile values so that
    # executable models carry their own static metadata.
    profiles = ()

    def __repr__(self):
        return (
            f"<CNN {self.name}: {self.num_layers} layers, "
            f"feature_layers={self.feature_layers}>"
        )
