"""From-scratch numpy CNN inference engine.

This package is the reproduction's substitute for TensorFlow: it
implements the layer TensorOps (convolution, pooling, non-linearity,
fully connected — Section 2 of the paper), chains them into ``CNN``
objects (Def. 3.4), and supports full and *partial* CNN inference
(Defs. 3.6, 3.7), which is the primitive Vista's Staged plan relies on.

The :mod:`repro.cnn.zoo` subpackage provides the paper's model roster
(AlexNet, VGG16, ResNet50) in two profiles: ``full`` (the real
architectures, used for shape/FLOP/size metadata that drives the
optimizer and cost model) and ``mini`` (scaled-down analogues with the
same layer structure, fast enough to execute end-to-end in tests).
"""

from repro.cnn.inference import full_inference, partial_inference
from repro.cnn.network import CNN
from repro.cnn.zoo import (
    MODEL_ROSTER,
    ModelStats,
    build_model,
    get_model_stats,
)

__all__ = [
    "CNN",
    "MODEL_ROSTER",
    "ModelStats",
    "build_model",
    "full_inference",
    "get_model_stats",
    "partial_inference",
]
