"""Deterministic "pretrained" weight generation.

We cannot ship ImageNet weights, so the zoo instantiates each model
with He-initialized weights drawn from a generator seeded by the model
name. This is documented in DESIGN.md: the system behaviour Vista
optimizes (shapes, FLOPs, memory) is independent of weight values, and
random conv+ReLU stacks still act as signal-preserving random feature
maps for the accuracy experiment.
"""

from __future__ import annotations

import zlib

import numpy as np


def model_rng(model_name, seed=0):
    """A numpy Generator deterministically derived from the model name,
    so every build of e.g. ``alexnet`` gets identical weights."""
    digest = zlib.crc32(model_name.encode("utf-8"))
    return np.random.default_rng((digest, seed))


def he_normal(rng, shape, fan_in):
    """He-normal initialization, the standard for ReLU networks."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(np.float32)
