"""Module-level inference helpers (Defs. 3.6 and 3.7).

Thin functional wrappers over :class:`repro.cnn.network.CNN`, used by
the plan executor so that plans stay agnostic of the CNN object's
methods.
"""

from __future__ import annotations

from repro.tensor.ops import grid_max_pool


def full_inference(cnn, image_tensor, upto=None):
    """CNN inference ``f̂_l(t)`` from a raw image tensor."""
    return cnn.forward(image_tensor, upto=upto)


def partial_inference(cnn, tensor, start, upto):
    """Partial CNN inference ``f̂_{start→upto}(t)``; ``start=0`` (or
    None) starts from the raw image."""
    return cnn.partial_forward(tensor, start or 0, upto)


def transfer_features(cnn, layer_tensor, pool_grid=2):
    """Turn a materialized feature-layer tensor into the flat transfer
    vector ``g_l(f̂_l(I))``.

    Convolutional (3-d) layers are first max-pooled to a
    ``pool_grid x pool_grid`` grid (Section 5, footnote 4) before
    flattening; flat layers are used as-is.
    """
    if layer_tensor.ndim == 3:
        layer_tensor = grid_max_pool(layer_tensor, grid=pool_grid)
    return layer_tensor.reshape(-1)
