"""Static shape and FLOP inference for CNN layer specifications.

Architectures in the zoo are described as lists of :class:`LayerSpec`
values. This module computes, without allocating any weights, the
output shape, parameter count, and FLOP cost of every layer — the
numbers the Vista optimizer and the cost model need (layer sizes feed
Eq. 16's intermediate-table estimates; FLOPs feed the redundancy
analysis of Section 4.2.1).

FLOP conventions (multiply-add counted as 2 FLOPs):
  conv:  2 * Kh * Kw * Cin * Cout * Hout * Wout
  dense: 2 * n_in * n_out
  pool / relu / lrn / batchnorm: one pass over the output elements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ShapeError


@dataclass(frozen=True)
class LayerSpec:
    """Declarative description of one CNN layer.

    ``kind`` is one of: conv, maxpool, avgpool, relu, lrn, dense,
    flatten, bottleneck. ``params`` holds kind-specific settings.
    ``feature_layer`` marks layers exposed for feature transfer.
    """

    name: str
    kind: str
    params: dict = field(default_factory=dict)
    feature_layer: bool = False


def conv_output_hw(height, width, kernel, stride, padding):
    """Spatial output dims of a conv/pool with symmetric padding."""
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"kernel {kernel} stride {stride} padding {padding} collapses "
            f"spatial dims {height}x{width}"
        )
    return out_h, out_w


@dataclass(frozen=True)
class LayerProfile:
    """Statically inferred properties of one layer instance."""

    name: str
    kind: str
    input_shape: tuple
    output_shape: tuple
    param_count: int
    flops: int
    feature_layer: bool

    @property
    def output_size(self):
        size = 1
        for dim in self.output_shape:
            size *= dim
        return size


def _profile_one(spec, input_shape):
    """Return (output_shape, param_count, flops) for one spec."""
    kind = spec.kind
    p = spec.params
    if kind == "conv":
        h, w, cin = input_shape
        out_h, out_w = conv_output_hw(
            h, w, p["kernel"], p.get("stride", 1), p.get("padding", 0)
        )
        cout = p["filters"]
        params = p["kernel"] * p["kernel"] * cin * cout + cout
        flops = 2 * p["kernel"] * p["kernel"] * cin * cout * out_h * out_w
        return (out_h, out_w, cout), params, flops
    if kind in ("maxpool", "avgpool"):
        h, w, c = input_shape
        out_h, out_w = conv_output_hw(
            h, w, p["kernel"], p.get("stride", p["kernel"]), p.get("padding", 0)
        )
        return (out_h, out_w, c), 0, out_h * out_w * c
    if kind == "global_avgpool":
        h, w, c = input_shape
        return (1, 1, c), 0, h * w * c
    if kind in ("relu", "lrn"):
        size = 1
        for dim in input_shape:
            size *= dim
        # LRN touches a neighbourhood per element; approximate 5x.
        factor = 5 if kind == "lrn" else 1
        return tuple(input_shape), 0, factor * size
    if kind == "flatten":
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,), 0, 0
    if kind == "dense":
        if len(input_shape) != 1:
            raise ShapeError(
                f"dense layer {spec.name} needs a flat input, got {input_shape}"
            )
        n_in = input_shape[0]
        n_out = p["units"]
        return (n_out,), n_in * n_out + n_out, 2 * n_in * n_out
    if kind == "bottleneck":
        return _profile_bottleneck(p, input_shape)
    raise ShapeError(f"unknown layer kind: {kind}")


def _profile_bottleneck(p, input_shape):
    """ResNet bottleneck block: 1x1 -> 3x3 -> 1x1 convs + shortcut.

    ``p`` has ``filters`` (the inner width; output is 4x that) and
    ``stride`` (applied in the 3x3 conv). A projection shortcut is used
    when the stride is not 1 or the channel count changes.
    """
    h, w, cin = input_shape
    inner = p["filters"]
    cout = 4 * inner
    stride = p.get("stride", 1)
    out_h, out_w = conv_output_hw(h, w, 3, stride, 1)
    params = 0
    flops = 0
    # 1x1 reduce (applied at stride 1 before the strided 3x3)
    params += cin * inner + inner
    flops += 2 * cin * inner * h * w
    # 3x3 (strided)
    params += 9 * inner * inner + inner
    flops += 2 * 9 * inner * inner * out_h * out_w
    # 1x1 expand
    params += inner * cout + cout
    flops += 2 * inner * cout * out_h * out_w
    if stride != 1 or cin != cout:
        params += cin * cout + cout
        flops += 2 * cin * cout * out_h * out_w
    # shortcut add + relu
    flops += 2 * out_h * out_w * cout
    return (out_h, out_w, cout), params, flops


def profile_network(specs, input_shape):
    """Infer shapes/params/FLOPs for a whole chain of LayerSpecs.

    Returns a list of :class:`LayerProfile`, one per spec, in order.
    """
    profiles = []
    shape = tuple(input_shape)
    for spec in specs:
        out_shape, params, flops = _profile_one(spec, shape)
        profiles.append(
            LayerProfile(
                name=spec.name,
                kind=spec.kind,
                input_shape=shape,
                output_shape=out_shape,
                param_count=params,
                flops=flops,
                feature_layer=spec.feature_layer,
            )
        )
        shape = out_shape
    return profiles


def total_params(profiles):
    return sum(p.param_count for p in profiles)


def total_flops(profiles):
    return sum(p.flops for p in profiles)
