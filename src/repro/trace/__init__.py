"""Structured tracing and metrics for Vista runs.

Zero-dependency span tracer threaded through every execution layer:
the dataflow engine, the physical joins, the storage manager, the plan
executor, the optimizer, and the degrade-and-retry supervisor. See
:mod:`repro.trace.tracer` for the data model and
:mod:`repro.report.trace_ascii` for rendering.
"""

from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    find_spans,
    span_from_dict,
    spans_wall_seconds,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "find_spans",
    "span_from_dict",
    "spans_wall_seconds",
]
