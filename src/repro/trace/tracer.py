"""Span-based tracing for Vista runs.

A :class:`Tracer` records a tree of :class:`Span` values — one per
logical stage of a workload (read, inference per layer, join, cache,
train, recovery attempt) — with wall-clock durations, simulated-clock
timestamps, per-stage counters (rows, bytes, partitions, retries), and
arbitrary attributes (join strategy, persistence format, optimizer
decisions). The tree exports to JSON (``Span.to_dict``/``to_json``)
and renders as a flame-style summary via
:mod:`repro.report.trace_ascii`.

Two clocks, deliberately:

- **wall** time (``time.perf_counter``) measures where real CPU time
  goes — what the benchmarks read;
- **simulated** time (a shared :class:`~repro.faults.clock.
  SimulatedClock`) stamps ``sim_start``/``sim_end`` on every span, so
  traces of fault-injected runs are deterministic: backoff and
  straggler delays land in the trace at exactly reproducible offsets
  while wall times merely jitter.

The module-level :data:`NULL_TRACER` is the default everywhere: its
``span``/``add``/``set``/``event`` are no-ops built on one shared
context-manager object, so untraced runs pay only an attribute lookup
and a falsy check per instrumentation point.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager


class Span:
    """One node of the trace tree.

    ``counters`` accumulate numeric facts (rows, bytes, retries,
    per-operator seconds under ``op_s:<name>`` keys); ``attrs`` hold
    one-shot descriptive values (plan label, join strategy); ``events``
    are timestamped point occurrences (spills, degradation rungs).
    """

    __slots__ = ("name", "attrs", "counters", "events", "children",
                 "wall_start", "wall_s", "sim_start", "sim_end", "status")

    def __init__(self, name, attrs=None, sim_start=0.0):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.counters = {}
        self.events = []
        self.children = []
        self.wall_start = time.perf_counter()
        self.wall_s = None
        self.sim_start = float(sim_start)
        self.sim_end = float(sim_start)
        self.status = "running"

    # ------------------------------------------------------------------
    def finish(self, sim_end=None, status="ok"):
        self.wall_s = time.perf_counter() - self.wall_start
        if sim_end is not None:
            self.sim_end = float(sim_end)
        self.status = status
        return self

    def add(self, counter, value=1):
        self.counters[counter] = self.counters.get(counter, 0) + value

    def set(self, key, value):
        self.attrs[key] = value

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def walk(self):
        """Depth-first iteration over this span and its subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name):
        """First span in the subtree whose name equals or starts with
        ``name`` (prefix match lets callers ignore suffixes like the
        layer in ``inference:fc7``); None if absent."""
        for span in self.walk():
            if span.name == name or span.name.startswith(name):
                return span
        return None

    def find_all(self, name):
        return [
            span for span in self.walk()
            if span.name == name or span.name.startswith(name)
        ]

    def total(self, counter):
        """Sum of a counter over this span's whole subtree."""
        return sum(span.counters.get(counter, 0) for span in self.walk())

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self, _epoch=None):
        """JSON-safe dict of the subtree. Wall starts are exported
        relative to the outermost exported span so flame renderings
        work straight from the JSON."""
        epoch = self.wall_start if _epoch is None else _epoch
        wall_s = (
            self.wall_s if self.wall_s is not None
            else time.perf_counter() - self.wall_start
        )
        return {
            "name": self.name,
            "status": self.status,
            "wall_offset_s": round(self.wall_start - epoch, 9),
            "wall_s": round(wall_s, 9),
            "sim_start_s": self.sim_start,
            "sim_end_s": self.sim_end,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "events": list(self.events),
            "children": [c.to_dict(_epoch=epoch) for c in self.children],
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          default=str)

    def __repr__(self):
        dur = "running" if self.wall_s is None else f"{self.wall_s:.4f}s"
        return (
            f"<Span {self.name}: {dur}, {len(self.children)} children, "
            f"counters={sorted(self.counters)}>"
        )


class Tracer:
    """Collects a span tree for one (or several) workload runs.

    Parameters
    ----------
    clock:
        Optional :class:`~repro.faults.clock.SimulatedClock`; when a
        fault injector is attached to the cluster context the executor
        shares its clock with the tracer so spans carry deterministic
        simulated timestamps. Without one, sim timestamps stay 0.
    name:
        Name of the implicit root span.
    """

    enabled = True

    def __init__(self, clock=None, name="trace"):
        self.clock = clock
        #: Optional :class:`~repro.observe.ledger.RunLedger`: when set
        #: (via ``ClusterContext.attach_ledger``) every span open/close
        #: and point event is streamed into the ledger as it happens —
        #: the live counterpart of the post-hoc ``export()`` tree.
        self.sink = None
        self.root = Span(name, sim_start=self._sim_now())
        self._stack = [self.root]

    # ------------------------------------------------------------------
    def _sim_now(self):
        return self.clock.now if self.clock is not None else 0.0

    @property
    def current(self):
        """The innermost open span."""
        return self._stack[-1]

    @contextmanager
    def span(self, name, **attrs):
        """Open a child span of the current span for the duration of
        the ``with`` block; exceptions mark the span's status."""
        span = Span(name, attrs, sim_start=self._sim_now())
        self._stack[-1].children.append(span)
        self._stack.append(span)
        if self.sink is not None:
            # Copy: the span keeps mutating attrs after the open event,
            # and the ledger's memory view must match what hit disk.
            self.sink.emit("span_start", name=name,
                           attrs=dict(span.attrs))
        try:
            yield span
        except BaseException as exc:
            span.finish(self._sim_now(),
                        status=f"error:{type(exc).__name__}")
            raise
        else:
            span.finish(self._sim_now())
        finally:
            self._stack.pop()
            if self.sink is not None:
                self.sink.emit("span_end", name=name,
                               status=span.status, span_s=span.wall_s)

    def add(self, counter, value=1):
        """Increment a counter on the current span."""
        self._stack[-1].add(counter, value)

    def set(self, key, value):
        """Set an attribute on the current span."""
        self._stack[-1].set(key, value)

    def event(self, name, **fields):
        """Record a point event on the current span, stamped with the
        simulated time."""
        self._stack[-1].events.append(
            {"event": name, "sim_time_s": self._sim_now(), **fields}
        )
        if self.sink is not None:
            self.sink.emit("trace_point", name=name, **fields)

    @contextmanager
    def time_op(self, name):
        """Accumulate a block's wall time into the current span's
        ``op_s:<name>`` counter — the per-operator CNN timing hook."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._stack[-1].add(
                f"op_s:{name}", time.perf_counter() - start
            )

    def record_op(self, name, seconds):
        """Recorder form of :meth:`time_op`: add already-measured wall
        seconds to the current span's ``op_s:<name>`` counter. The CNN
        engine's ``op_timer`` hook uses this shape — the engine reads
        the clock itself, so the per-op cost stays at one call."""
        self._stack[-1].add(f"op_s:{name}", seconds)

    # ------------------------------------------------------------------
    def finish(self):
        """Close the root span and return it."""
        if self.root.status == "running":
            self.root.finish(self._sim_now())
        return self.root

    def export(self):
        """Finish and export the whole trace as a JSON-safe dict."""
        return self.finish().to_dict()

    def __repr__(self):
        return (
            f"<Tracer {self.root.name}: depth={len(self._stack)}, "
            f"{sum(1 for _ in self.root.walk())} spans>"
        )


class _NullSpanContext:
    """Shared no-op stand-in for both spans and their context
    managers; every mutating method silently discards its input."""

    __slots__ = ()
    name = "null"
    attrs = {}
    counters = {}
    events = ()
    children = ()
    wall_s = 0.0
    status = "ok"

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def add(self, counter, value=1):
        pass

    def set(self, key, value):
        pass

    def finish(self, *args, **kwargs):
        return self

    def __repr__(self):
        return "<NullSpan>"


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every hook is a no-op. Instrumented code can
    test ``tracer.enabled`` before doing anything expensive (byte
    estimation, per-operator timing)."""

    enabled = False
    clock = None
    root = None
    sink = None

    def span(self, name, **attrs):
        return _NULL_SPAN

    @property
    def current(self):
        return _NULL_SPAN

    def add(self, counter, value=1):
        pass

    def set(self, key, value):
        pass

    def event(self, name, **fields):
        pass

    def time_op(self, name):
        return _NULL_SPAN

    def record_op(self, name, seconds):
        pass

    def finish(self):
        return None

    def export(self):
        return None

    def __repr__(self):
        return "<NullTracer>"


#: The process-wide disabled tracer every layer defaults to.
NULL_TRACER = NullTracer()


def span_from_dict(data):
    """Reconstruct a :class:`Span` tree from its ``to_dict`` export —
    the inverse of ``Tracer.export()``, lossless modulo the 9-decimal
    rounding ``to_dict`` already applied. Reconstructed spans carry
    ``wall_start`` equal to their exported offset (epoch 0), so
    re-exporting yields the identical dict."""
    span = Span.__new__(Span)
    span.name = data.get("name", "span")
    span.attrs = dict(data.get("attrs") or {})
    span.counters = dict(data.get("counters") or {})
    span.events = list(data.get("events") or ())
    span.children = [
        span_from_dict(child) for child in data.get("children") or ()
    ]
    span.wall_start = float(data.get("wall_offset_s") or 0.0)
    span.wall_s = data.get("wall_s")
    span.sim_start = float(data.get("sim_start_s") or 0.0)
    span.sim_end = float(data.get("sim_end_s") or 0.0)
    span.status = data.get("status", "ok")
    return span


def find_spans(trace, name):
    """All span dicts in an *exported* trace whose name matches
    ``name`` exactly or starts with ``name`` up to a ``:`` separator
    (so ``find_spans(trace, "inference")`` collects every
    ``inference:<layer>`` span). ``trace`` is a ``Tracer.export()``
    dict or any span dict; returns matches in depth-first order."""
    if not trace:
        return []
    matches = []
    stack = [trace]
    while stack:
        span = stack.pop()
        span_name = span.get("name", "")
        if span_name == name or span_name.startswith(name + ":"):
            matches.append(span)
        stack.extend(reversed(span.get("children", ())))
    return matches


def spans_wall_seconds(trace, name):
    """Total wall seconds across every span matching ``name`` in an
    exported trace (prefix semantics of :func:`find_spans`). Nested
    matches double-count by design — pass the most specific prefix.
    Calibration uses this to sum per-stage measured time against the
    cost model's predicted per-stage breakdown."""
    return sum(
        span.get("wall_s") or 0.0 for span in find_spans(trace, name)
    )
