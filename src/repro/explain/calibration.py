"""Predicted-vs-observed cost-model calibration.

Runs executable workloads with tracing and metrics on, then joins the
cost model's *predictions* against what actually happened:

- **memory**: :func:`repro.explain.peaks.predict_workload_peaks`
  (engine-exact wave arithmetic) against the per-region occupancy
  peaks the executor reports from its memory waterlines;
- **runtime**: the per-stage breakdown of
  :func:`repro.costmodel.runtime.estimate_runtime` priced on the
  *executable* CNN via :func:`repro.costmodel.cnn_cost
  .executable_model_stats`, against the measured span-tree wall
  seconds of the matching stages;
- **operators**: the ``op_seconds{op_type}`` histogram each run
  records, so per-operator cost constants can be re-fit.

Each joined pair becomes a predicted/observed ratio. Memory ratios are
deterministic (exact charge arithmetic on deterministic synthetic
data) and must sit inside
:data:`repro.costmodel.params.PEAK_PREDICTION_BAND`; runtime ratios
depend on the host, so the committed baseline gates on *drift* of the
ratio between runs, not its absolute value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.executor import FeatureTransferExecutor
from repro.core.plans import ALL_PLANS
from repro.costmodel import params
from repro.costmodel.cnn_cost import executable_model_stats
from repro.costmodel.crashes import ExecutionSetup
from repro.costmodel.runtime import estimate_runtime
from repro.dataflow.context import ClusterContext
from repro.exceptions import WorkloadCrash
from repro.explain.peaks import peak_ratios, predict_workload_peaks
from repro.metrics import MetricsRegistry
from repro.trace import Tracer, spans_wall_seconds

#: Span names backing each runtime-breakdown stage we calibrate.
#: ``read`` has no executable analogue (synthetic data starts in
#: memory) and ``overhead`` aggregates scheduling noise — both are
#: skipped.
STAGE_SPANS = {
    "inference": ("inference", "eager-materialize", "premat"),
    "join": ("join",),
    "train": ("train",),
}

#: Regions whose mini-scale peaks we predict.
REGIONS = ("user", "core", "dl", "storage", "driver")


@dataclass
class CalibrationRow:
    """One plan's predicted-vs-observed join."""

    plan: str
    crashed: bool = False
    crash_kind: str = None
    predicted_peak_bytes: dict = field(default_factory=dict)
    observed_peak_bytes: dict = field(default_factory=dict)
    memory_ratios: dict = field(default_factory=dict)
    predicted_stage_seconds: dict = field(default_factory=dict)
    observed_stage_seconds: dict = field(default_factory=dict)
    runtime_ratios: dict = field(default_factory=dict)
    op_seconds: dict = field(default_factory=dict)

    def to_dict(self):
        return {
            "plan": self.plan,
            "crashed": self.crashed,
            "crash_kind": self.crash_kind,
            "predicted_peak_bytes": dict(self.predicted_peak_bytes),
            "observed_peak_bytes": dict(self.observed_peak_bytes),
            "memory_ratios": dict(self.memory_ratios),
            "predicted_stage_seconds": dict(self.predicted_stage_seconds),
            "observed_stage_seconds": dict(self.observed_stage_seconds),
            "runtime_ratios": dict(self.runtime_ratios),
            "op_seconds": dict(self.op_seconds),
        }


@dataclass
class CalibrationReport:
    """All plans' rows plus the flattened gate-able summary."""

    model: str
    num_records: int
    layers: list
    rows: list

    def to_dict(self):
        return {
            "model": self.model,
            "num_records": self.num_records,
            "layers": list(self.layers),
            "rows": [row.to_dict() for row in self.rows],
        }

    def results(self):
        """Flat scalar map for a trace/v2 ``results`` block. Keys carry
        the ``capacity`` marker so ``repro report --compare`` treats
        them as informational; the calibration drift gate
        (:func:`drift_violations`) owns their comparison semantics."""
        flat = {}
        for row in self.rows:
            for region, ratio in row.memory_ratios.items():
                if ratio is not None:
                    flat[f"memory_ratio_capacity:{row.plan}:{region}"] = ratio
            for stage, ratio in row.runtime_ratios.items():
                if ratio is not None:
                    flat[f"runtime_ratio_capacity:{row.plan}:{stage}"] = ratio
        flat["plans_run"] = len(self.rows)
        flat["plans_crashed"] = sum(1 for row in self.rows if row.crashed)
        return flat

    def in_band(self, band=params.PEAK_PREDICTION_BAND):
        """Memory ratios outside the documented band, as
        ``{plan:region: ratio}`` — empty means fully calibrated."""
        low, high = band
        violations = {}
        for row in self.rows:
            for region, ratio in row.memory_ratios.items():
                if ratio is not None and not (low <= ratio <= high):
                    violations[f"{row.plan}:{region}"] = ratio
        return violations


#: Drift gates: memory ratios are deterministic, runtime ratios divide
#: a deterministic prediction by measured spans whose wall-clock noise
#: dominates — hence the asymmetric tolerances. The runtime gate was
#: 100x while the engine was serial-only (the cost model's parallelism
#: term was unvalidatable, so the gate was a placeholder); with the
#: process backend actually parallelizing waves, back-to-back
#: calibration runs were measured to drift well under 10x even on
#: noisy shared hosts, so the gate now sits at a measured band with
#: headroom instead of a formality.
MEMORY_DRIFT_GATE = 1.05
RUNTIME_DRIFT_GATE = 25.0


def drift_violations(old_results, new_results,
                     memory_gate=MEMORY_DRIFT_GATE,
                     runtime_gate=RUNTIME_DRIFT_GATE):
    """Calibration drift between two :meth:`CalibrationReport.results`
    maps: ``{key: (old, new)}`` for every shared ratio whose relative
    change exceeds its gate. Empty dict means the cost model still
    predicts like the committed baseline."""
    violations = {}
    for key, old in old_results.items():
        new = new_results.get(key)
        if new is None or not isinstance(old, (int, float)):
            continue
        if key.startswith("memory_ratio"):
            gate = memory_gate
        elif key.startswith("runtime_ratio"):
            gate = runtime_gate
        else:
            continue
        if old <= 0 or new <= 0:
            if old != new:
                violations[key] = (old, new)
            continue
        change = max(old / new, new / old)
        if change > gate:
            violations[key] = (old, new)
    return violations


def _observed_stages(trace):
    observed = {}
    for stage, span_names in STAGE_SPANS.items():
        total = sum(
            spans_wall_seconds(trace, name) for name in span_names
        )
        if total > 0:
            observed[stage] = round(total, 6)
    return observed


def _op_totals(export):
    totals = {}
    for series in (export or {}).get("series", []):
        if series.get("name") != "op_seconds":
            continue
        op_type = series.get("labels", {}).get("op_type", "?")
        totals[op_type] = round(float(series.get("sum", 0.0)), 6)
    return totals


def _setup_from_budget(config, budget, label):
    """The :class:`ExecutionSetup` matching the budget the run actually
    executes under (not the paper-scale caps in ``config``)."""
    heap = budget.user_bytes + budget.core_bytes + budget.storage_bytes
    return ExecutionSetup(
        label=label,
        backend="spark",
        cpu=config.cpu,
        num_partitions=config.num_partitions,
        join=config.join,
        persistence=config.persistence,
        heap_bytes=int(heap),
        user_cap_bytes=int(budget.user_bytes),
        core_cap_bytes=int(budget.core_bytes),
        storage_cap_bytes=int(budget.storage_bytes),
        storage_spills=bool(budget.storage_elastic),
    )


def calibrate(cnn, dataset, layers, config, budget, num_nodes=2,
              cores_per_node=4, plans=None, pool_grid=2,
              user_alpha=2.0, downstream_fn=None):
    """Run each plan with tracing + metrics and join predictions
    against observations; returns a :class:`CalibrationReport`.

    ``config`` is the :class:`~repro.core.config.VistaConfig` every
    plan runs under and ``budget`` the executor's
    :class:`~repro.memory.model.MemoryBudget`; each plan gets a fresh
    :class:`~repro.dataflow.context.ClusterContext` so waterlines
    don't bleed between runs. Crashed plans are kept as rows (crash
    class recorded) with no ratios — a calibration run is also a
    feasibility census.
    """
    layers = list(layers)
    plan_items = list((plans or ALL_PLANS).items())
    exec_stats = executable_model_stats(cnn)
    dataset_stats = _dataset_stats(dataset)
    cluster = params.ClusterSpec(
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        system_memory_bytes=budget.system_bytes,
    )
    rows = []
    for name, plan in plan_items:
        tracer = Tracer()
        registry = MetricsRegistry()
        context = ClusterContext(
            budget, num_nodes=num_nodes, cores_per_node=cores_per_node,
            cpu=config.cpu,
        )
        executor = FeatureTransferExecutor(
            context, cnn, dataset, layers, config,
            downstream_fn=downstream_fn or (lambda features, label: {}),
            tracer=tracer, metrics=registry,
        )
        row = CalibrationRow(plan=name)
        try:
            result = executor.run(plan)
        except WorkloadCrash as crash:
            row.crashed = True
            row.crash_kind = type(crash).__name__
            rows.append(row)
            continue
        row.predicted_peak_bytes = predict_workload_peaks(
            cnn, dataset, layers, config, plan, num_nodes,
            pool_grid=pool_grid, user_alpha=user_alpha,
        )
        observed = result.metrics.get("region_peak_bytes", {})
        row.observed_peak_bytes = {
            region: int(observed.get(region, 0)) for region in REGIONS
        }
        row.memory_ratios = peak_ratios(
            row.predicted_peak_bytes, row.observed_peak_bytes
        )
        predicted = estimate_runtime(
            exec_stats, layers, dataset_stats, plan,
            _setup_from_budget(config, budget, name), cluster,
            alpha=user_alpha, label=name,
        )
        row.predicted_stage_seconds = {
            stage: round(seconds, 6)
            for stage, seconds in predicted.breakdown.items()
            if stage in STAGE_SPANS and seconds > 0
        }
        row.observed_stage_seconds = _observed_stages(tracer.export())
        row.runtime_ratios = {
            stage: round(
                row.predicted_stage_seconds.get(stage, 0.0) / seconds, 4
            )
            for stage, seconds in row.observed_stage_seconds.items()
            if seconds > 0 and stage in row.predicted_stage_seconds
        }
        row.op_seconds = _op_totals(registry.export())
        rows.append(row)
    return CalibrationReport(
        model=cnn.name,
        num_records=len(dataset),
        layers=layers,
        rows=rows,
    )


def _dataset_stats(dataset):
    from repro.core.config import DatasetStats

    return DatasetStats(
        num_records=len(dataset),
        num_structured_features=dataset.num_structured_features,
        avg_image_bytes=int(dataset.image_rows[0]["image"].nbytes),
    )


# ----------------------------------------------------------------------
# parallel-runtime calibration (process backend)
# ----------------------------------------------------------------------
@dataclass
class ParallelCalibrationRow:
    """One ``cpu`` setting's serial-vs-process wall-clock join."""

    cpu: int
    serial_feature_s: float = 0.0
    process_feature_s: float = 0.0
    serial_total_s: float = 0.0
    process_total_s: float = 0.0
    predicted_feature_s: float = 0.0
    speedup: float = 0.0            # serial / process feature wall
    parallel_ratio: float = None    # predicted / observed process wall

    def to_dict(self):
        return {
            "cpu": self.cpu,
            "serial_feature_s": self.serial_feature_s,
            "process_feature_s": self.process_feature_s,
            "serial_total_s": self.serial_total_s,
            "process_total_s": self.process_total_s,
            "predicted_feature_s": self.predicted_feature_s,
            "speedup": self.speedup,
            "parallel_ratio": self.parallel_ratio,
        }


@dataclass
class ParallelCalibrationReport:
    """Speedup curve + predicted-vs-actual parallel feature walls."""

    model: str
    num_records: int
    plan: str
    cores_available: int
    rows: list

    def to_dict(self):
        return {
            "model": self.model,
            "num_records": self.num_records,
            "plan": self.plan,
            "cores_available": self.cores_available,
            "rows": [row.to_dict() for row in self.rows],
        }

    def results(self):
        """Flat scalars for a trace/v2 ``results`` block. Wall-clock
        fields and their ratios carry the ``capacity`` marker (host-
        dependent; :func:`drift_violations` owns their comparison),
        while ``cores_available`` is compared exactly — a speedup
        recorded on a single-core host must never silently gate a
        multi-core run's curve."""
        flat = {"cores_available": self.cores_available}
        for row in self.rows:
            flat[f"speedup_capacity:cpu{row.cpu}"] = row.speedup
            flat[f"process_feature_s_capacity:cpu{row.cpu}"] = (
                row.process_feature_s
            )
            if row.parallel_ratio is not None:
                flat[f"runtime_ratio_capacity:parallel:cpu{row.cpu}"] = (
                    row.parallel_ratio
                )
        return flat


def calibrate_parallel(cnn, dataset, layers, config, budget, num_nodes=2,
                       cores_per_node=4, cpus=(1, 2, 4), plan=None,
                       repeats=1, downstream_fn=None, user_alpha=2.0):
    """Measure the staged plan's feature-stage wall clock per ``cpu``
    on both backends, joined against the cost model's predicted
    inference seconds — the parallel-runtime calibration the serial
    engine could never provide (its ``cpu`` knob changed accounting,
    not wall time).

    For each ``cpu`` the serial baseline runs once and the process
    backend runs ``repeats`` times (best wall kept — forks and shm
    transfers add scheduling noise the cost model does not price).
    Returns a :class:`ParallelCalibrationReport` whose speedup column
    is serial/process on the *same* cpu value.
    """
    import os as _os

    from dataclasses import replace as _replace

    layers = list(layers)
    plan = plan if plan is not None else ALL_PLANS["staged"]
    plan_label = getattr(plan, "label", str(plan))
    exec_stats = executable_model_stats(cnn)
    dataset_stats = _dataset_stats(dataset)
    cluster = params.ClusterSpec(
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        system_memory_bytes=budget.system_bytes,
    )
    rows = []
    for cpu in cpus:
        run_config = _replace(config, cpu=int(cpu))
        walls = {}
        for backend in ("serial", "process"):
            best_feature, best_total = None, None
            attempts = 1 if backend == "serial" else max(1, int(repeats))
            for _ in range(attempts):
                tracer = Tracer()
                context = ClusterContext(
                    budget, num_nodes=num_nodes,
                    cores_per_node=cores_per_node, cpu=int(cpu),
                    exec_backend=backend,
                )
                executor = FeatureTransferExecutor(
                    context, cnn, dataset, layers, run_config,
                    downstream_fn=downstream_fn or (lambda f, label: {}),
                    tracer=tracer,
                )
                try:
                    executor.run(plan)
                finally:
                    context.exec_backend.close()
                trace = tracer.export()
                feature = sum(
                    spans_wall_seconds(trace, name)
                    for name in STAGE_SPANS["inference"]
                )
                total = spans_wall_seconds(trace, "workload")
                if best_feature is None or feature < best_feature:
                    best_feature, best_total = feature, total
            walls[backend] = (round(best_feature, 6), round(best_total, 6))
        predicted = estimate_runtime(
            exec_stats, layers, dataset_stats, plan,
            _setup_from_budget(run_config, budget, f"cpu{cpu}"), cluster,
            alpha=user_alpha, label=f"cpu{cpu}",
        )
        predicted_feature = round(
            predicted.breakdown.get("inference", 0.0), 6
        )
        row = ParallelCalibrationRow(
            cpu=int(cpu),
            serial_feature_s=walls["serial"][0],
            process_feature_s=walls["process"][0],
            serial_total_s=walls["serial"][1],
            process_total_s=walls["process"][1],
            predicted_feature_s=predicted_feature,
        )
        if row.process_feature_s > 0:
            row.speedup = round(
                row.serial_feature_s / row.process_feature_s, 4
            )
            if predicted_feature > 0:
                row.parallel_ratio = round(
                    predicted_feature / row.process_feature_s, 4
                )
        rows.append(row)
    return ParallelCalibrationReport(
        model=cnn.name,
        num_records=len(dataset),
        plan=plan_label,
        cores_available=len(_os.sched_getaffinity(0))
        if hasattr(_os, "sched_getaffinity") else (_os.cpu_count() or 1),
        rows=rows,
    )
