"""Plan EXPLAIN: the complete candidate ledger of Algorithm 1.

``optimize`` returns only the winner; :func:`explain` re-runs the same
linear search on ``cpu`` and keeps *every* candidate — the Eq. 9-15
memory terms per region, the Eq. 16 intermediate-size estimates, the
join and persistence choices, and a structured rejection reason for
each infeasible candidate — so "why did the optimizer pick cpu=7?"
and "why is cpu=8 not considered?" have inspectable answers.

The result renders as an ASCII table
(:func:`repro.report.explain_ascii.render_explain`) and exports under
the same ``trace/v2`` envelope the benches emit, so explain output can
be diffed and gated like any other run artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemDefaults
from repro.core.optimizer import enumerate_candidates
from repro.core.sizing import estimate_sizes
from repro.explain.whatif import what_if

#: Mirrors the NoFeasiblePlan message ``optimize`` raises.
NO_FEASIBLE_MESSAGE = (
    "no feasible configuration: the workload does not fit the cluster"
)


@dataclass
class ExplainResult:
    """Everything Algorithm 1 looked at while choosing a plan."""

    model: str
    layers: list
    num_records: int
    backend: str
    num_nodes: int
    sizing: object                      # SizingReport
    candidates: list                    # CandidateRecord, search order
    chosen: object = None               # the winning CandidateRecord
    what_if: object = None              # optional WhatIfReport

    @property
    def feasible(self):
        return self.chosen is not None

    def rejected(self):
        return [c for c in self.candidates if c.rejection is not None]

    def to_dict(self):
        return {
            "model": self.model,
            "layers": list(self.layers),
            "num_records": self.num_records,
            "backend": self.backend,
            "num_nodes": self.num_nodes,
            "sizing": {
                "structured_table_bytes": self.sizing.structured_table_bytes,
                "image_table_bytes": self.sizing.image_table_bytes,
                "intermediate_table_bytes": dict(
                    self.sizing.intermediate_table_bytes
                ),
                "s_single": self.sizing.s_single,
                "s_double": self.sizing.s_double,
            },
            "candidates": [c.to_dict() for c in self.candidates],
            "chosen": self.chosen.to_dict() if self.chosen else None,
            "feasible": self.feasible,
            "message": None if self.feasible else NO_FEASIBLE_MESSAGE,
            "what_if": self.what_if.to_dict() if self.what_if else None,
        }

    def to_envelope(self, params=None, trace=None, metrics=None):
        """The explain ledger under the benches' ``trace/v2`` envelope
        so it can be compared/gated like any committed artifact. Built
        inline (same layout as ``benchmarks.harness.trace_payload``)
        because the benchmarks package is not importable from an
        installed ``repro``."""
        if trace is not None and hasattr(trace, "export"):
            trace = trace.export()
        if metrics is not None and hasattr(metrics, "export"):
            metrics = metrics.export()
        return {
            "schema": "trace/v2",
            "bench": "explain",
            "params": dict(params or {}, model=self.model,
                           layers=list(self.layers), backend=self.backend),
            "results": self.to_dict(),
            "trace": trace,
            "metrics": metrics,
        }


def explain(model_stats, layers, dataset_stats, resources,
            downstream=None, defaults=None, backend="spark",
            what_if_pins=None, cnn=None, dataset=None):
    """Run Algorithm 1's search, keeping the full candidate ledger.

    The search is identical to :func:`repro.core.optimizer.optimize`
    (same ``evaluate_candidate`` per cpu) but exhausts the whole range
    instead of stopping at the first feasible candidate, so the ledger
    also shows what the optimizer never needed to look at. The first
    feasible candidate — the one ``optimize`` would return — is marked
    ``chosen``.

    Passing ``what_if_pins`` attaches a :class:`~repro.explain.whatif
    .WhatIfReport` for that pinned configuration (with mini-scale run
    peaks when ``cnn``/``dataset`` are supplied).
    """
    layers = list(layers)
    defaults = defaults or SystemDefaults()
    sizing = estimate_sizes(
        model_stats, layers, dataset_stats, alpha=defaults.alpha
    )
    candidates = []
    chosen = None
    for candidate in enumerate_candidates(
        model_stats, layers, dataset_stats, resources,
        downstream=downstream, defaults=defaults, backend=backend,
        sizing=sizing,
    ):
        if chosen is None and candidate.feasible:
            candidate.chosen = True
            chosen = candidate
        candidates.append(candidate)
    report = None
    if what_if_pins is not None:
        report = what_if(
            model_stats, layers, dataset_stats, resources,
            pins=what_if_pins, downstream=downstream, defaults=defaults,
            backend=backend, cnn=cnn, dataset=dataset,
        )
    return ExplainResult(
        model=model_stats.name,
        layers=layers,
        num_records=dataset_stats.num_records,
        backend=backend,
        num_nodes=resources.num_nodes,
        sizing=sizing,
        candidates=candidates,
        chosen=chosen,
        what_if=report,
    )
