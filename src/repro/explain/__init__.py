"""Plan EXPLAIN, what-if analysis, and cost-model calibration.

The observability face of the optimizer and cost model: ``explain``
exposes Algorithm 1's full candidate ledger, ``what_if`` prices pinned
configurations, ``predict_workload_peaks`` predicts an executable
run's per-region memory waterline peaks, and ``calibrate`` joins all
of those predictions against measured spans and waterlines.
"""

from repro.explain.calibration import (
    CalibrationReport,
    CalibrationRow,
    MEMORY_DRIFT_GATE,
    RUNTIME_DRIFT_GATE,
    calibrate,
    drift_violations,
)
from repro.explain.ledger import ExplainResult, explain
from repro.explain.peaks import peak_ratios, predict_workload_peaks
from repro.explain.whatif import (
    PIN_KEYS,
    VERDICT_FEASIBLE,
    WhatIfReport,
    what_if,
)

__all__ = [
    "CalibrationReport",
    "CalibrationRow",
    "ExplainResult",
    "MEMORY_DRIFT_GATE",
    "PIN_KEYS",
    "RUNTIME_DRIFT_GATE",
    "VERDICT_FEASIBLE",
    "WhatIfReport",
    "calibrate",
    "drift_violations",
    "explain",
    "peak_ratios",
    "predict_workload_peaks",
    "what_if",
]
