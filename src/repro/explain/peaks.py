"""Analytic per-region memory-peak prediction for an executable run.

What-if answers need a *prediction* of the waterline peaks a plan will
produce on the engine — before running it. Eqs. 10-11 bound the paper
-scale deployment, but the executable mini runs charge memory through
the engine's exact wave arithmetic, so this module replicates that
arithmetic symbolically: columnar-exact row sizes (int64 scalar
columns plus raw float32 tensor buffers, matching
:attr:`repro.dataflow.columnar.ColumnarBlock.nbytes`),
round-robin/hash partition placement,
``index % num_nodes`` worker assignment, and per-wave concurrent
charges of ``cpu`` tasks — walked through the same stage sequence the
:class:`~repro.core.executor.FeatureTransferExecutor` runs for each of
the six logical plans.

Predictions are exact-or-over by construction (degenerate layouts
resolve exactly; persistence is priced deserialized, which upper-
bounds the serialized blob), so predicted/observed ratios land in the
documented band :data:`repro.costmodel.params.PEAK_PREDICTION_BAND`
(asserted for all six plans in ``tests/test_explain.py``).
"""

from __future__ import annotations

from repro.core.plans import JoinPlacement, Materialization
from repro.dataflow.joins import BROADCAST


def _flat_dim(shape):
    size = 1
    for dim in shape:
        size *= dim
    return size


def _pooled_dim(shape, grid):
    """Dimension of :func:`~repro.features.pooling.pool_feature_tensor`
    output: 3-d conv tensors max-pool to a grid x grid x C block (pass-
    through when smaller than the grid); flat layers pass through."""
    if len(shape) == 3:
        height, width, channels = shape
        if height < grid or width < grid:
            return height * width * channels
        return grid * grid * channels
    return _flat_dim(shape)


def _source_counts(num_rows, num_partitions):
    """Exact per-partition row counts of ``DistributedTable.from_rows``
    (round-robin by position, partition count capped at the row
    count)."""
    np_ = max(1, min(int(num_partitions), max(1, num_rows)))
    return [
        (num_rows - index + np_ - 1) // np_ for index in range(np_)
    ]


def _hash_counts(num_rows, num_partitions):
    """Exact per-bucket row counts of ``repartition_by_key`` for the
    synthetic datasets' consecutive integer ids (``hash(i) == i``)."""
    np_ = max(1, int(num_partitions))
    return [
        (num_rows - bucket + np_ - 1) // np_ if bucket < num_rows else 0
        for bucket in range(np_)
    ]


def _max_wave(values, num_nodes, cpu):
    """Largest concurrent charge one worker holds: partitions land on
    worker ``index % num_nodes`` and run in waves of ``cpu``; all of a
    wave's charges are held together."""
    peak = 0
    for worker in range(max(1, num_nodes)):
        share = [
            value for index, value in enumerate(values)
            if index % num_nodes == worker
        ]
        for start in range(0, len(share), max(1, cpu)):
            peak = max(peak, sum(share[start:start + max(1, cpu)]))
    return peak


def _worker_totals(values, num_nodes):
    """Total bytes per worker for a fully resident table."""
    totals = [0] * max(1, num_nodes)
    for index, value in enumerate(values):
        totals[index % num_nodes] += value
    return totals


class _VirtualTable:
    """A table reduced to what the charge arithmetic needs: per-
    partition row counts and a uniform per-row byte size."""

    __slots__ = ("counts", "row_bytes")

    def __init__(self, counts, row_bytes):
        self.counts = list(counts)
        self.row_bytes = int(row_bytes)

    def total_bytes(self):
        return sum(self.counts) * self.row_bytes

    def values(self, row_bytes=None):
        per_row = self.row_bytes if row_bytes is None else row_bytes
        return [count * per_row for count in self.counts]


class _PlanSimulator:
    """Walks a plan's stage sequence, accumulating the same charges
    the engine would make, and keeps the running per-region maxima."""

    def __init__(self, num_nodes, cpu, num_partitions, join,
                 user_alpha):
        self.num_nodes = num_nodes
        self.cpu = cpu
        self.num_partitions = num_partitions
        self.join_how = join
        self.user_alpha = user_alpha
        self.user = 0
        self.core = 0
        self.driver = 0
        self.storage_by_worker = [0] * max(1, num_nodes)

    def _user_wave(self, counts, out_row_bytes):
        values = [
            int(self.user_alpha * count * out_row_bytes)
            for count in counts
        ]
        self.user = max(
            self.user, _max_wave(values, self.num_nodes, self.cpu)
        )

    def map(self, table, out_row_bytes):
        """``map_partitions``: alpha-scaled output rows per wave."""
        self._user_wave(table.counts, out_row_bytes)
        return _VirtualTable(table.counts, out_row_bytes)

    def join(self, left, right, out_row_bytes):
        """The physical join ``join(left, right)`` — every row matches
        (both sides carry the full id set), so output partitioning
        follows the probe/big side."""
        num_rows = sum(left.counts)
        if self.join_how == BROADCAST:
            small, big = (
                (left, right)
                if left.total_bytes() <= right.total_bytes()
                else (right, left)
            )
            small_total = small.total_bytes()
            self.driver = max(self.driver, small_total)  # collect()
            out_values = [
                count * out_row_bytes for count in big.counts
            ]  # raw bytes, no alpha, held next to the broadcast copy
            self.user = max(
                self.user,
                small_total
                + _max_wave(out_values, self.num_nodes, self.cpu),
            )
            return _VirtualTable(big.counts, out_row_bytes)
        # Shuffle-hash: both sides rehashed to np buckets; build on the
        # smaller side, its co-located block charged to Core per probe.
        counts = _hash_counts(num_rows, self.num_partitions)
        build = left if left.total_bytes() <= right.total_bytes() else right
        build_values = [count * build.row_bytes for count in counts]
        self.core = max(
            self.core, _max_wave(build_values, self.num_nodes, self.cpu)
        )
        return _VirtualTable(counts, out_row_bytes)

    def cache(self, *tables):
        """Tables resident in Storage *simultaneously*; records the
        per-worker high-water mark."""
        combined = [0] * max(1, self.num_nodes)
        for table in tables:
            for worker, total in enumerate(
                _worker_totals(table.values(), self.num_nodes)
            ):
                combined[worker] += total
        self.storage_by_worker = [
            max(previous, current)
            for previous, current in zip(self.storage_by_worker, combined)
        ]

    def train(self, table, vec_row_bytes):
        """``_train``: vectorize map (alpha waves) then a driver-side
        collect of the full vector table."""
        vectors = self.map(table, vec_row_bytes)
        self.driver = max(self.driver, vectors.total_bytes())


def predict_workload_peaks(cnn, dataset, layers, config, plan,
                           num_nodes, cpu=None, model_mem_bytes=None,
                           pool_grid=2, user_alpha=2.0):
    """Predict the per-region per-worker occupancy peaks of running
    ``plan`` on the executable workload.

    Returns ``{"user", "core", "dl", "storage", "driver"}`` in bytes —
    directly comparable to the ``region_peak_bytes`` the executor
    reports and the ``mem_used_bytes`` waterline peaks the metrics
    registry records. Serialized persistence is priced at deserialized
    byte sizes (an upper bound: the zlib blob is never larger).
    """
    from repro.core.executor import estimate_model_mem_bytes

    layers = list(layers)
    num_rows = len(dataset)
    n_str = dataset.num_structured_features
    image_bytes = int(dataset.image_rows[0]["image"].nbytes)
    if cpu is None:
        cpu = config.cpu
    if model_mem_bytes is None:
        model_mem_bytes = estimate_model_mem_bytes(cnn)

    flat = {layer: _flat_dim(cnn.output_shape_of(layer)) for layer in layers}
    pooled = {
        layer: _pooled_dim(cnn.output_shape_of(layer), pool_grid)
        for layer in layers
    }
    sum_flat = sum(flat.values())
    num_layers = len(layers)

    # Columnar-exact row bytes (see repro.dataflow.columnar): scalar
    # int columns are int64 (8 B/row), tensor columns their raw float32
    # buffers — no per-field slots or null bitmap. Only the eager
    # TensorList column is an object column, priced at the Appendix A
    # per-value estimate plus its 8-byte variable-length header.
    row_tstr = 16 + 4 * n_str                      # {id, features, label}
    row_timg = 8 + image_bytes                     # {id, image}
    row_base = 16 + 4 * n_str + image_bytes        # joined tstr x timg

    def row_feature(layer, keep):
        if keep:   # {id, features, label, tensor}
            return 16 + 4 * (n_str + flat[layer])
        return 8 + 4 * flat[layer]                 # {id, tensor}

    def row_eager(keep):
        # object column: header + member tensors + per-member headers
        payload = 8 + 4 * sum_flat + 8 * num_layers
        if keep:   # {id, features, label, tensors}
            return 16 + 4 * n_str + payload
        return 8 + payload                         # {id, tensors}

    def row_joined(layer):
        return 16 + 4 * (n_str + flat[layer])

    def row_vector(layer):                         # {id, label, x}
        return 16 + 4 * (n_str + pooled[layer])

    sim = _PlanSimulator(
        num_nodes=num_nodes, cpu=cpu,
        num_partitions=config.num_partitions, join=config.join,
        user_alpha=user_alpha,
    )
    counts = _source_counts(num_rows, config.num_partitions)
    tstr = _VirtualTable(counts, row_tstr)
    timg = _VirtualTable(counts, row_timg)
    after_join = plan.join_placement is JoinPlacement.AFTER_JOIN

    if plan.materialization is Materialization.LAZY:
        base = sim.join(tstr, timg, row_base) if after_join else timg
        for layer in layers:
            features = sim.map(base, row_feature(layer, keep=after_join))
            train = (
                features if after_join
                else sim.join(tstr, features, row_joined(layer))
            )
            sim.train(train, row_vector(layer))
    elif plan.materialization is Materialization.STAGED:
        current = sim.join(tstr, timg, row_base) if after_join else timg
        previous = None
        for layer in layers:
            current = sim.map(current, row_feature(layer, keep=after_join))
            # cache(current) runs before unpersist(previous): two
            # consecutive staged tables coexist in Storage.
            sim.cache(*(t for t in (previous, current) if t is not None))
            train = (
                current if after_join
                else sim.join(tstr, current, row_joined(layer))
            )
            sim.train(train, row_vector(layer))
            previous = current
    else:  # EAGER
        base = sim.join(tstr, timg, row_base) if after_join else timg
        eager = sim.map(base, row_eager(keep=after_join))
        if not after_join:
            eager = sim.join(tstr, eager, row_eager(keep=True))
        sim.cache(eager)
        for layer in layers:
            projected = sim.map(eager, row_joined(layer))
            sim.train(projected, row_vector(layer))

    return {
        "user": int(sim.user),
        "core": int(sim.core),
        "dl": int(cpu * model_mem_bytes) if layers else 0,
        "storage": int(max(sim.storage_by_worker, default=0)),
        "driver": int(sim.driver),
    }


def peak_ratios(predicted, observed):
    """Per-region predicted/observed ratios. Regions the run never
    touched (observed 0) are reported as ``None`` — nothing to
    calibrate against."""
    ratios = {}
    for region, prediction in predicted.items():
        measured = observed.get(region) or 0
        ratios[region] = (
            round(prediction / measured, 4) if measured > 0 else None
        )
    return ratios
