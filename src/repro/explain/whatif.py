"""What-if analysis: pin any subset of plan knobs and price the result.

Algorithm 1 answers "what should run"; what-if answers "what would
happen if I ran *this*": pin ``cpu``, the logical plan, the physical
join, the persistence format, or the User/Storage memory fractions,
and get back the feasibility verdict (the optimizer's own Eq. 9-15
terms plus the cost model's crash check), predicted per-region peaks,
and the predicted runtime breakdown from
:mod:`repro.costmodel.runtime` — the under-the-hood cost model wired
into a user-facing question.

Two prediction scales coexist deliberately (see DESIGN.md's
substitution table): feasibility and runtime are priced at *paper*
scale from the roster statistics, while ``predicted_run_peak_bytes``
(present when an executable CNN + dataset are supplied) predicts the
*mini* run's waterline peaks via :mod:`repro.explain.peaks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemDefaults, VistaConfig
from repro.core.optimizer import evaluate_candidate, enumerate_candidates
from repro.core.plans import LogicalPlan, STAGED, plan_by_name
from repro.core.sizing import estimate_sizes, static_storage_need
from repro.costmodel import params
from repro.costmodel.crashes import (
    cached_working_set_bytes,
    detect_crash,
    vista_setup,
)
from repro.costmodel.runtime import estimate_runtime
from repro.dataflow.joins import BROADCAST, SHUFFLE
from repro.dataflow.partition import DESERIALIZED, SERIALIZED
from repro.explain.peaks import predict_workload_peaks

#: Knobs :func:`what_if` accepts in its ``pins`` mapping.
PIN_KEYS = (
    "cpu", "plan", "join", "persistence",
    "user_fraction", "storage_fraction",
)

#: Verdicts beyond the candidate rejection codes / crash scenarios.
VERDICT_FEASIBLE = "feasible"
VERDICT_USER_UNDER_REQUIREMENT = "user-fraction-under-requirement"
VERDICT_OVERCOMMITTED = "fractions-overcommitted"


@dataclass
class WhatIfReport:
    """Outcome of one what-if question."""

    pins: dict
    plan: str                     # logical plan label, e.g. "staged/aj"
    config: VistaConfig
    candidate: object             # CandidateRecord at the priced cpu
    feasible: bool
    verdict: str                  # VERDICT_FEASIBLE or a failure code
    predicted_peak_bytes: dict    # paper-scale per-worker, per region
    runtime: object               # costmodel RuntimeReport
    predicted_run_peak_bytes: dict | None = None   # mini-scale
    notes: list = field(default_factory=list)

    def to_dict(self):
        return {
            "pins": dict(self.pins),
            "plan": self.plan,
            "config": self.config.describe(),
            "candidate": self.candidate.to_dict(),
            "feasible": self.feasible,
            "verdict": self.verdict,
            "predicted_peak_bytes": dict(self.predicted_peak_bytes),
            "predicted_run_peak_bytes": (
                dict(self.predicted_run_peak_bytes)
                if self.predicted_run_peak_bytes is not None else None
            ),
            "runtime": {
                "seconds": self.runtime.seconds,
                "crash": self.runtime.crash,
                "breakdown": dict(self.runtime.breakdown),
                "spilled_bytes": self.runtime.spilled_bytes,
            },
            "notes": list(self.notes),
        }


def cluster_from_resources(resources):
    """A :class:`~repro.costmodel.params.ClusterSpec` matching the
    optimizer's resource description."""
    return params.ClusterSpec(
        num_nodes=resources.num_nodes,
        cores_per_node=resources.cores_per_node,
        system_memory_bytes=resources.system_memory_bytes,
        gpu_memory_bytes=resources.gpu_memory_bytes,
        gpu_flops=params.GPU_FLOPS if resources.has_gpu else 0.0,
    )


def _resolve_plan(pin):
    if pin is None:
        return STAGED
    if isinstance(pin, LogicalPlan):
        return pin
    return plan_by_name(str(pin))


def what_if(model_stats, layers, dataset_stats, resources, pins,
            downstream=None, defaults=None, backend="spark",
            cluster=None, cnn=None, dataset=None, pool_grid=2,
            user_alpha=None):
    """Price a pinned configuration; returns a :class:`WhatIfReport`.

    ``pins`` maps any subset of :data:`PIN_KEYS` to a value. Unpinned
    knobs fall back to what Algorithm 1 would choose (the first
    feasible candidate; when nothing is feasible, the ``cpu = 1``
    candidate so the report still shows the failing terms). Memory
    fractions apportion the worker memory left after the OS, DL, and
    Core reservations between User and Storage.

    With an executable ``cnn`` and ``dataset``, the report also
    carries ``predicted_run_peak_bytes`` — the engine-exact mini-scale
    waterline prediction of :func:`repro.explain.peaks
    .predict_workload_peaks` for the pinned configuration.
    """
    pins = dict(pins or {})
    unknown = sorted(set(pins) - set(PIN_KEYS))
    if unknown:
        raise ValueError(
            f"unknown what-if pins {unknown}; valid pins: {list(PIN_KEYS)}"
        )
    defaults = defaults or SystemDefaults()
    if user_alpha is None:
        user_alpha = defaults.alpha
    sizing = estimate_sizes(
        model_stats, layers, dataset_stats, alpha=defaults.alpha
    )
    plan = _resolve_plan(pins.get("plan"))
    notes = []

    # ------------------------------------------------------------------
    # base candidate: the pinned cpu, or Algorithm 1's own pick
    # ------------------------------------------------------------------
    if "cpu" in pins:
        candidate = evaluate_candidate(
            model_stats, layers, dataset_stats, resources,
            int(pins["cpu"]), downstream=downstream, defaults=defaults,
            backend=backend, sizing=sizing,
        )
    else:
        candidate = None
        for record in enumerate_candidates(
            model_stats, layers, dataset_stats, resources,
            downstream=downstream, defaults=defaults, backend=backend,
            sizing=sizing,
        ):
            candidate = record
            if record.feasible:
                break
        if candidate is not None and not candidate.feasible:
            notes.append(
                "no candidate is feasible; showing the cpu=1 terms"
            )

    reasons = []
    if candidate.rejection is not None:
        reasons.append(candidate.rejection["code"])

    # ------------------------------------------------------------------
    # knob overrides
    # ------------------------------------------------------------------
    join = pins.get("join") or candidate.join or (
        BROADCAST
        if sizing.structured_table_bytes < defaults.max_broadcast_bytes
        else SHUFFLE
    )
    persistence = pins.get("persistence") or candidate.persistence or (
        SERIALIZED
        if max(0, candidate.mem_storage_bytes) * resources.num_nodes
        < sizing.s_double
        else DESERIALIZED
    )

    workload_bytes = max(
        0, candidate.mem_worker_bytes - candidate.mem_core_bytes
    )
    user_bytes = candidate.mem_user_bytes
    if "user_fraction" in pins:
        user_bytes = int(float(pins["user_fraction"]) * workload_bytes)
    if "storage_fraction" in pins:
        storage_bytes = int(
            float(pins["storage_fraction"]) * workload_bytes
        )
        if "user_fraction" not in pins:
            user_bytes = workload_bytes - storage_bytes
    else:
        storage_bytes = workload_bytes - user_bytes

    if user_bytes < candidate.mem_user_bytes:
        reasons.append(VERDICT_USER_UNDER_REQUIREMENT)
        notes.append(
            f"pinned User region {user_bytes} B is below the Eq. 10 "
            f"requirement {candidate.mem_user_bytes} B"
        )
    if user_bytes + storage_bytes > workload_bytes:
        reasons.append(VERDICT_OVERCOMMITTED)
        notes.append(
            f"pinned fractions commit {user_bytes + storage_bytes} B of "
            f"the {workload_bytes} B available to User + Storage"
        )
    elif storage_bytes <= 0 and candidate.rejection is None:
        reasons.append(VERDICT_OVERCOMMITTED)
        notes.append("nothing left for the Storage region")

    config = VistaConfig(
        cpu=candidate.cpu,
        num_partitions=candidate.num_partitions,
        mem_storage_bytes=max(0, storage_bytes),
        mem_user_bytes=max(0, user_bytes),
        mem_dl_bytes=candidate.mem_dl_bytes,
        join=join,
        persistence=persistence,
    )

    # ------------------------------------------------------------------
    # verdict: optimizer constraints first, then the crash model
    # ------------------------------------------------------------------
    if cluster is None:
        cluster = cluster_from_resources(resources)
    setup = vista_setup(config, backend=backend, label="what-if")
    setup = setup.with_(
        storage_cap_bytes=config.mem_storage_bytes,
        user_cap_bytes=config.mem_user_bytes,
    )
    crash = detect_crash(
        setup, model_stats, layers, dataset_stats, plan.materialization,
        cluster, alpha=defaults.alpha, use_gpu=resources.has_gpu,
    )
    if crash is not None and crash not in reasons:
        reasons.append(crash)
    verdict = reasons[0] if reasons else VERDICT_FEASIBLE

    # ------------------------------------------------------------------
    # predictions
    # ------------------------------------------------------------------
    working_set = cached_working_set_bytes(
        plan.materialization, model_stats, layers, dataset_stats,
        alpha=defaults.alpha, static_storage=backend == "ignite",
    )
    storage_peak = static_storage_need(
        working_set, persistence, model_stats.serialized_ratio,
        alpha=defaults.alpha,
    ) // max(1, resources.num_nodes)
    max_dim = max(
        model_stats.layer_stats(layer).transfer_dim for layer in layers
    )
    vector_table_bytes = dataset_stats.num_records * (
        32 + 4 * (dataset_stats.num_structured_features + max_dim)
    )
    predicted_peaks = {
        "user": candidate.mem_user_bytes,
        "dl": candidate.mem_dl_bytes,
        "core": candidate.mem_core_bytes,
        "storage": int(storage_peak),
        "driver": int(max(
            sizing.structured_table_bytes if join == BROADCAST else 0,
            vector_table_bytes,
        )),
    }
    runtime = estimate_runtime(
        model_stats, layers, dataset_stats, plan, setup, cluster,
        use_gpu=resources.has_gpu, alpha=defaults.alpha,
        label="what-if",
    )
    run_peaks = None
    if cnn is not None and dataset is not None:
        run_peaks = predict_workload_peaks(
            cnn, dataset, layers, config, plan, resources.num_nodes,
            pool_grid=pool_grid, user_alpha=user_alpha,
        )
    return WhatIfReport(
        pins=pins,
        plan=plan.label,
        config=config,
        candidate=candidate,
        feasible=verdict == VERDICT_FEASIBLE,
        verdict=verdict,
        predicted_peak_bytes=predicted_peaks,
        runtime=runtime,
        predicted_run_peak_bytes=run_peaks,
        notes=notes,
    )
