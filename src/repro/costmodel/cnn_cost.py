"""Per-plan CNN inference FLOP accounting (Section 4.2.1).

The heart of the Lazy-vs-Staged story: Lazy re-runs full inference
from the raw image for every layer of L, so its total FLOPs are the
*sum* of each layer's path; Staged and Eager pay for the deepest
layer's path exactly once. With a pre-materialized base layer
(Appendix B) every path starts from that base instead of the image.
"""

from __future__ import annotations

from repro.core.plans import Materialization


def executable_model_stats(cnn, runtime_mem_bytes=None,
                           gpu_mem_bytes=None):
    """A ModelStats-compatible adapter over an *executable* CNN.

    The roster (:mod:`repro.cnn.zoo.roster`) carries paper-scale
    statistics; calibration instead needs the cost model to price the
    mini-profile network that actually ran. This wraps a built
    :class:`~repro.cnn.network.CNN` (whose zoo builder attached
    ``profiles``) in the same interface ``estimate_runtime`` /
    ``detect_crash`` consume: per-feature-layer shapes, transfer dims,
    cumulative FLOPs, and serialized sizes — all derived from the
    executable architecture. Runtime/GPU footprints default to the
    executor's 3x-parameter-bytes heuristic
    (:func:`repro.core.executor.estimate_model_mem_bytes`).
    """
    from repro.cnn.zoo.roster import FeatureLayerStats, ModelStats, _transfer_dim
    from repro.costmodel import params

    stats = ModelStats.__new__(ModelStats)
    stats.name = cnn.name
    stats.input_shape = tuple(cnn.input_shape)
    stats.profiles = list(cnn.profiles)
    stats.total_params = sum(p.param_count for p in stats.profiles)
    stats.total_flops = sum(p.flops for p in stats.profiles)
    stats.serialized_bytes = 4 * stats.total_params
    default_mem = 3 * stats.serialized_bytes
    stats.runtime_mem_bytes = int(
        default_mem if runtime_mem_bytes is None else runtime_mem_bytes
    )
    stats.gpu_mem_bytes = int(
        default_mem if gpu_mem_bytes is None else gpu_mem_bytes
    )
    stats.serialized_ratio = params.SERIALIZED_RATIO.get(cnn.name, 0.4)
    stats.feature_layers = list(cnn.feature_layers)
    stats._by_name = {}
    cumulative = 0
    feature_set = set(cnn.feature_layers)
    for position, profile in enumerate(stats.profiles):
        cumulative += profile.flops
        if profile.name in feature_set:
            stats._by_name[profile.name] = FeatureLayerStats(
                name=profile.name,
                index=position + 1,
                output_shape=profile.output_shape,
                transfer_dim=_transfer_dim(profile.output_shape),
                flops_from_input=cumulative,
            )
    return stats


def _path_flops(model_stats, layer, base_layer=None):
    flops = model_stats.layer_stats(layer).flops_from_input
    if base_layer is not None:
        flops -= model_stats.layer_stats(base_layer).flops_from_input
    return max(0, flops)


def plan_inference_flops(model_stats, layers, num_records,
                         materialization, base_layer=None):
    """Total inference FLOPs of a plan over ``num_records`` images."""
    layers = list(layers)
    if materialization is Materialization.LAZY:
        per_image = sum(
            _path_flops(model_stats, layer, base_layer) for layer in layers
        )
    else:  # EAGER and STAGED share one pass to the deepest layer
        per_image = _path_flops(model_stats, layers[-1], base_layer)
    return per_image * num_records


def per_layer_inference_flops(model_stats, layers, num_records,
                              materialization, base_layer=None):
    """FLOPs attributable to each layer's materialization step, in the
    staged order — the Table 3 per-layer breakdown."""
    layers = list(layers)
    breakdown = {}
    previous = base_layer
    for layer in layers:
        if materialization is Materialization.LAZY:
            per_image = _path_flops(model_stats, layer, base_layer)
        else:
            per_image = model_stats.flops_between(previous, layer)
            previous = layer
        breakdown[layer] = per_image * num_records
    return breakdown


def inference_seconds(flops, model_name, cluster, cpu, use_gpu=False):
    """Wall-clock of ``flops`` of inference on the cluster."""
    from repro.costmodel import params

    if use_gpu and cluster.has_gpu:
        throughput = cluster.gpu_flops * cluster.num_nodes
    else:
        throughput = params.node_flops(model_name, cpu) * cluster.num_nodes
    return flops / throughput
