"""Per-plan CNN inference FLOP accounting (Section 4.2.1).

The heart of the Lazy-vs-Staged story: Lazy re-runs full inference
from the raw image for every layer of L, so its total FLOPs are the
*sum* of each layer's path; Staged and Eager pay for the deepest
layer's path exactly once. With a pre-materialized base layer
(Appendix B) every path starts from that base instead of the image.
"""

from __future__ import annotations

from repro.core.plans import Materialization


def _path_flops(model_stats, layer, base_layer=None):
    flops = model_stats.layer_stats(layer).flops_from_input
    if base_layer is not None:
        flops -= model_stats.layer_stats(base_layer).flops_from_input
    return max(0, flops)


def plan_inference_flops(model_stats, layers, num_records,
                         materialization, base_layer=None):
    """Total inference FLOPs of a plan over ``num_records`` images."""
    layers = list(layers)
    if materialization is Materialization.LAZY:
        per_image = sum(
            _path_flops(model_stats, layer, base_layer) for layer in layers
        )
    else:  # EAGER and STAGED share one pass to the deepest layer
        per_image = _path_flops(model_stats, layers[-1], base_layer)
    return per_image * num_records


def per_layer_inference_flops(model_stats, layers, num_records,
                              materialization, base_layer=None):
    """FLOPs attributable to each layer's materialization step, in the
    staged order — the Table 3 per-layer breakdown."""
    layers = list(layers)
    breakdown = {}
    previous = base_layer
    for layer in layers:
        if materialization is Materialization.LAZY:
            per_image = _path_flops(model_stats, layer, base_layer)
        else:
            per_image = model_stats.flops_between(previous, layer)
            previous = layer
        breakdown[layer] = per_image * num_records
    return breakdown


def inference_seconds(flops, model_name, cluster, cpu, use_gpu=False):
    """Wall-clock of ``flops`` of inference on the cluster."""
    from repro.costmodel import params

    if use_gpu and cluster.has_gpu:
        throughput = cluster.gpu_flops * cluster.num_nodes
    else:
        throughput = params.node_flops(model_name, cpu) * cluster.num_nodes
    return flops / throughput
