"""Calibrated cost-model constants and cluster specifications.

The paper's runtime figures were measured on an 8-node CloudLab
cluster (32 GB RAM, 8-core Xeon @2 GHz, HDDs, Spark 2.2/TF 1.3) and a
single GPU workstation (Titan X 12 GB, SSD). We cannot re-run that
testbed, so this module pins an analytical model's constants to the
paper's own measured anchors:

- Per-node CNN inference throughput is calibrated so the Table 3
  breakdown reproduces (e.g. ResNet50 inference + first LR iteration
  over Foods on 1 node ~= 19 min at cpu=4); per-model efficiency
  factors reflect that VGG's large GEMMs run closer to peak than
  ResNet's small kernels.
- TF uses all cores regardless of the ``cpu`` setting (paper footnote
  2), so throughput follows an Amdahl-style curve in ``cpu`` that
  plateaus around 4 cores (Figure 12C).
- Image reading pays the HDFS "small files" penalty: per-file latency
  dominates and scales sub-linearly with nodes (Table 3 read rows).
- Serialized persistence compresses feature data; AlexNet features
  compress best (13% non-zeros vs ~36% — Appendix A).

Every constant is a plain module attribute so ablation benches can
monkeypatch them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.model import GB, MB

# ---------------------------------------------------------------------
# compute
# ---------------------------------------------------------------------
#: Effective FLOP/s of one node at cpu=1 before model efficiency.
NODE_FLOPS_BASE = 4.6e10

#: Amdahl parallel fraction for the cpu-speedup curve (Figure 12C).
CPU_PARALLEL_FRACTION = 0.78

#: Per-model effective GEMM efficiency (calibrated to Table 3).
MODEL_COMPUTE_EFFICIENCY = {"alexnet": 1.65, "vgg16": 2.1, "resnet50": 1.0}

#: Effective GPU FLOP/s (Titan X Pascal, fp32, realistic utilization).
GPU_FLOPS = 3.0e12

#: Downstream-model training: FLOPs multiplier per (record x feature).
TRAIN_FLOPS_PER_CELL = 6.0
TRAIN_ITERATIONS = 10
TRAIN_ITERATION_OVERHEAD_S = 2.0

# ---------------------------------------------------------------------
# I/O
# ---------------------------------------------------------------------
#: HDFS small-files read: per-image latency and node-scaling exponent.
IMAGE_READ_SECONDS_PER_FILE = 0.0111
IMAGE_READ_SECONDS_PER_FILE_SSD = 0.0018
READ_SCALING_EXPONENT = 0.8

#: Sequential disk bandwidth per node (HDD testbed / SSD workstation).
DISK_BANDWIDTH = 100 * MB
DISK_BANDWIDTH_SSD = 400 * MB

#: Effective per-node network bandwidth for shuffles/broadcasts.
NETWORK_BANDWIDTH = 120 * MB

#: Serialization/compression throughput per core.
SERDE_BANDWIDTH_PER_CORE = 200 * MB

#: Compressed-size ratio of serialized feature data per model
#: (AlexNet features are far sparser — Appendix A). Sourced from the
#: roster so the optimizer and the cost model always agree.
def _roster_serialized_ratios():
    from repro.cnn.zoo.roster import MODEL_ROSTER

    return {name: stats.serialized_ratio
            for name, stats in MODEL_ROSTER.items()}


SERIALIZED_RATIO = _roster_serialized_ratios()

# ---------------------------------------------------------------------
# scheduling
# ---------------------------------------------------------------------
#: Per-task scheduling overhead, and the extra cost per task once the
#: partition count crosses Spark's status-message compression threshold
#: (Section 5.3: "when np > 2000, Spark compresses task status
#: messages, leading to high overhead").
TASK_OVERHEAD_S = 0.010
TASK_OVERHEAD_LARGE_NP_S = 0.030
LARGE_NP_THRESHOLD = 2000

#: Fixed per-stage overhead (driver scheduling, stage setup).
STAGE_OVERHEAD_S = 2.0

#: Decoded image tensor bytes (227 x 227 x 3 float32) — what a CNN
#: input buffer holds per image regardless of the JPEG size.
DECODED_IMAGE_BYTES = 227 * 227 * 3 * 4

# ---------------------------------------------------------------------
#: Acceptable predicted/observed band for per-region memory-peak
#: predictions (``repro.explain.peaks``): predictions must bound the
#: observed peak from above without overshooting 2x — mirroring the
#: 1.0-2.0x band DESIGN.md documents for Eq. 16 size estimates. Ratios
#: are predicted / observed.
PEAK_PREDICTION_BAND = (1.0, 2.0)

#: Acceptable predicted/observed band for per-stage *runtime* ratios
#: in calibration. Wall-clock predictions come from the paper-scale
#: cost model applied to mini workloads on arbitrary CI hardware, so
#: the band is intentionally loose: calibration gates on *drift* of
#: these ratios between runs, not their absolute value.
RUNTIME_PREDICTION_BAND = (1e-3, 1e3)


def cpu_speedup(cpu):
    """Relative node throughput at ``cpu`` threads vs one thread."""
    p = CPU_PARALLEL_FRACTION
    return 1.0 / ((1.0 - p) + p / max(1, cpu))


def node_flops(model_name, cpu):
    """Effective inference FLOP/s of one CPU node."""
    eff = MODEL_COMPUTE_EFFICIENCY.get(model_name, 1.0)
    return NODE_FLOPS_BASE * eff * cpu_speedup(cpu)


# ---------------------------------------------------------------------
# clusters
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterSpec:
    """Hardware the cost model reasons about."""

    num_nodes: int
    cores_per_node: int
    system_memory_bytes: int
    disk_bandwidth: float = DISK_BANDWIDTH
    image_read_seconds_per_file: float = IMAGE_READ_SECONDS_PER_FILE
    network_bandwidth: float = NETWORK_BANDWIDTH
    gpu_memory_bytes: int = 0
    gpu_flops: float = 0.0

    @property
    def has_gpu(self):
        return self.gpu_memory_bytes > 0


def cloudlab_cluster(num_nodes=8):
    """The paper's CPU testbed: 8 workers, 32 GB, 8 cores, HDD."""
    return ClusterSpec(
        num_nodes=num_nodes,
        cores_per_node=8,
        system_memory_bytes=32 * GB,
    )


def gpu_workstation():
    """The paper's GPU setup: one node, 32 GB RAM, 8 cores, SSD,
    Nvidia Titan X (Pascal) 12 GB."""
    return ClusterSpec(
        num_nodes=1,
        cores_per_node=8,
        system_memory_bytes=32 * GB,
        disk_bandwidth=DISK_BANDWIDTH_SSD,
        image_read_seconds_per_file=IMAGE_READ_SECONDS_PER_FILE_SSD,
        gpu_memory_bytes=12 * GB,
        gpu_flops=GPU_FLOPS,
    )
