"""Crash prediction for paper-scale workload runs (Section 4.1).

Decides whether a (plan, configuration, backend, cluster) combination
crashes, and from which Section 4.1 scenario, using the same memory
arithmetic the optimizer's constraints use. This is what paints the
"X" cells of Figures 6, 7, 10 and 11.

Mechanisms modelled:

1. **DL blowup** — ``cpu`` CNN replicas exceed the System Memory left
   outside the JVM's working footprint (Spark: VGG16 at 5-7 threads).
2. **GPU DL blowup** — ``cpu`` replicas exceed GPU memory (Fig. 7A).
3. **User Memory** — per-thread decoded-input and feature-output
   buffers (times the object blowup alpha) plus the serialized CNN and
   downstream-model copies overflow the (small, on-heap) User region —
   Ignite's 2.4 GB heap share is the binding case (Lazy-7 on Amazon).
4. **Static Storage** — plans that cache intermediates overflow
   Ignite's memory-only data region, which cannot spill (Eager on
   Amazon/ResNet50).
5. **Core/partition blowup** — too few partitions make a single
   partition's join/UDF state exceed Core Memory (Figure 11B's low-np
   crashes; Figure 10's broadcast crashes at very wide Tstr).

The User-region arithmetic is the *same function* the optimizer's
Eq. 10 uses (:func:`repro.core.optimizer.user_memory_requirement`), so
a Vista-chosen configuration can never fail its own constraint — the
paper's "Vista never crashes" property holds by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.optimizer import downstream_mem_bytes, user_memory_requirement
from repro.core.plans import Materialization
from repro.core.sizing import eager_table_bytes, estimate_sizes
from repro.costmodel import params
from repro.memory.model import GB

#: Section 4.1 crash scenario identifiers.
CRASH_DL = "dl-execution-memory"
CRASH_DL_GPU = "gpu-memory"
CRASH_USER = "user-memory"
CRASH_STORAGE = "storage-memory"
CRASH_CORE = "execution-memory"
CRASH_DRIVER = "driver-memory"

_OS_RESERVED = 3 * GB
_JVM_BASE = 4 * GB
_SPARK_STORAGE_COMMIT_CAP = 6 * GB
_COMMITTED_CORE = int(2.4 * GB)
_DRIVER_CAP = 8 * GB


@dataclass(frozen=True)
class ExecutionSetup:
    """One concrete system configuration a workload runs under."""

    label: str
    backend: str           # "spark" | "ignite" | "flink"
    cpu: int
    num_partitions: int
    join: str              # "shuffle" | "broadcast"
    persistence: str       # "serialized" | "deserialized"
    heap_bytes: int
    user_cap_bytes: int
    core_cap_bytes: int
    storage_cap_bytes: int   # per node
    storage_spills: bool     # False = memory-only (Ignite)

    def with_(self, **changes):
        return replace(self, **changes)


def spark_default_setup(cpu, num_records=20000, label=None):
    """The baselines' Spark config: 29 GB heap tuned per best
    practices, shuffle join, deserialized, default partitioning.

    The input partition count tracks the file count (Spark's
    ``binaryFiles`` splits many small image files into many
    partitions), floored at the 200-partition shuffle default.
    """
    heap = 29 * GB
    user = int(0.4 * heap)
    unified = heap - user
    return ExecutionSetup(
        label=label or f"lazy-{cpu}",
        backend="spark",
        cpu=cpu,
        num_partitions=max(200, num_records // 100),
        join="shuffle",
        persistence="deserialized",
        heap_bytes=heap,
        user_cap_bytes=user,
        core_cap_bytes=int(unified * 0.5),
        storage_cap_bytes=int(unified * 0.5),
        storage_spills=True,
    )


def ignite_default_setup(cpu, label=None):
    """The baselines' Ignite config: 4 GB heap, 25 GB off-heap
    memory-only storage, np = 1024."""
    heap = 4 * GB
    return ExecutionSetup(
        label=label or f"lazy-{cpu}",
        backend="ignite",
        cpu=cpu,
        num_partitions=1024,
        join="shuffle",
        persistence="deserialized",
        heap_bytes=heap,
        user_cap_bytes=int(0.6 * heap),
        core_cap_bytes=heap - int(0.6 * heap),
        storage_cap_bytes=25 * GB,
        storage_spills=False,
    )


def flink_setup(label="tft+beam"):
    """The TFT+Beam comparison's hand-tuned Flink config (Fig. 7B):
    parallelism 32, 25 GB heap, User fraction raised to 60%."""
    heap = 25 * GB
    user = int(0.6 * heap)
    return ExecutionSetup(
        label=label,
        backend="flink",
        cpu=4,  # parallelism 32 over 8 nodes
        num_partitions=32,
        join="shuffle",
        persistence="serialized",
        heap_bytes=heap,
        user_cap_bytes=user,
        core_cap_bytes=int((heap - user) * 0.5),
        storage_cap_bytes=int((heap - user) * 0.5),
        storage_spills=True,
    )


def vista_setup(config, backend="spark", label="vista"):
    """Setup from the optimizer's :class:`VistaConfig`.

    On Spark the Storage region is on-heap; on Ignite it is off-heap
    (Figure 4B vs 4C), so the JVM heap differs per backend.
    """
    from repro.core.config import DEFAULT_CORE_MEMORY

    heap = config.mem_user_bytes + DEFAULT_CORE_MEMORY
    if backend == "spark":
        heap += config.mem_storage_bytes
    return ExecutionSetup(
        label=label,
        backend=backend,
        cpu=config.cpu,
        num_partitions=config.num_partitions,
        join=config.join,
        persistence=config.persistence,
        heap_bytes=heap,
        user_cap_bytes=config.mem_user_bytes,
        core_cap_bytes=DEFAULT_CORE_MEMORY,
        storage_cap_bytes=config.mem_storage_bytes,
        storage_spills=backend != "ignite",
    )


def manual_setup(model_stats, layers, dataset_stats, cpu, backend="spark",
                 cluster_memory_bytes=32 * GB, persistence="deserialized",
                 join="shuffle", label=None, alpha=2.0):
    """An explicitly hand-apportioned configuration for a forced ``cpu``
    — the paper's strong baselines ("For Lazy-5 with Pre-mat and Eager,
    we explicitly apportion CNN Inference memory, Storage Memory, User
    Memory, and Core Memory to avoid workload crashes"). Storage gets
    whatever is left after the DL replicas and User/Core needs; if
    nothing is left, the DL blowup is unavoidable and the run will
    crash."""
    from repro.core.optimizer import (
        downstream_mem_bytes as m_mem_fn,
        num_partitions_for,
        user_memory_requirement,
    )
    from repro.core.config import DEFAULT_CORE_MEMORY, DEFAULT_MAX_PARTITION

    sizing = estimate_sizes(model_stats, layers, dataset_stats, alpha=alpha)
    np_ = num_partitions_for(sizing.s_single, cpu, 8, DEFAULT_MAX_PARTITION)
    m_mem = m_mem_fn(
        model_stats, layers, dataset_stats.num_structured_features
    )
    user = user_memory_requirement(
        model_stats, sizing.s_single, np_, cpu, m_mem, alpha
    )
    storage = max(
        0,
        cluster_memory_bytes - _OS_RESERVED
        - cpu * model_stats.runtime_mem_bytes - user - DEFAULT_CORE_MEMORY,
    )
    heap = user + DEFAULT_CORE_MEMORY
    if backend == "spark":
        heap += storage
    return ExecutionSetup(
        label=label or f"manual-{cpu}",
        backend=backend,
        cpu=cpu,
        num_partitions=np_,
        join=join,
        persistence=persistence,
        heap_bytes=int(heap),
        user_cap_bytes=int(user),
        core_cap_bytes=DEFAULT_CORE_MEMORY,
        storage_cap_bytes=int(storage),
        storage_spills=backend != "ignite",
    )


# ---------------------------------------------------------------------
# working sets
# ---------------------------------------------------------------------
def cached_working_set_bytes(materialization, model_stats, layers,
                             dataset_stats, alpha=2.0, static_storage=False):
    """Bytes of intermediate data a plan holds cached at its peak.

    Lazy streams each layer's features straight into the (pooled,
    small) training table, so it caches ~nothing; Eager holds every
    layer at once. Staged holds two consecutive stage tables while
    deriving stage i+1 from stage i (s_double) on spill-capable
    backends; on static memory-only storage Vista evicts each
    previous-stage partition as its successor materializes, so the
    static-fit requirement is the largest single stage (s_single).
    """
    sizing = estimate_sizes(model_stats, layers, dataset_stats, alpha=alpha)
    if materialization is Materialization.LAZY:
        return 0
    if materialization is Materialization.STAGED:
        return sizing.s_single if static_storage else sizing.s_double
    return eager_table_bytes(model_stats, layers, dataset_stats, alpha=alpha)


def _effective_cached_bytes(raw_bytes, setup, model_stats, alpha=2.0):
    """In-memory bytes under the setup's persistence format — the same
    arithmetic the optimizer's Ignite constraint uses."""
    from repro.core.sizing import static_storage_need

    ratio = getattr(
        model_stats, "serialized_ratio",
        params.SERIALIZED_RATIO.get(model_stats.name, 0.45),
    )
    return static_storage_need(
        raw_bytes, setup.persistence, ratio, alpha=alpha
    )


# ---------------------------------------------------------------------
# the check
# ---------------------------------------------------------------------
def detect_crash(setup, model_stats, layers, dataset_stats, materialization,
                 cluster, alpha=2.0, use_gpu=False):
    """Return the crash scenario identifier, or None if the run
    completes."""
    # (2) GPU DL blowup — Eq. 15 violated at runtime.
    if use_gpu and cluster.has_gpu:
        if setup.cpu * model_stats.gpu_mem_bytes >= cluster.gpu_memory_bytes:
            return CRASH_DL_GPU

    sizing = estimate_sizes(model_stats, layers, dataset_stats, alpha=alpha)
    m_mem = downstream_mem_bytes(
        model_stats, layers, dataset_stats.num_structured_features
    )
    user_need = user_memory_requirement(
        model_stats, sizing.s_single, setup.num_partitions, setup.cpu,
        m_mem, alpha,
    )

    # (3) User Memory overflow — same arithmetic as the optimizer's
    # Eq. 10, so Vista's own configs are safe by construction.
    if user_need > setup.user_cap_bytes:
        return CRASH_USER

    # (4b) Driver overflow: a broadcast join collects and rebroadcasts
    # Tstr; with a wide structured table the driver dies (Fig. 10(3,4)).
    if setup.join == "broadcast":
        if alpha * sizing.structured_table_bytes > _DRIVER_CAP:
            return CRASH_DRIVER

    # (5) Core/partition blowup: one partition's state during the join.
    partition_bytes = math.ceil(
        sizing.s_single / max(1, setup.num_partitions)
    )
    if alpha * partition_bytes > setup.core_cap_bytes:
        return CRASH_CORE

    # (4) Static storage overflow (memory-only backends).
    cached = cached_working_set_bytes(
        materialization, model_stats, layers, dataset_stats, alpha=alpha,
        static_storage=not setup.storage_spills,
    )
    effective = _effective_cached_bytes(cached, setup, model_stats, alpha)
    if not setup.storage_spills:
        cluster_storage = setup.storage_cap_bytes * cluster.num_nodes
        if effective > cluster_storage:
            return CRASH_STORAGE

    # (1) DL Execution Memory blowup (CPU inference).
    if not use_gpu:
        per_node_cached = effective / cluster.num_nodes
        if setup.backend in ("spark", "flink"):
            # The JVM commits what the run actually touches: a base
            # footprint, the User-region objects, ~the best-practice
            # Core working set, and cached partitions (bounded — Spark
            # evicts storage under pressure), capped by the heap.
            committed_core = min(setup.core_cap_bytes, _COMMITTED_CORE)
            jvm_commit = (
                _JVM_BASE + user_need + committed_core
                + min(per_node_cached, _SPARK_STORAGE_COMMIT_CAP)
            )
            jvm_commit = min(jvm_commit, setup.heap_bytes)
        else:
            base_data = (
                dataset_stats.image_table_bytes()
                + dataset_stats.structured_table_bytes()
            ) / cluster.num_nodes
            jvm_commit = setup.heap_bytes + min(
                base_data + per_node_cached, setup.storage_cap_bytes
            )
        dl_available = (
            cluster.system_memory_bytes - _OS_RESERVED - jvm_commit
        )
        if setup.cpu * model_stats.runtime_mem_bytes > dl_available:
            return CRASH_DL
    return None
