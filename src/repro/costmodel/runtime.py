"""End-to-end runtime estimation for paper-scale workloads.

Combines the compute, I/O, and scheduling cost terms into one
wall-clock estimate per (plan, setup, cluster, dataset), with crash
detection applied first. Runtime *shapes* — which plan wins, by what
factor, where spills and crossovers appear — derive from the same
mechanisms the paper argues from; the absolute constants are
calibrated to the paper's measured anchors (see
:mod:`repro.costmodel.params`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.plans import JoinPlacement, Materialization
from repro.core.sizing import eager_table_bytes, estimate_sizes
from repro.costmodel import io_cost, params
from repro.costmodel.cnn_cost import (
    inference_seconds,
    per_layer_inference_flops,
    plan_inference_flops,
)
from repro.costmodel.crashes import detect_crash


@dataclass
class RuntimeReport:
    """Estimated outcome of one workload run."""

    label: str
    seconds: float
    crash: str | None = None
    breakdown: dict = field(default_factory=dict)
    spilled_bytes: int = 0

    @property
    def crashed(self):
        return self.crash is not None

    @property
    def minutes(self):
        return self.seconds / 60.0

    def cell(self):
        """Figure-6-style cell: minutes, or 'X' on a crash."""
        return "X" if self.crashed else f"{self.minutes:.1f}"


def _pooled_dim(model_stats, layer):
    return model_stats.layer_stats(layer).transfer_dim


def _train_partitions(model_stats, layer, dataset_stats, setup, cluster):
    """Partition count of the pooled training table for one layer."""
    from repro.core.config import DEFAULT_MAX_PARTITION

    pooled_bytes = (
        4 * (dataset_stats.num_structured_features
             + _pooled_dim(model_stats, layer))
        * dataset_stats.num_records
    )
    by_size = math.ceil(pooled_bytes / DEFAULT_MAX_PARTITION)
    floor = cluster.num_nodes * setup.cpu
    return max(floor, min(setup.num_partitions, by_size))


def _spill_report(materialization, model_stats, layers, dataset_stats,
                  setup, cluster, alpha):
    """Spilled bytes and the number of re-read passes over them."""
    if not setup.storage_spills:
        return 0, 0
    storage_cluster = setup.storage_cap_bytes * cluster.num_nodes
    if setup.persistence == "serialized":
        # Serialized data drops the JVM-object blowup and compresses.
        scale = params.SERIALIZED_RATIO.get(model_stats.name, 0.45) / alpha
    else:
        scale = 1.0
    if materialization is Materialization.EAGER:
        cached = eager_table_bytes(
            model_stats, layers, dataset_stats, alpha=alpha
        ) * scale
        passes = len(list(layers))  # re-projected once per layer
    elif materialization is Materialization.STAGED:
        sizing = estimate_sizes(
            model_stats, layers, dataset_stats, alpha=alpha
        )
        cached = sizing.s_double * scale
        passes = 1
    else:
        return 0, 0
    return int(max(0.0, cached - storage_cluster)), passes


def estimate_runtime(model_stats, layers, dataset_stats, plan, setup,
                     cluster, use_gpu=False, base_layer=None,
                     train_iterations=None, alpha=2.0, label=None):
    """Estimate one workload run; returns a :class:`RuntimeReport`.

    ``base_layer`` marks a pre-materialized starting layer (Appendix
    B): inference paths start there and its feature table is read from
    disk instead of the raw images.
    """
    layers = list(layers)
    label = label or setup.label
    crash = detect_crash(
        setup, model_stats, layers, dataset_stats, plan.materialization,
        cluster, alpha=alpha, use_gpu=use_gpu,
    )  # same Eq. 10 arithmetic as the optimizer
    if crash is not None:
        return RuntimeReport(label=label, seconds=math.inf, crash=crash)

    breakdown = {}

    # -- input reading -------------------------------------------------
    if base_layer is None:
        breakdown["read"] = io_cost.image_read_seconds(
            dataset_stats.num_records, cluster
        )
    else:
        base_bytes = (
            model_stats.materialized_bytes(base_layer)
            * dataset_stats.num_records
        )
        breakdown["read"] = base_bytes / (
            cluster.disk_bandwidth * cluster.num_nodes
        )

    # -- CNN inference ---------------------------------------------------
    # Lazy re-reads its source once per explored layer.
    if plan.materialization is Materialization.LAZY and len(layers) > 1:
        breakdown["read"] *= len(layers)
    flops = plan_inference_flops(
        model_stats, layers, dataset_stats.num_records,
        plan.materialization, base_layer=base_layer,
    )
    breakdown["inference"] = inference_seconds(
        flops, model_stats.name, cluster, setup.cpu, use_gpu=use_gpu
    )

    # -- joins -----------------------------------------------------------
    if plan.join_placement is JoinPlacement.AFTER_JOIN:
        join_inputs = [
            dataset_stats.structured_table_bytes()
            + dataset_stats.image_table_bytes()
        ]
    else:
        # Join pulled above inference: each layer's *unpooled*
        # materialized feature table is a join operand — usually much
        # larger than the compressed images, which is exactly why
        # reordering the join below inference helps (Section 4.2.1).
        join_inputs = [
            dataset_stats.structured_table_bytes()
            + model_stats.materialized_bytes(layer)
            * dataset_stats.num_records
            for layer in layers
        ]
    if setup.join == "broadcast":
        breakdown["join"] = len(join_inputs) * io_cost.broadcast_seconds(
            dataset_stats.structured_table_bytes(), cluster
        )
    else:
        breakdown["join"] = sum(
            io_cost.shuffle_seconds(nbytes, cluster)
            for nbytes in join_inputs
        )

    # -- downstream training ----------------------------------------------
    # Training iterates over the *pooled* feature table, which is far
    # smaller than the unpooled stage tables, so its partition count is
    # bounded by that table's size, not the inference np.
    breakdown["train"] = sum(
        io_cost.training_seconds(
            dataset_stats.num_records,
            dataset_stats.num_structured_features
            + _pooled_dim(model_stats, layer),
            _train_partitions(model_stats, layer, dataset_stats, setup,
                              cluster),
            cluster, setup.cpu,
            iterations=train_iterations,
        )
        for layer in layers
    )

    # -- spills and persistence-format conversion --------------------------
    spilled, passes = _spill_report(
        plan.materialization, model_stats, layers, dataset_stats, setup,
        cluster, alpha,
    )
    if spilled:
        breakdown["spill"] = io_cost.spill_seconds(
            spilled, cluster, reread_passes=passes
        )
    if setup.persistence == "serialized":
        sizing = estimate_sizes(
            model_stats, layers, dataset_stats, alpha=alpha
        )
        converted = 2 * sum(sizing.intermediate_table_bytes.values())
        breakdown["serde"] = io_cost.serde_seconds(
            converted, cluster, setup.cpu
        )

    # -- scheduling overhead ------------------------------------------------
    stages = 1 + len(layers) + len(join_inputs)
    breakdown["overhead"] = io_cost.task_overhead_seconds(
        stages * setup.num_partitions, setup.num_partitions, cluster,
        setup.cpu,
    ) + stages * params.STAGE_OVERHEAD_S

    return RuntimeReport(
        label=label,
        seconds=sum(breakdown.values()),
        breakdown=breakdown,
        spilled_bytes=spilled,
    )


def estimate_premat_runtime(model_stats, layers, dataset_stats, plan,
                            setup, cluster, use_gpu=False, alpha=2.0,
                            label=None):
    """The "Lazy-N with Pre-mat" pattern: materialize the lowest layer
    to disk first, then run the plan with that base layer as the
    inference source. Returns (premat_report, main_report)."""
    layers = list(layers)
    base = layers[0]
    premat_breakdown = {
        "read": io_cost.image_read_seconds(
            dataset_stats.num_records, cluster
        ),
        "inference": inference_seconds(
            model_stats.layer_stats(base).flops_from_input
            * dataset_stats.num_records,
            model_stats.name, cluster, setup.cpu, use_gpu=use_gpu,
        ),
        "write": (
            model_stats.materialized_bytes(base) * dataset_stats.num_records
        ) / (cluster.disk_bandwidth * cluster.num_nodes),
    }
    premat = RuntimeReport(
        label=f"{label or setup.label}:premat",
        seconds=sum(premat_breakdown.values()),
        breakdown=premat_breakdown,
    )
    main = estimate_runtime(
        model_stats, layers, dataset_stats, plan, setup, cluster,
        use_gpu=use_gpu, base_layer=base, alpha=alpha, label=label,
    )
    return premat, main


def per_layer_breakdown(model_stats, layers, dataset_stats, setup, cluster,
                        base_layer=None, use_gpu=False):
    """Table 3's rows: per-layer inference + first-LR-iteration minutes
    under the Staged plan, plus the image-read row."""
    flops = per_layer_inference_flops(
        model_stats, layers, dataset_stats.num_records,
        Materialization.STAGED, base_layer=base_layer,
    )
    rows = {}
    for layer, layer_flops in flops.items():
        seconds = inference_seconds(
            layer_flops, model_stats.name, cluster, setup.cpu,
            use_gpu=use_gpu,
        )
        seconds += io_cost.training_seconds(
            dataset_stats.num_records,
            dataset_stats.num_structured_features
            + _pooled_dim(model_stats, layer),
            setup.num_partitions, cluster, setup.cpu, iterations=1,
        )
        rows[layer] = seconds
    read = io_cost.image_read_seconds(dataset_stats.num_records, cluster)
    return rows, read
