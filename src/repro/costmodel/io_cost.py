"""I/O and scheduling cost terms.

Covers the non-compute runtime components the paper's drill-downs
attribute time to: HDFS small-files image reads (Table 3, Figure 17),
join shuffles vs broadcasts (Figure 10), disk spills of oversized
intermediates (Figures 6/9), serialized-format conversion overhead
(Figure 10), and task-scheduling overheads including the np > 2000
status-compression penalty (Figure 11B).
"""

from __future__ import annotations

from repro.costmodel import params


def image_read_seconds(num_images, cluster):
    """Reading many small image files from HDFS: per-file latency
    dominated, sub-linear in node count."""
    single_node = num_images * cluster.image_read_seconds_per_file
    return single_node / (cluster.num_nodes ** params.READ_SCALING_EXPONENT)


def shuffle_seconds(shuffled_bytes, cluster):
    """Hash-shuffle of ``shuffled_bytes`` across the cluster."""
    return shuffled_bytes / (cluster.network_bandwidth * cluster.num_nodes)


def broadcast_seconds(table_bytes, cluster):
    """Broadcasting a table: every worker pulls one full copy."""
    return table_bytes / cluster.network_bandwidth


def spill_seconds(spilled_bytes, cluster, reread_passes=1):
    """Writing spilled partitions to disk and reading them back
    ``reread_passes`` times."""
    total = spilled_bytes * (1 + reread_passes)
    return total / (cluster.disk_bandwidth * cluster.num_nodes)


def serde_seconds(data_bytes, cluster, cpu):
    """CPU cost of converting between serialized and deserialized
    formats (both directions included by the caller via data_bytes)."""
    throughput = (
        params.SERDE_BANDWIDTH_PER_CORE * cpu * cluster.num_nodes
    )
    return data_bytes / throughput


def task_overhead_seconds(num_tasks, num_partitions, cluster, cpu):
    """Scheduling overhead of ``num_tasks`` tasks, with the large-np
    status-message penalty once np exceeds the threshold."""
    per_task = params.TASK_OVERHEAD_S
    if num_partitions > params.LARGE_NP_THRESHOLD:
        per_task += params.TASK_OVERHEAD_LARGE_NP_S
    waves = num_tasks / max(1, cluster.num_nodes * cpu)
    # Scheduling is driver-serialized per task; execution overlaps.
    return num_tasks * per_task * 0.25 + waves * per_task


def training_seconds(num_records, feature_dim, num_partitions, cluster,
                     cpu, iterations=None):
    """Downstream model training: ``iterations`` full-batch passes over
    the (records x features) matrix plus per-iteration stage costs."""
    iterations = iterations or params.TRAIN_ITERATIONS
    flops = (
        iterations * params.TRAIN_FLOPS_PER_CELL * num_records * feature_dim
    )
    compute = flops / (params.NODE_FLOPS_BASE * cluster.num_nodes)
    overhead = iterations * (
        params.TRAIN_ITERATION_OVERHEAD_S
        + task_overhead_seconds(num_partitions, num_partitions, cluster, cpu)
    )
    return compute + overhead
