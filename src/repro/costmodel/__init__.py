"""Analytical cost model for paper-scale runtime reproduction.

The real CloudLab cluster + GPU testbed is substituted by this
calibrated model (see DESIGN.md's substitution table): crash
prediction reuses the optimizer's memory arithmetic, and runtime
estimation composes compute, I/O, and scheduling terms whose constants
are pinned to the paper's measured anchors.
"""

from repro.costmodel.crashes import (
    CRASH_CORE,
    CRASH_DL,
    CRASH_DL_GPU,
    CRASH_STORAGE,
    CRASH_USER,
    ExecutionSetup,
    detect_crash,
    flink_setup,
    ignite_default_setup,
    spark_default_setup,
    vista_setup,
)
from repro.costmodel.params import ClusterSpec, cloudlab_cluster, gpu_workstation
from repro.costmodel.runtime import (
    RuntimeReport,
    estimate_premat_runtime,
    estimate_runtime,
    per_layer_breakdown,
)

__all__ = [
    "CRASH_CORE",
    "CRASH_DL",
    "CRASH_DL_GPU",
    "CRASH_STORAGE",
    "CRASH_USER",
    "ClusterSpec",
    "ExecutionSetup",
    "RuntimeReport",
    "cloudlab_cluster",
    "detect_crash",
    "estimate_premat_runtime",
    "estimate_runtime",
    "flink_setup",
    "gpu_workstation",
    "ignite_default_setup",
    "per_layer_breakdown",
    "spark_default_setup",
    "vista_setup",
]
