"""Classical image features and feature-layer post-processing.

``hog`` implements Histogram of Oriented Gradients, the non-CNN
baseline of Figure 8; ``pooling`` re-exports the grid max-pooling
applied to convolutional feature layers before downstream training.
"""

from repro.features.hog import hog_features
from repro.features.pooling import pool_feature_tensor

__all__ = ["hog_features", "pool_feature_tensor"]
