"""Disk-backed feature store for pre-materialized CNN layers.

Appendix B: "a base layer can [be] pre-materialized before hand for
later use of exploring other layers". This module makes that workflow
a first-class component: materialized feature tables are persisted on
disk keyed by (model, layer, dataset fingerprint), so a later session
exploring higher layers starts from the stored base instead of raw
images.

Entries are pickled row lists with a JSON metadata sidecar; the
fingerprint hashes record ids plus a sample of image bytes, so a
changed dataset never silently reuses stale features.
"""

from __future__ import annotations

import json
import pickle
import zlib
from pathlib import Path

import numpy as np


def dataset_fingerprint(dataset, sample_size=16):
    """Stable fingerprint of a multimodal dataset: record count, ids,
    and a deterministic sample of image bytes."""
    ids = [row["id"] for row in dataset.image_rows]
    crc = zlib.crc32(np.asarray(ids, dtype=np.int64).tobytes())
    step = max(1, len(ids) // sample_size)
    for row in dataset.image_rows[::step]:
        crc = zlib.crc32(np.ascontiguousarray(row["image"]).tobytes(), crc)
    return f"{len(ids)}-{crc:08x}"


class FeatureStore:
    """Stores materialized feature-layer tables on disk."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _paths(self, model_name, layer, fingerprint):
        stem = f"{model_name}__{layer}__{fingerprint}"
        return self.root / f"{stem}.pkl.z", self.root / f"{stem}.json"

    def contains(self, model_name, layer, fingerprint):
        data_path, _ = self._paths(model_name, layer, fingerprint)
        return data_path.exists()

    def put(self, model_name, layer, fingerprint, rows):
        """Persist a materialized feature table (list of row dicts).

        Returns the stored payload size in bytes.
        """
        data_path, meta_path = self._paths(model_name, layer, fingerprint)
        blob = zlib.compress(
            pickle.dumps(list(rows), protocol=pickle.HIGHEST_PROTOCOL), 1
        )
        data_path.write_bytes(blob)
        meta_path.write_text(json.dumps({
            "model": model_name,
            "layer": layer,
            "fingerprint": fingerprint,
            "num_rows": len(rows),
            "stored_bytes": len(blob),
        }))
        return len(blob)

    def get(self, model_name, layer, fingerprint):
        """Load a stored feature table, or None on a miss."""
        data_path, _ = self._paths(model_name, layer, fingerprint)
        if not data_path.exists():
            self.misses += 1
            return None
        self.hits += 1
        return pickle.loads(zlib.decompress(data_path.read_bytes()))

    def metadata(self, model_name, layer, fingerprint):
        _, meta_path = self._paths(model_name, layer, fingerprint)
        if not meta_path.exists():
            return None
        return json.loads(meta_path.read_text())

    def entries(self):
        """Metadata of every stored entry."""
        return [
            json.loads(path.read_text())
            for path in sorted(self.root.glob("*.json"))
        ]

    def evict(self, model_name, layer, fingerprint):
        for path in self._paths(model_name, layer, fingerprint):
            if path.exists():
                path.unlink()

    def total_bytes(self):
        return sum(
            path.stat().st_size for path in self.root.glob("*.pkl.z")
        )

    def __repr__(self):
        return (
            f"<FeatureStore {self.root}: {len(self.entries())} entries, "
            f"{self.total_bytes()} B>"
        )
