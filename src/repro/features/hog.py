"""Histogram of Oriented Gradients (Dalal & Triggs, 2005).

The paper's Figure 8 compares CNN feature transfer against
"traditional HOG features"; this is a from-scratch implementation:
grayscale conversion, centered gradients, 9 unsigned orientation bins
accumulated per cell, and L2-normalized 2x2 block descriptors.
"""

from __future__ import annotations

import numpy as np


def _to_gray(image):
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 3:
        return image @ np.array([0.299, 0.587, 0.114])
    if image.ndim == 2:
        return image
    raise ValueError(f"expected a 2-d or 3-d image, got {image.ndim}-d")


def hog_features(image, cell_size=8, bins=9, block_size=2, eps=1e-6):
    """Compute a flat HOG descriptor for one image.

    Parameters follow the classic configuration: ``cell_size`` pixels
    per cell side, ``bins`` unsigned orientation bins over [0, 180),
    ``block_size`` cells per normalization block side.
    """
    gray = _to_gray(image)
    height, width = gray.shape
    gy, gx = np.gradient(gray)
    magnitude = np.hypot(gx, gy)
    orientation = np.rad2deg(np.arctan2(gy, gx)) % 180.0

    cells_y = height // cell_size
    cells_x = width // cell_size
    if cells_y == 0 or cells_x == 0:
        raise ValueError(
            f"image {height}x{width} smaller than one {cell_size}px cell"
        )
    histogram = np.zeros((cells_y, cells_x, bins))
    bin_width = 180.0 / bins
    bin_index = np.minimum((orientation / bin_width).astype(int), bins - 1)
    for cy in range(cells_y):
        for cx in range(cells_x):
            ys = slice(cy * cell_size, (cy + 1) * cell_size)
            xs = slice(cx * cell_size, (cx + 1) * cell_size)
            cell_bins = bin_index[ys, xs].ravel()
            cell_mag = magnitude[ys, xs].ravel()
            histogram[cy, cx] = np.bincount(
                cell_bins, weights=cell_mag, minlength=bins
            )

    blocks = []
    for by in range(cells_y - block_size + 1):
        for bx in range(cells_x - block_size + 1):
            block = histogram[
                by:by + block_size, bx:bx + block_size
            ].ravel()
            norm = np.sqrt(np.square(block).sum() + eps ** 2)
            blocks.append(block / norm)
    if not blocks:
        # Image has fewer cells than one block: normalize the whole map.
        block = histogram.ravel()
        norm = np.sqrt(np.square(block).sum() + eps ** 2)
        blocks.append(block / norm)
    return np.concatenate(blocks).astype(np.float32)
