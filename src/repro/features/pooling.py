"""Feature-layer dimensionality reduction before downstream training.

Section 5 (footnote 4): convolutional feature layers are max-pooled so
"the feature tensor [reduces] to a 2x2 grid of the same depth" before
flattening; fully connected layers are used as-is.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.ops import grid_max_pool, grid_max_pool_batch


def pool_feature_tensor(tensor, grid=2):
    """Reduce a feature tensor for transfer: 3-d conv outputs are
    grid-max-pooled then flattened; 1-d outputs pass through flat."""
    tensor = np.asarray(tensor)
    if tensor.ndim == 3:
        tensor = grid_max_pool(tensor, grid=grid)
    return tensor.reshape(-1)


def pool_feature_tensor_batch(batch, grid=2):
    """Batched :func:`pool_feature_tensor` over an (N, ...) stack of
    same-shape feature tensors; returns an (N, transfer_dim) matrix."""
    batch = np.asarray(batch)
    if batch.ndim == 4:
        batch = grid_max_pool_batch(batch, grid=grid)
    return batch.reshape(batch.shape[0], -1)


def pool_feature_tensors(tensors, grid=2):
    """Pool a ragged sequence of feature tensors (an object column):
    tensors are grouped by exact shape and each group runs through the
    batched kernel once, so mixed-shape partitions still batch instead
    of falling back to one kernel call per row. Returns a list of 1-d
    vectors in input order (lengths may differ across shapes)."""
    tensors = [np.asarray(t) for t in tensors]
    groups = {}
    for position, tensor in enumerate(tensors):
        groups.setdefault(tensor.shape, []).append(position)
    out = [None] * len(tensors)
    for positions in groups.values():
        batch = pool_feature_tensor_batch(
            np.stack([tensors[p] for p in positions]), grid=grid
        )
        for position, vector in zip(positions, batch):
            out[position] = vector
    return out
