"""Simulated time for the recovery subsystem.

Retry backoff and straggler delays must be deterministic and free —
real sleeps would make the fault-injection suite slow and flaky — so
every recovery component shares one :class:`SimulatedClock` that only
moves when something explicitly advances it. Recovery-log events stamp
``sim_time_s`` from this clock, which is how tests assert backoff
schedules exactly.
"""

from __future__ import annotations


class SimulatedClock:
    """A monotonically advancing virtual clock (seconds)."""

    def __init__(self, start=0.0):
        self.now = float(start)

    def advance(self, seconds):
        """Move time forward; negative advances are ignored."""
        self.now += max(0.0, float(seconds))
        return self.now

    def __repr__(self):
        return f"<SimulatedClock t={self.now:.3f}s>"
