"""Retry policy and the structured recovery log.

The policy mirrors Spark's task scheduler knobs (``task.maxFailures``,
executor blacklisting) on the simulated engine: capped exponential
backoff on the simulated clock, a bounded number of attempts per
partition task, and worker blacklisting after repeated failures. The
:class:`RecoveryLog` is the single ledger every layer appends to —
task retries and blacklists from the dataflow engine, degradation
steps from the supervisor — and is surfaced verbatim in
``WorkloadResult.metrics["recovery_log"]``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Task-level retry knobs for the dataflow engine."""

    #: Total tries per partition task (first run + retries).
    max_task_attempts: int = 4
    #: Exponential backoff base and cap, in simulated seconds.
    backoff_base_s: float = 1.0
    backoff_cap_s: float = 30.0
    #: Failures on one worker before it is blacklisted and its
    #: partitions are reassigned (never blacklists the last worker).
    max_failures_per_worker: int = 4
    #: Maximum jitter fraction added to the capped exponential delay
    #: when the caller supplies a ``key``. Same-wave retries otherwise
    #: fire in lockstep and stampede a shared store (thundering herd);
    #: jitter is *deterministic* — a SHA-256 of (seed, key, attempt) —
    #: so the schedule replays identically under the same seed.
    backoff_jitter: float = 0.1
    jitter_seed: int = 0

    def backoff_s(self, attempt, key=None):
        """Capped exponential backoff before retry ``attempt + 1``.

        With ``key=None`` the schedule is the bare capped exponential;
        with a ``key`` (typically the partition index) the delay is
        stretched by up to ``backoff_jitter`` using a seeded hash, so
        distinct keys desynchronize without sacrificing determinism.
        """
        base = min(
            self.backoff_base_s * (2.0 ** (max(1, attempt) - 1)),
            self.backoff_cap_s,
        )
        if key is None or self.backoff_jitter <= 0.0:
            return base
        return base * (1.0 + self.backoff_jitter * self._jitter_fraction(
            key, attempt))

    def _jitter_fraction(self, key, attempt):
        """Deterministic fraction in [0, 1): hash-derived rather than
        ``random`` so the schedule is stable across platforms."""
        digest = hashlib.sha256(
            f"{self.jitter_seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class RecoveryLog:
    """An append-only ledger of recovery actions.

    Each event is a plain dict with an ``event`` kind plus
    kind-specific fields, so it serializes straight into
    ``WorkloadResult.metrics`` and diffs cleanly in tests:

    - ``task_retry``: a failed task scheduled for lineage recompute
      (table, partition, worker, attempt, fault, backoff_s)
    - ``worker_lost`` / ``blacklist`` / ``blacklist_suppressed``
    - ``straggler``: an injected delay on the simulated clock
    - ``degrade``: one supervisor degradation-ladder step
    """

    def __init__(self):
        self.events = []
        #: Optional :class:`~repro.observe.ledger.RunLedger`: when set,
        #: every recovery action also streams into the run ledger as a
        #: ``recovery`` event (a durability barrier — recovery facts
        #: are exactly what a post-mortem cannot afford to lose).
        self.sink = None

    def record(self, event, **fields):
        entry = {"event": event, **fields}
        self.events.append(entry)
        if self.sink is not None:
            self.sink.emit("recovery", event=event, **fields)
        return entry

    def of(self, event):
        return [e for e in self.events if e["event"] == event]

    def count(self, event):
        return len(self.of(event))

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self):
        kinds = sorted({e["event"] for e in self.events})
        return f"<RecoveryLog {len(self.events)} events {kinds}>"
