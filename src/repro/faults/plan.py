"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultRule` entries
describing *which* failures to inject *where*: a task crash on
partition N at attempt K, a transient per-task OOM, the loss of a
worker at wave W, or a straggler delay on the simulated clock. Plans
are pure data — the seeded :class:`~repro.faults.injector.
FaultInjector` owns all mutable firing state — so the same plan can be
replayed deterministically against a fault-free run to prove the
recovered features are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Rule kinds.
TASK_CRASH = "task-crash"
TASK_OOM = "task-oom"
WORKER_LOSS = "worker-loss"
STRAGGLER = "straggler"
#: Real process death: SIGKILL the forked child running the matching
#: task (process backend only; inert on the serial backend, which has
#: no child to kill). ``phase`` picks the kill point — ``"start"``
#: right after the fork, ``"transfer"`` after the child created its
#: shared-memory segment but before the payload landed.
WORKER_KILL = "worker-kill"
#: Checkpoint-hostility kinds: prove recovery against a store that
#: lies, not just one that is empty. ``table`` matches the stage id.
CHECKPOINT_CORRUPT = "checkpoint-corrupt"
CHECKPOINT_MISSING = "checkpoint-missing"
CHECKPOINT_TORN = "checkpoint-torn"

KINDS = (TASK_CRASH, TASK_OOM, WORKER_LOSS, STRAGGLER, WORKER_KILL,
         CHECKPOINT_CORRUPT, CHECKPOINT_MISSING, CHECKPOINT_TORN)
CHECKPOINT_KINDS = (CHECKPOINT_CORRUPT, CHECKPOINT_MISSING, CHECKPOINT_TORN)
KILL_PHASES = ("start", "transfer")


@dataclass(frozen=True)
class FaultRule:
    """One declarative injection rule.

    ``None`` match fields are wildcards. ``attempt`` matches the
    task's attempt number (1-based), so ``attempt=1`` fails only the
    first try and lets the retry succeed. ``times`` bounds how often
    the rule fires across the whole workload (``None`` = unlimited);
    ``probability`` gates each firing on the injector's seeded RNG.
    """

    kind: str
    partition: int | None = None   # task's partition index
    worker: int | None = None      # worker node id
    attempt: int | None = None     # task attempt number (1-based)
    wave: int | None = None        # global wave counter (worker loss)
    table: str | None = None       # substring match on the op label
    delay_s: float = 0.0           # straggler delay (simulated seconds)
    probability: float = 1.0
    times: int | None = 1
    phase: str | None = None       # worker-kill point: start|transfer

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if self.phase is not None and self.phase not in KILL_PHASES:
            raise ValueError(
                f"unknown kill phase {self.phase!r}; choose from "
                f"{KILL_PHASES}"
            )

    def matches_task(self, what, partition_index, worker_id, attempt):
        """Does this rule apply to a task about to start?"""
        if self.wave is not None:
            return False  # wave-scoped rules fire at wave boundaries
        if self.partition is not None and self.partition != partition_index:
            return False
        if self.worker is not None and self.worker != worker_id:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        if self.table is not None and self.table not in what:
            return False
        return True

    def matches_checkpoint(self, stage_id, partition_index):
        """Does this checkpoint rule apply to a just-written
        checkpoint file? ``table`` substring-matches the stage id,
        ``partition`` the partition index (torn-manifest rules ignore
        partitions — the manifest is run-level)."""
        if self.kind not in CHECKPOINT_KINDS:
            return False
        if self.table is not None and self.table not in str(stage_id):
            return False
        if (self.kind != CHECKPOINT_TORN and self.partition is not None
                and self.partition != partition_index):
            return False
        return True

    def matches_wave(self, what, worker_id, wave):
        """Does this worker-loss rule apply to a wave about to start?"""
        if self.kind != WORKER_LOSS:
            return False
        if self.partition is not None:
            return False  # partition-scoped loss fires mid-wave, at task level
        if self.worker is not None and self.worker != worker_id:
            return False
        if self.wave is not None and self.wave != wave:
            return False
        if self.table is not None and self.table not in what:
            return False
        return True


@dataclass
class FaultPlan:
    """An ordered collection of :class:`FaultRule` entries.

    Builder methods return ``self`` so plans read declaratively::

        plan = (FaultPlan()
                .task_crash(partition=3, attempt=1)
                .worker_loss(worker=1, wave=4)
                .straggler(partition=0, delay_s=5.0))
    """

    rules: list = field(default_factory=list)

    def add(self, rule):
        self.rules.append(rule)
        return self

    def task_crash(self, partition=None, attempt=1, worker=None, table=None,
                   probability=1.0, times=1):
        """Crash the matching task attempt with an injected error."""
        return self.add(FaultRule(
            TASK_CRASH, partition=partition, attempt=attempt, worker=worker,
            table=table, probability=probability, times=times,
        ))

    def task_oom(self, partition=None, attempt=None, worker=None, table=None,
                 probability=1.0, times=1):
        """Fail the matching task attempt with a transient OOM."""
        return self.add(FaultRule(
            TASK_OOM, partition=partition, attempt=attempt, worker=worker,
            table=table, probability=probability, times=times,
        ))

    def worker_loss(self, worker, wave=None, table=None, probability=1.0,
                    times=1):
        """Lose a worker — at global wave ``wave``, or at its next wave
        when ``wave`` is None."""
        return self.add(FaultRule(
            WORKER_LOSS, worker=worker, wave=wave, table=table,
            probability=probability, times=times,
        ))

    def worker_kill(self, worker=None, partition=None, attempt=None,
                    table=None, phase="start", probability=1.0, times=1):
        """SIGKILL the real child process running the matching task
        (process backend). ``phase="transfer"`` kills it after its
        shared-memory segment exists but before the result payload is
        in — the crash-mid-transfer case the leak tests cover."""
        return self.add(FaultRule(
            WORKER_KILL, worker=worker, partition=partition,
            attempt=attempt, table=table, phase=phase,
            probability=probability, times=times,
        ))

    def straggler(self, partition=None, delay_s=10.0, worker=None,
                  table=None, attempt=None, probability=1.0, times=1):
        """Delay the matching task on the simulated clock (no failure)."""
        return self.add(FaultRule(
            STRAGGLER, partition=partition, worker=worker, table=table,
            attempt=attempt, delay_s=delay_s, probability=probability,
            times=times,
        ))

    def checkpoint_corrupt(self, stage=None, partition=None, probability=1.0,
                           times=1):
        """Flip a seeded byte in the matching checkpoint payload after
        it lands on disk — restore must catch the SHA-256 mismatch."""
        return self.add(FaultRule(
            CHECKPOINT_CORRUPT, table=stage, partition=partition,
            probability=probability, times=times,
        ))

    def checkpoint_missing(self, stage=None, partition=None, probability=1.0,
                           times=1):
        """Delete the matching checkpoint payload after it is written
        — restore must treat the manifest entry as unusable."""
        return self.add(FaultRule(
            CHECKPOINT_MISSING, table=stage, partition=partition,
            probability=probability, times=times,
        ))

    def checkpoint_torn(self, stage=None, probability=1.0, times=1):
        """Truncate the manifest mid-file after a commit, simulating a
        torn write that beat the rename — the next bind must detect
        the unparseable JSON and quarantine the run directory."""
        return self.add(FaultRule(
            CHECKPOINT_TORN, table=stage, probability=probability,
            times=times,
        ))

    def __len__(self):
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)
