"""Deterministic fault injection and runtime recovery primitives.

This package is the reproduction's answer to "Vista never crashes" at
production scale: instead of holding only *by construction* (the
optimizer's constraints), the claim is exercised at runtime by
injecting task crashes, transient OOMs, worker loss, and stragglers
into the dataflow engine, and recovering via lineage-based task retry
(``repro.dataflow.executor``) plus the degrade-and-retry supervisor
(``repro.core.resilient``). Everything is seeded and runs on a
simulated clock, so any fault sequence is replayable and the recovered
features can be asserted bit-identical to a fault-free run.
"""

from repro.faults.clock import SimulatedClock
from repro.faults.injector import FaultInjector, InjectedTaskCrash
from repro.faults.plan import (
    FaultPlan,
    FaultRule,
    STRAGGLER,
    TASK_CRASH,
    TASK_OOM,
    WORKER_KILL,
    WORKER_LOSS,
)
from repro.faults.retry import RecoveryLog, RetryPolicy


def equip_context(context, injector=None, policy=None, recovery_log=None):
    """Wire fault-injection and recovery state onto a cluster context.

    The dataflow engine looks these attributes up by name, so plain
    contexts pay nothing. The injector (if any) shares the recovery
    log so its straggler events land in the same ledger. Returns the
    context for chaining.
    """
    recovery_log = recovery_log if recovery_log is not None else RecoveryLog()
    if injector is not None:
        if injector.recovery_log is None:
            injector.recovery_log = recovery_log
        context.fault_injector = injector
    context.retry_policy = policy if policy is not None else RetryPolicy()
    context.recovery_log = recovery_log
    return context


__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedTaskCrash",
    "RecoveryLog",
    "RetryPolicy",
    "STRAGGLER",
    "SimulatedClock",
    "TASK_CRASH",
    "TASK_OOM",
    "WORKER_KILL",
    "WORKER_LOSS",
    "equip_context",
]
