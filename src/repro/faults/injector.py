"""The seeded fault injector.

The dataflow engine calls two hooks — :meth:`FaultInjector.
on_wave_start` before each task wave and :meth:`FaultInjector.
on_task_start` before each task attempt — and the injector consults
its :class:`~repro.faults.plan.FaultPlan` to decide whether to raise
an injected failure, lose the worker, or stretch the simulated clock.
All randomness (``probability`` gates) comes from one seeded RNG, so a
given (plan, seed) pair injects the exact same fault sequence on every
run: determinism is what lets the suite assert that recovered features
are bit-identical to a fault-free run.
"""

from __future__ import annotations

import os
import random
from collections import Counter, defaultdict

from repro.exceptions import TransientTaskOOM, VistaError, WorkerLost
from repro.faults.clock import SimulatedClock
from repro.faults.plan import (
    CHECKPOINT_CORRUPT,
    CHECKPOINT_KINDS,
    CHECKPOINT_MISSING,
    CHECKPOINT_TORN,
    FaultPlan,
    STRAGGLER,
    TASK_CRASH,
    TASK_OOM,
    WORKER_KILL,
    WORKER_LOSS,
)


class InjectedTaskCrash(VistaError):
    """A task crash injected by a :class:`FaultInjector`. Transient:
    the task scheduler retries it from lineage."""

    transient = True


class FaultInjector:
    """Deterministically injects the faults a :class:`FaultPlan`
    declares.

    Attach one to a cluster context (``context.fault_injector``) —
    :func:`repro.faults.equip_context` wires it together with a retry
    policy and a recovery log. ``injected`` counts firings per fault
    kind, and ``clock`` is the simulated clock shared with the retry
    layer's backoff.
    """

    def __init__(self, plan=None, seed=0, clock=None, recovery_log=None):
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self.clock = clock if clock is not None else SimulatedClock()
        self.recovery_log = recovery_log
        self.wave_counter = 0
        self.injected = Counter()
        self._fired = defaultdict(int)

    # ------------------------------------------------------------------
    # hooks called by the dataflow engine
    # ------------------------------------------------------------------
    def on_wave_start(self, worker_id, what=""):
        """Called before a wave of tasks starts on ``worker_id``;
        raises :class:`WorkerLost` if a worker-loss rule fires."""
        self.wave_counter += 1
        for rule in self.plan:
            if not rule.matches_wave(what, worker_id, self.wave_counter):
                continue
            if not self._fires(rule):
                continue
            self.injected[WORKER_LOSS] += 1
            raise WorkerLost(
                f"injected loss of worker {worker_id} at wave "
                f"{self.wave_counter}",
                worker_id=worker_id,
            )

    def on_task_start(self, what, partition_index, worker_id, attempt):
        """Called before each task attempt; may raise an injected
        failure or advance the simulated clock (straggler)."""
        for rule in self.plan:
            if rule.kind == WORKER_LOSS and rule.wave is not None:
                continue  # handled at wave boundaries
            if rule.kind in CHECKPOINT_KINDS:
                continue  # fired by the checkpoint store's write hooks
            if rule.kind == WORKER_KILL:
                continue  # fired (and budgeted) by on_task_fork only
            if not rule.matches_task(what, partition_index, worker_id,
                                     attempt):
                continue
            if not self._fires(rule):
                continue
            self.injected[rule.kind] += 1
            where = (
                f"partition {partition_index} on worker {worker_id} "
                f"(attempt {attempt}, {what})"
            )
            if rule.kind == STRAGGLER:
                self.clock.advance(rule.delay_s)
                if self.recovery_log is not None:
                    self.recovery_log.record(
                        "straggler", table=what, partition=partition_index,
                        worker=worker_id, attempt=attempt,
                        delay_s=rule.delay_s, sim_time_s=self.clock.now,
                    )
                continue  # a delay, not a failure
            if rule.kind == TASK_CRASH:
                raise InjectedTaskCrash(f"injected task crash at {where}")
            if rule.kind == TASK_OOM:
                raise TransientTaskOOM(f"injected transient OOM at {where}")
            if rule.kind == WORKER_LOSS:
                raise WorkerLost(
                    f"injected loss of worker {worker_id} at {where}",
                    worker_id=worker_id,
                )

    def on_task_fork(self, what, partition_index, worker_id, attempt):
        """Called by the process backend just before it forks a child
        for a task; returns the kill phase (``"start"`` /
        ``"transfer"``) if a worker-kill rule fires, else None. The
        backend SIGKILLs the real child at that point — this is the
        only hook that consumes a worker-kill rule's ``times`` budget,
        and the serial backend never calls it, so kill rules are inert
        there by construction."""
        for rule in self.plan:
            if rule.kind != WORKER_KILL:
                continue
            if not rule.matches_task(what, partition_index, worker_id,
                                     attempt):
                continue
            if not self._fires(rule):
                continue
            self.injected[WORKER_KILL] += 1
            if self.recovery_log is not None:
                self.recovery_log.record(
                    "worker_kill", table=what, partition=partition_index,
                    worker=worker_id, attempt=attempt,
                    phase=rule.phase or "start",
                    sim_time_s=self.clock.now,
                )
            return rule.phase or "start"
        return None

    def on_checkpoint_write(self, stage_id, partition_index, path):
        """Called by the checkpoint store after a partition payload
        lands durably. Corruption rules flip one seeded byte in the
        file; missing-file rules delete it. Either way the manifest
        already carries the *true* digest, so restore must detect the
        damage instead of ingesting it."""
        for rule in self.plan:
            if rule.kind not in (CHECKPOINT_CORRUPT, CHECKPOINT_MISSING):
                continue
            if not rule.matches_checkpoint(stage_id, partition_index):
                continue
            if not self._fires(rule):
                continue
            self.injected[rule.kind] += 1
            if rule.kind == CHECKPOINT_MISSING:
                os.remove(path)
                detail = "deleted"
            else:
                detail = self._flip_byte(path)
            if self.recovery_log is not None:
                self.recovery_log.record(
                    "checkpoint_fault", kind=rule.kind, stage=str(stage_id),
                    partition=partition_index, detail=detail,
                    sim_time_s=self.clock.now,
                )

    def on_manifest_commit(self, path):
        """Called after a manifest rewrite; a torn rule truncates it
        mid-file (the write that 'beat the rename' in a real torn
        write), so the next :meth:`CheckpointStore.bind_run` must
        quarantine the whole run directory."""
        for rule in self.plan:
            if rule.kind != CHECKPOINT_TORN:
                continue
            if not self._fires(rule):
                continue
            self.injected[CHECKPOINT_TORN] += 1
            size = os.path.getsize(path)
            keep = max(1, size // 2)
            with open(path, "rb+") as handle:
                handle.truncate(keep)
            if self.recovery_log is not None:
                self.recovery_log.record(
                    "checkpoint_fault", kind=CHECKPOINT_TORN,
                    detail=f"truncated manifest {size}->{keep} B",
                    sim_time_s=self.clock.now,
                )

    def _flip_byte(self, path):
        """Flip one byte at a seeded offset — a single-bit-rot stand-in
        that a SHA-256 check must catch."""
        size = os.path.getsize(path)
        offset = self.rng.randrange(size)
        with open(path, "rb+") as handle:
            handle.seek(offset)
            original = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([original ^ 0xFF]))
        return f"flipped byte at offset {offset}"

    # ------------------------------------------------------------------
    def _fires(self, rule):
        """Apply the rule's ``times`` budget and probability gate."""
        key = id(rule)
        if rule.times is not None and self._fired[key] >= rule.times:
            return False
        if rule.probability < 1.0 and self.rng.random() >= rule.probability:
            return False
        self._fired[key] += 1
        return True

    def __repr__(self):
        return (
            f"<FaultInjector seed={self.seed} rules={len(self.plan)} "
            f"injected={dict(self.injected)}>"
        )
