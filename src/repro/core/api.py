"""The declarative Vista API (Section 3.3, Figure 13).

Users state *what* to run — a roster CNN, how many feature layers to
explore, the downstream routine, the data, and the cluster resources —
and Vista decides *how*: it invokes the optimizer to pick the system
configuration, configures the (simulated) PD backend accordingly, and
executes its Staged plan, returning one trained downstream model per
explored layer.
"""

from __future__ import annotations

from repro.cnn.zoo import build_model, get_model_stats
from repro.core.config import (
    DatasetStats,
    DownstreamSpec,
    Resources,
    SystemDefaults,
)
from repro.core.executor import FeatureTransferExecutor
from repro.core.optimizer import optimize
from repro.core.plans import STAGED
from repro.core.sizing import estimate_sizes
from repro.dataflow.context import ClusterContext
from repro.memory.ignite import ignite_memory_budget
from repro.memory.model import GB
from repro.memory.spark import spark_budget_from_regions


class Vista:
    """Declarative feature transfer from deep CNNs.

    Example
    -------
    >>> from repro.data import foods_dataset
    >>> from repro.core.config import Resources
    >>> from repro.memory.model import GB
    >>> vista = Vista(
    ...     model_name="alexnet", num_layers=4,
    ...     dataset=foods_dataset(num_records=64),
    ...     resources=Resources(num_nodes=2,
    ...                         system_memory_bytes=32 * GB,
    ...                         cores_per_node=8),
    ... )
    >>> result = vista.run()
    >>> sorted(result.layer_results)
    ['conv5', 'fc6', 'fc7', 'fc8']
    """

    def __init__(self, model_name, num_layers, dataset, resources,
                 downstream_fn=None, downstream_spec=None, backend="spark",
                 model_profile="mini", plan=STAGED, defaults=None,
                 dataset_stats=None, model_seed=0, exec_backend=None):
        self.model_name = model_name
        self.model_stats = get_model_stats(model_name)
        self.layers = self.model_stats.top_feature_layers(num_layers)
        self.dataset = dataset
        self.resources = resources
        self.downstream_fn = downstream_fn
        self.downstream_spec = downstream_spec or DownstreamSpec()
        if backend not in ("spark", "ignite"):
            raise ValueError(
                f"backend must be 'spark' or 'ignite', got {backend!r}"
            )
        self.backend = backend
        #: Physical wave executor ("serial"/"process" or a Backend
        #: instance); ``backend`` above is the memory-budget model.
        self.exec_backend = exec_backend
        self.model_profile = model_profile
        self.plan = plan
        self.defaults = defaults or SystemDefaults()
        self.dataset_stats = dataset_stats or self._infer_dataset_stats()
        self.model_seed = model_seed
        self._config = None

    def _infer_dataset_stats(self):
        image = self.dataset.image_rows[0]["image"]
        return DatasetStats(
            num_records=len(self.dataset),
            num_structured_features=self.dataset.num_structured_features,
            avg_image_bytes=int(image.nbytes),
        )

    # ------------------------------------------------------------------
    def optimize(self, tracer=None, metrics=None):
        """Run Algorithm 1; returns the chosen :class:`VistaConfig`."""
        self._config = optimize(
            self.model_stats, self.layers, self.dataset_stats,
            self.resources, downstream=self.downstream_spec,
            defaults=self.defaults, backend=self.backend, tracer=tracer,
            metrics=metrics,
        )
        return self._config

    def sizing(self):
        """Eq. 16 size estimates for this workload's intermediates."""
        return estimate_sizes(
            self.model_stats, self.layers, self.dataset_stats,
            alpha=self.defaults.alpha,
        )

    def build_context(self, config=None):
        """Configure the simulated PD backend per the optimizer."""
        config = config or self._config or self.optimize()
        if self.backend == "spark":
            budget = spark_budget_from_regions(
                self.resources.system_memory_bytes,
                user_bytes=config.mem_user_bytes,
                core_bytes=self.defaults.core_memory_bytes,
                storage_bytes=config.mem_storage_bytes,
                os_reserved_bytes=self.defaults.os_reserved_bytes,
            )
        else:
            heap = config.mem_user_bytes + self.defaults.core_memory_bytes
            budget = ignite_memory_budget(
                self.resources.system_memory_bytes,
                heap_bytes=heap,
                storage_bytes=config.mem_storage_bytes,
                os_reserved_bytes=self.defaults.os_reserved_bytes,
            )
        return ClusterContext(
            budget,
            num_nodes=self.resources.num_nodes,
            cores_per_node=self.resources.cores_per_node,
            cpu=config.cpu,
            exec_backend=self.exec_backend,
        )

    def run(self, plan=None, premat_layer=None, context=None,
            feature_store=None, tracer=None, metrics=None,
            checkpoint_store=None, ledger=None):
        """Optimize, configure, and execute the workload end to end.

        ``feature_store`` (a :class:`~repro.features.store.FeatureStore`)
        lets ``premat_layer`` reuse base features materialized by an
        earlier session. ``tracer`` (a :class:`~repro.trace.Tracer`)
        records the optimizer decision and the full execution span tree
        on ``WorkloadResult.trace``; ``metrics`` (a
        :class:`~repro.metrics.MetricsRegistry`) records per-region
        occupancy timelines and storage/task counters on
        ``WorkloadResult.metrics_registry``. ``checkpoint_store`` (a
        :class:`~repro.recovery.CheckpointStore`) makes stage outputs
        durable and restores checksum-valid partitions from a prior
        interrupted run of the same workload. Returns a
        :class:`~repro.core.executor.WorkloadResult` with one trained
        downstream model per explored feature layer.
        """
        config = self._config or self.optimize(
            tracer=tracer, metrics=metrics
        )
        if ledger is not None and ledger.enabled:
            ledger.emit(
                "optimizer_decision", plan=(plan or self.plan).label,
                cpu=config.cpu, join=config.join,
                persistence=config.persistence,
                num_partitions=config.num_partitions,
            )
        context = context or self.build_context(config)
        cnn = build_model(
            self.model_name, profile=self.model_profile, seed=self.model_seed
        )
        executor = FeatureTransferExecutor(
            context, cnn, self.dataset, self.layers, config,
            downstream_fn=self.downstream_fn, feature_store=feature_store,
            tracer=tracer, metrics=metrics,
            checkpoint_store=checkpoint_store, ledger=ledger,
        )
        return executor.run(plan or self.plan, premat_layer=premat_layer)

    def explain(self, what_if=None):
        """EXPLAIN this workload's plan choice: the full Algorithm 1
        candidate ledger (every ``cpu`` with its Eq. 9-15 terms and
        rejection reasons), with the winner marked — the same candidate
        :meth:`run` executes.

        ``what_if`` (a dict of :data:`repro.explain.whatif.PIN_KEYS`
        pins) attaches a priced what-if report for a pinned
        configuration, including the engine-exact mini-scale peak
        predictions for this instance's executable CNN and dataset.
        Returns an :class:`~repro.explain.ExplainResult`; render it
        with :func:`repro.report.render_explain`.
        """
        from repro.explain import explain as explain_fn

        cnn = None
        if what_if is not None:
            cnn = build_model(
                self.model_name, profile=self.model_profile,
                seed=self.model_seed,
            )
        return explain_fn(
            self.model_stats, self.layers, self.dataset_stats,
            self.resources, downstream=self.downstream_spec,
            defaults=self.defaults, backend=self.backend,
            what_if_pins=what_if, cnn=cnn, dataset=self.dataset,
        )

    def run_resilient(self, plan=None, premat_layer=None, fault_plan=None,
                      seed=0, retry_policy=None, max_attempts=16,
                      feature_store=None, tracer=None, metrics=None,
                      checkpoint_store=None, ledger=None):
        """Run under the :class:`~repro.core.resilient.ResilientRunner`
        supervisor: transient task failures are retried from lineage,
        lost workers are blacklisted, and Section 4.1 crashes are
        recovered via the degradation ladder. ``fault_plan`` (a
        :class:`~repro.faults.FaultPlan`) injects deterministic faults
        for testing; the result's ``metrics["recovery_log"]`` records
        every recovery step taken. ``tracer`` records each attempt as
        an ``attempt:<n>`` span with ``degrade`` events between rungs;
        ``metrics`` additionally counts ``degrades_total`` per ladder
        rung and accumulates occupancy series across attempts. With a
        ``checkpoint_store`` the supervisor is resume-first: a crash
        re-runs the same plan restoring checksum-valid partitions and
        recomputing the rest, degrading only when resume stops making
        progress.
        """
        from repro.core.resilient import ResilientRunner

        runner = ResilientRunner(
            self, fault_plan=fault_plan, seed=seed,
            retry_policy=retry_policy, max_attempts=max_attempts,
            tracer=tracer, metrics=metrics,
            checkpoint_store=checkpoint_store, ledger=ledger,
        )
        return runner.run(
            plan=plan, premat_layer=premat_layer, feature_store=feature_store
        )


def default_resources(num_nodes=8, system_gb=32, cores=8, gpu_gb=0):
    """The paper's CloudLab worker spec: 32 GB RAM, 8 cores per node."""
    return Resources(
        num_nodes=num_nodes,
        system_memory_bytes=int(system_gb * GB),
        cores_per_node=cores,
        gpu_memory_bytes=int(gpu_gb * GB),
    )
