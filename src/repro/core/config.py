"""Optimizer inputs, outputs, and fixed system parameters (Table 1).

``Resources`` and ``DatasetStats`` carry the user-supplied inputs of
Table 1(A); ``SystemDefaults`` the fixed-but-adjustable parameters of
Table 1(C); ``VistaConfig`` the variables the optimizer sets, Table
1(B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.model import GB, MB

#: Table 1(C) defaults.
DEFAULT_OS_RESERVED = 3 * GB          # mem_os_rsv
DEFAULT_CORE_MEMORY = int(2.4 * GB)   # mem_core (Spark best practice)
DEFAULT_MAX_PARTITION = 100 * MB      # p_max
DEFAULT_MAX_BROADCAST = 100 * MB      # b_max
DEFAULT_CPU_MAX = 8                   # cpu_max
DEFAULT_ALPHA = 2.0                   # fudge factor for JVM object blowup


@dataclass(frozen=True)
class SystemDefaults:
    """Fixed (but adjustable) system parameters — Table 1(C)."""

    os_reserved_bytes: int = DEFAULT_OS_RESERVED
    core_memory_bytes: int = DEFAULT_CORE_MEMORY
    max_partition_bytes: int = DEFAULT_MAX_PARTITION
    max_broadcast_bytes: int = DEFAULT_MAX_BROADCAST
    cpu_max: int = DEFAULT_CPU_MAX
    alpha: float = DEFAULT_ALPHA


@dataclass(frozen=True)
class Resources:
    """The system environment — Table 1(A)'s resource rows.

    ``gpu_memory_bytes`` of 0 means CPU-only execution.
    """

    num_nodes: int
    system_memory_bytes: int
    cores_per_node: int
    gpu_memory_bytes: int = 0

    @property
    def has_gpu(self):
        return self.gpu_memory_bytes > 0


@dataclass(frozen=True)
class DatasetStats:
    """Statistics about the data tables the user supplies to Vista."""

    num_records: int
    num_structured_features: int
    avg_image_bytes: int

    def structured_table_bytes(self):
        """Tungsten-style |Tstr|: bitmap + id + features(header+payload)
        + label per record."""
        per_record = 8 + 8 + (8 + 4 * self.num_structured_features) + 8
        return self.num_records * per_record

    def image_table_bytes(self):
        """|Timg|: bitmap + id + image(header + raw payload)."""
        per_record = 8 + 8 + (8 + self.avg_image_bytes)
        return self.num_records * per_record


@dataclass(frozen=True)
class DownstreamSpec:
    """The downstream ML routine's memory character.

    ``mem_bytes`` is |M|_mem; None means "derive it from the feature
    dimensions" via :func:`repro.core.optimizer.downstream_mem_bytes`.
    ``in_dl_system`` selects between the optimizer's Eq. 10/11 cases
    (a) M in PD User Memory (e.g. MLlib) and (b) M in DL Execution
    Memory (e.g. a TF model). ``gpu_mem_bytes`` is |M|_mem_gpu for the
    Eq. 15 constraint.
    """

    mem_bytes: int | None = None
    gpu_mem_bytes: int = 0
    in_dl_system: bool = False


@dataclass(frozen=True)
class VistaConfig:
    """The optimizer's decisions — Table 1(B)."""

    cpu: int
    num_partitions: int
    mem_storage_bytes: int
    mem_user_bytes: int
    mem_dl_bytes: int
    join: str          # "shuffle" | "broadcast"
    persistence: str   # "serialized" | "deserialized"

    def describe(self):
        return (
            f"cpu={self.cpu} np={self.num_partitions} "
            f"storage={self.mem_storage_bytes / GB:.2f}GB "
            f"user={self.mem_user_bytes / GB:.2f}GB "
            f"dl={self.mem_dl_bytes / GB:.2f}GB "
            f"join={self.join} pers={self.persistence}"
        )
