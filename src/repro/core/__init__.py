"""Vista's core: declarative API, optimizer, plans, and executor."""

from repro.core.api import Vista, default_resources
from repro.core.config import (
    DatasetStats,
    DownstreamSpec,
    Resources,
    SystemDefaults,
    VistaConfig,
)
from repro.core.executor import FeatureTransferExecutor, WorkloadResult
from repro.core.optimizer import optimize
from repro.core.resilient import ResilientRunner, degrade_once
from repro.core.plans import (
    ALL_PLANS,
    EAGER,
    EAGER_REORDERED,
    LAZY,
    LAZY_REORDERED,
    STAGED,
    STAGED_BJ,
    LogicalPlan,
    plan_by_name,
    redundant_flops,
)
from repro.core.sizing import estimate_sizes

__all__ = [
    "ALL_PLANS",
    "DatasetStats",
    "DownstreamSpec",
    "EAGER",
    "EAGER_REORDERED",
    "FeatureTransferExecutor",
    "LAZY",
    "LAZY_REORDERED",
    "LogicalPlan",
    "ResilientRunner",
    "Resources",
    "STAGED",
    "STAGED_BJ",
    "SystemDefaults",
    "Vista",
    "VistaConfig",
    "WorkloadResult",
    "default_resources",
    "degrade_once",
    "estimate_sizes",
    "optimize",
    "plan_by_name",
    "redundant_flops",
]
