"""Logical execution plans (Section 4.2.1, Figure 5).

The five plans the paper compares factor into two orthogonal choices:

  materialization x join placement
  -------------------------------------------------------------
  Lazy   / join after inference   = Figure 5(A)  "Lazy"
  Lazy   / join before inference  = Figure 5(B)  "Lazy-Reordered"
  Eager  / join after inference   = Figure 5(C)  "Eager"
  Eager  / join before inference  = Figure 5(D)  "Eager-Reordered"
  Staged / join before inference  = Figure 5(E)  "Staged" (Vista)

Section 5.3 labels join placement from the inference side: "AJ"
(inference After Join, i.e. the join is pulled below inference) and
"BJ" (inference Before Join). Vista's default — validated by Figure 9
— is Staged/AJ.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Materialization(enum.Enum):
    """How feature layers are materialized across L."""

    LAZY = "lazy"       # one independent full-inference pass per layer
    EAGER = "eager"     # all layers in one pass, held at once
    STAGED = "staged"   # partial inference staged layer-to-layer


class JoinPlacement(enum.Enum):
    """Where the Tstr-Timg key-key join sits relative to inference."""

    AFTER_JOIN = "aj"    # join first, inference on the joined table
    BEFORE_JOIN = "bj"   # inference first, join features afterwards


@dataclass(frozen=True)
class LogicalPlan:
    """One point in the logical plan space."""

    materialization: Materialization
    join_placement: JoinPlacement

    @property
    def label(self):
        return f"{self.materialization.value}/{self.join_placement.value}"

    def __str__(self):
        return self.label


#: The paper's five named plans.
LAZY = LogicalPlan(Materialization.LAZY, JoinPlacement.BEFORE_JOIN)
LAZY_REORDERED = LogicalPlan(Materialization.LAZY, JoinPlacement.AFTER_JOIN)
EAGER = LogicalPlan(Materialization.EAGER, JoinPlacement.BEFORE_JOIN)
EAGER_REORDERED = LogicalPlan(Materialization.EAGER, JoinPlacement.AFTER_JOIN)
STAGED = LogicalPlan(Materialization.STAGED, JoinPlacement.AFTER_JOIN)
STAGED_BJ = LogicalPlan(Materialization.STAGED, JoinPlacement.BEFORE_JOIN)

ALL_PLANS = {
    "lazy": LAZY,
    "lazy-reordered": LAZY_REORDERED,
    "eager": EAGER,
    "eager-reordered": EAGER_REORDERED,
    "staged": STAGED,
    "staged-bj": STAGED_BJ,
}


def plan_by_name(name):
    try:
        return ALL_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown plan {name!r}; choose from {sorted(ALL_PLANS)}"
        ) from None


def redundant_flops(model_stats, layers):
    """Computational redundancy of Lazy relative to Staged (Sec. 4.2.1):
    FLOPs Lazy spends that Staged avoids by fusing the |L| queries.

    Lazy runs full inference from the raw image to every layer; Staged
    pays for the deepest layer's path exactly once.
    """
    layers = list(layers)
    lazy = sum(
        model_stats.layer_stats(layer).flops_from_input for layer in layers
    )
    staged = model_stats.layer_stats(layers[-1]).flops_from_input
    return lazy - staged
