"""Plan executor: runs any logical plan on the dataflow + CNN engines.

This is Vista's runtime. Given a cluster context, an executable CNN,
the two data tables, and a :class:`VistaConfig`, it executes a
:class:`LogicalPlan` end to end — (partial) CNN inference as
MapPartitions UDFs, the Tstr-Timg key-key join with the configured
physical operator, intermediate caching under the configured
persistence format, and downstream training per feature layer — while
metering FLOPs, shuffles, spills, and region peaks, and surfacing the
Section 4.1 crash scenarios as exceptions.

All plans produce bit-identical per-layer feature matrices (the paper:
"All approaches ... yield identical downstream models"); tests assert
this invariant.
"""

from __future__ import annotations

import numpy as np

from repro.core.plans import JoinPlacement, Materialization
from repro.dataflow.columnar import ColumnarBlock, pack_column
from repro.dataflow.executor import charge_model_replicas
from repro.dataflow.joins import join as physical_join
from repro.dataflow.table import DistributedTable
from repro.features.pooling import (
    pool_feature_tensor,
    pool_feature_tensor_batch,
    pool_feature_tensors,
)
from repro.memory.model import Region
from repro.metrics import NULL_METRICS
from repro.observe.ledger import NULL_LEDGER
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import f1_score
from repro.tensor.tensorlist import TensorList
from repro.trace import NULL_TRACER


def _stackable(values):
    """True iff a partition's column can be stacked into one (N, ...)
    batch: plain same-shape tensors, no TensorList members."""
    return not any(isinstance(value, TensorList) for value in values)


def estimate_model_mem_bytes(cnn, blowup=3.0):
    """Runtime footprint estimate of an executable CNN: parameter bytes
    times a blowup factor (serialized formats underestimate in-memory
    footprints — Section 4.1, issue (1))."""
    param_bytes = 0
    for op in cnn.layers:
        if hasattr(op, "param_count"):  # composite bottleneck blocks
            param_bytes += 4 * op.param_count()
            continue
        for attr in ("weights", "bias"):
            value = getattr(op, attr, None)
            if isinstance(value, np.ndarray):
                param_bytes += value.nbytes
    return int(blowup * max(param_bytes, 1))


def default_downstream(features, labels):
    """The paper's default M: elastic-net logistic regression for 10
    iterations; returns the model and its training-set F1."""
    model = LogisticRegression().fit(features, labels)
    return {
        "model": model,
        "f1_train": f1_score(labels, model.predict(features)),
    }


class LayerResult:
    """Downstream outcome for one feature layer."""

    def __init__(self, layer, feature_dim, downstream):
        self.layer = layer
        self.feature_dim = feature_dim
        self.downstream = downstream

    def __repr__(self):
        return f"<LayerResult {self.layer}: dim={self.feature_dim}>"


class WorkloadResult:
    """Result of one feature-transfer workload run.

    ``trace`` is the root :class:`~repro.trace.Span` of the run's
    trace tree when the workload was traced (``to_dict``/``to_json``
    export it; :func:`repro.report.trace_ascii.render_trace` renders
    it), or None for untraced runs. ``metrics_registry`` is the
    :class:`~repro.metrics.MetricsRegistry` carrying the run's
    time-series (occupancy waterlines, cache counters) when the
    workload ran with metrics on — it sits next to ``trace`` the same
    way, and None for un-metered runs. ``metrics`` remains the flat
    summary dict (FLOPs, spills, peaks) every run produces.
    """

    def __init__(self, plan, layer_results, metrics, trace=None,
                 metrics_registry=None):
        self.plan = plan
        self.layer_results = layer_results  # layer name -> LayerResult
        self.metrics = metrics
        self.trace = trace
        self.metrics_registry = metrics_registry

    def trace_dict(self):
        """JSON-safe dict of the trace tree (None when untraced)."""
        return self.trace.to_dict() if self.trace is not None else None

    def metrics_dict(self):
        """JSON-safe export of the time-series registry (None when the
        run was not metered)."""
        if self.metrics_registry is None:
            return None
        return self.metrics_registry.export()

    def __repr__(self):
        return (
            f"<WorkloadResult {self.plan}: layers="
            f"{list(self.layer_results)}>"
        )


class FeatureTransferExecutor:
    """Executes the feature transfer workload under a logical plan.

    Parameters
    ----------
    context:
        A :class:`~repro.dataflow.context.ClusterContext`; its workers'
        budgets decide whether the run spills, crashes, or sails.
    cnn:
        An executable :class:`~repro.cnn.network.CNN`.
    dataset:
        A :class:`~repro.data.synthetic.MultimodalDataset`.
    layers:
        Ordered feature layers (lowest first) to transfer.
    config:
        A :class:`~repro.core.config.VistaConfig`; picks np, the join
        operator, and the persistence format.
    downstream_fn:
        ``fn(features, labels) -> result``; defaults to the paper's
        logistic regression.
    model_mem_bytes:
        Per-replica DL memory charge; defaults to an estimate from the
        executable model's parameters.
    """

    def __init__(self, context, cnn, dataset, layers, config,
                 downstream_fn=None, model_mem_bytes=None, pool_grid=2,
                 user_alpha=2.0, feature_store=None, tracer=None,
                 metrics=None, checkpoint_store=None, ledger=None):
        self.context = context
        self.cnn = cnn
        self.dataset = dataset
        self.layers = list(layers)
        self.config = config
        self.downstream_fn = downstream_fn or default_downstream
        self.model_mem_bytes = (
            model_mem_bytes
            if model_mem_bytes is not None
            else estimate_model_mem_bytes(cnn)
        )
        self.pool_grid = pool_grid
        self.user_alpha = user_alpha
        self.feature_store = feature_store
        self.checkpoint_store = checkpoint_store
        self.metrics = {}
        self._measured_table_bytes = {}
        # Engine-level per-task counters live on the context so the
        # process backend can diff them in a forked child and merge the
        # deltas back; the serial backend mutates them in place.
        context.task_counters = {}
        if tracer is not None:
            context.attach_tracer(tracer)
        self.tracer = getattr(context, "tracer", NULL_TRACER)
        if metrics is not None:
            context.attach_metrics(metrics)
        self.metrics_registry = getattr(context, "metrics", NULL_METRICS)
        if ledger is not None:
            # After tracer/metrics so the ledger sinks land on them.
            context.attach_ledger(ledger)
        self.ledger = getattr(context, "ledger", NULL_LEDGER)
        np_ = config.num_partitions
        with self.tracer.span("read") as sp:
            self.tstr = DistributedTable.from_rows(
                context, dataset.structured_rows, np_, name="t_str"
            )
            self.timg = DistributedTable.from_rows(
                context, dataset.image_rows, np_, name="t_img"
            )
            if self.tracer.enabled:
                sp.add("rows_structured", self.tstr.num_rows())
                sp.add("rows_images", self.timg.num_rows())
                sp.add("bytes_structured", self.tstr.memory_bytes())
                sp.add("bytes_images", self.timg.memory_bytes())

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, plan, premat_layer=None):
        """Execute ``plan``; optionally start inference from a
        pre-materialized base feature layer (Appendix B)."""
        self.metrics = {
            "plan": plan.label,
            "inference_flops": 0,
            "premat_flops": 0,
        }
        self._measured_table_bytes = {}
        self.context.task_counters = {}
        self.context.reset_metrics()
        self.context.shuffle_bytes_total = 0
        config = self.config
        self._bind_checkpoints(plan)
        previous_timer = self.cnn.op_timer
        op_hook, op_flush = self._op_timer_hook()
        if op_hook is not None:
            self.cnn.op_timer = op_hook
        try:
            with self.tracer.span(
                "workload", plan=plan.label, join=config.join,
                persistence=config.persistence,
                num_partitions=config.num_partitions,
                cpu=self.context.cpu,
            ) as span:
                source_table, source_layer = self.timg, None
                source_field = "image"
                if premat_layer is not None:
                    source_table = self._prematerialize(premat_layer)
                    source_layer = premat_layer
                    source_field = "tensor"
                runner = {
                    Materialization.LAZY: self._run_lazy,
                    Materialization.EAGER: self._run_eager,
                    Materialization.STAGED: self._run_staged,
                }[plan.materialization]
                layer_results = runner(
                    plan, source_table, source_field, source_layer
                )
                if self.tracer.enabled:
                    span.set("sizing", self._sizing_comparison())
        finally:
            self.cnn.op_timer = previous_timer
            if op_flush is not None:
                op_flush()
        self._finalize_metrics()
        trace = self.tracer.root if self.tracer.enabled else None
        registry = (
            self.metrics_registry if self.metrics_registry.enabled else None
        )
        return WorkloadResult(
            plan.label, layer_results, dict(self.metrics), trace=trace,
            metrics_registry=registry,
        )

    def _bind_checkpoints(self, plan):
        """Bind the checkpoint store (if any) to this run's identity.

        The fingerprint covers everything that shapes stage-output
        bytes — model, layers, dataset, plan, and the partitioning /
        persistence knobs — so a degraded re-plan lands in a fresh
        (empty) namespace instead of restoring incompatible partitions.
        """
        store = self.checkpoint_store
        if store is None:
            return
        from repro.features.store import dataset_fingerprint
        from repro.recovery.store import run_fingerprint

        store.fault_injector = getattr(self.context, "fault_injector", None)
        store.attach_metrics(getattr(self.context, "metrics", NULL_METRICS))
        store.bind_run(run_fingerprint(
            getattr(self.cnn, "name", "cnn"),
            getattr(self.cnn, "seed", None),
            self.layers, dataset_fingerprint(self.dataset), plan.label,
            self.config,
        ))

    def _ckpt(self, stage_id):
        """``checkpoint=`` argument for a durable ``map_blocks`` stage
        (None when no store is attached)."""
        if self.checkpoint_store is None:
            return None
        return (self.checkpoint_store, stage_id)

    @property
    def _batched_fallbacks(self):
        """Singleton-group fallbacks this run (read-only view over the
        context's task counters, where both backends accumulate)."""
        return self.context.task_counters.get("batched_fallbacks", 0)

    def _op_timer_hook(self):
        """Per-operator hook for the CNN engine, as a ``(recorder,
        flush)`` pair: the recorder (a ``hook(name, seconds)``
        callable — the engine reads the clock itself) feeds the
        tracer's ``op_s:<name>`` counters (when tracing) and collects
        wall seconds for the ``op_seconds{op_type}`` metrics histogram
        (when metered); both None when neither sink is on, so the
        engine skips timing entirely.

        The metered recorder interleaves with the inference inner
        loops, so it does nothing there beyond a dict lookup and a
        float append — observations land in the registry only when
        ``flush`` runs after the workload, keeping the histogram
        bookkeeping and its allocations out of the operators'
        cache-hot path (``bench_kernels.py`` gates metrics overhead
        at 5%)."""
        tracer_record = (
            self.tracer.record_op if self.tracer.enabled else None
        )
        registry = self.metrics_registry
        if tracer_record is None and not registry.enabled:
            self.context._op_samples = None
            return None, None
        # The samples dict hangs off the context so the process
        # backend's forked children can diff it around a task and ship
        # only the new samples back — the parent replays them into the
        # tracer and the deferred histogram flush below.
        samples = {}
        self.context._op_samples = samples

        if tracer_record is None:

            def hook(name, seconds):
                durations = samples.get(name)
                if durations is None:
                    durations = samples[name] = []
                durations.append(seconds)

        else:

            def hook(name, seconds):
                tracer_record(name, seconds)
                durations = samples.get(name)
                if durations is None:
                    durations = samples[name] = []
                durations.append(seconds)

        if not registry.enabled:
            return hook, None

        def flush():
            for name, durations in samples.items():
                registry.histogram(
                    "op_seconds", op_type=name
                ).observe_many(durations)

        return hook, flush

    def _sizing_comparison(self):
        """Eq. 16 estimates (from the executable CNN's shapes) next to
        the traced actual bytes of each layer's train table — the
        paper's Figure 15 validation, per run."""
        from repro.core.config import DatasetStats
        from repro.core.sizing import estimate_sizes_from_cnn

        image = self.dataset.image_rows[0]["image"]
        stats = DatasetStats(
            num_records=len(self.dataset),
            num_structured_features=self.dataset.num_structured_features,
            avg_image_bytes=int(image.nbytes),
        )
        estimates = estimate_sizes_from_cnn(
            self.cnn, self.layers, stats, alpha=self.user_alpha
        )
        return {
            layer: {
                "estimated_bytes": estimates[layer],
                "measured_bytes": self._measured_table_bytes.get(layer),
            }
            for layer in self.layers
        }

    # ------------------------------------------------------------------
    # plan implementations
    # ------------------------------------------------------------------
    def _run_lazy(self, plan, source, source_field, source_layer):
        results = {}
        after_join = plan.join_placement is JoinPlacement.AFTER_JOIN
        base = self._join(self.tstr, source) if after_join else source
        for layer in self.layers:
            features = self._inference_map(
                base, source_field, source_layer, layer,
                keep=("features", "label") if after_join else (),
            )
            train_table = (
                features if after_join else self._join(self.tstr, features)
            )
            results[layer] = self._train(train_table, layer)
        return results

    def _run_eager(self, plan, source, source_field, source_layer):
        all_layers = self.layers
        # Sniff the first *non-empty* partition: partition 0 may be
        # empty (skewed keys, tiny tables) and an all-empty table has
        # nothing to reject. Columnar partitions answer from the block
        # without materializing row views.
        for partition in source.partitions:
            if len(partition) == 0:
                continue
            block = partition.block()
            if block is not None:
                sample = (
                    block.column(source_field)[0]
                    if block.has_column(source_field) else None
                )
            else:
                sample = partition.rows()[0].get(source_field)
            if isinstance(sample, TensorList):
                raise NotImplementedError(
                    "Eager materialization with multiple images per record "
                    "is not supported (it would need nested TensorLists); "
                    "use the Lazy or Staged plans"
                )
            break

        def run_all_layers(current, num_rows):
            """All-layer inference over one (N, ...) source stack;
            returns one TensorList of layer outputs per row."""
            per_row = [[] for _ in range(num_rows)]
            previous = source_layer
            for layer in all_layers:
                current = self.cnn.partial_forward_batch(
                    current, previous or 0, layer
                )
                for tensors, member in zip(per_row, current):
                    tensors.append(member)
                previous = layer
            return [TensorList(tensors) for tensors in per_row]

        def materialize_block(block):
            if block.num_rows == 0:
                return ColumnarBlock.empty()
            columns = {"id": block.column("id")}
            for field in ("features", "label"):
                if block.has_column(field):
                    columns[field] = block.column(field)
            if block.is_array(source_field):
                current = block.column(source_field)
            else:
                current = np.stack([
                    np.asarray(v, dtype=np.float32)
                    for v in block.column(source_field)
                ])
            columns["tensors"] = run_all_layers(current, block.num_rows)
            return ColumnarBlock(columns, block.num_rows)

        def materialize_rows(rows):
            if not rows:
                return []
            out_rows = []
            for row in rows:
                out = {"id": row["id"]}
                for field in ("features", "label"):
                    if field in row:
                        out[field] = row[field]
                out_rows.append(out)
            current = np.stack(
                [np.asarray(row[source_field], dtype=np.float32)
                 for row in rows]
            )
            tensor_lists = run_all_layers(current, len(rows))
            for out, tensors in zip(out_rows, tensor_lists):
                out["tensors"] = tensors
            return out_rows

        base = source
        if plan.join_placement is JoinPlacement.AFTER_JOIN:
            base = self._join(self.tstr, source)
        with self.tracer.span(
            "inference:eager", from_layer=source_layer or "image",
            to_layer=all_layers[-1], layers=list(all_layers),
        ) as sp:
            release = charge_model_replicas(
                self.context, self.model_mem_bytes
            )
            try:
                eager_table = base.map_blocks(
                    materialize_block, row_fn=materialize_rows,
                    name="t_eager", user_alpha=self.user_alpha,
                    checkpoint=self._ckpt(
                        f"eager:{source_layer or 'image'}->{all_layers[-1]}"
                        + ("+aj" if plan.join_placement
                           is JoinPlacement.AFTER_JOIN else "")
                    ),
                )
            finally:
                release()
            flops = self._meter_inference(
                base.num_rows(), source_layer, all_layers[-1]
            )
            if self.tracer.enabled:
                sp.add("rows", base.num_rows())
                sp.add("flops", flops)
                sp.add("bytes_out", eager_table.memory_bytes())
        if plan.join_placement is JoinPlacement.BEFORE_JOIN:
            eager_table = self._join(self.tstr, eager_table)
        # The all-layers table must persist across |L| training runs —
        # this cache is where Eager crashes (Ignite) or spills (Spark).
        eager_table.cache(self.config.persistence)
        results = {}
        try:
            for position, layer in enumerate(all_layers):

                def project_block(block, p=position):
                    if block.num_rows == 0:
                        return ColumnarBlock.empty()
                    return ColumnarBlock(
                        {
                            "id": block.column("id"),
                            "features": block.column("features"),
                            "label": block.column("label"),
                            # Same-shape members stack back into one
                            # (N, ...) tensor column for batched
                            # pooling downstream.
                            "tensor": pack_column([
                                tensors[p]
                                for tensors in block.column("tensors")
                            ]),
                        },
                        block.num_rows,
                    )

                projected = eager_table.map_blocks(
                    project_block,
                    row_fn=lambda rows, p=position: [
                        {
                            "id": row["id"],
                            "features": row["features"],
                            "label": row["label"],
                            "tensor": row["tensors"][p],
                        }
                        for row in rows
                    ],
                    user_alpha=self.user_alpha,
                )
                results[layer] = self._train(projected, layer)
        finally:
            eager_table.unpersist()
        return results

    def _run_staged(self, plan, source, source_field, source_layer):
        results = {}
        after_join = plan.join_placement is JoinPlacement.AFTER_JOIN
        current = self._join(self.tstr, source) if after_join else source
        current_field = source_field
        previous_layer = source_layer
        previous_table = None
        for layer in self.layers:
            current = self._inference_map(
                current, current_field, previous_layer, layer,
                keep=("features", "label") if after_join else (),
            )
            current.cache(self.config.persistence)
            if previous_table is not None:
                previous_table.unpersist()
            if after_join:
                train_table = current
            else:
                train_table = self._join(self.tstr, current)
            results[layer] = self._train(train_table, layer)
            previous_table = current
            current_field = "tensor"
            previous_layer = layer
        if previous_table is not None:
            previous_table.unpersist()
        return results

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def _prematerialize(self, layer):
        """Materialize a base feature layer from raw images once
        (Appendix B); its FLOPs are metered separately.

        With a :class:`~repro.features.store.FeatureStore` attached,
        previously stored features for (model, layer, dataset) are
        reused — the cross-session workflow Appendix B motivates —
        and fresh materializations are persisted for next time.
        """
        from repro.dataflow.table import DistributedTable

        with self.tracer.span(f"prematerialize:{layer}", layer=layer) as sp:
            if self.feature_store is not None:
                from repro.features.store import dataset_fingerprint

                fingerprint = dataset_fingerprint(self.dataset)
                rows = self.feature_store.get(
                    self.cnn.name, layer, fingerprint
                )
                if rows is not None:
                    self.metrics["premat_store_hit"] = True
                    sp.set("store_hit", True)
                    return DistributedTable.from_rows(
                        self.context, rows, self.config.num_partitions,
                        name=f"t_premat_{layer}",
                    )
            table = self._inference_map(self.timg, "image", None, layer)
            flops = self.cnn.flops_between(0, layer) * self.timg.num_rows()
            self.metrics["premat_flops"] += flops
            self.metrics["inference_flops"] -= flops
            if self.feature_store is not None:
                self.feature_store.put(
                    self.cnn.name, layer, fingerprint, table.collect()
                )
                self.metrics["premat_store_hit"] = False
                sp.set("store_hit", False)
            return table

    def _infer_ragged(self, values, from_layer, to_layer):
        """Batched inference over an object column (ragged tensors or
        TensorList members): every tensor — TensorList members included
        — joins one flat work list, the list is grouped by exact shape,
        and each group runs the batched kernels once. Zero-padding
        through conv would change the outputs, so exact-shape grouping
        is what keeps the bit-identical-features invariant; only
        singleton groups (nothing to batch with) fall back to the
        per-tensor kernel, counted in ``batched_fallback_total``."""
        flat = []  # (row position, TensorList member position or None)
        tensors = []
        for position, value in enumerate(values):
            if isinstance(value, TensorList):
                for member_position, member in enumerate(value):
                    flat.append((position, member_position))
                    tensors.append(np.asarray(member, dtype=np.float32))
            else:
                flat.append((position, None))
                tensors.append(np.asarray(value, dtype=np.float32))
        groups = {}
        for index, tensor in enumerate(tensors):
            groups.setdefault(tensor.shape, []).append(index)
        outputs = [None] * len(tensors)
        fallbacks = 0
        for indices in groups.values():
            if len(indices) == 1:
                index = indices[0]
                outputs[index] = self.cnn.partial_forward(
                    tensors[index], from_layer or 0, to_layer
                )
                fallbacks += 1
                continue
            batch = self.cnn.partial_forward_batch(
                np.stack([tensors[i] for i in indices]),
                from_layer or 0, to_layer,
            )
            for index, member in zip(indices, batch):
                outputs[index] = member
        if fallbacks:
            counters = self.context.task_counters
            counters["batched_fallbacks"] = (
                counters.get("batched_fallbacks", 0) + fallbacks
            )
            self.metrics_registry.counter(
                "batched_fallback_total"
            ).inc(fallbacks)
        per_row = [None] * len(values)
        members = {}
        for (position, member_position), output in zip(flat, outputs):
            if member_position is None:
                per_row[position] = output
            else:
                members.setdefault(position, []).append(output)
        for position, collected in members.items():
            per_row[position] = TensorList(collected)
        return per_row

    def _inference_map(self, table, field, from_layer, to_layer, keep=()):
        """Partial CNN inference ``f̂_{from→to}`` as a block-level
        batched UDF, with DL replica charges held for the duration.

        Columnar partitions feed their stored ``(N, H, W, C)`` image
        column straight into the batched kernels — zero-copy, no
        per-stage stack/split. Object columns (ragged tensors,
        TensorLists) batch by exact shape group via
        :meth:`_infer_ragged`. Legacy row partitions keep the old
        stack-then-batch path.
        """
        def infer_block(block):
            if block.num_rows == 0:
                return ColumnarBlock.empty()
            columns = {"id": block.column("id")}
            for extra in keep:
                if block.has_column(extra):
                    columns[extra] = block.column(extra)
            if block.is_array(field):
                columns["tensor"] = self.cnn.partial_forward_batch(
                    block.column(field), from_layer or 0, to_layer
                )
            else:
                columns["tensor"] = pack_column(self._infer_ragged(
                    block.column(field), from_layer, to_layer
                ))
            return ColumnarBlock(columns, block.num_rows)

        def infer_rows(rows):
            if not rows:
                return []
            values = [row[field] for row in rows]
            if _stackable(values):
                batch = np.stack(
                    [np.asarray(v, dtype=np.float32) for v in values]
                )
                tensors = list(self.cnn.partial_forward_batch(
                    batch, from_layer or 0, to_layer
                ))
            else:
                tensors = self._infer_ragged(values, from_layer, to_layer)
            out_rows = []
            for row, tensor in zip(rows, tensors):
                out = {"id": row["id"]}
                for extra in keep:
                    if extra in row:
                        out[extra] = row[extra]
                out["tensor"] = tensor
                out_rows.append(out)
            return out_rows

        stage_id = (
            f"infer:{from_layer or 'image'}->{to_layer}"
            + ("+aj" if keep else "")
        )
        with self.tracer.span(
            f"inference:{to_layer}", from_layer=from_layer or "image",
            to_layer=to_layer,
        ) as sp:
            release = charge_model_replicas(self.context, self.model_mem_bytes)
            try:
                result = table.map_blocks(
                    infer_block, row_fn=infer_rows, name=f"t_{to_layer}",
                    user_alpha=self.user_alpha,
                    checkpoint=self._ckpt(stage_id),
                )
            finally:
                release()
            flops = self._meter_inference(
                table.num_rows(), from_layer, to_layer
            )
            if self.tracer.enabled:
                sp.add("rows", table.num_rows())
                sp.add("flops", flops)
                sp.add("bytes_out", result.memory_bytes())
        return result

    def _meter_inference(self, num_rows, from_layer, to_layer):
        flops = self.cnn.flops_between(
            from_layer or 0, to_layer
        ) * num_rows
        self.metrics["inference_flops"] += flops
        return flops

    def _join(self, left, right):
        return physical_join(
            left, right, how=self.config.join,
            num_partitions=self.config.num_partitions,
        )

    def _train(self, table, layer):
        """Concatenate structured + pooled image features and hand the
        matrix to the downstream routine at the driver."""
        with self.tracer.span(f"train:{layer}", layer=layer) as sp:
            result = self._train_inner(table, layer, sp)
        return result

    def _train_inner(self, table, layer, sp):
        grid = self.pool_grid
        if self.tracer.enabled:
            # The joined train table is the run's measured counterpart
            # of Eq. 16's |T_i| estimate (see _sizing_comparison).
            measured = table.memory_bytes()
            self._measured_table_bytes[layer] = measured
            sp.add("rows", table.num_rows())
            sp.add("bytes_in", measured)

        def pool_one(tensor):
            if isinstance(tensor, TensorList):
                return np.concatenate(
                    pool_feature_tensors(list(tensor), grid=grid)
                )
            return pool_feature_tensor(tensor, grid=grid)

        def pool_values(tensors):
            """Pooled vectors for an object tensor column: plain ragged
            tensors batch by shape group; TensorList rows concatenate
            their members' pooled vectors."""
            if not any(isinstance(t, TensorList) for t in tensors):
                return pool_feature_tensors(tensors, grid=grid)
            return [pool_one(t) for t in tensors]

        def vectorize_block(block):
            if block.num_rows == 0:
                return ColumnarBlock.empty()
            if block.is_array("tensor"):
                # Zero-copy: pooling reads the stored (N, ...) block.
                pooled = pool_feature_tensor_batch(
                    block.column("tensor"), grid=grid
                )
            else:
                pooled = pack_column(pool_values(block.column("tensor")))
            feats = block.column("features")
            if isinstance(pooled, np.ndarray) \
                    and block.is_array("features"):
                vectors = np.concatenate(
                    [feats.astype(np.float32, copy=False),
                     np.asarray(pooled, dtype=np.float32)], axis=1,
                )
            else:
                vectors = [
                    np.concatenate(
                        [np.asarray(f, dtype=np.float32),
                         np.asarray(v, dtype=np.float32)]
                    )
                    for f, v in zip(feats, pooled)
                ]
            return ColumnarBlock(
                {
                    "id": block.column("id"),
                    "label": block.column("label"),
                    "x": vectors,
                },
                block.num_rows,
            )

        def vectorize_rows(rows):
            if not rows:
                return []
            tensors = [row["tensor"] for row in rows]
            if _stackable(tensors):
                batch = np.stack(
                    [np.asarray(t, dtype=np.float32) for t in tensors]
                )
                pooled = pool_feature_tensor_batch(batch, grid=grid)
            else:
                pooled = pool_values(tensors)
            return [
                {
                    "id": row["id"],
                    "label": row["label"],
                    "x": np.concatenate(
                        [np.asarray(row["features"], dtype=np.float32), vec]
                    ),
                }
                for row, vec in zip(rows, pooled)
            ]

        vectors = table.map_blocks(
            vectorize_block, row_fn=vectorize_rows,
            user_alpha=self.user_alpha,
            checkpoint=self._ckpt(f"train:{layer}"),
        )
        features, labels = self._collect_train_matrix(vectors)
        with self.tracer.span(f"downstream:{layer}") as down:
            outcome = self.downstream_fn(features, labels)
            down.add("rows", features.shape[0])
            down.add("feature_dim", features.shape[1])
        sp.set("feature_dim", int(features.shape[1]))
        return LayerResult(layer, features.shape[1], outcome)

    def _collect_train_matrix(self, vectors):
        """Gather the vectorized table at the driver as ``(features,
        labels)`` ordered by id. All-columnar tables assemble the
        matrix with one concatenate + argsort over the stored blocks;
        legacy tables fall back to row collect + sort. Driver memory is
        charged exactly as :meth:`DistributedTable.collect` does —
        crash scenario (4) accounting is unchanged."""
        blocks = []
        for partition in vectors.partitions:
            block = partition.block()
            if block is None or (
                block.num_rows and not (
                    block.is_array("id") and block.is_array("label")
                    and block.is_array("x")
                )
            ):
                blocks = None
                break
            if block.num_rows:
                blocks.append(block)
        if blocks is None:
            rows = vectors.collect()
            rows.sort(key=lambda row: row["id"])
            features = np.stack([row["x"] for row in rows])
            labels = np.array(
                [row["label"] for row in rows], dtype=np.int64
            )
            return features, labels
        nbytes = vectors.memory_bytes()
        self.tracer.add("collect_bytes", nbytes)
        self.context.driver.charge(
            Region.DRIVER, nbytes, what=f"collect of {vectors.name}"
        )
        try:
            ids = np.concatenate([b.column("id") for b in blocks])
            order = np.argsort(ids, kind="stable")
            features = np.concatenate(
                [b.column("x") for b in blocks]
            )[order]
            labels = np.concatenate(
                [b.column("label") for b in blocks]
            )[order].astype(np.int64, copy=False)
            return features, labels
        finally:
            self.context.driver.release(Region.DRIVER, nbytes)

    def _finalize_metrics(self):
        context = self.context
        region_peaks = {
            region.value: max(
                (w.accountant.peak(region) for w in context.workers),
                default=0,
            )
            for region in Region
        }
        # The storage region is managed by the StorageManager, not the
        # accountant, so its observed peak comes from there.
        region_peaks["storage"] = max(
            (w.storage.peak_bytes for w in context.workers), default=0
        )
        region_peaks["driver"] = context.driver.peak(Region.DRIVER)
        region_budgets = {
            region.value: (
                context.workers[0].accountant.capacity(region)
                if context.workers else 0
            )
            for region in Region
        }
        region_budgets["driver"] = context.driver.capacity(Region.DRIVER)
        self.metrics.update(
            {
                "batched_fallback_total": self._batched_fallbacks,
                "shuffle_bytes": getattr(context, "shuffle_bytes_total", 0),
                "spilled_bytes": context.total_spilled_bytes(),
                "spill_read_bytes": context.total_spill_read_bytes(),
                "tasks_run": sum(w.tasks_run for w in context.workers),
                "storage_peak_bytes": max(
                    (w.storage.peak_bytes for w in context.workers),
                    default=0,
                ),
                "region_peak_bytes": region_peaks,
                "region_budget_bytes": region_budgets,
            }
        )
        if self.checkpoint_store is not None:
            self.metrics.update(self.checkpoint_store.counters())
            self.metrics["recomputation_saved_ratio"] = (
                self.checkpoint_store.saved_ratio()
            )
        recovery = getattr(context, "recovery_log", None)
        if recovery is not None:
            self.metrics["recovery_log"] = [dict(e) for e in recovery]
        injector = getattr(context, "fault_injector", None)
        if injector is not None:
            self.metrics["sim_time_s"] = injector.clock.now
            self.metrics["faults_injected"] = dict(injector.injected)
