"""The Vista optimizer — Algorithm 1 of the paper.

Given the user's inputs (Table 1A) the optimizer linear-searches the
per-worker degree of parallelism ``cpu`` downward from
``min(cpu_sys, cpu_max) - 1``, and for each candidate checks the
memory constraints of Eqs. 9-15:

  - Eq. 10: User Memory must hold the serialized CNN plus each
    concurrent task's feature partition (times the blowup factor
    alpha), or the downstream models if M runs in PD User Memory.
  - Eq. 11: DL Execution Memory holds ``cpu`` CNN replicas (and M's
    replicas when M is a DL model).
  - Eq. 12: all regions fit in System Memory.
  - Eq. 13-14: ``np`` is a multiple of total worker processes and
    bounds partitions to ``p_max``.
  - Eq. 15: on GPUs, ``cpu`` model replicas fit in GPU memory.

The surviving candidate with the largest ``cpu`` wins (Eq. 8's
simplified objective); remaining variables are then set: Storage gets
the leftover worker memory, the join is broadcast iff |Tstr| fits
``b_max``, and persistence downgrades to serialized when Storage
cannot hold two consecutive intermediates (s_double).
"""

from __future__ import annotations

import math

from repro.core.config import (
    DownstreamSpec,
    SystemDefaults,
    VistaConfig,
)
from repro.core.sizing import estimate_sizes
from repro.dataflow.joins import BROADCAST, SHUFFLE
from repro.dataflow.partition import DESERIALIZED, SERIALIZED
from repro.exceptions import NoFeasiblePlan
from repro.metrics import NULL_METRICS
from repro.trace import NULL_TRACER


#: Per-thread inference input buffer: a batch of 32 decoded 227x227x3
#: float32 image tensors ("buffers to read inputs" — Section 4.1 (2)).
BATCH_INPUT_BYTES = 32 * 227 * 227 * 3 * 4

#: |M|_mem model: a base footprint plus bytes proportional to the
#: feature dimension ("|M| is proportional to the sum of structured
#: features and the maximum number of CNN features for any layer").
DOWNSTREAM_BASE_BYTES = 64 * 1024 * 1024
DOWNSTREAM_BYTES_PER_FEATURE = 32 * 1024


def downstream_mem_bytes(model_stats, layers, num_structured_features):
    """Estimate |M|_mem for the default MLlib-style downstream model."""
    max_dim = max(
        model_stats.layer_stats(layer).transfer_dim for layer in layers
    )
    return DOWNSTREAM_BASE_BYTES + DOWNSTREAM_BYTES_PER_FEATURE * (
        num_structured_features + max_dim
    )


def user_memory_requirement(model_stats, s_single, num_partitions, cpu,
                            downstream_mem, alpha):
    """Eq. 10's User Memory requirement, shared by the optimizer and
    the cost model's crash checks so the two can never disagree.

    We take the *sum* of the inference-side objects (serialized CNN,
    per-thread input batch buffers, per-thread feature partitions) and
    the downstream-model copies rather than Eq. 10's max(): the feature
    TensorLists and M's representations coexist during training, so the
    sum is the safe bound (and it is what makes Ignite's small on-heap
    User region crash at 7 threads in Figure 6).
    """
    partition_bytes = math.ceil(s_single / max(1, num_partitions))
    return (
        model_stats.serialized_bytes
        + cpu * alpha * partition_bytes
        + cpu * alpha * BATCH_INPUT_BYTES
        + cpu * downstream_mem
    )


def num_partitions_for(s_single, cpu, num_nodes, max_partition_bytes):
    """``NumPartitions`` of Algorithm 1: the smallest multiple of the
    total core count whose partitions fit under ``p_max`` (Eqs. 13-14)."""
    total_cores = cpu * num_nodes
    multiples = math.ceil(s_single / (max_partition_bytes * total_cores))
    return max(1, multiples) * total_cores


def optimize(model_stats, layers, dataset_stats, resources,
             downstream=None, defaults=None, backend="spark",
             tracer=None, metrics=None):
    """Run Algorithm 1 and return a :class:`VistaConfig`.

    Raises :class:`NoFeasiblePlan` when System Memory cannot satisfy
    the constraints for any ``cpu`` (line 18 of Algorithm 1).

    ``backend="ignite"`` adds one constraint beyond the paper's
    algorithm: Ignite's memory-only Storage region is static and cannot
    spill, so the Staged plan's largest cached stage (under the chosen
    persistence format) must fit cluster-wide Storage — otherwise the
    candidate ``cpu`` is rejected (lower cpu frees more Storage) and
    ultimately NoFeasiblePlan is raised.

    With a ``tracer`` (:class:`~repro.trace.Tracer`), the search runs
    under an ``optimize`` span recording the chosen configuration, how
    many ``cpu`` candidates were rejected, and the Eq. 16 size
    estimates the decision rested on — so traces can be checked against
    what the executor actually measured.

    With a ``metrics`` registry, the chosen configuration's per-region
    requirements (Eqs. 10-11 and the storage working set) are published
    as ``predicted_peak_bytes`` gauges, so a metrics-enabled run
    records the optimizer's prediction next to the observed occupancy
    peaks and estimate error becomes a first-class metric.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    downstream = downstream or DownstreamSpec()
    defaults = defaults or SystemDefaults()
    sizing = estimate_sizes(
        model_stats, layers, dataset_stats, alpha=defaults.alpha
    )
    f_mem = model_stats.runtime_mem_bytes
    m_mem = downstream.mem_bytes
    if m_mem is None:
        m_mem = downstream_mem_bytes(
            model_stats, layers, dataset_stats.num_structured_features
        )

    with tracer.span("optimize", backend=backend,
                     model=model_stats.name) as span:
        span.set("estimated_table_bytes",
                 dict(sizing.intermediate_table_bytes))
        span.set("s_single", sizing.s_single)
        span.set("s_double", sizing.s_double)
        upper = min(resources.cores_per_node, defaults.cpu_max) - 1
        for cpu in range(max(1, upper), 0, -1):
            if not _gpu_feasible(cpu, model_stats, downstream, resources):
                span.add("candidates_rejected")
                continue
            np_ = num_partitions_for(
                sizing.s_single, cpu, resources.num_nodes,
                defaults.max_partition_bytes,
            )
            mem_worker = (
                resources.system_memory_bytes
                - defaults.os_reserved_bytes
                - _dl_memory(cpu, f_mem, downstream, m_mem)
            )
            mem_user = user_memory_requirement(
                model_stats, sizing.s_single, np_, cpu, m_mem, defaults.alpha
            )
            if mem_worker - mem_user > defaults.core_memory_bytes:
                mem_storage = int(
                    mem_worker - mem_user - defaults.core_memory_bytes
                )
                join = (
                    BROADCAST
                    if sizing.structured_table_bytes
                    < defaults.max_broadcast_bytes
                    else SHUFFLE
                )
                storage_per_cluster = mem_storage * resources.num_nodes
                persistence = (
                    SERIALIZED if storage_per_cluster < sizing.s_double
                    else DESERIALIZED
                )
                if backend == "ignite":
                    from repro.core.sizing import static_storage_need

                    needed = static_storage_need(
                        sizing.s_single, persistence,
                        model_stats.serialized_ratio, alpha=defaults.alpha,
                    )
                    if needed > storage_per_cluster:
                        span.add("candidates_rejected")
                        continue  # lower cpu frees more Storage
                config = VistaConfig(
                    cpu=cpu,
                    num_partitions=np_,
                    mem_storage_bytes=mem_storage,
                    mem_user_bytes=int(mem_user),
                    mem_dl_bytes=_dl_memory(cpu, f_mem, downstream, m_mem),
                    join=join,
                    persistence=persistence,
                )
                span.set("chosen", {
                    "cpu": cpu, "num_partitions": np_, "join": join,
                    "persistence": persistence,
                    "mem_storage_bytes": mem_storage,
                    "mem_user_bytes": int(mem_user),
                    "mem_dl_bytes": config.mem_dl_bytes,
                })
                _record_predictions(
                    metrics, config, sizing, resources, defaults,
                    model_stats,
                )
                return config
            span.add("candidates_rejected")
        raise NoFeasiblePlan(
            f"no cpu in [1, {max(1, upper)}] satisfies the memory "
            f"constraints for {model_stats.name} on "
            f"{resources.system_memory_bytes} B nodes; "
            "provision machines with more memory"
        )


def _record_predictions(metrics, config, sizing, resources, defaults,
                        model_stats):
    """Publish the optimizer's per-worker peak predictions: Eq. 10
    (User), Eq. 11 (DL), and the Staged plan's two-consecutive-
    intermediates storage working set, so reports can score predicted
    vs observed occupancy."""
    if not metrics.enabled:
        return
    from repro.core.sizing import static_storage_need

    storage_need = static_storage_need(
        sizing.s_double, config.persistence,
        model_stats.serialized_ratio, alpha=defaults.alpha,
    )
    predictions = {
        "user": config.mem_user_bytes,
        "dl": config.mem_dl_bytes,
        "storage": storage_need // max(1, resources.num_nodes),
    }
    for region, nbytes in predictions.items():
        metrics.gauge("predicted_peak_bytes", region=region).set(
            int(nbytes)
        )


def _dl_memory(cpu, f_mem, downstream, m_mem):
    """Eq. 11: DL Execution Memory requirement."""
    if downstream.in_dl_system:
        return cpu * max(f_mem, m_mem)
    return cpu * f_mem


def _gpu_feasible(cpu, model_stats, downstream, resources):
    """Eq. 15: GPU memory constraint (vacuously true without a GPU)."""
    if not resources.has_gpu:
        return True
    per_replica = max(model_stats.gpu_mem_bytes, downstream.gpu_mem_bytes)
    return cpu * per_replica < resources.gpu_memory_bytes
